"""Dynamic-topology & mobility tests (repro.topology.dynamic).

The load-bearing guarantees:

* a single-snapshot ``DynamicTopology`` is *free*: simulator traces
  byte-identical to the same run on the plain static topology
  (regression + hypothesis, mirroring the empty ``FaultPlan`` contract);
* generators are deterministic and deliver snapshots in strictly
  increasing time order with connected-or-declared-partitioned
  components (hypothesis);
* the simulator swaps distance/adjacency tables atomically at
  change-points, records the topology timeline on the execution, and
  messages in flight keep their send-time delays;
* distance-dependent measurements — the adjacent-skew series, the
  gradient profile, and ``check_gradient`` — evaluate against the
  network live at each sample time.
"""

import doctest

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import AveragingAlgorithm, MaxBasedAlgorithm, NullAlgorithm
from repro.analysis.field import SkewField
from repro.errors import TopologyError
from repro.gcs.properties import GradientBound, check_gradient
from repro.sim.messages import UniformRandomDelay
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.sim.trace import TOPOLOGY
from repro.topology.dynamic import (
    DynamicTopology,
    components,
    link_schedule,
    random_waypoint,
    snapshot_sequence,
)
from repro.topology.generators import line, ring


def run(topology, alg, *, duration=20.0, seed=0, rho=0.2, processes_for=None):
    base = processes_for
    if base is None:
        base = topology.initial if isinstance(topology, DynamicTopology) else topology
    return run_simulation(
        topology,
        alg.processes(base),
        SimConfig(duration=duration, rho=rho, seed=seed),
        delay_policy=UniformRandomDelay(),
    )


class TestDynamicTopology:
    def test_validation(self):
        with pytest.raises(TopologyError):
            DynamicTopology(())
        with pytest.raises(TopologyError):
            DynamicTopology([(1.0, line(3))])  # must start at 0
        with pytest.raises(TopologyError):
            DynamicTopology([(0.0, line(3)), (5.0, line(3)), (5.0, line(3))])
        with pytest.raises(TopologyError):
            DynamicTopology([(0.0, line(3)), (5.0, line(4))])  # node set fixed

    def test_at_and_segments(self):
        a, b = line(4), line(4, comm_radius=2.0)
        dyn = snapshot_sequence((0.0, a), (10.0, b))
        assert dyn.at(0.0) is a and dyn.at(9.999) is a
        assert dyn.at(10.0) is b and dyn.at(99.0) is b
        assert dyn.initial is a and dyn.final is b
        assert dyn.change_times == (10.0,)
        assert not dyn.is_static()
        assert dyn.segments(25.0) == [(0.0, 10.0, a), (10.0, 25.0, b)]
        assert dyn.segments(5.0) == [(0.0, 5.0, a)]

    def test_static_wrapper(self):
        dyn = DynamicTopology.static(line(5))
        assert dyn.is_static() and dyn.change_times == ()
        assert dyn.at(3.0) is dyn.initial

    def test_components(self):
        assert components(line(4)) == ((0, 1, 2, 3),)
        split = link_schedule(line(4), {(1, 2): [(0.0, 5.0)]})
        assert components(split.initial) == ((0, 1), (2, 3))

    def test_doctests(self):
        import repro.topology.dynamic as mod

        failures, _ = doctest.testmod(mod).failed, None
        assert failures == 0


class TestGenerators:
    def test_waypoint_deterministic(self):
        a = random_waypoint(8, speed=0.7, duration=20.0, interval=4.0, seed=5)
        b = random_waypoint(8, speed=0.7, duration=20.0, interval=4.0, seed=5)
        assert [t for t, _ in a.snapshots] == [t for t, _ in b.snapshots]
        for (_, ta), (_, tb) in zip(a.snapshots, b.snapshots):
            assert (ta.distances == tb.distances).all()
            assert ta.comm_edges == tb.comm_edges

    def test_waypoint_seeds_differ(self):
        a = random_waypoint(8, speed=0.7, duration=20.0, interval=4.0, seed=5)
        b = random_waypoint(8, speed=0.7, duration=20.0, interval=4.0, seed=6)
        assert any(
            (ta.distances != tb.distances).any()
            for (_, ta), (_, tb) in zip(a.snapshots, b.snapshots)
        )

    def test_waypoint_distances_respect_normalization(self):
        dyn = random_waypoint(10, speed=1.5, duration=16.0, interval=4.0, seed=2)
        for _, topo in dyn.snapshots:
            assert topo.min_distance >= 1.0

    def test_waypoint_zero_speed_is_frozen(self):
        dyn = random_waypoint(6, speed=0.0, duration=12.0, interval=4.0, seed=1)
        first = dyn.initial
        for _, topo in dyn.snapshots:
            assert (topo.distances == first.distances).all()
            assert topo.comm_edges == first.comm_edges

    def test_waypoint_rejects_bad_args(self):
        for kwargs in (
            dict(n=1), dict(duration=0.0), dict(interval=0.0),
            dict(speed=-1.0), dict(comm_radius=0.0), dict(area=-2.0),
        ):
            full = dict(n=5, speed=0.5, duration=10.0, interval=5.0)
            full.update(kwargs)
            with pytest.raises(TopologyError):
                random_waypoint(
                    full.pop("n"), **full
                )

    def test_link_schedule_windows(self):
        dyn = link_schedule(line(4), {(0, 1): [(2.0, 4.0)], (2, 3): [(3.0, 6.0)]})
        assert dyn.change_times == (2.0, 3.0, 4.0, 6.0)
        assert (0, 1) in dyn.at(1.0).comm_edges
        assert (0, 1) not in dyn.at(2.5).comm_edges
        assert (2, 3) not in dyn.at(3.5).comm_edges and (0, 1) not in dyn.at(3.5).comm_edges
        assert (0, 1) in dyn.at(4.5).comm_edges and (2, 3) not in dyn.at(4.5).comm_edges
        assert dyn.at(7.0).comm_edges == dyn.initial.comm_edges
        # Distances are physical and never change.
        for _, topo in dyn.snapshots:
            assert (topo.distances == dyn.initial.distances).all()

    def test_link_schedule_merges_noop_boundaries(self):
        # Overlapping windows union; boundaries that change nothing are
        # not emitted as snapshots.
        dyn = link_schedule(line(3), {(0, 1): [(1.0, 3.0), (2.0, 5.0)]})
        assert dyn.change_times == (1.0, 5.0)

    def test_link_schedule_rejects_unknown_edge_and_bad_window(self):
        with pytest.raises(TopologyError):
            link_schedule(line(3), {(0, 2): [(1.0, 2.0)]})
        with pytest.raises(TopologyError):
            link_schedule(line(3), {(0, 1): [(3.0, 2.0)]})


class TestHypothesisWaypoint:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=12),
        speed=st.floats(min_value=0.0, max_value=3.0),
        interval=st.floats(min_value=0.5, max_value=8.0),
        duration=st.floats(min_value=1.0, max_value=40.0),
        seed=st.integers(min_value=0, max_value=2**16),
        connect=st.booleans(),
    )
    def test_snapshots_ordered_and_connected_or_partitioned(
        self, n, speed, interval, duration, seed, connect
    ):
        dyn = random_waypoint(
            n, speed=speed, duration=duration, interval=interval,
            seed=seed, connect=connect,
        )
        times = [t for t, _ in dyn.snapshots]
        # Strictly increasing delivery order, starting at 0.
        assert times[0] == 0.0
        assert all(t1 > t0 for t0, t1 in zip(times, times[1:]))
        assert times[-1] < duration
        for _, topo in dyn.snapshots:
            groups = components(topo)
            if connect:
                # Connectivity guarantee: bridged into one component.
                assert len(groups) == 1
            # Declared-partitioned: the components exactly partition the
            # node set (every node in exactly one group).
            assert sorted(node for g in groups for node in g) == list(topo.nodes)


class TestByteIdentityContract:
    def test_static_wrapper_reproduces_plain_run_exactly(self):
        topo = line(5)
        alg = MaxBasedAlgorithm()
        bare = run(topo, alg)
        wrapped = run(DynamicTopology.static(topo), alg, processes_for=topo)
        assert bare.trace.events == wrapped.trace.events
        assert bare.messages == wrapped.messages
        assert wrapped.topology_timeline is None

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=7),
        shape=st.sampled_from(["line", "ring"]),
        seed=st.integers(min_value=0, max_value=2**16),
        rho=st.sampled_from([0.1, 0.3, 0.5]),
    )
    def test_hypothesis_static_wrapper_is_free(self, n, shape, seed, rho):
        topo = line(n) if shape == "line" else ring(max(n, 3))
        alg = AveragingAlgorithm()
        bare = run(topo, alg, duration=10.0, seed=seed, rho=rho)
        wrapped = run(
            DynamicTopology.static(topo), alg, duration=10.0, seed=seed,
            rho=rho, processes_for=topo,
        )
        assert bare.trace.events == wrapped.trace.events
        assert bare.messages == wrapped.messages

    def test_same_dynamic_run_reproduces_itself(self):
        dyn = random_waypoint(7, speed=0.6, duration=18.0, interval=3.0, seed=4)
        runs = [run(dyn, MaxBasedAlgorithm(), duration=18.0) for _ in range(2)]
        assert runs[0].trace.events == runs[1].trace.events
        assert runs[0].messages == runs[1].messages


class TestSimulatorRewiring:
    def two_phase(self, alg=None, duration=20.0):
        dyn = snapshot_sequence(
            (0.0, line(5)), (10.0, line(5, comm_radius=2.0))
        )
        return dyn, run(dyn, alg or MaxBasedAlgorithm(), duration=duration)

    def test_timeline_recorded(self):
        dyn, exe = self.two_phase()
        assert exe.is_dynamic
        assert [t for t, _ in exe.topology_timeline] == [0.0, 10.0]
        assert exe.topology_at(5.0) is dyn.initial
        assert exe.topology_at(10.0) is dyn.final
        assert exe.topology is dyn.initial

    def test_trace_records_topology_event(self):
        _, exe = self.two_phase()
        swaps = exe.trace.of_kind(TOPOLOGY)
        assert [e.real_time for e in swaps] == [10.0]
        # Adversary-side: no node's local projection sees it.
        assert all(e.node == -1 for e in swaps)
        for node in exe.topology.nodes:
            assert all(k != TOPOLOGY for k, _, _ in exe.trace.local_observations(node))

    def test_neighbors_swap_at_change_point(self):
        # Under comm_radius 2 node 0 gossips with node 2; sends 0 -> 2
        # must only exist after the swap at t = 10.
        _, exe = self.two_phase()
        long_sends = [
            m for m in exe.messages
            if abs(m.sender - m.receiver) == 2
        ]
        assert long_sends
        assert all(m.send_time >= 10.0 for m in long_sends)

    def test_delay_bounds_checked_against_send_time_topology(self):
        _, exe = self.two_phase()
        exe.check_delay_bounds()  # must not raise

    def test_changes_beyond_duration_never_fire(self):
        dyn = snapshot_sequence((0.0, line(4)), (50.0, line(4, comm_radius=2.0)))
        exe = run(dyn, MaxBasedAlgorithm(), duration=20.0)
        assert exe.topology_timeline == ((0.0, dyn.initial),)
        assert not exe.trace.of_kind(TOPOLOGY)


class TestTimeVaryingMeasurement:
    def spread_null_execution(self, dyn, duration, *, rate_gap=0.2):
        """Null algorithm + spread constant rates: skew grows linearly,
        so distance-dependent measurements are exactly predictable."""
        topo = dyn.initial if isinstance(dyn, DynamicTopology) else dyn
        rates = {
            node: PiecewiseConstantRate.constant(0.8 + rate_gap * node)
            for node in topo.nodes
        }
        return run_simulation(
            dyn,
            NullAlgorithm().processes(topo),
            SimConfig(duration=duration, rho=0.5, seed=0),
            rate_schedules=rates,
        )

    def test_adjacent_series_follows_live_pairs(self):
        # Phase 1: plain line (adjacent pairs at distance 1).  Phase 2:
        # stretch the line by 3x (adjacent distance 3) — same comm
        # edges, scaled distances.
        base = line(4)
        stretched_d = base.distances * 3.0
        from repro.topology.base import Topology

        stretched = Topology(stretched_d, base.comm_edges, name="stretched")
        dyn = snapshot_sequence((0.0, base), (5.0, stretched))
        exe = self.spread_null_execution(dyn, 10.0)
        field = SkewField(exe, exe.sample_times(1.0))
        segments = field.topology_segments()
        assert [cols.size for _, cols in segments] == [5, 6]
        # Null + spread rates: adjacent skew = rate_gap * t for both
        # phases (adjacent pairs are the same node pairs here).
        series = field.max_adjacent_series()
        expected = 0.2 * field.times
        assert np.allclose(series, expected, atol=1e-9)

    def test_gradient_profile_attributes_skew_to_live_distance(self):
        base = line(3)
        from repro.topology.base import Topology

        stretched = Topology(base.distances * 4.0, base.comm_edges, name="s")
        dyn = snapshot_sequence((0.0, base), (6.0, stretched))
        exe = self.spread_null_execution(dyn, 10.0)
        profile = SkewField(exe, exe.sample_times(1.0)).gradient_profile()
        # Distances 1 and 2 live on [0, 6); 4 and 8 on [6, 10].  Worst
        # pair skew at distance 2 is 0.4 * 5 (end of phase 1); at
        # distance 8 it is 0.4 * 10 (end of run).
        assert set(profile) == {1.0, 2.0, 4.0, 8.0}
        assert profile[2.0] == pytest.approx(0.4 * 5.0)
        assert profile[8.0] == pytest.approx(0.4 * 10.0)

    def test_check_gradient_uses_time_varying_distances(self):
        base = line(3)
        from repro.topology.base import Topology

        stretched = Topology(base.distances * 4.0, base.comm_edges, name="s")
        dyn = snapshot_sequence((0.0, base), (6.0, stretched))
        exe = self.spread_null_execution(dyn, 10.0)
        # f(d) = d: pair (0, 2) violates once skew 0.4t > d(t), i.e.
        # t > 5 under distance 2 (phase 1) but only t > 20 under
        # distance 8 (phase 2) — so the *only* violation instant within
        # phase 1 is t in {5.something} sampled at 6?  Phase 1 samples
        # are t <= 5; 0.4 * 5 = 2.0 is not > 2 + 1e-9, and every phase-2
        # sample satisfies 0.4t <= 4 < 8.  No violations at all.
        assert check_gradient(exe, GradientBound.linear(1.0)) == []
        # Against the *static* phase-1 distances a violation would be
        # claimed at t >= 7 (0.4 * 7 = 2.8 > 2): prove the static
        # reading differs, so the time-varying path is load-bearing.
        static_exe = self.spread_null_execution(base, 10.0)
        assert check_gradient(static_exe, GradientBound.linear(1.0)) != []
        # Tighten f below phase-2's allowance and the violation is
        # witnessed with phase-2's distance and limit in force.
        hits = check_gradient(exe, GradientBound.linear(0.4))
        assert hits
        late = [v for v in hits if v.time >= 6.0 and {v.i, v.j} == {0, 2}]
        assert late and all(v.distance == 8.0 and v.bound == pytest.approx(3.2)
                            for v in late)

    def test_execution_max_adjacent_skew_uses_live_pairs(self):
        base = line(3)
        from repro.topology.base import Topology

        # Phase 2 makes the far pair (0, 2) the *adjacent* one by
        # shrinking its distance below the (0,1)/(1,2) edges.
        d = np.array([[0.0, 2.0, 1.0], [2.0, 0.0, 2.0], [1.0, 2.0, 0.0]])
        phase2 = Topology(d, base.comm_edges, name="swapped")
        dyn = snapshot_sequence((0.0, base), (5.0, phase2))
        exe = self.spread_null_execution(dyn, 10.0)
        # Before: adjacent pairs (0,1), (1,2) -> gap 0.2 * t.  After:
        # adjacent pair (0,2) -> gap 0.4 * t.
        assert exe.max_adjacent_skew(4.0) == pytest.approx(0.2 * 4.0)
        assert exe.max_adjacent_skew(8.0) == pytest.approx(0.4 * 8.0)
