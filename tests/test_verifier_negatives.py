"""Negative-path tests: the verifiers must *fail* on corrupted inputs.

A verifier that never fires is worse than none; these tests feed each
checker executions that genuinely violate its claim and assert the
violation is caught.
"""

import pytest

from repro._constants import tau as tau_of
from repro.algorithms import MaxBasedAlgorithm
from repro.errors import ConstructionError, IndistinguishabilityError
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew, verify_add_skew_claims
from repro.gcs.indistinguishability import assert_indistinguishable_prefix
from repro.gcs.schedule import AdversarySchedule
from repro.sim.messages import FixedFractionDelay, UniformRandomDelay
from repro.topology.generators import line

RHO = 0.5
TAU = tau_of(RHO)


def quiet_alpha(n=7, span=None, extra=0.0):
    span = span if span is not None else n - 1
    topo = line(n)
    schedule = AdversarySchedule.quiet(topo.nodes, TAU * span + extra)
    return topo, schedule, schedule.run(topo, MaxBasedAlgorithm(), rho=RHO, seed=0)


class TestAddSkewVerifierFires:
    def test_wrong_beta_execution_rejected(self):
        """Handing the verifier an unrelated execution must fail."""
        topo, schedule, alpha = quiet_alpha()
        plan = AddSkewPlan(
            i=0, j=6, n=7, alpha_duration=schedule.duration, rho=RHO
        )
        # "beta" = a run under different delays: no skew gained.
        fake_schedule = AdversarySchedule(
            rates=schedule.rates,
            delay_oracle=FixedFractionDelay(0.5),
            duration=plan.beta_end,
        )
        fake_beta = fake_schedule.run(topo, MaxBasedAlgorithm(), rho=RHO, seed=0)
        with pytest.raises(ConstructionError):
            verify_add_skew_claims(alpha, fake_beta, plan)

    def test_out_of_band_delays_rejected(self):
        topo, schedule, alpha = quiet_alpha()
        plan = AddSkewPlan(
            i=0, j=6, n=7, alpha_duration=schedule.duration, rho=RHO
        )
        # Delays of 0.9 * d are outside [d/4, 3d/4].
        bad_schedule = AdversarySchedule(
            rates=apply_add_skew(schedule, plan).rates,
            delay_oracle=FixedFractionDelay(0.9),
            duration=plan.beta_end,
        )
        bad_beta = bad_schedule.run(topo, MaxBasedAlgorithm(), rho=RHO, seed=0)
        with pytest.raises(ConstructionError):
            verify_add_skew_claims(alpha, bad_beta, plan)

    def test_prefix_delay_change_rejected(self):
        """Changing a frozen-prefix delay must be flagged."""
        topo, schedule, alpha = quiet_alpha(n=7, span=3, extra=8.0)  # S = 8
        plan = AddSkewPlan(
            i=0, j=3, n=7, alpha_duration=schedule.duration, rho=RHO
        )
        beta = apply_add_skew(schedule, plan).run(
            topo, MaxBasedAlgorithm(), rho=RHO, seed=0
        )
        # Corrupt one prefix message record post-hoc.
        from dataclasses import replace as dc_replace

        for k, m in enumerate(beta.messages):
            if m.receive_time < plan.window_start - 0.5:
                beta.messages[k] = dc_replace(m, delay=m.delay + 0.2)
                break
        with pytest.raises(ConstructionError):
            verify_add_skew_claims(alpha, beta, plan)


class TestIndistinguishabilityFires:
    def test_quiet_runs_of_max_and_averaging_truly_indistinguishable(self):
        """A subtlety worth pinning: on a perfectly quiet schedule the max
        and averaging algorithms behave *identically* (no gaps to close),
        so the checker must accept them."""
        topo, schedule, alpha = quiet_alpha()
        from repro.algorithms import AveragingAlgorithm

        other = schedule.run(topo, AveragingAlgorithm(), rho=RHO, seed=0)
        assert_indistinguishable_prefix(alpha, other)

    def test_different_algorithms_distinguished_under_drift(self):
        from repro.algorithms import AveragingAlgorithm
        from repro.sim.rates import PiecewiseConstantRate

        topo = line(7)
        rates = {
            node: PiecewiseConstantRate.constant(1.0 + RHO * node / 6)
            for node in topo.nodes
        }
        schedule = AdversarySchedule.quiet(topo.nodes, 12.0).with_rates(rates)
        alpha = schedule.run(topo, MaxBasedAlgorithm(), rho=RHO, seed=0)
        other = schedule.run(topo, AveragingAlgorithm(), rho=RHO, seed=0)
        with pytest.raises(IndistinguishabilityError):
            assert_indistinguishable_prefix(alpha, other)

    def test_random_delays_distinguished(self):
        topo, schedule, alpha = quiet_alpha()
        noisy = schedule.with_oracle(UniformRandomDelay()).run(
            topo, MaxBasedAlgorithm(), rho=RHO, seed=0
        )
        with pytest.raises(IndistinguishabilityError):
            assert_indistinguishable_prefix(alpha, noisy)


class TestBoundedIncreaseFires:
    def test_violating_bound_reported(self):
        from repro.gcs.bounded_increase import measure_bounded_increase

        _, _, alpha = quiet_alpha()
        # Claim an absurdly small f(1): the quiet gain of 1.0 exceeds 16*f.
        report = measure_bounded_increase(alpha, 0.01, rho=RHO)
        assert not report.satisfied
