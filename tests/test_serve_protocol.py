"""Wire-protocol properties of the sweep service (no daemon, no clock).

The serve daemon reuses the exact length-prefixed JSON framing of
:mod:`repro.rt.udp` — these properties mirror the
``test_rt_router.py`` wire-format suite from the second consumer's side
(identity of the helpers, round-trip, truncated-prefix,
trailing-garbage, non-UTF-8 rejection), then add the part only streams
need: :class:`~repro.serve.protocol.FrameBuffer` must reassemble any
frame sequence from any chunking of the byte stream, byte-for-byte,
and poison the connection (a :class:`~repro.errors.ServeError`, never
a wrong record or a hang) on malformed bodies or absurd length
prefixes.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

import repro.rt.udp as rt_udp
import repro.serve.protocol as protocol
from repro.errors import ServeError
from repro.serve.protocol import MAX_FRAME, FrameBuffer, encode_frame

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

frame_records = st.dictionaries(
    keys=st.text(min_size=1, max_size=10),
    values=st.one_of(json_scalars, st.lists(json_scalars, max_size=4)),
    max_size=6,
)


class TestSharedFraming:
    """The serve protocol *is* the rt wire format, not a re-implementation."""

    def test_helpers_are_the_rt_helpers(self):
        assert protocol.encode_frame is rt_udp.encode_frame
        assert protocol.decode_frame is rt_udp.decode_frame

    @given(record=frame_records)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, record):
        assert protocol.decode_frame(protocol.encode_frame(record)) == record

    @given(record=frame_records, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_strict_prefix_rejected(self, record, data):
        frame = protocol.encode_frame(record)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        assert protocol.decode_frame(frame[:cut]) is None

    @given(record=frame_records, extra=st.binary(min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_trailing_garbage_rejected(self, record, extra):
        assert protocol.decode_frame(protocol.encode_frame(record) + extra) is None

    def test_non_utf8_body_rejected(self):
        body = b"\xff\xfe\x00\x01"
        assert protocol.decode_frame(struct.pack(">I", len(body)) + body) is None


class TestFrameBuffer:
    @given(records=st.lists(frame_records, max_size=6), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_reassembles_any_chunking(self, records, data):
        # However recv slices the stream — byte by byte, all at once,
        # anything between — the exact record sequence comes back out.
        stream = b"".join(encode_frame(record) for record in records)
        buffer = FrameBuffer()
        out = []
        position = 0
        while position < len(stream):
            step = data.draw(
                st.integers(min_value=1, max_value=len(stream) - position)
            )
            buffer.feed(stream[position:position + step])
            position += step
            out.extend(buffer.frames())
        assert out == records
        assert len(buffer) == 0

    @given(record=frame_records)
    @settings(max_examples=60, deadline=None)
    def test_partial_frame_yields_nothing(self, record):
        frame = encode_frame(record)
        buffer = FrameBuffer()
        buffer.feed(frame[:-1])
        assert buffer.pop() is None
        buffer.feed(frame[-1:])
        assert buffer.pop() == record

    def test_non_utf8_body_poisons_the_stream(self):
        body = b"\xff\xfe\x00\x01"
        buffer = FrameBuffer()
        buffer.feed(struct.pack(">I", len(body)) + body)
        with pytest.raises(ServeError, match="UTF-8"):
            buffer.pop()

    def test_non_object_body_poisons_the_stream(self):
        body = b"[1, 2, 3]"
        buffer = FrameBuffer()
        buffer.feed(struct.pack(">I", len(body)) + body)
        with pytest.raises(ServeError, match="object"):
            buffer.pop()

    def test_oversize_prefix_rejected_before_any_body_arrives(self):
        buffer = FrameBuffer()
        buffer.feed(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(ServeError, match="cap"):
            buffer.pop()

    def test_valid_frame_at_the_cap_boundary_is_not_rejected(self):
        record = {"k": "v"}
        frame = encode_frame(record)
        buffer = FrameBuffer()
        buffer.feed(frame)
        assert buffer.pop() == record
