"""Tests for the gradient/validity property checkers (gcs.properties)."""

import math

import pytest

from repro.algorithms import MaxBasedAlgorithm, NullAlgorithm
from repro.gcs.properties import (
    GradientBound,
    check_gradient,
    check_validity,
    empirical_f,
)
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.5


def drifted_null(n=5, duration=20.0):
    topo = line(n)
    rates = {n - 1: PiecewiseConstantRate.constant(1.0 + RHO)}
    return run_simulation(
        topo,
        NullAlgorithm().processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=0),
        rate_schedules=rates,
    )


class TestGradientBound:
    def test_linear(self):
        f = GradientBound.linear(2.0, 1.0)
        assert f(3.0) == 7.0
        assert "2.0*d+1.0" == f.label

    def test_conjectured(self):
        f = GradientBound.conjectured(diameter=math.e)
        assert f(3.0) == pytest.approx(4.0)

    def test_constant(self):
        f = GradientBound.constant(5.0)
        assert f(0.5) == f(100.0) == 5.0


class TestCheckGradient:
    def test_no_violations_for_generous_bound(self):
        ex = drifted_null()
        bound = GradientBound.linear(100.0)
        assert check_gradient(ex, bound) == []

    def test_violations_found_and_described(self):
        ex = drifted_null()
        bound = GradientBound.constant(1.0)
        violations = check_gradient(ex, bound)
        assert violations
        v = violations[0]
        assert v.skew > v.bound
        assert "exceeds" in str(v)

    def test_custom_times(self):
        ex = drifted_null()
        bound = GradientBound.constant(1.0)
        early = check_gradient(ex, bound, times=[0.0, 0.5])
        assert early == []  # no skew accumulated yet


class TestEmpiricalF:
    def test_monotone_nondecreasing(self):
        ex = drifted_null()
        profile = empirical_f([ex])
        values = [profile[d] for d in sorted(profile)]
        assert values == sorted(values)

    def test_pointwise_max_over_executions(self):
        ex1 = drifted_null(duration=10.0)
        ex2 = drifted_null(duration=20.0)
        combined = empirical_f([ex1, ex2])
        solo = empirical_f([ex1])
        for d in solo:
            assert combined[d] >= solo[d] - 1e-9

    def test_distances_match_topology(self):
        ex = drifted_null(n=4)
        profile = empirical_f([ex])
        assert set(profile) == {1.0, 2.0, 3.0}


class TestCheckValidity:
    def test_passes_for_max_based(self):
        topo = line(4)
        ex = run_simulation(
            topo,
            MaxBasedAlgorithm().processes(topo),
            SimConfig(duration=10.0, rho=RHO, seed=0),
        )
        check_validity(ex)
