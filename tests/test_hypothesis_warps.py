"""Property-based tests (hypothesis) for warps and the delay oracle."""

import random

from hypothesis import given, settings, strategies as st

from repro._constants import tau as tau_of
from repro.gcs.add_skew import AddSkewPlan
from repro.gcs.oracle import WarpedDelayOracle
from repro.gcs.warps import TimeWarp
from repro.sim.messages import HalfDistanceDelay

RNG = random.Random(0)


@st.composite
def knee_warps(draw):
    knee = draw(st.floats(min_value=0.0, max_value=20.0))
    end = knee + draw(st.floats(min_value=0.5, max_value=20.0))
    slope = draw(st.floats(min_value=0.5, max_value=1.0))
    return TimeWarp.knee(knee, end, slope)


@given(knee_warps(), st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=200)
def test_warp_inverse_roundtrip(warp, t):
    assert abs(warp.inverse(warp(t)) - t) <= 1e-7 * max(1.0, t)


@given(knee_warps(), st.floats(min_value=0.0, max_value=50.0),
       st.floats(min_value=1e-3, max_value=10.0))
@settings(max_examples=200)
def test_warp_strictly_increasing(warp, t, dt):
    assert warp(t + dt) > warp(t)


@given(knee_warps(), st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=200)
def test_warp_compresses_never_expands(warp, t):
    # Slopes <= 1 beyond the knee, identity before: psi(t) <= t.
    assert warp(t) <= t + 1e-9


@st.composite
def plans(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    i = draw(st.integers(min_value=0, max_value=n - 2))
    j = draw(st.integers(min_value=i + 1, max_value=n - 1))
    rho = draw(st.sampled_from([0.25, 0.5]))
    slack = draw(st.floats(min_value=0.0, max_value=10.0))
    duration = tau_of(rho) * (j - i) + slack
    lead = draw(st.sampled_from(["lo", "hi"]))
    return AddSkewPlan(
        i=i, j=j, n=n, alpha_duration=duration, rho=rho, lead=lead
    )


@given(plans())
@settings(max_examples=150)
def test_plan_window_invariants(plan):
    assert plan.window_start >= -1e-9
    assert plan.window_start < plan.beta_end <= plan.window_end
    assert plan.beta_end < plan.window_end  # strict: time is saved
    # Window shrink at least span/6 (Claim 6.5's computation).
    assert (plan.window_end - plan.beta_end) >= plan.span / 6.0 - 1e-9


@given(plans())
@settings(max_examples=150)
def test_plan_knees_ordered_toward_laggard(plan):
    knees = [plan.knee_time(k) for k in range(plan.n)]
    if plan.lead == "lo":
        assert knees == sorted(knees)
    else:
        assert knees == sorted(knees, reverse=True)
    for k in knees:
        assert plan.window_start - 1e-9 <= k <= plan.beta_end + 1e-9


@given(plans())
@settings(max_examples=100)
def test_leader_warp_lands_on_beta_end(plan):
    # The leader is sped for the whole window: psi(T) == T'.
    warp = plan.warp(plan.leader)
    assert abs(warp(plan.window_end) - plan.beta_end) <= 1e-9


@given(
    plans(),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=10),
)
@settings(max_examples=200)
def test_oracle_delays_always_legal(plan, frac, pair_offset):
    """Every delay the oracle produces lies in [0, d] — the model band."""
    oracle = WarpedDelayOracle(
        base=HalfDistanceDelay(),
        warps=plan.warps(),
        window_start=plan.window_start,
        window_end=plan.window_end,
        beta_end=plan.beta_end,
    )
    sender = pair_offset % plan.n
    receiver = (pair_offset + 1) % plan.n
    if sender == receiver:
        return
    distance = abs(sender - receiver)
    send_time = frac * plan.beta_end
    delay = oracle.delay(sender, receiver, send_time, float(distance), 0, RNG)
    assert -1e-9 <= delay <= distance + 1e-9


@given(plans(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200)
def test_oracle_window_delays_in_lemma_band(plan, frac):
    """Delays of adjacent-pair messages received in the window lie in
    [d/4, 3d/4] (Claim 6.4)."""
    oracle = WarpedDelayOracle(
        base=HalfDistanceDelay(),
        warps=plan.warps(),
        window_start=plan.window_start,
        window_end=plan.window_end,
        beta_end=plan.beta_end,
    )
    sender = min(plan.i, plan.n - 2)
    receiver = sender + 1
    send_time = frac * plan.beta_end
    delay = oracle.delay(sender, receiver, send_time, 1.0, 0, RNG)
    assert 0.25 - 1e-9 <= delay <= 0.75 + 1e-9
