"""Tests for Execution measurement and validation (sim.execution)."""

import numpy as np
import pytest

from repro.algorithms import MaxBasedAlgorithm, NullAlgorithm
from repro.errors import DelayBoundError
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.5


def drifted(n=5, duration=20.0, fast_node=None):
    topo = line(n)
    rates = {}
    if fast_node is not None:
        rates[fast_node] = PiecewiseConstantRate.constant(1.0 + RHO)
    return run_simulation(
        topo,
        NullAlgorithm().processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=0),
        rate_schedules=rates,
    )


class TestClockQueries:
    def test_logical_and_hardware_values(self):
        ex = drifted(fast_node=2)
        assert ex.hardware_value(0, 10.0) == pytest.approx(10.0)
        assert ex.hardware_value(2, 10.0) == pytest.approx(15.0)
        assert ex.logical_value(2, 10.0) == pytest.approx(15.0)  # null alg: L = H

    def test_skew_signed(self):
        ex = drifted(fast_node=2)
        assert ex.skew(2, 0, 10.0) == pytest.approx(5.0)
        assert ex.skew(0, 2, 10.0) == pytest.approx(-5.0)

    def test_skew_matrix_antisymmetric(self):
        ex = drifted(fast_node=1)
        m = ex.skew_matrix(8.0)
        assert m.shape == (5, 5)
        assert m[1, 0] == pytest.approx(-m[0, 1])
        assert m[1, 0] == pytest.approx(4.0)

    def test_snapshot(self):
        ex = drifted()
        snap = ex.logical_snapshot(5.0)
        assert set(snap) == set(range(5))


class TestSkewSummaries:
    def test_max_skew_and_pair(self):
        ex = drifted(fast_node=3)
        i, j, s = ex.max_skew_pair(20.0)
        assert {i, j} == {3, 0} or s == pytest.approx(10.0)
        assert ex.max_skew(20.0) == pytest.approx(10.0)

    def test_max_adjacent_skew(self):
        ex = drifted(fast_node=2)
        # fast node 2 vs neighbors 1 and 3
        assert ex.max_adjacent_skew(10.0) == pytest.approx(5.0)

    def test_peak_adjacent_skew_over_times(self):
        ex = drifted(fast_node=2)
        t, s = ex.peak_adjacent_skew([0.0, 10.0, 20.0])
        assert t == 20.0
        assert s == pytest.approx(10.0)

    def test_sample_times_include_end(self):
        ex = drifted(duration=10.0)
        times = ex.sample_times(3.0)
        assert times[0] == 0.0
        assert times[-1] == 10.0

    def test_sample_times_rejects_bad_step(self):
        ex = drifted()
        with pytest.raises(ValueError):
            ex.sample_times(0.0)

    def test_sample_times_dedupes_inexact_tail(self):
        # duration = 3 * 0.1 is not exactly representable; np.arange
        # emits the duration itself as its last grid point, which used
        # to double-count the final sample in every mean on this grid.
        duration = 0.1 + 0.1 + 0.1  # 0.30000000000000004
        assert list(np.arange(0.0, duration, 0.1))[-1] == duration
        ex = drifted(duration=duration)
        times = ex.sample_times(0.1)
        assert times == [0.0, 0.1, 0.2, duration]
        assert len(times) == len(set(times))

    def test_sample_times_returns_plain_floats(self):
        ex = drifted(duration=10.0)
        for t in ex.sample_times(3.0):
            assert type(t) is float

    def test_peak_adjacent_skew_empty_times_raises(self):
        ex = drifted(fast_node=2)
        with pytest.raises(ValueError):
            ex.peak_adjacent_skew([])
        with pytest.raises(ValueError):
            ex.peak_adjacent_skew(iter(()))

    def test_gradient_profile_monotone_in_distance_for_drift(self):
        ex = drifted(fast_node=4, duration=10.0)
        profile = ex.gradient_profile()
        assert set(profile) == {1.0, 2.0, 3.0, 4.0}
        # Node 4 is fastest: skew grows with distance from it.
        assert profile[4.0] >= profile[1.0]


class TestValidators:
    def test_check_validity_passes_for_null(self):
        drifted().check_validity()

    def test_check_delay_bounds_passes(self):
        topo = line(4)
        alg = MaxBasedAlgorithm()
        ex = run_simulation(
            topo, alg.processes(topo), SimConfig(duration=10.0, seed=0)
        )
        ex.check_delay_bounds()

    def test_check_delay_bounds_catches_corruption(self):
        topo = line(4)
        alg = MaxBasedAlgorithm()
        ex = run_simulation(
            topo, alg.processes(topo), SimConfig(duration=10.0, seed=0)
        )
        # Corrupt a message record post-hoc.
        from dataclasses import replace

        ex.messages[0] = replace(ex.messages[0], delay=99.0)
        with pytest.raises(DelayBoundError):
            ex.check_delay_bounds()

    def test_delays_within_windowed(self):
        topo = line(4)
        alg = MaxBasedAlgorithm()
        ex = run_simulation(
            topo, alg.processes(topo), SimConfig(duration=10.0, seed=0)
        )
        # quiet schedule: all delays are exactly d/2
        assert ex.delays_within(0.5, 0.5)
        assert ex.delays_within(0.25, 0.75)
        assert not ex.delays_within(0.6, 0.75)

    def test_rates_within(self):
        ex = drifted(fast_node=2)
        assert ex.rates_within(1.0, 1.5)
        assert not ex.rates_within(1.0, 1.2)
        # Window before any breakpoint trivially within.
        assert ex.rates_within(0.9, 1.6, t_from=0.0, t_until=5.0)


class TestTrajectories:
    def test_logical_trajectory(self):
        ex = drifted(fast_node=1, duration=10.0)
        traj = ex.logical_trajectory(1, [0.0, 5.0, 10.0])
        assert traj == pytest.approx([0.0, 7.5, 15.0])

    def test_skew_trajectory(self):
        ex = drifted(fast_node=1, duration=10.0)
        traj = ex.skew_trajectory(1, 0, [0.0, 10.0])
        assert traj == pytest.approx([0.0, 5.0])

    def test_max_logical_increase(self):
        ex = drifted(fast_node=2, duration=10.0)
        # Fastest clock runs at 1.5: max gain over 1 unit is 1.5.
        assert ex.max_logical_increase(window=1.0) == pytest.approx(1.5)

    def test_increase_window_count_pinned(self):
        ex = drifted(duration=10.0)
        # floor((10 - 1) / 0.25) + 1 = 37 windows, last start at 9.0.
        starts = ex.increase_window_starts(window=1.0, step=0.25)
        assert starts.size == 37
        assert starts[0] == 0.0
        assert starts[-1] == pytest.approx(9.0)

    def test_increase_window_grid_does_not_drift(self):
        # The old `t += step` accumulator drifts by ~count * eps * t and
        # silently skipped the final Lemma 7.1 window at this scale.
        from repro._constants import TIME_EPS, window_starts

        duration, window, step = 4096.0, 1.0, 0.05
        t, accumulated = 0.0, 0
        while t + window <= duration + TIME_EPS:
            accumulated += 1
            t += step
        starts = window_starts(duration, window=window, step=step)
        assert starts.size == int((duration - window) / step) + 1 == 81901
        assert accumulated == 81900  # the drifting loop drops one
        # Every start honours the defining inequality, including the last.
        assert starts[-1] + window <= duration + TIME_EPS
