"""Shared helpers for the engine differential test harness.

The batched engine's contract is not "approximately the same results
faster" — it is *byte identity*: the same trace digest, the same message
list, the same fault counters, the same topology timeline and bitwise
the same logical-clock values as the scalar event loop, for every
scenario the simulator accepts.  These helpers run one scenario under
both engines and assert that whole contract in one place, so every
differential test (``test_engine_equivalence.py``, the fault and replay
regressions) compares the same surfaces.
"""

from __future__ import annotations

import numpy as np

from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.dynamic import DynamicTopology

__all__ = ["run_both", "assert_equivalent", "run_engine"]


def run_engine(
    engine,
    topology,
    algorithm,
    *,
    duration=12.0,
    rho=0.3,
    seed=0,
    rate_schedules=None,
    delay_policy=None,
    fault_plan=None,
    record_trace=True,
):
    """One run of ``algorithm`` on ``topology`` under the given engine."""
    base = topology.initial if isinstance(topology, DynamicTopology) else topology
    return run_simulation(
        topology,
        algorithm.processes(base),
        SimConfig(
            duration=duration,
            rho=rho,
            seed=seed,
            record_trace=record_trace,
            engine=engine,
        ),
        rate_schedules=rate_schedules,
        delay_policy=delay_policy,
        fault_plan=fault_plan,
    )


def run_both(topology, algorithm_factory, **kwargs):
    """Run the same scenario under both engines; returns (scalar, batched).

    ``algorithm_factory`` is called once per engine so no algorithm state
    leaks between the runs.
    """
    scalar = run_engine("scalar", topology, algorithm_factory(), **kwargs)
    batched = run_engine("batched", topology, algorithm_factory(), **kwargs)
    return scalar, batched


def assert_equivalent(scalar, batched, *, probe_points=97):
    """Assert the full equivalence contract between two executions.

    Compares the trace digest (byte identity of every recorded step),
    the delivered-message list (``Message`` is a frozen dataclass, so
    equality is field-by-field and float comparison is bitwise), fault
    counters, the topology timeline, and the logical-clock matrix
    sampled on a dense grid with ``array_equal`` — no tolerances
    anywhere.
    """
    assert scalar.duration == batched.duration
    assert scalar.trace.digest() == batched.trace.digest(), "trace digests diverged"
    assert len(scalar.trace) == len(batched.trace)
    assert scalar.messages == batched.messages, "message lists diverged"
    assert scalar.fault_stats == batched.fault_stats, "fault counters diverged"
    scalar_timeline = scalar.topology_timeline
    batched_timeline = batched.topology_timeline
    if scalar_timeline is None or batched_timeline is None:
        assert scalar_timeline == batched_timeline, "topology timelines diverged"
    else:
        assert len(scalar_timeline) == len(batched_timeline)
        for (at_s, topo_s), (at_b, topo_b) in zip(scalar_timeline, batched_timeline):
            assert at_s == at_b
            assert topo_s.nodes == topo_b.nodes
    probe = np.linspace(0.0, scalar.duration, probe_points)
    assert np.array_equal(
        scalar.logical_matrix(probe), batched.logical_matrix(probe)
    ), "logical-clock values diverged"
    assert np.array_equal(
        np.vstack([scalar.hardware[n].values_at(probe) for n in scalar.topology.nodes]),
        np.vstack([batched.hardware[n].values_at(probe) for n in batched.topology.nodes]),
    ), "hardware-clock values diverged"
