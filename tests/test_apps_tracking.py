"""Tests for the target tracking overlay (apps.tracking)."""

import pytest

from repro.algorithms import NullAlgorithm
from repro.apps.tracking import required_skew_for_accuracy, track_velocity
from repro.errors import ExperimentError
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line


def execution(rates=None, duration=40.0):
    topo = line(9)
    return run_simulation(
        topo,
        NullAlgorithm().processes(topo),
        SimConfig(duration=duration, rho=0.5, seed=0),
        rate_schedules=rates or {},
    )


class TestTrackVelocity:
    def test_perfect_clocks_exact_estimate(self):
        ex = execution()
        est = track_velocity(ex, 0, 4, velocity=2.0, start_time=5.0)
        assert est.estimated_velocity == pytest.approx(2.0)
        assert est.relative_error == pytest.approx(0.0, abs=1e-9)
        assert est.meets
        assert est.pair_skew == pytest.approx(0.0, abs=1e-9)

    def test_skewed_clock_biases_estimate(self):
        rates = {4: PiecewiseConstantRate.constant(1.2)}
        ex = execution(rates)
        est = track_velocity(ex, 0, 4, velocity=2.0, start_time=10.0)
        # Node 4's clock runs 20% fast: delta_t inflated, velocity low.
        assert est.estimated_velocity < 2.0
        assert est.relative_error > 0.01
        assert not est.meets

    def test_custom_positions(self):
        ex = execution()
        est = track_velocity(
            ex,
            0,
            1,
            velocity=1.0,
            start_time=2.0,
            positions={0: 0.0, 1: 10.0},
        )
        assert est.separation == 10.0

    def test_crossing_beyond_duration_rejected(self):
        ex = execution(duration=5.0)
        with pytest.raises(ExperimentError):
            track_velocity(ex, 0, 8, velocity=0.5, start_time=1.0)

    def test_bad_velocity_rejected(self):
        ex = execution()
        with pytest.raises(ExperimentError):
            track_velocity(ex, 0, 4, velocity=0.0, start_time=1.0)

    def test_same_position_rejected(self):
        ex = execution()
        with pytest.raises(ExperimentError):
            track_velocity(
                ex, 0, 1, velocity=1.0, start_time=1.0, positions={0: 2.0, 1: 2.0}
            )


class TestRequiredSkew:
    def test_linear_in_separation(self):
        b1 = required_skew_for_accuracy(1.0, 2.0)
        b4 = required_skew_for_accuracy(4.0, 2.0)
        assert b4 == pytest.approx(4.0 * b1)

    def test_formula(self):
        # accuracy/(1-accuracy) * s / v
        assert required_skew_for_accuracy(10.0, 2.0, accuracy=0.01) == pytest.approx(
            0.01 / 0.99 * 5.0
        )

    def test_budget_is_sufficient(self):
        # An estimate whose skew equals the budget meets the accuracy.
        s, v = 8.0, 2.0
        budget = required_skew_for_accuracy(s, v, accuracy=0.01)
        t_true = s / v
        v_hat = s / (t_true + budget)
        assert abs(v_hat - v) / v <= 0.01 + 1e-12

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ExperimentError):
            required_skew_for_accuracy(1.0, 1.0, accuracy=0.0)
