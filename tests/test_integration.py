"""Integration tests: algorithms x topologies, multi-round constructions."""

import pytest

from repro._constants import tau as tau_of
from repro.algorithms import standard_suite
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew, verify_add_skew_claims
from repro.gcs.indistinguishability import assert_indistinguishable_prefix
from repro.gcs.schedule import AdversarySchedule
from repro.sim.messages import UniformRandomDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.experiments.common import drifted_rates
from repro.topology.generators import balanced_tree, grid, line, ring

RHO = 0.3

TOPOLOGIES = [
    line(7),
    ring(8),
    grid(3, 3),
    balanced_tree(2, 2),
]


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
@pytest.mark.parametrize(
    "algorithm", standard_suite(), ids=lambda a: a.name
)
def test_algorithm_topology_matrix(topology, algorithm):
    """Every algorithm on every topology: model-compliant and better than
    free-running drift."""
    ex = run_simulation(
        topology,
        algorithm.processes(topology),
        SimConfig(duration=40.0, rho=RHO, seed=5),
        rate_schedules=drifted_rates(topology, rho=RHO, seed=5),
        delay_policy=UniformRandomDelay(),
    )
    ex.check_validity()
    ex.check_delay_bounds()
    ex.check_drift_bounds()
    # Synchronization does something: final peak skew below worst-case
    # free drift accumulation (2 * rho * duration = 24).
    assert ex.max_skew(40.0) < 2 * RHO * 40.0


class TestTwoRoundChain:
    """Two chained Add Skew rounds with full verification at each step —
    the inductive heart of Theorem 8.1, checked explicitly."""

    RHO = 0.5

    def test_chain(self):
        tau = tau_of(self.RHO)
        topo = line(9)
        algorithm = standard_suite()[0]  # max-based

        # alpha_0: quiet, duration tau * 8.
        schedule = AdversarySchedule.quiet(topo.nodes, tau * 8)
        alpha0 = schedule.run(topo, algorithm, rho=self.RHO, seed=0)
        assert alpha0.delays_within(0.5, 0.5)

        # Round 0: pair (0, 8).
        plan0 = AddSkewPlan(
            i=0, j=8, n=9, alpha_duration=schedule.duration, rho=self.RHO
        )
        beta0_schedule = apply_add_skew(schedule, plan0)
        beta0 = beta0_schedule.run(topo, algorithm, rho=self.RHO, seed=0)
        assert_indistinguishable_prefix(alpha0, beta0)
        verify_add_skew_claims(alpha0, beta0, plan0)

        # Extend past the straggler horizon + next window (span 2).
        pad = plan0.straggler_horizon - plan0.beta_end
        schedule = beta0_schedule.extended(2 * tau + pad + 1e-6)
        alpha1 = schedule.run(topo, algorithm, rho=self.RHO, seed=0)

        # alpha1's final window is quiet again: preconditions restored.
        s1 = schedule.duration - 2 * tau
        assert alpha1.delays_within(0.5, 0.5, received_from=s1)
        assert alpha1.rates_within(1.0, 1.0, t_from=s1)
        # Bounded Increase preconditions hold globally (Claim 8.3).
        assert alpha1.rates_within(1.0, 1.0 + self.RHO / 2)
        assert alpha1.delays_within(0.25, 0.75)

        # Round 1 on a nested pair (0, 2).
        plan1 = AddSkewPlan(
            i=0, j=2, n=9, alpha_duration=schedule.duration, rho=self.RHO
        )
        beta1_schedule = apply_add_skew(schedule, plan1)
        beta1 = beta1_schedule.run(topo, algorithm, rho=self.RHO, seed=0)
        assert_indistinguishable_prefix(alpha1, beta1)
        summary = verify_add_skew_claims(alpha1, beta1, plan1)
        assert summary["gain"] >= plan1.guaranteed_gain - 1e-6

        # Skew accumulated across rounds.
        final = beta1.skew(0, 2, beta1.duration)
        assert final >= plan1.guaranteed_gain - 1e-6

    def test_mirrored_chain(self):
        """The same two-round chain with lead='hi' (the reflection WLOG)."""
        tau = tau_of(self.RHO)
        topo = line(9)
        algorithm = standard_suite()[0]
        schedule = AdversarySchedule.quiet(topo.nodes, tau * 8)
        alpha0 = schedule.run(topo, algorithm, rho=self.RHO, seed=0)

        plan0 = AddSkewPlan(
            i=0, j=8, n=9, alpha_duration=schedule.duration, rho=self.RHO,
            lead="hi",
        )
        beta0_schedule = apply_add_skew(schedule, plan0)
        beta0 = beta0_schedule.run(topo, algorithm, rho=self.RHO, seed=0)
        assert_indistinguishable_prefix(alpha0, beta0)
        summary0 = verify_add_skew_claims(alpha0, beta0, plan0)
        # The mirror grows L_j - L_i.
        assert beta0.skew(8, 0, beta0.duration) >= plan0.guaranteed_gain - 1e-6

        pad = plan0.straggler_horizon - plan0.beta_end
        schedule = beta0_schedule.extended(2 * tau + pad + 1e-6)
        alpha1 = schedule.run(topo, algorithm, rho=self.RHO, seed=0)
        plan1 = AddSkewPlan(
            i=6, j=8, n=9, alpha_duration=schedule.duration, rho=self.RHO,
            lead="hi",
        )
        beta1_schedule = apply_add_skew(schedule, plan1)
        beta1 = beta1_schedule.run(topo, algorithm, rho=self.RHO, seed=0)
        assert_indistinguishable_prefix(alpha1, beta1)
        verify_add_skew_claims(alpha1, beta1, plan1)

    def test_chain_against_gradient_algorithm(self):
        """The construction is algorithm-independent: it also lands on the
        gradient candidate."""
        from repro.algorithms import BoundedCatchUpAlgorithm

        tau = tau_of(self.RHO)
        topo = line(5)
        algorithm = BoundedCatchUpAlgorithm(period=0.5)
        schedule = AdversarySchedule.quiet(topo.nodes, tau * 4)
        alpha = schedule.run(topo, algorithm, rho=self.RHO, seed=0)
        plan = AddSkewPlan(
            i=0, j=4, n=5, alpha_duration=schedule.duration, rho=self.RHO
        )
        beta_schedule = apply_add_skew(schedule, plan)
        beta = beta_schedule.run(topo, algorithm, rho=self.RHO, seed=0)
        assert_indistinguishable_prefix(alpha, beta)
        verify_add_skew_claims(alpha, beta, plan)
