"""Tests for external (source-tree) synchronization."""

import numpy as np
import pytest

from repro.algorithms import ExternalSyncAlgorithm, NullAlgorithm
from repro.errors import TopologyError
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.base import Topology
from repro.topology.generators import line

RHO = 0.3


def run_line(n=6, duration=60.0, source=0, source_rate=1.0, seed=0):
    topo = line(n)
    alg = ExternalSyncAlgorithm(period=0.5, source=source)
    rates = {source: PiecewiseConstantRate.constant(source_rate)}
    for node in topo.nodes:
        if node != source:
            rates[node] = PiecewiseConstantRate.constant(
                1.0 + RHO * (0.5 if node % 2 else -0.5)
            )
    ex = run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=seed),
        rate_schedules=rates,
    )
    return ex, alg


def external_error(ex, source, t):
    return max(
        abs(ex.logical_value(n, t) - ex.logical_value(source, t))
        for n in ex.topology.nodes
    )


class TestExternal:
    def test_followers_track_fast_source(self):
        ex, alg = run_line(source_rate=1.0 + RHO)
        null, _ = run_line(source_rate=1.0 + RHO, seed=1)
        err = external_error(ex, alg.source, 60.0)
        drift_err = 60.0 * RHO  # what free-running clocks would show
        assert err < drift_err / 2.0

    def test_followers_track_slow_source_via_slow_mode(self):
        ex, alg = run_line(source_rate=1.0 - RHO / 2)
        err = external_error(ex, alg.source, 60.0)
        # Followers can slow to ~0.71 * h; they track a 0.85-rate source
        # much better than free-running (which would be ~9+).
        assert err < 6.0

    def test_validity_holds_despite_slow_mode(self):
        ex, _ = run_line(source_rate=1.0 - RHO / 2)
        ex.check_validity()

    def test_unreachable_source_raises(self):
        # Two disconnected pairs: BFS from 0 cannot reach 2, 3.
        d = np.array(
            [
                [0.0, 1.0, 9.0, 9.0],
                [1.0, 0.0, 9.0, 9.0],
                [9.0, 9.0, 0.0, 1.0],
                [9.0, 9.0, 1.0, 0.0],
            ]
        )
        topo = Topology(
            d,
            frozenset({(0, 1), (2, 3)}),
            name="split",
        )
        with pytest.raises(TopologyError):
            ExternalSyncAlgorithm(source=0).processes(topo)

    def test_bad_source_raises(self):
        with pytest.raises(TopologyError):
            ExternalSyncAlgorithm(source=99).processes(line(4))

    def test_source_never_adjusts(self):
        ex, alg = run_line()
        assert ex.logical[alg.source].total_jump() == 0.0
