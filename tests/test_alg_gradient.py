"""Tests for the bounded-catch-up gradient candidate."""

import pytest

from _fault_helpers import assert_monotone_logical, run_crash_recovery
from repro.algorithms import BoundedCatchUpAlgorithm, MaxBasedAlgorithm, NullAlgorithm
from repro.sim.messages import PerPairDelay, UniformRandomDelay
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.2


def run_drifted(alg, n=9, duration=80.0, seed=0):
    topo = line(n)
    rates = {
        node: PiecewiseConstantRate.constant(
            1.0 - RHO + 2 * RHO * node / (n - 1)
        )
        for node in topo.nodes
    }
    return run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=seed),
        rate_schedules=rates,
        delay_policy=UniformRandomDelay(),
    )


class TestParameters:
    def test_rejects_bad_kappa(self):
        with pytest.raises(ValueError):
            BoundedCatchUpAlgorithm(kappa=0.0)

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            BoundedCatchUpAlgorithm(mu=-1.0)

    def test_rejects_bad_compensation(self):
        with pytest.raises(ValueError):
            BoundedCatchUpAlgorithm(compensation=2.0).processes(line(3))


class TestBehavior:
    def test_fast_mode_engages(self):
        alg = BoundedCatchUpAlgorithm(period=0.5, kappa=1.0, mu=0.5)
        ex = run_drifted(alg)
        rate_events = ex.trace.of_kind("rate")
        assert rate_events, "fast mode should have engaged at least once"
        assert any(e.detail == pytest.approx(1.5) for e in rate_events)

    def test_never_jumps(self):
        """Pure rate control: the blocking algorithm takes no jumps."""
        alg = BoundedCatchUpAlgorithm(period=0.5, kappa=1.0, mu=0.5)
        ex = run_drifted(alg)
        assert all(ex.logical[n].total_jump() == 0.0 for n in ex.topology.nodes)

    def test_tracks_drift_better_than_null(self):
        alg = BoundedCatchUpAlgorithm(period=0.5, kappa=0.5, mu=0.5)
        ex = run_drifted(alg)
        null = run_drifted(NullAlgorithm())
        assert ex.max_skew(80.0) < null.max_skew(80.0) / 2.0

    def test_validity(self):
        alg = BoundedCatchUpAlgorithm(period=0.5, kappa=1.0, mu=0.5)
        run_drifted(alg).check_validity()

    def test_no_distance_one_spike_on_delay_drop(self):
        """The Section 2 scenario that breaks max-based: rate control
        cannot produce a discontinuous distance-1 spike."""
        topo = line(3, comm_radius=2.0)
        rates = {0: PiecewiseConstantRate.constant(1.0 + RHO)}
        delays = PerPairDelay()
        delays.set(0, 1, 1.0)
        delays.set_after(0, 1, 30.0, 0.0)
        common = dict(
            rate_schedules=rates,
            delay_policy=delays,
        )
        config = SimConfig(duration=45.0, rho=RHO, seed=0)
        bcu = run_simulation(
            topo,
            BoundedCatchUpAlgorithm(period=0.5, kappa=1.0, mu=0.5).processes(topo),
            config,
            **common,
        )
        mx = run_simulation(
            topo, MaxBasedAlgorithm(period=0.5).processes(topo), config, **common
        )

        def spike(ex):
            pre = max(abs(ex.skew(1, 2, t)) for t in (28.0, 29.0, 29.9))
            post = max(abs(ex.skew(1, 2, t)) for t in (30.1, 30.3, 30.6, 31.0))
            return post - pre

        assert spike(bcu) < spike(mx)

    def test_local_skew_bounded_under_heavy_drift(self):
        alg = BoundedCatchUpAlgorithm(period=0.5, kappa=0.5, mu=0.5)
        ex = run_drifted(alg, duration=120.0)
        profile = ex.gradient_profile()
        # Local skew should stay near kappa + estimate error, far below
        # the free-drift accumulation (2*RHO/8 per unit distance * 120s).
        assert profile[1.0] < 3.0


@pytest.mark.faults
class TestRecovery:
    """Crash-recovery of the blocking gradient candidate: the clock
    stays monotone, fast mode resets, and local skew re-converges to
    the algorithm's own (kappa-shaped) fault-free equilibrium."""

    def test_recovered_clock_never_jumps_backward(self):
        ex = run_crash_recovery(BoundedCatchUpAlgorithm(period=0.5))
        assert_monotone_logical(ex, 2)
        ex.check_validity()

    def test_reconverges_to_fault_free_equilibrium(self):
        alg = BoundedCatchUpAlgorithm(period=0.5)
        faulted = run_crash_recovery(alg)
        # The equilibrium is kappa-shaped (not near zero); compare to
        # the same scenario run fault-free rather than to a constant.
        from repro.sweep.families import spread_rates

        topo = line(5)
        baseline = run_simulation(
            topo,
            BoundedCatchUpAlgorithm(period=0.5).processes(topo),
            SimConfig(duration=40.0, rho=0.2, seed=0),
            rate_schedules=spread_rates(topo, rho=0.2),
        )
        assert faulted.max_skew(40.0) <= baseline.max_skew(40.0) + 0.5

    def test_recovery_resets_fast_mode(self):
        ex = run_crash_recovery(BoundedCatchUpAlgorithm(period=0.5))
        # The recovery itself records a rate event back to 1.0 if the
        # node was in fast mode; either way, the node must still be
        # able to re-engage fast mode afterwards to catch up.
        post_rates = [
            e for e in ex.trace.of_kind("rate")
            if e.node == 2 and e.real_time >= 16.0
        ]
        assert any(e.detail == pytest.approx(2.0) for e in post_rates)

    def test_still_never_jumps(self):
        ex = run_crash_recovery(BoundedCatchUpAlgorithm(period=0.5))
        assert all(ex.logical[n].total_jump() == 0.0 for n in ex.topology.nodes)
