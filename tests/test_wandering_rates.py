"""Tests for time-varying (random-walk) rate schedules."""

import pytest

from repro.algorithms import BoundedCatchUpAlgorithm, MaxBasedAlgorithm
from repro.errors import ScheduleError
from repro.experiments.common import wandering_rates
from repro.sim.rates import random_walk_schedule
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.3


class TestRandomWalkSchedule:
    def test_stays_in_band(self):
        s = random_walk_schedule(rho=RHO, horizon=100.0, interval=2.0, seed=4)
        assert s.within_bounds(1.0 - RHO, 1.0 + RHO)

    def test_actually_varies(self):
        s = random_walk_schedule(rho=RHO, horizon=100.0, interval=2.0, seed=4)
        rates = {seg.rate for seg in s.segments()}
        assert len(rates) > 3

    def test_deterministic_per_seed(self):
        a = random_walk_schedule(rho=RHO, horizon=50.0, interval=2.0, seed=9)
        b = random_walk_schedule(rho=RHO, horizon=50.0, interval=2.0, seed=9)
        assert a.equivalent_to(b)

    def test_bad_params_rejected(self):
        with pytest.raises(ScheduleError):
            random_walk_schedule(rho=1.5, horizon=10.0, interval=1.0, seed=0)
        with pytest.raises(ScheduleError):
            random_walk_schedule(rho=0.3, horizon=10.0, interval=0.0, seed=0)

    def test_integration_still_exact(self):
        s = random_walk_schedule(rho=RHO, horizon=40.0, interval=1.0, seed=2)
        for t in (0.0, 7.3, 22.2, 39.9, 55.0):
            assert s.invert(s.value_at(t)) == pytest.approx(t, abs=1e-9)


class TestWanderingExecution:
    def test_algorithms_survive_time_varying_drift(self):
        topo = line(8)
        rates = wandering_rates(topo, rho=RHO, horizon=60.0, seed=3)
        for alg in (
            MaxBasedAlgorithm(period=0.5),
            BoundedCatchUpAlgorithm(period=0.5, kappa=1.0, mu=1.0),
        ):
            ex = run_simulation(
                topo,
                alg.processes(topo),
                SimConfig(duration=60.0, rho=RHO, seed=3),
                rate_schedules=rates,
            )
            ex.check_validity()
            ex.check_drift_bounds()
            # Synchronization holds: far below free-drift accumulation.
            assert ex.max_skew(60.0) < 2 * RHO * 60.0 / 2

    def test_per_node_schedules_differ(self):
        topo = line(5)
        rates = wandering_rates(topo, rho=RHO, horizon=40.0, seed=3)
        assert not rates[0].equivalent_to(rates[1])
