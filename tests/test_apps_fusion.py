"""Tests for the data fusion overlay (apps.fusion)."""

import pytest

from repro.algorithms import NullAlgorithm
from repro.apps.fusion import evaluate_fusion, fusion_groups
from repro.errors import ExperimentError
from repro.experiments.common import drifted_rates
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import balanced_tree, line


def tree_execution(rho=0.0, duration=20.0, seed=0):
    topo = balanced_tree(3, 2)
    rates = drifted_rates(topo, rho=rho, seed=seed) if rho else None
    return run_simulation(
        topo,
        NullAlgorithm().processes(topo),
        SimConfig(duration=duration, rho=max(rho, 0.0), seed=seed),
        rate_schedules=rates,
    )


class TestGroups:
    def test_tree_groups(self):
        topo = balanced_tree(3, 2)
        groups = fusion_groups(topo, root=0)
        # root + 3 internal nodes each with 3 children
        assert len(groups) == 4
        root_group = [g for g in groups if g.parent == 0][0]
        assert len(root_group.children) == 3

    def test_line_has_no_groups(self):
        with pytest.raises(ExperimentError):
            evaluate_fusion(
                run_simulation(
                    line(4),
                    NullAlgorithm().processes(line(4)),
                    SimConfig(duration=5.0, seed=0),
                ),
                tolerance=1.0,
            )

    def test_bad_root(self):
        topo = balanced_tree(2, 2)
        with pytest.raises(ExperimentError):
            fusion_groups(topo, root=99)


class TestEvaluation:
    def test_perfect_clocks_fuse_everything(self):
        ex = tree_execution(rho=0.0)
        report = evaluate_fusion(ex, tolerance=0.1, n_events=20)
        assert report.misfusion_rate == 0.0
        assert report.worst_spread == pytest.approx(0.0, abs=1e-9)

    def test_drifted_clocks_misfuse_with_tight_tolerance(self):
        ex = tree_execution(rho=0.4, duration=40.0)
        tight = evaluate_fusion(ex, tolerance=0.05, n_events=20, warmup=20.0)
        loose = evaluate_fusion(ex, tolerance=1e6, n_events=20, warmup=20.0)
        assert tight.misfusion_rate > 0.0
        assert loose.misfusion_rate == 0.0

    def test_spread_grows_with_time_under_drift(self):
        ex = tree_execution(rho=0.4, duration=40.0)
        early = evaluate_fusion(ex, tolerance=1.0, event_times=[1.0])
        late = evaluate_fusion(ex, tolerance=1.0, event_times=[39.0])
        assert late.worst_spread > early.worst_spread

    def test_rejects_bad_tolerance(self):
        ex = tree_execution()
        with pytest.raises(ExperimentError):
            evaluate_fusion(ex, tolerance=0.0)

    def test_report_accounting(self):
        ex = tree_execution(rho=0.2, duration=30.0)
        report = evaluate_fusion(ex, tolerance=0.5, n_events=10)
        assert report.events == 10
        assert report.groups == 4
        assert 0 <= report.fused_correctly <= 40
        assert report.mean_spread <= report.worst_spread + 1e-12
