"""Tests for the executable indistinguishability checker."""

import pytest

from repro.algorithms import MaxBasedAlgorithm
from repro.errors import IndistinguishabilityError
from repro.gcs.indistinguishability import (
    assert_indistinguishable_prefix,
    assert_same_local_view,
    local_view,
)
from repro.gcs.schedule import AdversarySchedule
from repro.sim.messages import FixedFractionDelay
from repro.topology.generators import line

RHO = 0.5


def quiet_run(duration=12.0, seed=0, delay=None):
    topo = line(5)
    schedule = AdversarySchedule.quiet(topo.nodes, duration)
    if delay is not None:
        schedule = schedule.with_oracle(delay)
    return schedule.run(topo, MaxBasedAlgorithm(), rho=RHO, seed=seed)


class TestLocalView:
    def test_drops_start_events(self):
        ex = quiet_run()
        view = local_view(ex, 0)
        assert all(entry[1] != "start" for entry in view)

    def test_horizon_truncates(self):
        ex = quiet_run()
        full = local_view(ex, 0)
        half = local_view(ex, 0, hardware_horizon=6.0)
        assert len(half) < len(full)
        assert all(entry[0] <= 6.0 for entry in half)

    def test_detail_floats_rounded(self):
        ex = quiet_run()
        view = local_view(ex, 0, digits=2)
        for _, _, detail in view:
            if isinstance(detail, tuple):
                for x in detail:
                    if isinstance(x, float):
                        assert round(x, 2) == x


class TestSameView:
    def test_identical_runs_indistinguishable(self):
        ex1 = quiet_run()
        ex2 = quiet_run()
        assert_indistinguishable_prefix(ex1, ex2)

    def test_shorter_run_is_prefix(self):
        long = quiet_run(duration=12.0)
        short = quiet_run(duration=8.0)
        assert_indistinguishable_prefix(long, short)

    def test_different_delays_distinguishable(self):
        ex1 = quiet_run()
        ex2 = quiet_run(delay=FixedFractionDelay(0.25))
        with pytest.raises(IndistinguishabilityError):
            assert_indistinguishable_prefix(ex1, ex2)

    def test_single_node_check(self):
        ex1 = quiet_run()
        ex2 = quiet_run()
        assert_same_local_view(ex1, ex2, 3, hardware_horizon=10.0)

    def test_warped_rerun_indistinguishable(self, add_skew_pair):
        alpha, beta, plan = add_skew_pair
        assert_indistinguishable_prefix(alpha, beta)

    def test_node_subset(self):
        ex1 = quiet_run()
        ex2 = quiet_run()
        assert_indistinguishable_prefix(ex1, ex2, nodes=[0, 4])
