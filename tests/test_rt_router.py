"""Router transport, live churn, and the udp failure-handling contract.

Three concerns share this module:

* **wire-format properties** (hypothesis, no wall clock): the
  length-prefixed JSON framing round-trips arbitrary records, and every
  truncated / corrupted / non-UTF-8 datagram decodes to ``None`` —
  never an exception, never a wrong record;
* **failure handling** (``rt``-marked): a node or worker process that
  dies mid-run must surface promptly as a descriptive :class:`RtError`
  naming the dead process — not a hang, not a raw ``EOFError`` — and
  wire-level drop counts must land on the built ``Execution``;
* **router semantics** (``rt``-marked): multiplexed runs complete with
  bounded skew, agree with the deterministic virtual backend within the
  wall-clock budget the other live backends are held to, scale past a
  hundred nodes, and execute fault plans and rewirings for real.
"""

from __future__ import annotations

import os
import socket
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RtError
from repro.experiments.e14_live import skew_bound
from repro.rt import LiveRunConfig, run_live
from repro.rt.udp import decode_frame, encode_frame

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

frame_records = st.dictionaries(
    keys=st.text(min_size=1, max_size=10),
    values=st.one_of(
        json_scalars, st.lists(json_scalars, max_size=4)
    ),
    max_size=6,
)


class TestWireFormatProperties:
    @given(record=frame_records)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, record):
        assert decode_frame(encode_frame(record)) == record

    @given(record=frame_records, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_strict_prefix_rejected(self, record, data):
        frame = encode_frame(record)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        assert decode_frame(frame[:cut]) is None

    @given(record=frame_records, extra=st.binary(min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_trailing_garbage_rejected(self, record, extra):
        # The length prefix pins the body size exactly.
        assert decode_frame(encode_frame(record) + extra) is None

    @given(body=st.binary(max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bodies_never_raise(self, body):
        import struct

        framed = struct.pack(">I", len(body)) + body
        result = decode_frame(framed)
        # Correctly framed bytes either parse as JSON or are dropped;
        # non-UTF-8 and non-JSON bodies must come back None, not raise.
        assert result is None or isinstance(
            result, (dict, list, str, int, float, bool)
        )

    def test_non_utf8_body_rejected(self):
        import struct

        body = b"\xff\xfe\x00\x01"
        assert decode_frame(struct.pack(">I", len(body)) + body) is None


class TestConfigValidation:
    def test_faults_rejected_on_non_router_transports(self):
        for transport in ("virtual", "asyncio", "udp"):
            with pytest.raises(RtError, match="router"):
                LiveRunConfig(transport=transport, faults="crash:0.25")

    def test_mobility_rejected_on_non_router_transports(self):
        for transport in ("virtual", "asyncio", "udp"):
            with pytest.raises(RtError, match="router"):
                LiveRunConfig(transport=transport, mobility="blink:0.2,2")

    def test_negative_workers_rejected(self):
        with pytest.raises(RtError, match="workers"):
            LiveRunConfig(transport="router", workers=-1)

    def test_router_accepts_churn(self):
        config = LiveRunConfig(
            transport="router", faults="crash-recover:0.25,5",
            mobility="blink:0.2,2",
        )
        assert config.faults == "crash-recover:0.25,5"


@pytest.mark.rt
class TestUdpFailureHandling:
    """A dead node process fails the run fast, descriptively, and cleanly."""

    CONFIG = LiveRunConfig(
        topology="line:3", algorithm="gradient", duration=4.0,
        rho=0.2, seed=0, transport="udp", time_scale=0.05,
    )

    def test_crashing_node_raises_prompt_descriptive_error(self, monkeypatch):
        import repro.rt.udp as udp

        real_main = udp._node_main

        def crashing_main(node, cfg, ports, sock, conn):
            if node == 1:
                os._exit(17)  # die before reporting anything
            real_main(node, cfg, ports, sock, conn)

        monkeypatch.setattr(udp, "_node_main", crashing_main)
        start = time.perf_counter()
        with pytest.raises(RtError, match=r"node process 1.*exit code 17"):
            run_live(self.CONFIG)
        # The old code hung out the whole report budget; the sentinel
        # watch must surface the death in about a round trip.
        assert time.perf_counter() - start < 3.0

    def test_closed_pipe_is_not_a_raw_eoferror(self, monkeypatch):
        import repro.rt.udp as udp

        def eof_main(node, cfg, ports, sock, conn):
            conn.close()  # clean exit, no report: EOF on the parent side
            os._exit(0)

        monkeypatch.setattr(udp, "_node_main", eof_main)
        start = time.perf_counter()
        with pytest.raises(RtError, match="node process"):
            run_live(self.CONFIG)
        assert time.perf_counter() - start < 3.0

    def test_frames_dropped_surfaces_on_execution(self, monkeypatch):
        import repro.rt.udp as udp

        real_main = udp._node_main

        def noisy_main(node, cfg, ports, sock, conn):
            if node == 0:
                # A malformed datagram into a peer's socket: must be
                # counted, not crash the receiver or vanish silently.
                junk = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                junk.sendto(b"\x00\x00\x00\x08not-json", ("127.0.0.1", ports[1]))
                junk.close()
            real_main(node, cfg, ports, sock, conn)

        monkeypatch.setattr(udp, "_node_main", noisy_main)
        execution = run_live(self.CONFIG)
        assert execution.live_stats is not None
        assert execution.live_stats["frames_dropped"] >= 1


@pytest.mark.rt
class TestRouterTransport:
    def test_router_run_completes_with_bounded_skew(self):
        config = LiveRunConfig(
            topology="line:8", algorithm="gradient", duration=5.0,
            rho=0.2, seed=1, transport="router", time_scale=0.05,
        )
        execution = run_live(config)
        assert execution.source == "live-router"
        assert sorted(execution.logical) == list(range(8))
        assert execution.max_skew(config.duration) <= skew_bound(
            execution.topology.diameter
        )
        assert len(execution.messages) > 0
        assert len(execution.trace.of_kind("start")) == 8
        assert execution.live_stats["events"] > 0
        assert execution.live_stats["frames_dropped"] == 0

    def test_router_matches_virtual_within_live_budget(self):
        # The same wall-clock contract asyncio/udp are held to: the
        # multiplexed run tracks the deterministic virtual run inside
        # the diameter budget (exact equality is impossible for a
        # wall-clock backend).
        base = LiveRunConfig(
            topology="line:6", algorithm="gradient", duration=6.0,
            rho=0.2, seed=2, transport="virtual", time_scale=0.05,
        )
        virtual = run_live(base)
        routed = run_live(
            LiveRunConfig(
                topology="line:6", algorithm="gradient", duration=6.0,
                rho=0.2, seed=2, transport="router", time_scale=0.05,
            )
        )
        bound = skew_bound(virtual.topology.diameter)
        assert virtual.max_skew(6.0) <= bound
        assert routed.max_skew(6.0) <= bound
        # Timer-driven sends are deterministic in count, so traffic
        # volume must agree exactly even though wall timing jitters.
        assert len(routed.messages) == len(virtual.messages)

    def test_router_execution_passes_model_checks(self):
        config = LiveRunConfig(
            topology="ring:6", algorithm="averaging", duration=5.0,
            rho=0.2, seed=3, transport="router", time_scale=0.05,
        )
        execution = run_live(config)
        execution.check_validity()
        execution.check_drift_bounds()
        execution.check_delay_bounds()

    def test_router_scales_past_a_hundred_nodes(self):
        config = LiveRunConfig(
            topology="line:128", algorithm="gradient", duration=3.0,
            rho=0.2, seed=0, transport="router", time_scale=0.05,
            record_trace=False,
        )
        start = time.perf_counter()
        execution = run_live(config)
        wall = time.perf_counter() - start
        assert sorted(execution.logical) == list(range(128))
        assert execution.max_skew(config.duration) <= skew_bound(
            execution.topology.diameter
        )
        assert execution.live_stats["events"] > 128
        # ~0.15s of scaled sim time plus startup; far under a minute.
        assert wall < 30.0

    def test_router_runs_crash_recover_faults_live(self):
        config = LiveRunConfig(
            topology="line:6", algorithm="gradient", duration=8.0,
            rho=0.2, seed=4, transport="router", time_scale=0.05,
            faults="crash-recover:0.34,2",
        )
        execution = run_live(config)
        stats = execution.fault_stats
        assert stats is not None
        assert stats["crashes"] >= 1
        assert stats["recoveries"] >= 1
        # The trace carries the same CRASH/RECOVER events the simulator
        # records, at matching counts.
        assert len(execution.trace.of_kind("crash")) == stats["crashes"]
        assert len(execution.trace.of_kind("recover")) == stats["recoveries"]

    def test_router_runs_rewirings_live(self):
        config = LiveRunConfig(
            topology="line:6", algorithm="gradient", duration=8.0,
            rho=0.2, seed=5, transport="router", time_scale=0.05,
            mobility="blink:0.3,2",
        )
        execution = run_live(config)
        assert execution.topology_timeline is not None
        assert execution.is_dynamic
        assert len(execution.topology_timeline) >= 2

    def test_dead_worker_raises_prompt_descriptive_error(self, monkeypatch):
        import repro.rt.router as router

        def dying_worker(worker, shard, cfg, router_port, sock, conn):
            os._exit(23)

        monkeypatch.setattr(router, "_worker_main", dying_worker)
        config = LiveRunConfig(
            topology="line:4", algorithm="gradient", duration=4.0,
            rho=0.2, seed=0, transport="router", time_scale=0.05,
        )
        start = time.perf_counter()
        with pytest.raises(RtError, match=r"router worker 0.*exit code 23"):
            run_live(config)
        assert time.perf_counter() - start < 3.0
