"""Tests for the Theorem 8.1 driver (gcs.lower_bound)."""

import pytest

from repro._constants import ROUND_SKEW_RATE
from repro.algorithms import AveragingAlgorithm, MaxBasedAlgorithm
from repro.errors import ConstructionError
from repro.gcs.lower_bound import LowerBoundAdversary


class TestConstructorValidation:
    def test_rejects_tiny_diameter(self):
        with pytest.raises(ConstructionError):
            LowerBoundAdversary(1)

    def test_rejects_bad_shrink(self):
        with pytest.raises(ConstructionError):
            LowerBoundAdversary(8, shrink=1)

    def test_rejects_tau_below_comm_radius(self):
        # rho = 0.5 -> tau = 2 < radius 3: oracle stacking unsound.
        with pytest.raises(ConstructionError):
            LowerBoundAdversary(8, rho=0.5, comm_radius=3.0)


class TestConstruction:
    def test_rounds_structure(self, lower_bound_result):
        res = lower_bound_result
        assert res.diameter == 8
        assert res.rounds_applied >= 2
        spans = [r.span for r in res.rounds]
        assert spans[0] == 8
        # Spans shrink by the factor each round, ending at 1.
        assert all(
            b == max(1, a // res.shrink) for a, b in zip(spans, spans[1:])
        )
        assert spans[-1] == 1

    def test_windows_nest(self, lower_bound_result):
        for r in lower_bound_result.rounds:
            assert r.i <= r.next_i <= r.next_j <= r.j
            assert r.next_j - r.next_i == r.next_span

    def test_skew_meets_theorem_guarantee(self, lower_bound_result):
        res = lower_bound_result
        k = res.rounds_applied
        assert res.final_adjacent_skew >= ROUND_SKEW_RATE * k - 1e-6

    def test_final_pair_is_adjacent(self, lower_bound_result):
        i, j = lower_bound_result.final_pair
        assert j - i == 1

    def test_each_add_skew_round_gains(self, lower_bound_result):
        # Add Skew guarantees span/12 gain at T'; by the end of the
        # extension some of it may be burned off, but the *pigeonholed*
        # sub-pair must retain a proportional share (Claim 8.5 shape).
        for r in lower_bound_result.rounds:
            assert abs(r.skew_after_round) >= abs(r.skew_before) - 1e-6
            assert abs(r.next_pair_skew) >= (
                abs(r.skew_after_round) * r.next_span / r.span - 1e-6
            )

    def test_final_execution_is_model_compliant(self, lower_bound_result):
        ex = lower_bound_result.final_execution
        ex.check_validity()
        ex.check_delay_bounds()
        ex.check_drift_bounds()
        # Bounded Increase preconditions hold throughout (Claim 8.3).
        assert ex.rates_within(1.0, 1.0 + 0.5 / 2)
        assert ex.delays_within(0.25, 0.75)

    def test_skew_grows_with_diameter(self):
        small = LowerBoundAdversary(4, rho=0.5, shrink=4, seed=0).run(
            MaxBasedAlgorithm()
        )
        large = LowerBoundAdversary(16, rho=0.5, shrink=4, seed=0).run(
            MaxBasedAlgorithm()
        )
        assert large.peak_adjacent_skew >= small.peak_adjacent_skew - 1e-9
        assert large.rounds_applied > small.rounds_applied

    def test_works_against_other_algorithms(self):
        res = LowerBoundAdversary(8, rho=0.5, shrink=4, seed=0).run(
            AveragingAlgorithm()
        )
        assert res.final_adjacent_skew > 0.1
        assert res.algorithm == "averaging"

    def test_verified_mode_checks_every_round(self):
        """verify=True re-runs each beta and asserts Claims 6.2-6.5; a
        passing run is a machine-checked instance of the theorem's
        induction."""
        res = LowerBoundAdversary(8, rho=0.5, shrink=4, seed=0).run(
            MaxBasedAlgorithm(), verify=True
        )
        assert res.rounds_applied >= 2

    def test_verified_mode_other_algorithm(self):
        res = LowerBoundAdversary(8, rho=0.5, shrink=2, seed=0).run(
            AveragingAlgorithm(), verify=True
        )
        assert res.final_adjacent_skew > 0.1

    def test_construction_is_deterministic(self):
        a = LowerBoundAdversary(8, rho=0.5, shrink=4, seed=0).run(
            MaxBasedAlgorithm()
        )
        b = LowerBoundAdversary(8, rho=0.5, shrink=4, seed=0).run(
            MaxBasedAlgorithm()
        )
        assert a.final_adjacent_skew == b.final_adjacent_skew
        assert [(r.i, r.j, r.skew_after_round) for r in a.rounds] == [
            (r.i, r.j, r.skew_after_round) for r in b.rounds
        ]
