"""Tests for the experiment helpers (experiments.common)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.common import (
    ExperimentResult,
    drifted_rates,
    pick,
    spread_rates,
)
from repro.analysis.reporting import Table
from repro.topology.generators import line


class TestRates:
    def test_drifted_rates_within_band(self):
        topo = line(10)
        rates = drifted_rates(topo, rho=0.3, seed=1)
        assert set(rates) == set(topo.nodes)
        for r in rates.values():
            assert 0.7 - 1e-9 <= r.rate_at(0.0) <= 1.3 + 1e-9

    def test_drifted_rates_seeded(self):
        topo = line(5)
        a = drifted_rates(topo, rho=0.3, seed=7)
        b = drifted_rates(topo, rho=0.3, seed=7)
        c = drifted_rates(topo, rho=0.3, seed=8)
        assert [a[n].rate_at(0.0) for n in topo.nodes] == [
            b[n].rate_at(0.0) for n in topo.nodes
        ]
        assert [a[n].rate_at(0.0) for n in topo.nodes] != [
            c[n].rate_at(0.0) for n in topo.nodes
        ]

    def test_spread_rates_linear(self):
        topo = line(5)
        rates = spread_rates(topo, rho=0.2)
        values = [rates[n].rate_at(0.0) for n in topo.nodes]
        assert values[0] == pytest.approx(0.8)
        assert values[-1] == pytest.approx(1.2)
        assert values == sorted(values)


class TestPick:
    def test_quick_and_full(self):
        assert pick("quick", 1, 2) == 1
        assert pick("full", 1, 2) == 2

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            pick("enormous", 1, 2)


class TestExperimentResult:
    def test_render_includes_everything(self):
        t = Table(title="T", headers=["a"])
        t.add_row(1)
        result = ExperimentResult(
            experiment_id="EXX",
            title="demo",
            paper_artifact="none",
            tables=[t],
            notes=["a note"],
        )
        out = result.render()
        assert "EXX" in out
        assert "paper artifact: none" in out
        assert "note: a note" in out
        assert "T" in out
