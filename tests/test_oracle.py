"""Tests for the WarpedDelayOracle (gcs.oracle) against hand-computed values."""

import random

import pytest

from repro._constants import gamma as gamma_of, tau as tau_of
from repro.errors import ScheduleError
from repro.gcs.add_skew import AddSkewPlan
from repro.gcs.oracle import WarpedDelayOracle
from repro.sim.messages import HalfDistanceDelay

RNG = random.Random(0)
RHO = 0.5


@pytest.fixture()
def plan():
    # Line of 9 nodes, pair (0, 8), alpha duration tau * 8 = 16.
    return AddSkewPlan(
        i=0, j=8, n=9, alpha_duration=16.0, rho=RHO, lead="lo"
    )


@pytest.fixture()
def oracle(plan):
    return WarpedDelayOracle(
        base=HalfDistanceDelay(),
        warps=plan.warps(),
        window_start=plan.window_start,
        window_end=plan.window_end,
        beta_end=plan.beta_end,
    )


class TestConstruction:
    def test_rejects_bad_window(self, plan):
        with pytest.raises(ScheduleError):
            WarpedDelayOracle(
                base=HalfDistanceDelay(),
                warps=plan.warps(),
                window_start=5.0,
                window_end=5.0,
                beta_end=5.0,
            )

    def test_rejects_beta_end_outside_window(self, plan):
        with pytest.raises(ScheduleError):
            WarpedDelayOracle(
                base=HalfDistanceDelay(),
                warps=plan.warps(),
                window_start=0.0,
                window_end=16.0,
                beta_end=17.0,
            )


class TestRegions:
    def test_extension_sends_get_half(self, plan, oracle):
        d = oracle.delay(3, 4, plan.beta_end + 1.0, 1.0, 0, RNG)
        assert d == pytest.approx(0.5)

    def test_window_delay_matches_warp_formula(self, plan, oracle):
        # Node 0 is fully sped up (knee at S=0); node 8 never (identity
        # until T').  A message 0 -> 1 sent at beta time s:
        sender, receiver = 0, 1
        s_beta = 2.0
        psi_s = plan.warp(sender)
        psi_r = plan.warp(receiver)
        s_alpha = psi_s.inverse(s_beta)
        expected = psi_r(s_alpha + 0.5) - s_beta
        got = oracle.delay(sender, receiver, s_beta, 1.0, 0, RNG)
        assert got == pytest.approx(expected)

    def test_window_delays_within_lemma_band(self, plan, oracle):
        # Claim 6.4: all warped delays lie in [d/4, 3d/4].
        for sender in range(8):
            receiver = sender + 1
            for s_beta in (0.5, 3.0, 7.0, 11.0, plan.beta_end - 0.6):
                d = oracle.delay(sender, receiver, s_beta, 1.0, 0, RNG)
                assert 0.25 - 1e-9 <= d <= 0.75 + 1e-9
                d = oracle.delay(receiver, sender, s_beta, 1.0, 1, RNG)
                assert 0.25 - 1e-9 <= d <= 0.75 + 1e-9

    def test_monotone_delivery(self, plan, oracle):
        # Receive times must be nondecreasing in send times (no causality
        # violation introduced by the warp).
        for sender, receiver in ((0, 1), (4, 5), (7, 6)):
            times = [0.5, 2.0, 5.0, 9.0, 12.0]
            arrivals = [
                s + oracle.delay(sender, receiver, s, 1.0, 0, RNG)
                for s in times
            ]
            assert arrivals == sorted(arrivals)


class TestPrefixDelegation:
    def test_prefix_receive_uses_base(self, plan):
        # Shift the window to start at S = 8 so there is a real prefix.
        plan2 = AddSkewPlan(
            i=0, j=4, n=9, alpha_duration=16.0, rho=RHO, lead="lo"
        )
        assert plan2.window_start == pytest.approx(8.0)

        class Marker:
            def delay(self, sender, receiver, send_time, distance, seq, rng):
                return 0.123

        oracle = WarpedDelayOracle(
            base=Marker(),
            warps=plan2.warps(),
            window_start=plan2.window_start,
            window_end=plan2.window_end,
            beta_end=plan2.beta_end,
        )
        # Sent early, received well before S: delegated to base.
        assert oracle.delay(2, 3, 1.0, 1.0, 0, RNG) == 0.123
        # Received after S: warped, not delegated.
        assert oracle.delay(2, 3, 9.0, 1.0, 0, RNG) != 0.123


class TestStragglers:
    def test_sent_too_late_for_alpha_gets_half(self, plan, oracle):
        # A message whose alpha receive would exceed T gets d/2 and must
        # arrive after beta_end.
        sender, receiver = 8, 7  # slow side, identity warp until T'
        s_beta = plan.window_end - 0.2  # alpha receive at T - 0.2 + ... > T
        s_alpha = plan.warp(sender).inverse(s_beta)
        assert s_alpha + 0.5 > plan.window_end
        d = oracle.delay(sender, receiver, s_beta, 1.0, 0, RNG)
        assert d == pytest.approx(0.5)

    def test_retimed_straggler_lands_after_beta_end(self, plan, oracle):
        # Fast sender near the end of the window to a slow receiver: the
        # retimed receive exceeds beta_end but never lands early.
        sender, receiver = 0, 8
        distance = 8.0
        for s_beta in (9.0, 10.0, 11.0):
            d = oracle.delay(sender, receiver, s_beta, distance, 0, RNG)
            s_alpha = plan.warp(sender).inverse(s_beta)
            if s_alpha + distance / 2 > plan.window_start:
                arrival = s_beta + d
                psi_r = plan.warp(receiver)
                if psi_r(s_alpha + distance / 2) > plan.beta_end:
                    assert arrival > plan.beta_end - 1e-9
