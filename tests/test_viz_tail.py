"""The streaming tail: rolling panels rendered *during* a live run.

The unit half feeds synthetic observations through the three entry
points (``event`` / ``frame`` / ``stats``) and checks the rolling state
and render cadence.  The ``rt``-marked half attaches a tail to real
router and udp runs and asserts the acceptance property: at least one
rolling-panel frame is rendered mid-run, before the Execution exists.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.rt import LiveRunConfig, run_live
from repro.sim.trace import TraceEvent
from repro.viz.tail import StreamingTail, _clock_value


def event(node, t, logical):
    return TraceEvent(real_time=t, node=node, hardware=t, logical=logical,
                      kind="tick")


class TestClockExtraction:
    def test_algorithm_payload_shapes_yield_values(self):
        assert _clock_value(("clock", 3.5)) == 3.5
        assert _clock_value(["clock", 2]) == 2.0
        assert _clock_value(("state", 0)) == 0.0

    def test_non_clock_payloads_are_ignored(self):
        assert _clock_value(("flag", True)) is None  # bool is not a reading
        assert _clock_value("clock") is None
        assert _clock_value(("a", "b")) is None
        assert _clock_value(("one", 2, 3)) is None
        assert _clock_value(None) is None


class TestStreamingTailUnit:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            StreamingTail(interval=0.0)

    def test_events_drive_spread_series_and_renders(self):
        frames = []
        tail = StreamingTail(interval=1.0,
                             sink=lambda svg, i: frames.append((i, svg)))
        for t in range(6):
            tail.event(event(0, float(t), 10.0 + t))
            tail.event(event(1, float(t), 10.5 + t))
        assert tail.frames_rendered >= 5
        assert [i for i, _ in frames] == list(range(tail.frames_rendered))
        root = ET.fromstring(frames[-1][1])
        assert root.tag.endswith("svg")
        assert "live tail" in frames[-1][1]

    def test_frames_and_stats_feed_panels(self):
        frames = []
        tail = StreamingTail(interval=0.5, sink=lambda s, i: frames.append(s))
        for k in range(5):
            tail.frame({"src": k % 3, "dst": (k + 1) % 3,
                        "payload": ("clock", 5.0 + k), "send": 0.4 * k},
                       0.4 * k)
            tail.stats(0.4 * k, frames_routed=k, frames_dropped=0)
        assert tail.frames_rendered >= 2
        assert tail.counters["frames_routed"] == 4
        assert "frames_routed" in frames[-1]

    def test_time_is_monotone_under_reordered_observations(self):
        tail = StreamingTail(interval=10.0)
        tail.event(event(0, 5.0, 1.0))
        tail.event(event(1, 3.0, 1.2))  # out-of-order arrival
        assert tail._now == 5.0

    def test_close_renders_final_state(self):
        frames = []
        tail = StreamingTail(interval=100.0,
                             sink=lambda s, i: frames.append(s))
        tail.event(event(0, 0.0, 0.0))
        tail.event(event(0, 1.0, 1.0))
        rendered = tail.frames_rendered
        tail.close()
        assert tail.frames_rendered == rendered + 1

    def test_out_dir_receives_numbered_files(self, tmp_path):
        tail = StreamingTail(interval=0.5, out_dir=tmp_path / "tail")
        for t in range(4):
            tail.event(event(0, float(t), float(t)))
            tail.event(event(1, float(t), float(t) + 0.5))
        tail.close()
        files = sorted((tmp_path / "tail").glob("tail_*.svg"))
        assert len(files) == tail.frames_rendered
        ET.parse(files[0])


@pytest.mark.rt
class TestStreamingTailLive:
    def test_router_tail_renders_mid_run(self):
        """The acceptance property: frames stream before the run ends."""
        seen = []
        tail = StreamingTail(
            interval=0.25,
            sink=lambda svg, i: seen.append((tail._now, svg)),
        )
        config = LiveRunConfig(
            topology="ring:8", algorithm="gradient", duration=4.0,
            transport="router", time_scale=0.05, seed=1,
        )
        execution = run_live(config, tail=tail)
        assert len(seen) >= 1
        first_at, first_svg = seen[0]
        assert first_at < config.duration  # rendered before completion
        ET.fromstring(first_svg)
        assert "rolling skew spread" in first_svg
        # The tail watched the same wire the Execution summarizes.
        assert tail.counters.get("frames_routed", 0) > 0
        assert execution.live_stats["frames_routed"] >= tail.counters[
            "frames_routed"
        ]

    def test_udp_tail_sees_mirrored_frames(self):
        seen = []
        tail = StreamingTail(interval=0.25,
                             sink=lambda svg, i: seen.append(svg))
        config = LiveRunConfig(
            topology="line:4", algorithm="gradient", duration=3.0,
            transport="udp", time_scale=0.05, seed=0,
        )
        execution = run_live(config, tail=tail)
        assert len(seen) >= 1
        assert tail._frames_seen > 0  # mirrored frames actually arrived
        assert isinstance(execution.live_stats, dict)
        ET.fromstring(seen[-1])

    def test_virtual_tail_charts_exact_logical_values(self):
        seen = []
        tail = StreamingTail(interval=0.5,
                             sink=lambda svg, i: seen.append(svg))
        execution = run_live(
            LiveRunConfig(topology="line:5", duration=5.0,
                          transport="virtual"),
            tail=tail,
        )
        assert len(seen) >= 2
        assert len(tail.latest) == 5  # every node observed via the tap
        assert execution.live_stats["events"] == tail._events_seen
