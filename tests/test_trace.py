"""Tests for traces (sim.trace)."""

from repro.sim.trace import (
    JUMP,
    RECEIVE,
    SEND,
    START,
    TIMER,
    ExecutionTrace,
    TraceEvent,
)


def ev(t, node, kind, hw=None, detail=None):
    return TraceEvent(
        real_time=t,
        node=node,
        hardware=hw if hw is not None else t,
        logical=t,
        kind=kind,
        detail=detail,
    )


def sample_trace():
    tr = ExecutionTrace()
    tr.append(ev(0.0, 0, START))
    tr.append(ev(0.0, 1, START))
    tr.append(ev(0.0, 0, SEND, detail=(1, "hello")))
    tr.append(ev(1.0, 1, RECEIVE, detail=(0, "hello")))
    tr.append(ev(1.0, 1, JUMP, detail=0.5))
    tr.append(ev(2.0, 0, TIMER, detail="tick"))
    return tr


class TestProjections:
    def test_len_and_iter(self):
        tr = sample_trace()
        assert len(tr) == 6
        assert len(list(tr)) == 6

    def test_for_node(self):
        tr = sample_trace()
        node1 = tr.for_node(1)
        assert [e.kind for e in node1] == [START, RECEIVE, JUMP]

    def test_of_kind(self):
        tr = sample_trace()
        assert len(tr.of_kind(SEND)) == 1
        assert len(tr.of_kind(SEND, RECEIVE)) == 2

    def test_until(self):
        tr = sample_trace()
        prefix = tr.until(1.0)
        assert len(prefix) == 5
        assert all(e.real_time <= 1.0 for e in prefix)

    def test_local_observations_drop_real_time(self):
        tr = sample_trace()
        obs = tr.local_observations(1)
        # (kind, hardware, detail) triples
        assert obs[0] == (START, 0.0, None)
        assert obs[1] == (RECEIVE, 1.0, (0, "hello"))

    def test_message_records(self):
        tr = sample_trace()
        assert len(tr.message_records()) == 1
