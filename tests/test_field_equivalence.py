"""Old-vs-new equivalence: the vectorized analysis core vs ``value_at``.

The tentpole contract of the SkewField rewrite: every batched answer
matches the scalar per-(node, time) path within 1e-9 — on random rate
schedules, random topologies, fault plans, and the live runtime's
virtual executions.  Clock-level batch evaluation is additionally
required to be *bitwise* identical (same float operations, same order).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.field import SkewField
from repro.analysis.skew import summarize
from repro.sim.clock import HardwareClock, LogicalClock
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.sweep.families import (
    algorithm_from_spec,
    fault_plan_from_spec,
    rates_from_spec,
    topology_from_spec,
)

RHO = 0.5

rates_in_band = st.floats(min_value=0.5, max_value=1.5)


@st.composite
def rate_schedules(draw, max_segments=6):
    n = draw(st.integers(min_value=1, max_value=max_segments))
    widths = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    starts = [0.0]
    for w in widths:
        starts.append(starts[-1] + w)
    rates = draw(st.lists(rates_in_band, min_size=n, max_size=n))
    return PiecewiseConstantRate(tuple(starts), tuple(rates))


sample_grids = st.lists(
    st.floats(min_value=0.0, max_value=60.0), min_size=1, max_size=24
)


class TestClockBatchEquivalence:
    @given(rate_schedules(), sample_grids)
    @settings(max_examples=150)
    def test_schedule_values_at_bitwise(self, schedule, times):
        batched = schedule.values_at(times)
        for t, v in zip(times, batched):
            assert v == schedule.value_at(t)

    @given(rate_schedules(), sample_grids)
    @settings(max_examples=100)
    def test_hardware_values_at_bitwise(self, schedule, times):
        hw = HardwareClock(schedule, RHO)
        batched = hw.values_at(times)
        for t, v in zip(times, batched):
            assert v == hw.value_at(t)

    @given(
        rate_schedules(),
        st.lists(
            st.tuples(
                st.floats(min_value=0.05, max_value=5.0),
                st.floats(min_value=0.0, max_value=3.0),
            ),
            max_size=10,
        ),
        sample_grids,
    )
    @settings(max_examples=150)
    def test_logical_values_at_bitwise(self, schedule, jumps, times):
        hw = HardwareClock(schedule, RHO)
        lc = LogicalClock(hw)
        t = 0.0
        for gap, amount in jumps:
            t += gap
            lc.jump_by(t, amount)
        batched = lc.values_at(times)
        for when, v in zip(times, batched):
            assert v == lc.value_at(when)


def random_execution(topology_spec, rates_spec, faults_spec, seed, duration=12.0):
    topology = topology_from_spec(topology_spec)
    algorithm = algorithm_from_spec("max-based")
    return run_simulation(
        topology,
        algorithm.processes(topology),
        SimConfig(duration=duration, rho=0.3, seed=seed),
        rate_schedules=rates_from_spec(
            rates_spec, topology, rho=0.3, seed=seed, horizon=duration
        ),
        fault_plan=fault_plan_from_spec(
            faults_spec, topology, seed=seed, horizon=duration
        ),
    )


execution_cases = st.tuples(
    st.sampled_from(["line:5", "ring:6", "grid:2,3", "star:4"]),
    st.sampled_from(["drifted", "wandering", "constant"]),
    st.sampled_from(["none", "loss:0.2", "crash-recover:0.3,4"]),
    st.integers(min_value=0, max_value=10_000),
)


class TestFieldEquivalence:
    """SkewField answers vs the scalar Execution queries, within 1e-9."""

    @given(execution_cases)
    @settings(max_examples=12, deadline=None)
    def test_series_and_profile_match_scalar(self, case):
        topology_spec, rates_spec, faults_spec, seed = case
        execution = random_execution(topology_spec, rates_spec, faults_spec, seed)
        times = execution.sample_times(0.75)
        field = SkewField(execution, times)

        scalar_max = [execution.max_skew(t) for t in times]
        assert field.max_skew_series() == pytest.approx(scalar_max, abs=1e-9)

        scalar_adj = [execution.max_adjacent_skew(t) for t in times]
        assert field.max_adjacent_series() == pytest.approx(scalar_adj, abs=1e-9)

        # Gradient profile vs a scalar re-derivation from snapshots.
        snapshots = [execution.logical_snapshot(t) for t in times]
        scalar_profile: dict[float, float] = {}
        for i, j in execution.topology.pairs():
            d = round(execution.topology.distance(i, j), 9)
            worst = max(abs(s[i] - s[j]) for s in snapshots)
            scalar_profile[d] = max(scalar_profile.get(d, 0.0), worst)
        profile = field.gradient_profile()
        assert profile.keys() == scalar_profile.keys()
        for d in profile:
            assert profile[d] == pytest.approx(scalar_profile[d], abs=1e-9)

    @given(execution_cases)
    @settings(max_examples=8, deadline=None)
    def test_summary_and_convergence_match_scalar(self, case):
        topology_spec, rates_spec, faults_spec, seed = case
        execution = random_execution(topology_spec, rates_spec, faults_spec, seed)
        times = execution.sample_times(1.0)
        field = SkewField(execution, times)
        summary = field.summary()

        n = execution.topology.n
        peak = peak_adj = abs_sum = 0.0
        for t in times:
            m = execution.skew_matrix(t)
            peak = max(peak, float(np.abs(m).max()))
            peak_adj = max(peak_adj, execution.max_adjacent_skew(t))
            abs_sum += float(np.abs(m).sum()) / max(n * n - n, 1)
        assert summary.max_skew == pytest.approx(peak, abs=1e-9)
        assert summary.max_adjacent_skew == pytest.approx(peak_adj, abs=1e-9)
        assert summary.final_skew == pytest.approx(
            execution.max_skew(execution.duration), abs=1e-9
        )
        assert summary.final_adjacent_skew == pytest.approx(
            execution.max_adjacent_skew(execution.duration), abs=1e-9
        )
        assert summary.mean_abs_skew == pytest.approx(
            abs_sum / len(times), abs=1e-9
        )

        # settling_time against the scalar sweep, at a mid-range threshold.
        threshold = 0.5 * max(peak, 1e-9)
        settled = None
        for t in times:
            if execution.max_skew(t) > threshold + 1e-9:
                settled = None
            elif settled is None:
                settled = t
        assert field.settling_time(threshold) == settled

    @given(execution_cases)
    @settings(max_examples=8, deadline=None)
    def test_max_logical_increase_matches_scalar_grid(self, case):
        topology_spec, rates_spec, faults_spec, seed = case
        execution = random_execution(topology_spec, rates_spec, faults_spec, seed)
        starts = execution.increase_window_starts(window=1.0, step=0.5)
        worst = 0.0
        for node in execution.topology.nodes:
            for t in starts:
                gain = execution.logical_value(node, t + 1.0) - (
                    execution.logical_value(node, t)
                )
                worst = max(worst, gain)
        assert execution.max_logical_increase(
            window=1.0, step=0.5
        ) == pytest.approx(worst, abs=1e-9)


@pytest.mark.rt
class TestLiveFieldEquivalence:
    """The same equivalence on PR 3's live runtime (virtual transport)."""

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=5, deadline=None)
    def test_virtual_execution_field_matches_scalar(self, seed):
        from repro.rt import LiveRunConfig, run_live

        execution = run_live(
            LiveRunConfig(
                topology="line:5",
                algorithm="gradient",
                transport="virtual",
                duration=10.0,
                rho=0.2,
                seed=seed,
            )
        )
        times = execution.sample_times(1.0)
        field = SkewField(execution, times)
        assert field.max_skew_series() == pytest.approx(
            [execution.max_skew(t) for t in times], abs=1e-9
        )
        assert field.max_adjacent_series() == pytest.approx(
            [execution.max_adjacent_skew(t) for t in times], abs=1e-9
        )
        assert summarize(execution).max_skew == pytest.approx(
            field.summary().max_skew, abs=1e-9
        )
