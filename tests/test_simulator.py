"""Tests for the discrete-event simulator (sim.simulator)."""

import pytest

from repro.errors import SimulationError
from repro.sim.messages import HalfDistanceDelay
from repro.sim.node import NodeAPI, Process
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, Simulator, run_simulation
from repro.sim.trace import RECEIVE, SEND, TIMER
from repro.topology.generators import line, two_nodes


class Echo(Process):
    """Send one message at start; reply once to anything received."""

    def on_start(self, api: NodeAPI) -> None:
        if api.node == 0:
            api.send(1, ("ping", 0))

    def on_message(self, api: NodeAPI, sender: int, payload) -> None:
        kind, hops = payload
        if hops < 3:
            api.send(sender, (kind, hops + 1))


class TickCounter(Process):
    def __init__(self, period: float):
        self.period = period
        self.fired_at_hardware: list[float] = []

    def on_start(self, api: NodeAPI) -> None:
        api.set_timer(self.period, "tick")

    def on_timer(self, api: NodeAPI, name: str) -> None:
        self.fired_at_hardware.append(api.hardware_now())
        api.set_timer(self.period, "tick")


class TestBasics:
    def test_message_round_trip(self):
        topo = two_nodes(2.0)
        ex = run_simulation(
            topo, {0: Echo(), 1: Echo()}, SimConfig(duration=10.0, seed=0)
        )
        receives = ex.trace.of_kind(RECEIVE)
        assert len(receives) == 4  # ping + 3 replies
        # delay is d/2 = 1 each hop
        assert receives[0].real_time == pytest.approx(1.0)
        assert receives[-1].real_time == pytest.approx(4.0)

    def test_self_send_rejected(self):
        class SelfSender(Process):
            def on_start(self, api):
                api.send(api.node, "oops")

        topo = two_nodes(1.0)
        with pytest.raises(SimulationError):
            run_simulation(
                topo, {0: SelfSender(), 1: Process()}, SimConfig(duration=1.0)
            )

    def test_processes_must_cover_nodes(self):
        topo = line(3)
        with pytest.raises(SimulationError):
            Simulator(topo, {0: Process()}, SimConfig(duration=1.0))

    def test_duration_must_be_positive(self):
        topo = line(2)
        with pytest.raises(SimulationError):
            Simulator(topo, {0: Process(), 1: Process()}, SimConfig(duration=0.0))

    def test_run_only_once(self):
        topo = line(2)
        sim = Simulator(topo, {0: Process(), 1: Process()}, SimConfig(duration=1.0))
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_beyond_duration_not_processed(self):
        topo = two_nodes(10.0)

        class LateSender(Process):
            def on_start(self, api):
                if api.node == 0:
                    api.send(1, "late")  # delay 5 > duration 3

        ex = run_simulation(
            topo, {0: LateSender(), 1: Process()}, SimConfig(duration=3.0)
        )
        assert ex.trace.of_kind(RECEIVE) == []
        assert len(ex.trace.of_kind(SEND)) == 1


class TestTimers:
    def test_timers_fire_in_hardware_time(self):
        topo = line(2)
        procs = {0: TickCounter(1.0), 1: Process()}
        # Node 0 runs at rate 2: hardware 1.0 every 0.5 real seconds.
        rates = {0: PiecewiseConstantRate.constant(1.4)}
        ex = run_simulation(
            topo,
            procs,
            SimConfig(duration=5.0, rho=0.5, seed=0),
            rate_schedules=rates,
        )
        fired = procs[0].fired_at_hardware
        assert fired == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        timer_events = [e for e in ex.trace.of_kind(TIMER) if e.node == 0]
        # real times are hardware / 1.4
        assert timer_events[0].real_time == pytest.approx(1.0 / 1.4)

    def test_timer_rejects_nonpositive_delta(self):
        class BadTimer(Process):
            def on_start(self, api):
                api.set_timer(0.0, "bad")

        topo = line(2)
        with pytest.raises(SimulationError):
            run_simulation(
                topo, {0: BadTimer(), 1: Process()}, SimConfig(duration=1.0)
            )


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        from repro.algorithms import MaxBasedAlgorithm

        topo = line(6)
        alg = MaxBasedAlgorithm()
        config = SimConfig(duration=15.0, rho=0.5, seed=7)
        ex1 = run_simulation(topo, alg.processes(topo), config)
        ex2 = run_simulation(topo, alg.processes(topo), config)
        assert len(ex1.trace) == len(ex2.trace)
        for a, b in zip(ex1.trace, ex2.trace):
            assert a.real_time == b.real_time
            assert a.node == b.node
            assert a.kind == b.kind
            assert a.hardware == b.hardware

    def test_seed_changes_random_delays(self):
        from repro.algorithms import MaxBasedAlgorithm
        from repro.sim.messages import UniformRandomDelay

        topo = line(4)
        alg = MaxBasedAlgorithm()
        ex1 = run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=10.0, seed=1),
            delay_policy=UniformRandomDelay(),
        )
        ex2 = run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=10.0, seed=2),
            delay_policy=UniformRandomDelay(),
        )
        d1 = [m.delay for m in ex1.messages[:20]]
        d2 = [m.delay for m in ex2.messages[:20]]
        assert d1 != d2


class TestTraceToggle:
    def test_record_trace_false_still_measures_clocks(self):
        from repro.algorithms import MaxBasedAlgorithm

        topo = line(4)
        alg = MaxBasedAlgorithm()
        ex = run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=10.0, seed=0, record_trace=False),
        )
        assert len(ex.trace) == 0
        # Clock histories and messages are independent of the trace.
        assert ex.messages
        assert ex.logical_value(0, 5.0) > 0
        ex.check_validity()
        ex.check_delay_bounds()


class TestNodeAPI:
    def test_api_exposes_no_real_time(self):
        # The model: nodes must not see real time.  Make sure the API
        # namespace doesn't leak it.
        api_attrs = {a for a in dir(NodeAPI) if not a.startswith("_")}
        assert "now" not in api_attrs
        assert "real_time" not in api_attrs

    def test_neighbors_and_distance(self):
        topo = line(4)
        seen = {}

        class Inspect(Process):
            def on_start(self, api):
                seen[api.node] = (api.neighbors(), api.distance((api.node + 1) % 4))

        run_simulation(
            topo, {n: Inspect() for n in topo.nodes}, SimConfig(duration=1.0)
        )
        assert seen[0][0] == [1]
        assert seen[1][0] == [0, 2]
        assert seen[0][1] == 1.0
        assert seen[3][1] == 3.0  # distance(3, 0)

    def test_jump_records_trace_event(self):
        class Jumper(Process):
            def on_start(self, api):
                api.jump_logical_by(2.0)

        topo = line(2)
        ex = run_simulation(
            topo, {0: Jumper(), 1: Process()}, SimConfig(duration=1.0)
        )
        jumps = ex.trace.of_kind("jump")
        assert len(jumps) == 1
        assert jumps[0].detail == pytest.approx(2.0)

    def test_multiplier_records_trace_event(self):
        class Speeder(Process):
            def on_start(self, api):
                api.set_logical_multiplier(1.5)

        topo = line(2)
        ex = run_simulation(
            topo, {0: Speeder(), 1: Process()}, SimConfig(duration=1.0)
        )
        rates = ex.trace.of_kind("rate")
        assert len(rates) == 1
        assert rates[0].detail == pytest.approx(1.5)
