"""The sweep service: store/queue units, differential battery, crash/resume.

Three tiers, mirroring the repo's strongest pattern (the engine
trace-equivalence harness): fast in-process unit tests of the
content-addressed store and the dedup queue; ``serve``-marked
integration tests that run the real daemon as a subprocess and prove
the **differential contract** — any spec submitted through the daemon,
by 1, 2, or 4 concurrent clients, yields metrics bit-identical to an
in-process :func:`~repro.sweep.runner.run_jobs` call, with each
overlapping cell executed exactly once; and the **crash/resume
contract** — a SIGKILLed daemon leaves clients with a prompt named
error (<3s, the ``test_rt_router.py`` bound) and a store from which a
restarted daemon completes the sweep re-executing only missing cells.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ServeError
from repro.serve.client import ServeClient
from repro.serve.jobqueue import JobQueue, SweepBook
from repro.serve.protocol import FrameBuffer, recv_frame, send_frame
from repro.serve.store import ContentStore, hashes_for, sweep_id_for
from repro.sweep.jobs import job_hash
from repro.sweep.runner import run_jobs
from repro.sweep.spec import SweepSpec

SRC = Path(__file__).resolve().parent.parent / "src"


def small_spec(name="unit", topologies=("line:5",), seeds=(0, 1), **kw):
    kw.setdefault("duration", 8.0)
    return SweepSpec(
        name=name, topologies=topologies, algorithms=("max-based",),
        seeds=seeds, **kw,
    )


# ----------------------------------------------------------------------
# fast in-process units: store, queue, book


class TestContentStore:
    def test_generalizes_result_cache(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        spec = small_spec()
        job = spec.jobs()[0]
        digest = job_hash(job)
        assert not store.has_hash(digest)
        store.put(job, {"x": 1.5})
        assert store.has_hash(digest)
        assert store.get(job) == {"x": 1.5}
        assert store.get_hash(digest) == {"x": 1.5}
        # Objects live under objects/, content-addressed.
        assert (tmp_path / "store" / "objects" / f"{digest}.json").exists()

    def test_sweep_id_is_content_addressed(self):
        assert sweep_id_for(small_spec()) == sweep_id_for(small_spec())
        assert sweep_id_for(small_spec()) != sweep_id_for(
            small_spec(seeds=(0, 1, 2))
        )
        # The name is part of the spec, hence of the identity.
        assert sweep_id_for(small_spec()) != sweep_id_for(
            small_spec(name="other")
        )

    def test_manifest_roundtrip_and_missing(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        spec = small_spec()
        jobs = spec.jobs()
        hashes = hashes_for(jobs)
        sweep_id = store.write_manifest(spec, hashes)
        manifest = store.read_manifest(sweep_id)
        assert manifest["jobs"] == hashes
        assert SweepSpec.from_dict(manifest["spec"]) == spec
        assert store.missing(hashes) == hashes
        store.put_hash(hashes[0], {"m": 1})
        assert store.missing(hashes) == hashes[1:]
        assert store.results(hashes) is None
        for digest in hashes[1:]:
            store.put_hash(digest, {"m": 2})
        assert store.results(hashes) == [{"m": 1}] + [{"m": 2}] * (
            len(hashes) - 1
        )

    def test_torn_manifest_is_ignored(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        (store.sweep_dir / "deadbeef.json").write_text('{"sweep": "dead')
        assert store.read_manifest("deadbeef") is None
        assert list(store.manifests()) == []


class TestJobQueue:
    def test_offer_dedups_in_three_tiers(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        queue = JobQueue(store)
        spec = small_spec()
        jobs = spec.jobs()
        hashes = hashes_for(jobs)
        # Tier 1: object already on disk -> hit, never queued.
        store.put_hash(hashes[0], {"m": 0})
        assert queue.offer(hashes[0], jobs[0]) == "hit"
        # New work queues; a second sweep offering the same cell dedups.
        assert queue.offer(hashes[1], jobs[1]) == "queued"
        assert queue.offer(hashes[1], jobs[1]) == "dedup"
        assert queue.depth == 1
        # Running still dedups; done reports done.
        digest, job = queue.next_ready()
        assert digest == hashes[1]
        assert queue.offer(hashes[1], jobs[1]) == "dedup"
        queue.mark_done(digest, {"m": 1})
        assert queue.offer(hashes[1], jobs[1]) == "done"
        assert store.get_hash(hashes[1]) == {"m": 1}
        assert (queue.hits, queue.deduped, queue.executed) == (1, 2, 1)

    def test_requeue_caps_attempts_then_fails(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        queue = JobQueue(store)
        spec = small_spec(seeds=(0,))
        job = spec.jobs()[0]
        digest = job_hash(job)
        queue.offer(digest, job)
        queue.next_ready()  # attempt 1
        queue.requeue(digest, reason="worker died")
        assert queue.state_of(digest) == "queued"
        queue.next_ready()  # attempt 2 == MAX_ATTEMPTS
        queue.requeue(digest, reason="worker died")
        assert queue.state_of(digest) == "failed"
        assert "worker died" in queue.error_of(digest)
        assert queue.failed == 1

    def test_book_counts_and_settlement(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        queue = JobQueue(store)
        book = SweepBook()
        spec = small_spec()
        jobs = spec.jobs()
        hashes = hashes_for(jobs)
        sweep_id = sweep_id_for(spec)
        book.register(sweep_id, spec.name, hashes, json.loads(spec.to_json()))
        for digest, job in zip(hashes, jobs):
            queue.offer(digest, job)
        assert book.counts(sweep_id, queue)["queued"] == len(jobs)
        assert not book.settled(sweep_id, queue)
        while True:
            item = queue.next_ready()
            if item is None:
                break
            queue.mark_done(item[0], {"m": 1})
        assert book.settled(sweep_id, queue)
        assert book.complete(sweep_id, queue)


# ----------------------------------------------------------------------
# the real daemon, as a subprocess


def start_daemon(store: Path, *, workers: int = 2) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve", "start",
            "--store", str(store), "--workers", str(workers),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


@pytest.fixture()
def daemon(tmp_path):
    """A live daemon over a fresh store; killed at teardown if needed."""
    store = tmp_path / "store"
    proc = start_daemon(store)
    try:
        yield store, proc
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


@pytest.mark.serve
class TestServeDifferential:
    """Served metrics are bit-identical to in-process run_jobs."""

    def test_single_client_roundtrip_matches_run_jobs(self, daemon):
        store, _proc = daemon
        spec = small_spec(name="single", seeds=(0, 1, 2))
        with ServeClient(store=store) as client:
            receipt = client.submit(spec)
            assert receipt["total"] == 3
            final = client.wait(receipt["sweep"], timeout=120)
            assert final["counts"]["done"] == 3
            served = client.fetch(receipt["sweep"])
        expected = [o.metrics for o in run_jobs(spec.jobs(), workers=1)]
        assert served == expected

    @pytest.mark.parametrize("n_clients", [2, 4])
    def test_concurrent_overlapping_clients(self, daemon, n_clients):
        store, _proc = daemon
        # Ring-overlapping grids: client k shares its second topology
        # with client k+1's first, so every cell but the endpoints is
        # submitted by two clients concurrently.
        pool = ["line:5", "ring:6", "grid:3,3", "line:6", "ring:7"]
        specs = [
            small_spec(
                name=f"client{k}",
                topologies=(pool[k], pool[k + 1]),
                seeds=(0, 1),
            )
            for k in range(n_clients)
        ]
        served: dict[int, list] = {}
        errors: list[BaseException] = []

        def submit_and_fetch(k: int) -> None:
            try:
                with ServeClient(store=store) as client:
                    receipt = client.submit(specs[k])
                    client.wait(receipt["sweep"], timeout=120)
                    served[k] = client.fetch(receipt["sweep"])
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=submit_and_fetch, args=(k,))
            for k in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors, errors

        # Bit-identical to one in-process run_jobs call per spec.
        for k, spec in enumerate(specs):
            expected = [o.metrics for o in run_jobs(spec.jobs(), workers=1)]
            assert served[k] == expected

        distinct = {
            digest for spec in specs for digest in hashes_for(spec.jobs())
        }
        with ServeClient(store=store) as client:
            stats = client.stats()
        # The dedup proof: overlapping cells executed exactly once.
        assert stats["executed"] == len(distinct)
        assert stats["failed"] == 0
        objects = list((store / "objects").glob("*.json"))
        assert len(objects) == len(distinct)

    def test_resubmission_is_all_hits(self, daemon):
        store, _proc = daemon
        spec = small_spec(name="twice")
        with ServeClient(store=store) as client:
            first = client.submit(spec)
            client.wait(first["sweep"], timeout=120)
            again = client.submit(spec)
            assert again["sweep"] == first["sweep"]
            assert again["hits"] == again["total"]
            assert again["queued"] == 0
            stats = client.stats()
        assert stats["executed"] == first["total"]


@pytest.mark.serve
class TestServeCrashResume:
    def test_sigkill_mid_sweep_then_resume_executes_only_missing(
        self, tmp_path
    ):
        store = tmp_path / "store"
        # ~6 multi-second cells at one worker: the kill lands mid-sweep.
        spec = small_spec(
            name="resume", topologies=("line:9",),
            seeds=(0, 1, 2, 3, 4, 5), duration=1200.0,
        )
        total = len(spec.jobs())
        proc = start_daemon(store, workers=1)
        try:
            with ServeClient(store=store) as client:
                sweep = client.submit(spec)["sweep"]
                while True:
                    counts = client.status(sweep)["counts"]
                    if counts["done"] >= 1:
                        break
                    time.sleep(0.03)
                assert counts["queued"] + counts["running"] >= 2

                # A client blocked on the daemon must fail promptly and
                # by name when the daemon is SIGKILLed — not hang.
                box: dict = {}

                def blocked_wait() -> None:
                    with ServeClient(store=store, timeout=30) as waiter:
                        begin = time.perf_counter()
                        try:
                            waiter.wait(sweep, timeout=30)
                        except ServeError as exc:
                            box["error"] = str(exc)
                        box["elapsed"] = time.perf_counter() - begin

                thread = threading.Thread(target=blocked_wait)
                thread.start()
                time.sleep(0.1)
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)
                thread.join(timeout=5)
                assert box["elapsed"] < 3.0
                assert "repro-serve daemon" in box["error"]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        survivors = len(list((store / "objects").glob("*.json")))
        assert 1 <= survivors < total

        proc2 = start_daemon(store, workers=1)
        try:
            with ServeClient(store=store) as client:
                final = client.wait(sweep, timeout=180)
                assert final["counts"]["done"] == total
                stats = client.stats()
                # Only the missing cells were re-executed.
                assert stats["resumed"] == survivors
                assert stats["executed"] == total - survivors
                served = client.fetch(sweep)
                client.shutdown()
        finally:
            if proc2.poll() is None:
                proc2.kill()
            proc2.wait(timeout=10)

        expected = [o.metrics for o in run_jobs(spec.jobs(), workers=1)]
        assert served == expected


@pytest.mark.serve
class TestServeProtocolErrors:
    def test_unknown_op_and_unknown_sweep_are_named_errors(self, daemon):
        store, _proc = daemon
        with ServeClient(store=store) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client._request({"op": "frobnicate"})
        with ServeClient(store=store) as client:
            with pytest.raises(ServeError, match="unknown sweep"):
                client.fetch("no-such-sweep")

    def test_fetch_before_complete_is_a_named_error(self, daemon):
        store, _proc = daemon
        spec = small_spec(
            name="early", topologies=("line:9",), seeds=(0, 1, 2),
            duration=1200.0,
        )
        with ServeClient(store=store) as client:
            sweep = client.submit(spec)["sweep"]
            with pytest.raises(ServeError, match="incomplete"):
                client.fetch(sweep)
            client.shutdown()

    def test_forking_transports_rejected_at_submit(self, daemon):
        store, _proc = daemon
        spec = small_spec(name="forky", transports=("udp",), seeds=(0,))
        with ServeClient(store=store) as client:
            with pytest.raises(ServeError, match="udp.*workers 1"):
                client.submit(spec)

    def test_malformed_spec_rejected_with_sweep_error_text(self, daemon):
        store, _proc = daemon
        with ServeClient(store=store) as client:
            with pytest.raises(ServeError, match="unknown SweepSpec fields"):
                client._request(
                    {"op": "submit", "spec": {"no_such_axis": [1]}}
                )

    def test_wire_garbage_gets_error_reply_then_disconnect(self, daemon):
        store, _proc = daemon
        # Poke the daemon below ServeClient: a well-prefixed frame whose
        # body is not UTF-8 JSON must earn one error frame, then EOF.
        with ServeClient(store=store) as probe:
            host, port = probe.host, probe.port
        sock = socket.create_connection((host, port), timeout=10)
        try:
            body = b"\xff\xfe\x00\x01"
            sock.sendall(struct.pack(">I", len(body)) + body)
            reply = recv_frame(sock, FrameBuffer(), peer="daemon")
            assert reply["ok"] is False
            assert "UTF-8" in reply["error"]
            assert sock.recv(1) == b""  # connection dropped
        finally:
            sock.close()
        # The daemon survives and keeps serving.
        with ServeClient(store=store) as client:
            assert client.ping()["ok"]
            assert client.stats()["protocol_errors"] >= 1


@pytest.mark.serve
class TestServeCli:
    def run_cli(self, *args: str) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.serve", *args],
            env=env, capture_output=True, text=True, timeout=120,
        )

    def test_submit_status_fetch_stop_roundtrip(self, daemon):
        store, proc = daemon
        submitted = self.run_cli(
            "submit", "--store", str(store), "--topologies", "line:5",
            "--algorithms", "max-based", "--rates", "drifted",
            "--seeds", "2", "--duration", "8", "--name", "cli", "--wait",
        )
        assert submitted.returncode == 0, submitted.stdout + submitted.stderr
        assert "sweep " in submitted.stdout
        sweep = submitted.stdout.split("sweep ")[1].split(":")[0].split("'")[0].strip()

        status = self.run_cli("status", "--store", str(store), sweep)
        assert status.returncode == 0
        assert "2/2 done" in status.stdout

        fetched = self.run_cli("fetch", "--store", str(store), sweep)
        assert fetched.returncode == 0
        assert "max_skew" in fetched.stdout

        stopped = self.run_cli("stop", "--store", str(store))
        assert stopped.returncode == 0
        assert proc.wait(timeout=10) == 0

    def test_experiments_verb_dispatches_to_serve(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments", "serve",
                "status", "--store", str(tmp_path / "empty"),
            ],
            env=env, capture_output=True, text=True, timeout=60,
        )
        # No daemon: the verb must route to serve and fail by name,
        # not fall through to the experiment-id parser.
        assert result.returncode == 2
        assert "repro-serve" in result.stderr


def test_send_frame_recv_frame_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        left.settimeout(5)
        right.settimeout(5)
        send_frame(left, {"op": "ping", "n": 1})
        assert recv_frame(right, FrameBuffer(), peer="left") == {
            "op": "ping", "n": 1,
        }
    finally:
        left.close()
        right.close()
