"""Tests for the Add Skew lemma machinery (gcs.add_skew)."""

import pytest

from repro._constants import gamma as gamma_of, tau as tau_of
from repro.algorithms import AveragingAlgorithm, MaxBasedAlgorithm
from repro.errors import ConstructionError
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew, verify_add_skew_claims
from repro.gcs.indistinguishability import assert_indistinguishable_prefix
from repro.gcs.schedule import AdversarySchedule
from repro.sim.rates import PiecewiseConstantRate
from repro.topology.generators import line

RHO = 0.5
TAU = tau_of(RHO)
GAMMA = gamma_of(RHO)


class TestPlanQuantities:
    def test_window_arithmetic(self):
        plan = AddSkewPlan(i=0, j=8, n=9, alpha_duration=16.0, rho=RHO)
        assert plan.span == 8
        assert plan.window_start == pytest.approx(0.0)
        assert plan.window_end == 16.0
        assert plan.beta_end == pytest.approx(TAU / GAMMA * 8)
        assert plan.guaranteed_gain == pytest.approx(8 / 12)

    def test_knee_times_lead_lo(self):
        plan = AddSkewPlan(i=2, j=6, n=9, alpha_duration=20.0, rho=RHO)
        S, Tp = plan.window_start, plan.beta_end
        # k <= i: knee at S (sped the whole window)
        assert plan.knee_time(0) == plan.knee_time(2) == S
        # ramp: S + (tau/gamma)(k - i)
        assert plan.knee_time(3) == pytest.approx(S + TAU / GAMMA)
        assert plan.knee_time(5) == pytest.approx(S + 3 * TAU / GAMMA)
        # k >= j: never sped
        assert plan.knee_time(6) == plan.knee_time(8) == pytest.approx(Tp)

    def test_knee_times_lead_hi_mirror(self):
        lo = AddSkewPlan(i=2, j=6, n=9, alpha_duration=20.0, rho=RHO, lead="lo")
        hi = AddSkewPlan(i=2, j=6, n=9, alpha_duration=20.0, rho=RHO, lead="hi")
        # The mirror swaps the roles of the two endpoints.
        assert hi.knee_time(6) == lo.knee_time(2)
        assert hi.knee_time(2) == lo.knee_time(6)
        assert hi.knee_time(5) == pytest.approx(lo.knee_time(3))
        assert hi.leader == 6 and hi.laggard == 2

    def test_successive_ramp_spacing_is_tau_over_gamma(self):
        plan = AddSkewPlan(i=0, j=8, n=9, alpha_duration=16.0, rho=RHO)
        knees = [plan.knee_time(k) for k in range(9)]
        diffs = [b - a for a, b in zip(knees, knees[1:])]
        for d in diffs[:-1]:
            assert d == pytest.approx(TAU / GAMMA)

    def test_gamma_windows_cover_figure_one(self):
        plan = AddSkewPlan(i=0, j=4, n=5, alpha_duration=8.0, rho=RHO)
        windows = plan.gamma_windows()
        assert windows[0][0] < windows[1][0] < windows[2][0] < windows[3][0]
        assert all(end == plan.beta_end for _, end in windows.values())

    def test_invalid_pairs_rejected(self):
        with pytest.raises(ConstructionError):
            AddSkewPlan(i=4, j=4, n=9, alpha_duration=16.0, rho=RHO)
        with pytest.raises(ConstructionError):
            AddSkewPlan(i=0, j=9, n=9, alpha_duration=16.0, rho=RHO)
        with pytest.raises(ConstructionError):
            AddSkewPlan(i=0, j=8, n=9, alpha_duration=16.0, rho=RHO, lead="up")

    def test_alpha_too_short_rejected(self):
        with pytest.raises(ConstructionError):
            AddSkewPlan(i=0, j=8, n=9, alpha_duration=10.0, rho=RHO)

    def test_straggler_horizon_beyond_beta_end(self):
        plan = AddSkewPlan(i=0, j=8, n=9, alpha_duration=16.0, rho=RHO)
        assert plan.straggler_horizon > plan.beta_end
        assert plan.straggler_horizon < plan.window_end


class TestApply:
    def test_rejects_duration_mismatch(self):
        topo = line(9)
        schedule = AdversarySchedule.quiet(topo.nodes, 20.0)
        plan = AddSkewPlan(i=0, j=8, n=9, alpha_duration=16.0, rho=RHO)
        with pytest.raises(ConstructionError):
            apply_add_skew(schedule, plan)

    def test_rejects_nonquiet_window(self):
        topo = line(9)
        schedule = AdversarySchedule.quiet(topo.nodes, 16.0)
        rates = dict(schedule.rates)
        rates[3] = PiecewiseConstantRate.constant(1.0).with_rate(10.0, 12.0, 1.2)
        schedule = schedule.with_rates(rates)
        plan = AddSkewPlan(i=0, j=8, n=9, alpha_duration=16.0, rho=RHO)
        with pytest.raises(ConstructionError):
            apply_add_skew(schedule, plan)

    def test_beta_schedule_shape(self):
        topo = line(9)
        schedule = AdversarySchedule.quiet(topo.nodes, 16.0)
        plan = AddSkewPlan(i=0, j=8, n=9, alpha_duration=16.0, rho=RHO)
        beta = apply_add_skew(schedule, plan)
        assert beta.duration == pytest.approx(plan.beta_end)
        # Leader runs at gamma through the window, laggard never.
        assert beta.rates[0].rate_at(plan.window_start + 0.1) == pytest.approx(GAMMA)
        assert beta.rates[8].max_rate() == 1.0
        # Everyone back to rate 1 after beta_end.
        assert all(
            r.rate_at(plan.beta_end + 0.5) == 1.0 for r in beta.rates.values()
        )


class TestVerifiedApplication:
    @pytest.mark.parametrize("lead", ["lo", "hi"])
    def test_claims_hold_both_directions(self, lead):
        topo = line(7)
        algorithm = AveragingAlgorithm()
        schedule = AdversarySchedule.quiet(topo.nodes, TAU * 6)
        alpha = schedule.run(topo, algorithm, rho=RHO, seed=0)
        plan = AddSkewPlan(
            i=0, j=6, n=7, alpha_duration=schedule.duration, rho=RHO, lead=lead
        )
        beta_schedule = apply_add_skew(schedule, plan)
        beta = beta_schedule.run(topo, algorithm, rho=RHO, seed=0)
        assert_indistinguishable_prefix(alpha, beta)
        summary = verify_add_skew_claims(alpha, beta, plan)
        assert summary["gain"] >= plan.guaranteed_gain - 1e-6
        # Claim 6.5's mechanism: window shrink at least span/6.
        assert summary["window_shrink"] >= plan.span / 6.0 - 1e-9

    def test_fixture_pair_verifies(self, add_skew_pair):
        alpha, beta, plan = add_skew_pair
        summary = verify_add_skew_claims(alpha, beta, plan)
        assert summary["gain"] >= plan.guaranteed_gain - 1e-6

    def test_interior_pair(self):
        """Add Skew applied to an interior pair, not the endpoints."""
        topo = line(9)
        algorithm = MaxBasedAlgorithm()
        schedule = AdversarySchedule.quiet(topo.nodes, TAU * 4)
        alpha = schedule.run(topo, algorithm, rho=RHO, seed=0)
        plan = AddSkewPlan(
            i=2, j=6, n=9, alpha_duration=schedule.duration, rho=RHO, lead="lo"
        )
        beta_schedule = apply_add_skew(schedule, plan)
        beta = beta_schedule.run(topo, algorithm, rho=RHO, seed=0)
        assert_indistinguishable_prefix(alpha, beta)
        verify_add_skew_claims(alpha, beta, plan)
