"""Tests for the parallel scenario-sweep engine (repro.sweep).

The load-bearing guarantees: grids expand deterministically, metrics are
identical at any worker count, the cache returns exactly what the run
produced, and the family registries reject unknown names loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms import MaxBasedAlgorithm
from repro.errors import SweepError
from repro.sim.faults import FaultPlan
from repro.sweep import (
    Job,
    ResultCache,
    SweepSpec,
    algorithm_from_spec,
    delay_policy_from_spec,
    execute_job,
    fault_plan_from_spec,
    job_hash,
    mobility_from_spec,
    quick_spec,
    run_jobs,
    summary_table,
    sweep_result,
    to_json_payload,
    topology_from_spec,
    write_json,
)
from repro.topology.dynamic import DynamicTopology
from repro.sweep.aggregate import CELL_KEYS
from repro.sweep.spec import full_spec

TINY = SweepSpec(
    name="tiny",
    topologies=("line:5", "ring:6"),
    algorithms=("max-based", "bounded-catch-up"),
    rate_families=("drifted",),
    delay_policies=("uniform",),
    seeds=(0, 1),
    duration=8.0,
    rho=0.2,
)


def metrics_of(outcomes):
    return [o.metrics for o in outcomes]


class TestFamilies:
    def test_topology_specs(self):
        assert topology_from_spec("line:5").n == 5
        assert topology_from_spec("grid:3,4").n == 12
        assert topology_from_spec("tree:2,2").n == 7
        assert topology_from_spec("geometric:8,3").n == 8

    def test_algorithm_specs(self):
        algorithm = algorithm_from_spec("max-based:0.5")
        assert isinstance(algorithm, MaxBasedAlgorithm)
        assert algorithm.period == 0.5
        assert algorithm_from_spec("null").name == "null"

    def test_delay_specs(self):
        assert delay_policy_from_spec("half").delay(0, 1, 0.0, 2.0, 0, None) == 1.0
        policy = delay_policy_from_spec("fraction:0.25")
        assert policy.delay(0, 1, 0.0, 4.0, 0, None) == 1.0

    def test_fault_specs(self):
        topo = topology_from_spec("line:6")
        assert fault_plan_from_spec("none", topo, seed=0, horizon=30.0).is_empty()
        lossy = fault_plan_from_spec("loss:0.2", topo, seed=0, horizon=30.0)
        assert lossy.links and lossy.links[0].loss == 0.2
        crash = fault_plan_from_spec("crash:0.3", topo, seed=0, horizon=30.0)
        assert crash.crashes and all(c.recover_at is None for c in crash.crashes)
        recover = fault_plan_from_spec(
            "crash-recover:0.3,5", topo, seed=0, horizon=30.0
        )
        assert all(c.recover_at is not None for c in recover.crashes)
        churn = fault_plan_from_spec("churn:0.25,4", topo, seed=0, horizon=30.0)
        assert churn.links and all(f.down for f in churn.links)

    def test_mobility_specs(self):
        topo = topology_from_spec("line:6")
        assert mobility_from_spec("static", topo, seed=0, horizon=20.0) is None
        moving = mobility_from_spec("waypoint:0.5", topo, seed=0, horizon=20.0)
        assert isinstance(moving, DynamicTopology)
        assert moving.n == topo.n and len(moving) == 4
        blink = mobility_from_spec("blink:0.3,8", topo, seed=0, horizon=20.0)
        assert isinstance(blink, DynamicTopology)
        assert blink.change_times  # edges actually blink
        # Blinking rewires the comm graph, never the distances.
        assert all(
            (t.distances == topo.distances).all() for _, t in blink.snapshots
        )

    def test_mobility_deterministic_per_seed(self):
        topo = topology_from_spec("line:6")
        build = lambda s: mobility_from_spec(
            "waypoint:0.5", topo, seed=s, horizon=20.0
        )
        assert build(3).at(10.0).comm_edges == build(3).at(10.0).comm_edges
        assert (build(3).at(10.0).distances != build(4).at(10.0).distances).any()

    @pytest.mark.parametrize(
        "spec",
        ["teleport", "waypoint:fast", "waypoint:-1", "waypoint:0.5,0",
         "blink:1.5", "blink:0.3,0", "blink:0.3,8,9,10"],
    )
    def test_bad_mobility_specs_raise(self, spec):
        topo = topology_from_spec("line:5")
        with pytest.raises(SweepError):
            mobility_from_spec(spec, topo, seed=0, horizon=20.0)

    @pytest.mark.parametrize("spec", ["teleport", "waypoint:fast", "blink:1.5"])
    def test_bad_mobility_specs_fail_at_spec_validation(self, spec):
        with pytest.raises(SweepError):
            SweepSpec(mobilities=(spec,)).jobs()

    def test_live_transports_reject_mobility(self):
        spec = SweepSpec(
            transports=("sim", "virtual"), mobilities=("static", "waypoint:0.5")
        )
        with pytest.raises(SweepError):
            spec.jobs()

    def test_fault_plans_deterministic_per_seed(self):
        topo = topology_from_spec("ring:8")
        build = lambda s: fault_plan_from_spec(
            "crash-recover:0.25,5", topo, seed=s, horizon=40.0
        )
        assert build(3) == build(3)
        assert build(3) != build(4)

    def test_distinct_fault_specs_get_distinct_salts(self):
        topo = topology_from_spec("line:5")
        a = fault_plan_from_spec("loss:0.2", topo, seed=0, horizon=30.0)
        b = fault_plan_from_spec("loss:0.3", topo, seed=0, horizon=30.0)
        assert a.seed_salt != b.seed_salt

    @pytest.mark.parametrize(
        "builder, spec",
        [
            (topology_from_spec, "moebius:5"),
            (topology_from_spec, "line:x"),
            (topology_from_spec, "grid:3"),
            (algorithm_from_spec, "quantum"),
            (algorithm_from_spec, "max-based:1,2"),
            (delay_policy_from_spec, "telepathy"),
            (delay_policy_from_spec, "fraction:fast"),
        ],
    )
    def test_unknown_specs_raise(self, builder, spec):
        with pytest.raises(SweepError):
            builder(spec)

    @pytest.mark.parametrize(
        "spec", ["heisenbug", "loss:high", "loss", "loss:1.5", "crash:1.5",
                 "crash-recover:0.3", "churn:0.2,0"]
    )
    def test_bad_fault_specs_raise(self, spec):
        topo = topology_from_spec("line:5")
        with pytest.raises(SweepError):
            fault_plan_from_spec(spec, topo, seed=0, horizon=30.0)

    @pytest.mark.parametrize("spec", ["loss", "loss:1.5", "crash-recover:0.3"])
    def test_bad_fault_specs_fail_at_spec_validation(self, spec):
        # Fail-fast parity with the other axes: before any forking.
        with pytest.raises(SweepError):
            SweepSpec(fault_families=(spec,)).jobs()


class TestSpec:
    def test_grid_size_and_order(self):
        jobs = TINY.jobs()
        assert len(jobs) == TINY.size == 2 * 2 * 1 * 1 * 2
        # Deterministic expansion: same spec, same order, same hashes.
        assert [job_hash(j) for j in jobs] == [job_hash(j) for j in TINY.jobs()]
        # All cells distinct.
        assert len({job_hash(j) for j in jobs}) == len(jobs)

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(topologies=())

    def test_unknown_family_rejected_before_running(self):
        bad = SweepSpec(topologies=("klein-bottle:4",))
        with pytest.raises(SweepError):
            bad.jobs()

    def test_round_trips_through_json(self):
        spec = quick_spec()
        clone = SweepSpec.from_dict(json.loads(spec.to_json()))
        assert clone == spec
        with pytest.raises(SweepError):
            SweepSpec.from_dict({"warp_factor": 9})

    def test_presets_expand(self):
        assert quick_spec().size >= 12
        assert full_spec().size >= 100


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial_outcomes(self):
        return run_jobs(TINY.jobs(), workers=1)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_same_metrics_at_any_worker_count(self, serial_outcomes, workers):
        parallel = run_jobs(TINY.jobs(), workers=workers)
        assert metrics_of(parallel) == metrics_of(serial_outcomes)

    def test_outcomes_in_job_order(self, serial_outcomes):
        jobs = TINY.jobs()
        assert [job_hash(o.job) for o in serial_outcomes] == [
            job_hash(j) for j in jobs
        ]

    def test_workers_must_be_positive(self):
        with pytest.raises(SweepError):
            run_jobs(TINY.jobs(), workers=0)


@pytest.mark.faults
class TestFaultAxisDeterminism:
    """The robustness axis keeps the engine's determinism contract."""

    FAULTED = SweepSpec(
        name="faulted",
        topologies=("line:5",),
        algorithms=("max-based", "averaging"),
        rate_families=("drifted",),
        delay_policies=("uniform",),
        fault_families=("none", "loss:0.3", "crash-recover:0.3,4", "churn:0.3,3"),
        seeds=(0, 1),
        duration=12.0,
        rho=0.2,
    )

    @pytest.fixture(scope="class")
    def digest_jobs(self):
        # trace_digest folds the *entire* trace into the metrics, so
        # worker-count comparisons check trace identity, not just skew.
        return [
            Job(kind=j.kind, params={**j.params, "trace_digest": True})
            for j in self.FAULTED.jobs()
        ]

    @pytest.fixture(scope="class")
    def serial_outcomes(self, digest_jobs):
        return run_jobs(digest_jobs, workers=1)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_identical_traces_at_any_worker_count(
        self, digest_jobs, serial_outcomes, workers
    ):
        parallel = run_jobs(digest_jobs, workers=workers)
        assert metrics_of(parallel) == metrics_of(serial_outcomes)
        assert all("trace_sha256" in o.metrics for o in parallel)

    def test_empty_fault_family_matches_plain_benign_run(self):
        faulted = execute_job(
            Job(
                kind="benign-run",
                params={
                    "topology": "line:5",
                    "algorithm": "max-based",
                    "rates": "drifted",
                    "delays": "uniform",
                    "faults": "none",
                    "seed": 0,
                    "duration": 10.0,
                    "rho": 0.2,
                    "trace_digest": True,
                },
            )
        )
        # The same cell without the fault key at all (pre-fault-axis shape).
        legacy = execute_job(
            Job(
                kind="benign-run",
                params={
                    "topology": "line:5",
                    "algorithm": "max-based",
                    "rates": "drifted",
                    "delays": "uniform",
                    "seed": 0,
                    "duration": 10.0,
                    "rho": 0.2,
                    "trace_digest": True,
                },
            )
        )
        assert faulted.metrics["trace_sha256"] == legacy.metrics["trace_sha256"]
        assert faulted.metrics["fault_events"] == {}

    def test_faulted_cells_actually_inject(self, serial_outcomes):
        injected = [
            o for o in serial_outcomes if o.metrics["faults"] != "none"
        ]
        assert injected
        assert all(
            sum(o.metrics["fault_events"].values()) > 0 for o in injected
        )


class TestMobilityAxisDeterminism:
    """The mobility axis keeps the engine's determinism contract."""

    MOBILE = SweepSpec(
        name="mobile",
        topologies=("line:5",),
        algorithms=("max-based", "averaging"),
        rate_families=("drifted",),
        delay_policies=("uniform",),
        mobilities=("static", "waypoint:0.5,4", "blink:0.3,6"),
        seeds=(0, 1),
        duration=12.0,
        rho=0.2,
    )

    @pytest.fixture(scope="class")
    def digest_jobs(self):
        # trace_digest folds the *entire* trace (including topology-swap
        # events) into the metrics, so worker-count comparisons check
        # trace identity, not just skew.
        return [
            Job(kind=j.kind, params={**j.params, "trace_digest": True})
            for j in self.MOBILE.jobs()
        ]

    @pytest.fixture(scope="class")
    def serial_outcomes(self, digest_jobs):
        return run_jobs(digest_jobs, workers=1)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_identical_traces_at_any_worker_count(
        self, digest_jobs, serial_outcomes, workers
    ):
        parallel = run_jobs(digest_jobs, workers=workers)
        assert metrics_of(parallel) == metrics_of(serial_outcomes)
        assert all("trace_sha256" in o.metrics for o in parallel)

    def test_static_mobility_matches_plain_benign_run(self):
        base_params = {
            "topology": "line:5",
            "algorithm": "max-based",
            "rates": "drifted",
            "delays": "uniform",
            "seed": 0,
            "duration": 10.0,
            "rho": 0.2,
            "trace_digest": True,
        }
        static = execute_job(
            Job(kind="benign-run", params={**base_params, "mobility": "static"})
        )
        # The same cell without the mobility key at all (pre-axis shape).
        legacy = execute_job(Job(kind="benign-run", params=base_params))
        assert static.metrics["trace_sha256"] == legacy.metrics["trace_sha256"]
        assert static.metrics["rewirings"] == 0

    def test_mobile_cells_actually_rewire(self, serial_outcomes):
        moving = [
            o for o in serial_outcomes if o.metrics["mobility"] != "static"
        ]
        assert moving
        assert all(o.metrics["rewirings"] > 0 for o in moving)
        static = [
            o for o in serial_outcomes if o.metrics["mobility"] == "static"
        ]
        assert static and all(o.metrics["rewirings"] == 0 for o in static)


class TestCache:
    def test_second_run_is_all_hits_with_identical_metrics(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        first = run_jobs(TINY.jobs(), workers=2, cache=cache)
        assert cache.hits == 0 and cache.misses == TINY.size
        assert len(cache) == TINY.size

        warm = ResultCache(tmp_path / "c")
        second = run_jobs(TINY.jobs(), workers=2, cache=warm)
        assert warm.hits == TINY.size and warm.misses == 0
        assert all(o.cached for o in second)
        assert metrics_of(second) == metrics_of(first)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = TINY.jobs()[0]
        run_jobs([job], cache=cache)
        (tmp_path / f"{job_hash(job)}.json").write_text("{not json")
        fresh = ResultCache(tmp_path)
        [outcome] = run_jobs([job], cache=fresh)
        assert fresh.hits == 0 and fresh.misses == 1
        assert not outcome.cached

    def test_cache_key_tracks_params(self):
        job_a = Job(kind="benign-run", params={"seed": 0})
        job_b = Job(kind="benign-run", params={"seed": 1})
        assert job_hash(job_a) != job_hash(job_b)
        assert job_hash(job_a) == job_hash(Job(kind="benign-run", params={"seed": 0}))


class TestJobs:
    def test_unknown_kind_raises(self):
        with pytest.raises(SweepError):
            execute_job(Job(kind="perpetual-motion", params={}))

    def test_benign_run_metrics_shape(self):
        job = TINY.jobs()[0]
        outcome = execute_job(job)
        m = outcome.metrics
        assert m["n_nodes"] == 5
        assert m["max_skew"] >= m["max_adjacent_skew"] >= 0.0
        assert m["messages"] > 0
        # JSON-able: survives a cache round trip bit-for-bit.
        assert json.loads(json.dumps(m)) == m


class TestAggregation:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return run_jobs(TINY.jobs(), workers=1)

    def test_summary_groups_cells(self, outcomes):
        table = summary_table(outcomes, title="t")
        # 4 cells (2 topologies x 2 algorithms), each averaging 2 seeds.
        assert len(table.rows) == 4
        seeds_column = len(CELL_KEYS)
        assert all(row[seeds_column] == "2" for row in table.rows)

    def test_sweep_result_renders(self, outcomes):
        result = sweep_result(TINY, outcomes, include_seed_rows=True)
        rendered = result.render()
        assert "SWEEP" in rendered and "line:5" in rendered
        assert len(result.data["metrics"]) == len(outcomes)

    def test_json_artifact(self, outcomes, tmp_path):
        payload = to_json_payload(TINY, outcomes, workers=1, elapsed=1.0)
        path = write_json(tmp_path / "artifacts" / "sweep.json", payload)
        loaded = json.loads(path.read_text())
        assert len(loaded["jobs"]) == TINY.size
        assert loaded["spec"]["name"] == "tiny"


class TestExperimentIntegration:
    def test_e05_identical_across_worker_counts(self):
        from repro.experiments import run_experiment

        serial = run_experiment("E05", workers=1)
        parallel = run_experiment("E05", workers=2)
        assert serial.tables[0].rows == parallel.tables[0].rows

    @pytest.mark.faults
    @pytest.mark.parametrize("workers", [2, 4])
    def test_e13_identical_across_worker_counts(self, workers):
        from repro.experiments import run_experiment

        serial = run_experiment("E13", workers=1)
        parallel = run_experiment("E13", workers=workers)
        assert serial.tables[0].rows == parallel.tables[0].rows
        assert serial.data["curves"] == parallel.data["curves"]

    @pytest.mark.faults
    def test_e13_reports_every_ladder_rung(self):
        from repro.experiments import run_experiment

        result = run_experiment("E13", workers=2)
        faults = {row[2] for row in result.tables[0].rows}
        assert "none" in faults and len(faults) >= 4
        # Baseline rows are exactly 1x themselves.
        for row in result.tables[0].rows:
            if row[2] == "none":
                assert float(row[6]) == pytest.approx(1.0)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_e16_identical_across_worker_counts(self, workers):
        from repro.experiments import run_experiment

        serial = run_experiment("E16", workers=1)
        parallel = run_experiment("E16", workers=workers)
        assert serial.tables[0].rows == parallel.tables[0].rows
        assert serial.tables[1].rows == parallel.tables[1].rows
        assert serial.data["curves"] == parallel.data["curves"]

    def test_e16_reports_every_ladder_rung_and_reconvergence(self):
        from repro.experiments import run_experiment

        result = run_experiment("E16", workers=2)
        mobilities = {row[2] for row in result.tables[0].rows}
        assert "static" in mobilities and len(mobilities) >= 3
        # Stillness anchors are exactly 1x themselves.
        for row in result.tables[0].rows:
            if row[2] == "waypoint:0,4":
                assert float(row[6]) == pytest.approx(1.0)
        # Part 2 has one verdict per algorithm.
        assert {row[5] for row in result.tables[1].rows} <= {"yes", "NO"}

    def test_unported_experiment_ignores_workers(self):
        from repro.experiments import run_experiment

        result = run_experiment("E01", workers=4)
        assert result.experiment_id == "E01"


class TestSweepCLI:
    def test_sweep_verb_runs(self, capsys, tmp_path):
        from repro.experiments.cli import main as cli_main

        code = cli_main(
            [
                "sweep",
                "--quick",
                "--topologies", "line:5",
                "--algorithms", "max-based",
                "--rates", "drifted",
                "--seeds", "1",
                "--duration", "5",
                "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--json-out", str(tmp_path / "out.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "SWEEP" in out and "line:5" in out
        assert (tmp_path / "out.json").exists()

    @pytest.mark.faults
    def test_sweep_verb_accepts_fault_axis(self, capsys):
        from repro.experiments.cli import main as cli_main

        code = cli_main(
            [
                "sweep",
                "--topologies", "line:5",
                "--algorithms", "max-based",
                "--rates", "drifted",
                # Commas inside a family's numeric args must survive.
                "--faults", "none,loss:0.3,crash-recover:0.3,4",
                "--seeds", "1",
                "--duration", "8",
                "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 fault families" in out
        assert "crash-recover:0.3,4" in out

    def test_sweep_verb_accepts_mobility_axis(self, capsys):
        from repro.experiments.cli import main as cli_main

        code = cli_main(
            [
                "sweep",
                "--topologies", "line:5",
                "--algorithms", "max-based",
                "--rates", "drifted",
                # Commas inside a family's numeric args must survive.
                "--mobility", "static,waypoint:0.5,4,blink:0.3,6",
                "--seeds", "1",
                "--duration", "8",
                "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 mobility families" in out
        assert "waypoint:0.5,4" in out and "blink:0.3,6" in out

    def test_sweep_verb_bad_mobility_family_exits_nonzero(self, capsys):
        from repro.experiments.cli import main as cli_main

        code = cli_main(["sweep", "--mobility", "teleport:9"])
        assert code == 2
        assert "unknown mobility family" in capsys.readouterr().err

    def test_sweep_verb_bad_spec_exits_nonzero(self, capsys):
        from repro.experiments.cli import main as cli_main

        code = cli_main(["sweep", "--topologies", "klein-bottle:4"])
        assert code == 2
        assert "unknown topology" in capsys.readouterr().err

    def test_sweep_verb_bad_fault_family_exits_nonzero(self, capsys):
        from repro.experiments.cli import main as cli_main

        code = cli_main(["sweep", "--faults", "heisenbug:0.5"])
        assert code == 2
        assert "unknown fault family" in capsys.readouterr().err


@pytest.mark.engine
class TestEngineAxis:
    """The simulation-engine knob on sim cells."""

    PARAMS = {
        "topology": "line:6",
        "algorithm": "max-based",
        "rates": "drifted",
        "delays": "uniform",
        "faults": "none",
        "seed": 0,
        "duration": 10.0,
        "rho": 0.2,
        "trace_digest": True,
    }

    def test_batched_cell_matches_scalar_cell_exactly(self):
        # Byte identity surfaces in the sweep layer as equal metric
        # dicts — including the trace_sha256 determinism probe.
        scalar = execute_job(Job(kind="benign-run", params=dict(self.PARAMS)))
        batched = execute_job(
            Job(kind="benign-run", params={**self.PARAMS, "engine": "batched"})
        )
        assert scalar.metrics == batched.metrics
        assert "trace_sha256" in scalar.metrics

    def test_scalar_cells_keep_historical_cache_keys(self):
        # The engine param is only emitted when non-default, so existing
        # caches keep hitting for scalar grids.
        base = dict(topologies=("line:5",), seeds=(0,), duration=8.0)
        scalar_jobs = SweepSpec(**base).jobs()
        batched_jobs = SweepSpec(engine="batched", **base).jobs()
        assert all("engine" not in j.params for j in scalar_jobs)
        assert all(j.params["engine"] == "batched" for j in batched_jobs)
        assert job_hash(scalar_jobs[0]) == job_hash(
            SweepSpec(engine="scalar", **base).jobs()[0]
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(engine="warp")
