"""Tests for the bounded-slew max candidate."""

import pytest

from _fault_helpers import assert_monotone_logical, run_crash_recovery
from repro.algorithms import MaxBasedAlgorithm, NullAlgorithm, SlewingMaxAlgorithm
from repro.sim.messages import PerPairDelay
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.2


def run_line(alg, n=6, duration=60.0, fast=None, seed=0):
    topo = line(n)
    rates = {}
    if fast is not None:
        rates[fast] = PiecewiseConstantRate.constant(1.0 + RHO)
    return run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=seed),
        rate_schedules=rates,
    )


class TestParameters:
    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            SlewingMaxAlgorithm(sigma=0.0)


class TestBehavior:
    def test_jumps_never_exceed_sigma(self):
        alg = SlewingMaxAlgorithm(period=0.5, sigma=0.3)
        ex = run_line(alg, fast=5)
        for e in ex.trace.of_kind("jump"):
            assert e.detail <= 0.3 + 1e-9

    def test_converges_when_sigma_beats_drift(self):
        alg = SlewingMaxAlgorithm(period=0.5, sigma=1.0)
        ex = run_line(alg, fast=5)
        null = run_line(NullAlgorithm(), fast=5)
        assert ex.max_skew(60.0) < null.max_skew(60.0) / 2.0

    def test_validity(self):
        run_line(SlewingMaxAlgorithm(period=0.5), fast=3).check_validity()

    def test_spike_smaller_than_max_based(self):
        """The point of slewing: delay drops cannot yank nearby clocks."""
        topo = line(3, comm_radius=2.0)
        rates = {0: PiecewiseConstantRate.constant(1.0 + RHO)}
        delays = PerPairDelay()
        delays.set(0, 1, 1.0)
        delays.set_after(0, 1, 30.0, 0.0)
        config = SimConfig(duration=45.0, rho=RHO, seed=0)

        def spike(alg):
            ex = run_simulation(
                topo,
                alg.processes(topo),
                config,
                rate_schedules=rates,
                delay_policy=delays,
            )
            pre = max(abs(ex.skew(1, 2, t)) for t in (28.0, 29.0, 29.9))
            post = max(abs(ex.skew(1, 2, t)) for t in (30.1, 30.5, 31.0, 32.0))
            return post - pre

        assert spike(SlewingMaxAlgorithm(period=0.5, sigma=0.5)) <= spike(
            MaxBasedAlgorithm(period=0.5)
        )

    def test_in_standard_suite(self):
        from repro.algorithms import standard_suite

        names = [a.name for a in standard_suite()]
        assert "slewing-max" in names


@pytest.mark.faults
class TestRecovery:
    """Crash-recovery: monotone clock and re-convergence under slewing."""

    def test_recovered_clock_never_jumps_backward(self):
        ex = run_crash_recovery(SlewingMaxAlgorithm(period=0.5))
        assert_monotone_logical(ex, 2)
        ex.check_validity()

    def test_reconverges_to_fault_free_skew(self):
        ex = run_crash_recovery(SlewingMaxAlgorithm(period=0.5))
        assert ex.max_skew(16.5) > ex.max_skew(40.0)
        assert ex.max_skew(40.0) < 3.5

    def test_recovered_node_rejoins_gossip(self):
        ex = run_crash_recovery(SlewingMaxAlgorithm(period=0.5))
        assert [
            e for e in ex.trace.of_kind("send")
            if e.node == 2 and e.real_time >= 16.0
        ]
