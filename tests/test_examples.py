"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; if one breaks, the README's
promises break.  Heavy ones are marked slow.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3, "the deliverable requires at least 3 examples"


def test_quickstart():
    out = run_example("quickstart.py")
    assert "gradient profile" in out
    assert "forced distance-1 skew" in out


def test_sensor_fusion():
    out = run_example("sensor_fusion.py")
    assert "mis-fusion rate" in out


def test_target_tracking():
    out = run_example("target_tracking.py")
    assert "skew budget" in out


def test_scenario_sweep():
    out = run_example("scenario_sweep.py")
    assert "metrics identical at 1 and 2 workers: True" in out
    assert "cache hits" in out


@pytest.mark.rt
def test_live_run():
    out = run_example("live_run.py")
    assert "live-virtual" in out
    assert "identical executions" in out
    assert "passes the model-compliance checks" in out


@pytest.mark.slow
def test_lower_bound_tour():
    out = run_example("lower_bound_tour.py")
    assert "Claim 6.5" in out
    assert "Theorem 8.1" in out


@pytest.mark.slow
def test_tdma_scaling():
    out = run_example("tdma_scaling.py")
    assert "TDMA collisions" in out


@pytest.mark.slow
def test_skew_timeline(tmp_path):
    # Runs in repo root; clean up the CSV it writes.
    out = run_example("skew_timeline.py")
    assert "max adjacent skew" in out
    csv = EXAMPLES.parent / "skew_timeline.csv"
    if csv.exists():
        csv.unlink()


def test_mobile_field():
    out = run_example("mobile_field.py")
    assert "rewirings" in out
    assert "adj skew" in out
    assert "time-varying" in out


@pytest.mark.slow
def test_sensor_field():
    out = run_example("sensor_field.py")
    assert "gradient" in out
