"""The live runtime as a sweep axis and as experiment E14.

Covers the ``transports`` axis of :class:`SweepSpec` (expansion into
``benign-run`` vs ``live-run`` jobs, cache-stability of sim cells,
validation), the ``live-run`` job kind end to end through ``run_jobs``
(including worker processes resolving the kind by module name), and the
E14 comparison experiment.  Only the E14 test touches wall-clock
backends, so it carries the ``rt`` marker; the rest are virtual-time
fast.
"""

from __future__ import annotations

import pytest

from repro.errors import SweepError
from repro.experiments import run_experiment
from repro.sweep import Job, SweepSpec, run_jobs
from repro.sweep.aggregate import summary_table
from repro.sweep.jobs import job_hash


def _spec(**overrides) -> SweepSpec:
    base = dict(
        name="rt-test",
        topologies=("line:5",),
        algorithms=("gradient",),
        rate_families=("drifted",),
        delay_policies=("uniform",),
        transports=("sim", "virtual"),
        seeds=(0,),
        duration=8.0,
        rho=0.2,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestTransportAxis:
    def test_jobs_split_by_transport(self):
        jobs = _spec().jobs()
        assert [j.kind for j in jobs] == ["benign-run", "live-run"]
        live = jobs[1]
        assert live.params["transport"] == "virtual"
        assert live.module == "repro.rt.jobs"
        # sim cells keep the exact historical benign-run params: the
        # transport axis itself never perturbs sim-cell hashes (cache
        # invalidation happens only through CACHE_VERSION bumps).
        assert "transport" not in jobs[0].params
        assert "time_scale" not in jobs[0].params

    def test_sim_only_spec_hashes_unchanged_by_axis_default(self):
        with_axis = _spec(transports=("sim",)).jobs()
        field_free = SweepSpec(
            name="rt-test",
            topologies=("line:5",),
            algorithms=("gradient",),
            rate_families=("drifted",),
            delay_policies=("uniform",),
            seeds=(0,),
            duration=8.0,
            rho=0.2,
        ).jobs()
        assert [job_hash(j) for j in with_axis] == [
            job_hash(j) for j in field_free
        ]

    def test_unknown_transport_rejected(self):
        with pytest.raises(SweepError):
            _spec(transports=("sim", "telepathy")).jobs()

    def test_churnless_live_cells_with_faults_rejected(self):
        with pytest.raises(SweepError):
            _spec(fault_families=("none", "loss:0.2")).jobs()

    def test_churnless_live_cells_with_mobility_rejected(self):
        with pytest.raises(SweepError):
            _spec(mobilities=("static", "blink:0.2,2")).jobs()

    def test_router_cells_accept_faults_and_mobility(self):
        jobs = _spec(
            transports=("sim", "router"),
            fault_families=("crash-recover:0.25,5",),
            mobilities=("blink:0.2,2",),
        ).jobs()
        assert [j.kind for j in jobs] == ["benign-run", "live-run"]
        live = jobs[1]
        assert live.params["transport"] == "router"
        assert live.params["faults"] == "crash-recover:0.25,5"
        assert live.params["mobility"] == "blink:0.2,2"

    def test_size_counts_transport_axis(self):
        assert _spec().size == 2

    def test_from_dict_roundtrip_keeps_transports(self):
        import json

        spec = _spec()
        again = SweepSpec.from_dict(json.loads(spec.to_json()))
        assert again.transports == ("sim", "virtual")
        assert again == spec

    def test_cli_rejects_udp_cells_with_pool_workers(self, capsys):
        from repro.sweep.cli import main as sweep_main

        code = sweep_main(
            ["--topologies", "line:4", "--algorithms", "gradient",
             "--transports", "udp", "--seeds", "1", "--duration", "4",
             "--workers", "2"]
        )
        assert code == 2
        assert "--workers 1" in capsys.readouterr().err

    def test_cli_rejects_router_cells_with_pool_workers(self, capsys):
        from repro.sweep.cli import main as sweep_main

        code = sweep_main(
            ["--topologies", "line:4", "--algorithms", "gradient",
             "--transports", "router", "--seeds", "1", "--duration", "4",
             "--workers", "2"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--workers 1" in err
        assert "router" in err


class TestLiveRunJobs:
    def test_live_matches_sim_metrics_on_virtual(self):
        outcomes = run_jobs(_spec().jobs(), workers=1)
        sim, live = (o.metrics for o in outcomes)
        assert sim["transport"] == "sim"
        assert live["transport"] == "virtual"
        for metric in ("max_skew", "final_skew", "mean_abs_skew", "messages"):
            assert live[metric] == pytest.approx(sim[metric], abs=1e-9)
        assert live["wall_elapsed"] >= 0.0

    def test_workers_resolve_live_kind_by_module(self):
        # A worker pool (fresh interpreter state on spawn platforms)
        # must find the kind through the Job's module field.
        outcomes = run_jobs(_spec().jobs(), workers=2)
        assert [o.metrics["transport"] for o in outcomes] == ["sim", "virtual"]

    def test_summary_table_carries_transport_column(self):
        outcomes = run_jobs(_spec().jobs(), workers=1)
        table = summary_table(outcomes, title="t")
        rendered = table.render()
        assert "transport" in rendered
        assert "virtual" in rendered

    def test_plain_live_run_job_executes(self):
        job = Job(
            kind="live-run",
            params={
                "topology": "line:4",
                "algorithm": "max-based",
                "rates": "constant",
                "delays": "half",
                "transport": "virtual",
                "seed": 1,
                "duration": 6.0,
                "rho": 0.1,
            },
            module="repro.rt.jobs",
        )
        (outcome,) = run_jobs([job], workers=1)
        assert outcome.metrics["faults"] == "none"
        assert outcome.metrics["n_nodes"] == 4


@pytest.mark.rt
class TestE14:
    def test_quick_scale_table_and_guarantees(self):
        result = run_experiment("E14", "quick", workers=2)
        assert result.experiment_id == "E14"
        cells = result.data["cells"]
        assert set(cells) == {"gradient", "averaging"}
        for algorithm, backends in cells.items():
            assert set(backends) == {
                "sim", "virtual", "asyncio", "udp", "router"
            }
            # The virtual backend replays the simulator exactly.
            assert backends["virtual"]["delta_vs_sim"] <= result.data[
                "virtual_tolerance"
            ]
            # Every backend stays inside the diameter+1 gradient budget.
            for cell in backends.values():
                assert cell["bounded"]
        # The router node-count ladder rode along (quick rungs only).
        ladder = result.data["ladder"]
        assert [cell["topology"] for cell in ladder] == ["line:8", "line:32"]
        assert all(cell["bounded"] for cell in ladder)
        assert all(cell["events_per_sec"] > 0 for cell in ladder)
        rendered = result.render()
        assert "d final vs sim" in rendered
        assert "scale ladder" in rendered
        assert " NO " not in rendered
