"""Tests for the deterministic event queue (sim.events)."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import DeliverMessage, EventQueue, FireTimer


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        for name in ("first", "second", "third"):
            q.push(1.0, name)
        assert [q.pop()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_pop_returns_time(self):
        q = EventQueue()
        q.push(2.5, "x")
        t, e = q.pop()
        assert t == 2.5 and e == "x"


class TestSafety:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_push_into_popped_past_raises(self):
        q = EventQueue()
        q.push(5.0, "later")
        q.pop()
        with pytest.raises(SimulationError):
            q.push(4.0, "past")

    def test_push_at_current_time_ok(self):
        q = EventQueue()
        q.push(5.0, "a")
        q.pop()
        q.push(5.0, "same-instant")  # same instant is legal
        assert q.pop() == (5.0, "same-instant")


class TestIntrospection:
    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0, "x")
        q.push(3.0, "y")
        assert q.peek_time() == 3.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1.0, "x")
        assert q and len(q) == 1


class TestEventTypes:
    def test_deliver_message_fields(self):
        e = DeliverMessage(node=3, message="m")
        assert e.node == 3 and e.message == "m"

    def test_fire_timer_fields(self):
        e = FireTimer(node=1, name="tick", generation=7)
        assert (e.node, e.name, e.generation) == (1, "tick", 7)
