"""Tests for the deterministic event queue (sim.events)."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import DeliverMessage, EventQueue, FireTimer


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        for name in ("first", "second", "third"):
            q.push(1.0, name)
        assert [q.pop()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_pop_returns_time(self):
        q = EventQueue()
        q.push(2.5, "x")
        t, e = q.pop()
        assert t == 2.5 and e == "x"


class TestSafety:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_push_into_popped_past_raises(self):
        q = EventQueue()
        q.push(5.0, "later")
        q.pop()
        with pytest.raises(SimulationError):
            q.push(4.0, "past")

    def test_push_at_current_time_ok(self):
        q = EventQueue()
        q.push(5.0, "a")
        q.pop()
        q.push(5.0, "same-instant")  # same instant is legal
        assert q.pop() == (5.0, "same-instant")


class TestIntrospection:
    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0, "x")
        q.push(3.0, "y")
        assert q.peek_time() == 3.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1.0, "x")
        assert q and len(q) == 1


class TestEventTypes:
    def test_deliver_message_fields(self):
        e = DeliverMessage(node=3, message="m")
        assert e.node == 3 and e.message == "m"

    def test_fire_timer_fields(self):
        e = FireTimer(node=1, name="tick", generation=7)
        assert (e.node, e.name, e.generation) == (1, "tick", 7)


# ----------------------------------------------------------------------
# BatchEventQueue: the vectorized queue behind the batched engine must
# drain in exactly the scalar heap's (time, seq) order.

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.events import BatchEventQueue, TopologyChange


@st.composite
def queue_programs(draw):
    """A random interleaving of pushes, batch pushes and pops.

    Times are drawn from a small grid so same-instant ties are common —
    the tie-break (global insertion order) is exactly what this property
    pins.  Push times are offsets from the latest popped time, keeping
    every program legal (no pushes into the popped past).
    """
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.sampled_from([0.0, 0.5, 1.0, 2.0])),
                st.tuples(
                    st.just("batch"),
                    st.lists(
                        st.sampled_from([0.0, 0.25, 0.5, 1.0, 3.0]),
                        min_size=0,
                        max_size=6,
                    ),
                ),
                st.tuples(st.just("pop"), st.integers(min_value=1, max_value=4)),
            ),
            min_size=1,
            max_size=40,
        )
    )


def _run_program(program, make_queue, *, batch_as_array):
    queue = make_queue()
    popped = []
    clock = 0.0  # latest popped time: pushes land at clock + offset
    tag = 0
    for op, arg in program:
        if op == "push":
            queue.push(clock + arg, tag)
            tag += 1
        elif op == "batch":
            times = [clock + offset for offset in arg]
            events = list(range(tag, tag + len(times)))
            tag += len(times)
            if batch_as_array:
                queue.push_batch(np.asarray(times, dtype=float), events)
            else:
                for t, e in zip(times, events):
                    queue.push(t, e)
        else:
            for _ in range(arg):
                if len(queue) == 0:
                    break
                t, event = queue.pop()
                popped.append((t, event))
                clock = t
    while len(queue):
        popped.append(queue.pop())
    return popped


class TestBatchQueueEquivalence:
    @given(queue_programs())
    @settings(max_examples=200, deadline=None)
    def test_drains_in_scalar_heap_order(self, program):
        scalar = _run_program(program, EventQueue, batch_as_array=False)
        batched = _run_program(program, BatchEventQueue, batch_as_array=True)
        assert scalar == batched

    @given(queue_programs())
    @settings(max_examples=100, deadline=None)
    def test_push_batch_equals_elementwise_push(self, program):
        elementwise = _run_program(program, BatchEventQueue, batch_as_array=False)
        batched = _run_program(program, BatchEventQueue, batch_as_array=True)
        assert elementwise == batched

    def test_same_instant_ties_break_by_insertion_order(self):
        q = BatchEventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        q.pop()  # trigger interleaving: merge state with a popped past
        q.push(1.0, "third")
        q.push_batch([1.0, 1.0], ["fourth", "fifth"])
        assert [q.pop()[1] for _ in range(4)] == [
            "second",
            "third",
            "fourth",
            "fifth",
        ]

    def test_topology_change_pops_before_same_instant_work(self):
        # The engine schedules TopologyChange events before the loop
        # starts, so they hold the lowest seqs at their instant and must
        # surface ahead of same-time deliveries or timers pushed later.
        q = BatchEventQueue()
        swap = TopologyChange(topology=None)
        q.push(5.0, swap)
        q.push(0.0, "start")
        q.push(5.0, "delivery-at-5")
        q.push(5.0, "timer-at-5")
        assert q.pop() == (0.0, "start")
        assert q.pop() == (5.0, swap)
        assert [q.pop()[1] for _ in range(2)] == ["delivery-at-5", "timer-at-5"]


class TestBatchQueueSafety:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            BatchEventQueue().pop()

    def test_push_into_popped_past_raises(self):
        q = BatchEventQueue()
        q.push(5.0, "later")
        q.pop()
        with pytest.raises(SimulationError):
            q.push(4.0, "past")
        with pytest.raises(SimulationError):
            q.push_batch([6.0, 4.0], ["ok", "past"])

    def test_pop_due_respects_horizon(self):
        q = BatchEventQueue()
        q.push(2.0, "early")
        q.push(9.0, "late")
        assert q.pop_due(5.0) == (2.0, "early")
        assert q.pop_due(5.0) is None
        assert len(q) == 1
        assert q.peek_time() == 9.0
