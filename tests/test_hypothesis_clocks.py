"""Property-based tests (hypothesis) for the clock algebra.

These are the invariants the lower-bound machinery leans on: exact
integration/inversion round-trips, monotonicity, validity preservation
under arbitrary forward-jump sequences.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.sim.clock import HardwareClock, LogicalClock
from repro.sim.rates import PiecewiseConstantRate

RHO = 0.5

rates_in_band = st.floats(min_value=0.5, max_value=1.5)


@st.composite
def rate_schedules(draw, max_segments=5):
    n = draw(st.integers(min_value=1, max_value=max_segments))
    widths = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    starts = [0.0]
    for w in widths:
        starts.append(starts[-1] + w)
    rates = draw(st.lists(rates_in_band, min_size=n, max_size=n))
    return PiecewiseConstantRate(tuple(starts), tuple(rates))


@given(rate_schedules(), st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=200)
def test_value_invert_roundtrip(schedule, t):
    assert schedule.invert(schedule.value_at(t)) == pytest_approx(t)


def pytest_approx(t, tol=1e-7):
    class _Approx:
        def __eq__(self, other):
            return abs(other - t) <= tol * max(1.0, abs(t))

    return _Approx()


@given(rate_schedules(), st.floats(min_value=0.0, max_value=50.0),
       st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=200)
def test_hardware_value_strictly_increasing(schedule, a, b):
    lo, hi = min(a, b), max(a, b)
    if hi - lo < 1e-9:
        return
    assert schedule.value_at(hi) > schedule.value_at(lo)


@given(rate_schedules(), st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=100)
def test_integral_bounded_by_band(schedule, t):
    # With all rates in [0.5, 1.5]: 0.5 t <= H(t) <= 1.5 t.
    h = schedule.value_at(t)
    assert 0.5 * t - 1e-9 <= h <= 1.5 * t + 1e-9


@st.composite
def jump_sequences(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    gaps = draw(
        st.lists(st.floats(min_value=0.05, max_value=5.0), min_size=n, max_size=n)
    )
    amounts = draw(
        st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=n, max_size=n)
    )
    return list(zip(gaps, amounts))


@given(rate_schedules(), jump_sequences())
@settings(max_examples=150)
def test_logical_clock_valid_under_any_forward_jumps(schedule, jumps):
    hw = HardwareClock(schedule, RHO)
    lc = LogicalClock(hw)
    t = 0.0
    for gap, amount in jumps:
        t += gap
        lc.jump_by(t, amount)
    lc.check_validity(t + 1.0)


@given(rate_schedules(), jump_sequences(), st.floats(min_value=0.0, max_value=60.0))
@settings(max_examples=150)
def test_logical_value_at_matches_read_at_present(schedule, jumps, extra):
    hw = HardwareClock(schedule, RHO)
    lc = LogicalClock(hw)
    t = 0.0
    for gap, amount in jumps:
        t += gap
        lc.jump_by(t, amount)
    now = t + extra
    assert abs(lc.value_at(now) - lc.read(now)) < 1e-7


@given(rate_schedules(), jump_sequences())
@settings(max_examples=100)
def test_total_jump_equals_sum(schedule, jumps):
    hw = HardwareClock(schedule, RHO)
    lc = LogicalClock(hw)
    t = 0.0
    expected = 0.0
    for gap, amount in jumps:
        t += gap
        expected += lc.jump_by(t, amount)
    assert math.isclose(lc.total_jump(), expected, abs_tol=1e-9)


@given(
    rate_schedules(),
    st.lists(st.floats(min_value=0.0, max_value=40.0), min_size=2, max_size=6),
)
@settings(max_examples=150)
def test_logical_time_at_is_left_inverse(schedule, times):
    hw = HardwareClock(schedule, RHO)
    lc = LogicalClock(hw)
    # Install a couple of jumps to create gaps.
    lc.jump_by(5.0, 1.0)
    lc.jump_by(9.0, 2.0)
    for t in times:
        t = max(t, 0.0)
        value = lc.value_at(t)
        back = lc.time_at(value)
        # time_at returns the earliest time with L >= value.
        assert lc.value_at(back) >= value - 1e-7
        assert back <= t + 1e-7
