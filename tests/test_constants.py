"""Tests for the paper constants and closed forms (_constants, gcs.theory)."""

import math

import pytest

from repro import _constants as c
from repro.gcs import theory


class TestTauGamma:
    def test_tau_is_reciprocal_of_rho(self):
        assert c.tau(0.5) == 2.0
        assert c.tau(0.1) == 10.0

    def test_tau_rejects_out_of_range(self):
        for bad in (0.0, 1.0, -0.3, 2.0):
            with pytest.raises(ValueError):
                c.tau(bad)

    def test_gamma_formula(self):
        # gamma = 1 + rho / (4 + rho)
        assert c.gamma(0.5) == pytest.approx(1.0 + 0.5 / 4.5)
        assert c.gamma(0.1) == pytest.approx(1.0 + 0.1 / 4.1)

    def test_gamma_below_drift_bound(self):
        # Lemma 6.1 needs gamma <= 1 + rho (Claim 6.3).
        for rho in (0.01, 0.1, 0.3, 0.5, 0.9):
            assert c.gamma(rho) < 1.0 + rho

    def test_gamma_below_bounded_increase_band(self):
        # Lemma 7.1's precondition needs rates <= 1 + rho/2.
        for rho in (0.01, 0.1, 0.3, 0.5, 0.9):
            assert c.gamma(rho) <= 1.0 + rho / 2.0

    def test_gamma_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            c.gamma(1.0)


class TestWindowShrink:
    def test_exact_value(self):
        # T - T' = tau (1 - 1/gamma) span = span / (4 + 2 rho)
        for rho in (0.1, 0.25, 0.5):
            assert c.window_shrink(rho, 12.0) == pytest.approx(
                12.0 / (4.0 + 2.0 * rho)
            )

    def test_at_least_one_sixth_of_span(self):
        # The paper lower-bounds the shrink by span/6 using rho < 1.
        for rho in (0.05, 0.3, 0.5, 0.99):
            assert c.window_shrink(rho, 6.0) >= 1.0 - 1e-12


class TestLowerBoundCurve:
    def test_zero_below_e(self):
        assert c.lower_bound_curve(1.0) == 0.0
        assert c.lower_bound_curve(2.0) == 0.0

    def test_value(self):
        d = 100.0
        assert c.lower_bound_curve(d) == pytest.approx(
            math.log(d) / math.log(math.log(d))
        )

    def test_monotone_for_large_d(self):
        values = [c.lower_bound_curve(float(d)) for d in (16, 64, 256, 1024)]
        assert values == sorted(values)


class TestRoundSchedule:
    def test_shrink_factor(self):
        assert c.shrink_factor(0.5, 1.0) == pytest.approx(384.0 * 2.0)

    def test_shrink_factor_rejects_bad_f(self):
        with pytest.raises(ValueError):
            c.shrink_factor(0.5, 0.0)

    def test_rounds_for(self):
        # D - 1 = 81, B = 3 -> 4 rounds
        assert c.rounds_for(82, 3.0) == 4
        assert c.rounds_for(2, 4.0) == 0
        assert c.rounds_for(1, 4.0) == 0

    def test_rounds_for_rejects_bad_shrink(self):
        with pytest.raises(ValueError):
            c.rounds_for(64, 1.0)


class TestTheoryModule:
    def test_add_skew_gain(self):
        assert theory.add_skew_gain(12.0) == pytest.approx(1.0)

    def test_bounded_increase_bound(self):
        assert theory.bounded_increase_bound(2.0) == 32.0

    def test_theorem_skew_after_rounds(self):
        assert theory.theorem_skew_after_rounds(24) == pytest.approx(1.0)

    def test_conjectured_upper_bound(self):
        assert theory.conjectured_upper_bound(3.0, math.e) == pytest.approx(4.0)

    def test_three_node_scenario(self):
        s = theory.ThreeNodeScenario(16.0)
        assert s.expected_peak_skew == 17.0
        d = s.distances
        assert d[(s.x, s.y)] == 16.0
        assert d[(s.y, s.z)] == 1.0
        assert d[(s.x, s.z)] == 17.0
