"""Self-tests for ``repro.check``, the static invariant linter.

Three layers of coverage:

* **the repo itself is clean** — the full checker runs over ``src/``
  against the committed (empty) baseline and must report nothing: this
  is the tier-1 gate that makes every rule a standing guarantee;
* **per-rule fixtures** — for each rule family a known-good and a
  known-bad snippet, written into a ``repro/``-shaped tmp tree, with
  the bad one asserting exactly the expected code fires (and the good
  one that nothing does);
* **machinery** — a hypothesis property pinning that the
  ``# repro: allow[CODE]`` pragma suppresses *exactly* its rule, the
  declared layer DAG pinned literally and checked acyclic, baseline
  round-trips, and the CLI's exit-code/JSON contract.
"""

from __future__ import annotations

import importlib
import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.check import (
    ALL_RULES,
    default_rules,
    load_baseline,
    run_check,
    write_baseline,
)
from repro.check.core import BASE_PACKAGES
from repro.check.layering import ALLOWED_IMPORTS, LAZY_ALLOWED, MODULE_EXEMPT

pytestmark = pytest.mark.check

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
BASELINE = REPO / "check_baseline.json"

RULE_CODES = tuple(rule.code for rule in ALL_RULES)


# ----------------------------------------------------------------------
# fixture snippets: one known-bad (and its minimal fix) per rule

#: code -> (relative path inside the fixture tree, bad source,
#:          1-indexed line the finding lands on, good source)
SNIPPETS: dict[str, tuple[str, str, int, str]] = {
    "DET001": (
        "repro/sim/fix_det1.py",
        "import time\nT = time.time()\n",
        2,
        "def now(sim):\n    return sim.current_time\n",
    ),
    "DET002": (
        "repro/analysis/fix_det2.py",
        "import random\nX = random.random()\n",
        2,
        "import random\n\ndef draw(seed):\n    return random.Random(seed).random()\n",
    ),
    "FLT001": (
        "repro/gcs/fix_flt.py",
        "def same_instant(t, end):\n    return t == end\n",
        2,
        "EPS = 1e-9\n\ndef same_instant(t, end):\n    return abs(t - end) <= EPS\n",
    ),
    "LAY001": (
        "repro/sim/fix_lay.py",
        "from repro.sweep.runner import run_jobs\n",
        1,
        "from repro.topology.base import Topology\n",
    ),
    "PKL001": (
        "repro/experiments/fix_pkl1.py",
        "def submit(run_jobs, jobs):\n    return run_jobs(jobs, key=lambda j: j)\n",
        2,
        "def cell_key(j):\n    return j\n\ndef submit(run_jobs, jobs):\n    return run_jobs(jobs, key=cell_key)\n",
    ),
    "PKL002": (
        "repro/experiments/fix_pkl2.py",
        "def make(Job):\n    def local_fn(params):\n        return {}\n    return Job(params=local_fn)\n",
        4,
        "def module_fn(params):\n    return {}\n\ndef make(Job):\n    return Job(params=module_fn)\n",
    ),
    "REG001": (
        "repro/viz/fix_reg1.py",
        'def receives(trace):\n    return trace.of_kind("recieve")\n',
        2,
        'def receives(trace):\n    return trace.of_kind("receive")\n',
    ),
    "REG002": (
        "repro/analysis/fix_reg2.py",
        '__all__ = ["missing_name"]\n',
        1,
        '__all__ = ["present"]\n\npresent = 1\n',
    ),
    "REG003": (
        "repro/apps/__init__.py",
        'from repro.sim.trace import TraceEvent\n\n__all__ = []\n',
        1,
        'from repro.sim.trace import TraceEvent\n\n__all__ = ["TraceEvent"]\n',
    ),
    "REG004": (
        "repro/sweep/fix_reg4.py",
        'from repro.sweep.jobs import job_kind\n\n'
        '@job_kind("partial")\n'
        "def partial(params):\n"
        '    metrics = {"topology": "line:4"}\n'
        "    return metrics\n",
        5,
        'from repro.sweep.jobs import job_kind\n\n'
        '@job_kind("full")\n'
        "def full(params):\n"
        "    metrics = dict(params)\n"
        "    return metrics\n",
    ),
}


def _write_tree(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def _codes(report) -> list[str]:
    return [f.rule for f in report.new]


class TestRepoIsClean:
    """The tier-1 gate: the tree at head has zero findings."""

    def test_full_tree_empty_against_committed_baseline(self):
        report = run_check([SRC], baseline=BASELINE)
        assert report.checked_files > 100
        assert report.new == [], "\n".join(f.render() for f in report.new)
        assert report.stale_pragmas == []
        assert report.exit_code == 0

    def test_committed_baseline_is_empty(self):
        assert load_baseline(BASELINE) == frozenset()

    def test_suppressions_in_tree_are_documented(self):
        # The tree carries a handful of reviewed pragmas (metadata
        # stopwatches, the exact-origin normalization); each must
        # suppress a rule that would otherwise fire, i.e. stay load-
        # bearing rather than rot.
        report = run_check([SRC], baseline=BASELINE)
        assert report.suppressed >= 1


class TestRuleFixtures:
    """Each rule family: the bad snippet fires, the good one does not."""

    @pytest.mark.parametrize("code", sorted(SNIPPETS))
    def test_bad_snippet_fires(self, tmp_path, code):
        rel, bad, lineno, _good = SNIPPETS[code]
        _write_tree(tmp_path, rel, bad)
        report = run_check([tmp_path])
        assert code in _codes(report), "\n".join(
            f.render() for f in report.new
        )
        lines = [f.line for f in report.new if f.rule == code]
        assert lineno in lines

    @pytest.mark.parametrize("code", sorted(SNIPPETS))
    def test_good_snippet_is_clean(self, tmp_path, code):
        rel, _bad, _lineno, good = SNIPPETS[code]
        _write_tree(tmp_path, rel, good)
        report = run_check([tmp_path])
        assert report.new == [], "\n".join(f.render() for f in report.new)

    @pytest.mark.parametrize("code", sorted(SNIPPETS))
    def test_injected_bad_fixture_fails_full_tree(self, tmp_path, code):
        """Acceptance criterion: src/ + any known-bad snippet -> nonzero."""
        rel, bad, _lineno, _good = SNIPPETS[code]
        import shutil

        tree = tmp_path / "src"
        shutil.copytree(SRC, tree)
        inject = tree / Path(rel).parent / ("injected_" + Path(rel).name)
        if Path(rel).name == "__init__.py":
            # Can't duplicate a package __init__; plant a sibling package.
            inject = tree / "repro" / "apps" / "injected" / "__init__.py"
            inject.parent.mkdir()
        inject.write_text(bad, encoding="utf-8")
        report = run_check([tree], baseline=BASELINE)
        assert report.exit_code == 1
        assert code in _codes(report)


class TestPragma:
    """# repro: allow[CODE] silences exactly its rule on its line."""

    @given(
        target=st.sampled_from(sorted(SNIPPETS)),
        allowed=st.sampled_from(RULE_CODES),
    )
    @settings(max_examples=60, deadline=None)
    def test_pragma_silences_exactly_its_rule(
        self, tmp_path_factory, target, allowed
    ):
        rel, bad, lineno, _good = SNIPPETS[target]
        lines = bad.splitlines()
        lines[lineno - 1] += f"  # repro: allow[{allowed}]"
        tmp = tmp_path_factory.mktemp("pragma")
        _write_tree(tmp, rel, "\n".join(lines) + "\n")
        report = run_check([tmp])
        fired = [f.rule for f in report.new if f.line == lineno]
        if allowed == target:
            assert target not in fired
            assert report.suppressed >= 1
        else:
            assert target in fired

    def test_pragma_in_docstring_does_not_suppress(self, tmp_path):
        rel, bad, lineno, _good = SNIPPETS["DET001"]
        lines = bad.splitlines()
        lines[lineno - 1] = (
            '"""docs mention # repro: allow[DET001] here"""; '
            + lines[lineno - 1]
        )
        _write_tree(tmp_path, rel, "\n".join(lines) + "\n")
        report = run_check([tmp_path])
        assert "DET001" in _codes(report)

    def test_unknown_pragma_code_is_reported_stale(self, tmp_path):
        _write_tree(
            tmp_path,
            "repro/sim/stale.py",
            "X = 1  # repro: allow[NOPE99]\n",
        )
        report = run_check([tmp_path])
        assert [f.rule for f in report.stale_pragmas] == ["PRAGMA"]
        assert report.exit_code == 1

    def test_multi_code_pragma(self, tmp_path):
        _write_tree(
            tmp_path,
            "repro/sim/multi.py",
            "import time\n"
            "T = time.time()  # repro: allow[DET001,FLT001]\n",
        )
        report = run_check([tmp_path])
        assert report.new == []
        assert report.suppressed == 1


class TestLayerDag:
    """The declared DAG itself: pinned, acyclic, honest about the tree."""

    def test_declared_dag_is_pinned(self):
        # The reviewable contract from docs/ARCHITECTURE.md, verbatim.
        assert ALLOWED_IMPORTS["topology"] == frozenset()
        assert ALLOWED_IMPORTS["sim"] == {"topology"}
        assert ALLOWED_IMPORTS["algorithms"] == {"sim", "topology"}
        assert ALLOWED_IMPORTS["analysis"] == {"sim", "topology"}
        assert ALLOWED_IMPORTS["gcs"] == {
            "sim",
            "topology",
            "algorithms",
            "analysis",
        }
        assert ALLOWED_IMPORTS["sweep"] == {
            "sim",
            "topology",
            "algorithms",
            "analysis",
        }
        assert ALLOWED_IMPORTS["rt"] == ALLOWED_IMPORTS["sweep"] | {"sweep"}
        assert ALLOWED_IMPORTS["viz"] == ALLOWED_IMPORTS["sweep"] | {"sweep"}
        assert ALLOWED_IMPORTS["serve"] == ALLOWED_IMPORTS["rt"] | {"rt"}
        assert ALLOWED_IMPORTS["check"] == frozenset()
        assert "check" not in ALLOWED_IMPORTS["experiments"]
        # serve is a leaf: only the experiments CLI verb may reach it,
        # and only lazily.
        assert "serve" not in ALLOWED_IMPORTS["experiments"]
        for pkg, deps in ALLOWED_IMPORTS.items():
            assert "serve" not in deps, pkg
        assert "serve" in LAZY_ALLOWED["experiments"]
        assert BASE_PACKAGES == {"_constants", "errors"}

    def test_declared_dag_is_acyclic(self):
        graph = {pkg: set(deps) for pkg, deps in ALLOWED_IMPORTS.items()}
        seen: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(node: str, stack: tuple[str, ...]) -> None:
            if seen.get(node) == 1:
                return
            assert seen.get(node) != 0, f"cycle: {' -> '.join(stack)}"
            seen[node] = 0
            for dep in graph.get(node, ()):
                visit(dep, stack + (dep,))
            seen[node] = 1

        for pkg in graph:
            visit(pkg, (pkg,))

    def test_lazy_edges_do_not_weaken_low_layers(self):
        # The packages below the runtimes may never reach rt/sweep/viz,
        # not even lazily.
        for pkg in ("sim", "analysis", "gcs", "topology", "algorithms"):
            lazy = LAZY_ALLOWED.get(pkg, frozenset())
            assert not lazy & {"rt", "viz"}, pkg
            if pkg != "sim":
                assert not lazy & {"sweep"}, pkg

    def test_exemptions_carry_reasons(self):
        for module, (extra, reason) in MODULE_EXEMPT.items():
            assert module.startswith("repro.")
            assert extra
            assert len(reason) > 20, "exemptions must be justified"


class TestBaseline:
    def test_write_load_roundtrip_and_grandfathering(self, tmp_path):
        rel, bad, _lineno, _good = SNIPPETS["FLT001"]
        _write_tree(tmp_path, rel, bad)
        report = run_check([tmp_path])
        assert report.new
        baseline = tmp_path / "check_baseline.json"
        write_baseline(baseline, report.all_current)
        assert load_baseline(baseline)
        again = run_check([tmp_path], baseline=baseline)
        assert again.new == []
        assert len(again.grandfathered) == len(report.new)
        assert again.exit_code == 0

    def test_baseline_survives_line_shifts_not_edits(self, tmp_path):
        rel, bad, _lineno, _good = SNIPPETS["FLT001"]
        path = _write_tree(tmp_path, rel, bad)
        baseline = tmp_path / "check_baseline.json"
        write_baseline(baseline, run_check([tmp_path]).all_current)
        # Prepending comment lines shifts line numbers: still pinned.
        path.write_text("# moved\n# down\n" + bad, encoding="utf-8")
        assert run_check([tmp_path], baseline=baseline).new == []
        # Editing the offending line makes the finding new again.
        path.write_text(bad.replace("t == end", "t != end"), encoding="utf-8")
        assert run_check([tmp_path], baseline=baseline).new


class TestRunnerApi:
    def test_default_rules_selection(self):
        assert default_rules() == ALL_RULES
        only = default_rules(["flt001"])
        assert [r.code for r in only] == ["FLT001"]
        with pytest.raises(ValueError, match="NOPE99"):
            default_rules(["NOPE99"])

    def test_rule_metadata_complete(self):
        codes = set()
        for rule in ALL_RULES:
            assert rule.code and rule.code not in codes
            codes.add(rule.code)
            assert rule.name and rule.hint and rule.contract

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_check([Path("no/such/dir")])


class TestCli:
    def _run(self, *argv: str, cwd: Path = REPO):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.check", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
        )

    def test_clean_tree_exits_zero(self):
        proc = self._run("src", "--baseline", str(BASELINE))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 new finding(s)" in proc.stdout

    def test_json_format(self):
        proc = self._run("src", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["new"] == []
        assert payload["checked_files"] > 100

    def test_bad_fixture_exits_nonzero(self, tmp_path):
        rel, bad, _lineno, _good = SNIPPETS["DET001"]
        _write_tree(tmp_path, rel, bad)
        proc = self._run(str(tmp_path))
        assert proc.returncode == 1
        assert "DET001" in proc.stdout

    def test_list_rules_names_every_family(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for code in RULE_CODES:
            assert code in proc.stdout

    def test_experiments_check_verb(self):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "check",
                "src",
                "--baseline",
                str(BASELINE),
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
            env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_unknown_rule_exits_two(self):
        proc = self._run("src", "--rules", "NOPE99")
        assert proc.returncode == 2


class TestFixedSiteRegressions:
    """Runtime complements for the findings this PR fixed in src/."""

    def test_algorithms_all_exports_standard_suite(self):
        import repro.algorithms as algorithms

        assert "standard_suite" in algorithms.__all__
        assert callable(algorithms.standard_suite)

    def test_experiments_all_exports_error_type(self):
        import repro.experiments as experiments

        assert "ExperimentError" in experiments.__all__

    @pytest.mark.parametrize(
        "package",
        [
            "repro",
            "repro.sim",
            "repro.topology",
            "repro.algorithms",
            "repro.analysis",
            "repro.gcs",
            "repro.apps",
            "repro.sweep",
            "repro.rt",
            "repro.viz",
            "repro.serve",
            "repro.experiments",
            "repro.check",
        ],
    )
    def test_every_all_entry_resolves(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), package
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.__all__ lists {name}"

    def test_version_matches_setup(self):
        import repro

        setup_text = (REPO / "setup.py").read_text(encoding="utf-8")
        assert f'version="{repro.__version__}"' in setup_text
