"""Tests for Topology and its generators."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.topology.generators import (
    balanced_tree,
    broadcast_cluster,
    complete,
    grid,
    line,
    random_geometric,
    ring,
    star,
    two_nodes,
)


class TestTopologyValidation:
    def test_rejects_asymmetric(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(TopologyError):
            Topology.fully_connected(d)

    def test_rejects_nonzero_diagonal(self):
        d = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(TopologyError):
            Topology.fully_connected(d)

    def test_rejects_sub_unit_minimum(self):
        d = np.array([[0.0, 0.5], [0.5, 0.0]])
        with pytest.raises(TopologyError):
            Topology.fully_connected(d)

    def test_accepts_above_unit_minimum(self):
        # The unit is a floor: two nodes at distance 2 are expressible.
        d = np.array([[0.0, 2.0], [2.0, 0.0]])
        assert Topology.fully_connected(d).min_distance == 2.0

    def test_relaxed_minimum_when_asked(self):
        d = np.array([[0.0, 0.5], [0.5, 0.0]])
        topo = Topology(
            d, frozenset({(0, 1)}), require_unit_min=False
        )
        assert topo.min_distance == 0.5

    def test_rejects_single_node(self):
        with pytest.raises(TopologyError):
            Topology.fully_connected(np.zeros((1, 1)))

    def test_rejects_bad_edge(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(TopologyError):
            Topology(d, frozenset({(0, 5)}))

    def test_radius_isolation_detected(self):
        d = np.array(
            [[0.0, 1.0, 10.0], [1.0, 0.0, 10.0], [10.0, 10.0, 0.0]]
        )
        with pytest.raises(TopologyError):
            Topology.with_radius(d, 1.0)


class TestTopologyQueries:
    def test_line_basics(self):
        topo = line(5)
        assert topo.n == 5
        assert topo.diameter == 4.0
        assert topo.min_distance == 1.0
        assert topo.distance(0, 3) == 3.0

    def test_neighbors_radius_one(self):
        topo = line(5)
        assert topo.neighbors(0) == [1]
        assert topo.neighbors(2) == [1, 3]

    def test_neighbors_radius_two(self):
        topo = line(5, comm_radius=2.0)
        assert topo.neighbors(2) == [0, 1, 3, 4]

    def test_degree_and_max_degree(self):
        topo = line(5)
        assert topo.degree(0) == 1
        assert topo.max_degree == 2

    def test_pairs_count(self):
        topo = line(5)
        assert len(list(topo.pairs())) == 10

    def test_adjacent_pairs(self):
        topo = line(4)
        assert topo.adjacent_pairs() == [(0, 1), (1, 2), (2, 3)]

    def test_pairs_at_distance(self):
        topo = line(4)
        assert topo.pairs_at_distance(3.0) == [(0, 3)]

    def test_comm_pairs_sorted(self):
        topo = line(4)
        assert topo.comm_pairs() == [(0, 1), (1, 2), (2, 3)]


class TestGenerators:
    def test_line_rejects_tiny(self):
        with pytest.raises(TopologyError):
            line(1)

    def test_ring_wraps(self):
        topo = ring(6)
        assert topo.distance(0, 5) == 1.0
        assert topo.distance(0, 3) == 3.0
        assert topo.diameter == 3.0

    def test_grid_manhattan(self):
        topo = grid(3, 4)
        assert topo.n == 12
        assert topo.distance(0, 11) == 2 + 3
        assert topo.positions is not None

    def test_complete_uniform(self):
        topo = complete(5, distance=1.0)
        assert topo.diameter == 1.0
        assert all(topo.distance(i, j) == 1.0 for i, j in topo.pairs())

    def test_star_shape(self):
        topo = star(4)
        assert topo.n == 5
        assert topo.distance(0, 3) == 1.0
        assert topo.distance(1, 2) == 2.0
        assert topo.neighbors(0) == [1, 2, 3, 4]

    def test_balanced_tree(self):
        topo = balanced_tree(2, 2)  # 7 nodes
        assert topo.n == 7
        assert topo.distance(0, 1) == 1.0
        # two leaves under different children of the root: distance 4
        assert topo.distance(3, 6) == 4.0

    def test_balanced_tree_rejects_bad_params(self):
        with pytest.raises(TopologyError):
            balanced_tree(1, 2)

    def test_random_geometric_normalized(self):
        topo = random_geometric(12, seed=3)
        assert topo.min_distance == pytest.approx(1.0)
        assert topo.positions is not None
        # deterministic for a seed
        again = random_geometric(12, seed=3)
        assert np.allclose(topo.distances, again.distances)

    def test_broadcast_cluster_tiny_uncertainty(self):
        topo = broadcast_cluster(6, uncertainty=0.01)
        assert topo.diameter == pytest.approx(0.01)
        assert not topo.require_unit_min

    def test_two_nodes(self):
        topo = two_nodes(5.0)
        assert topo.n == 2
        assert topo.diameter == 5.0

    def test_two_nodes_rejects_below_unit(self):
        with pytest.raises(TopologyError):
            two_nodes(0.5)
