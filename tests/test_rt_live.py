"""Wall-clock transport tests: asyncio in-process and UDP multi-process.

Marked ``rt`` (they sleep real wall time and spawn node processes);
``-m 'not rt'`` skips them when iterating on unrelated code.  Scenarios
are kept tiny and time-compressed so the whole module stays a few
seconds of wall clock; assertions check structure and boundedness, not
exact values — wall-clock runs carry genuine OS scheduling noise.
"""

from __future__ import annotations

import pytest

from repro.experiments.e14_live import skew_bound
from repro.rt import LiveRunConfig, run_live
from repro.rt.cli import main as live_main
from repro.rt.udp import decode_frame, encode_frame

pytestmark = pytest.mark.rt


class TestAsyncioTransport:
    def test_asyncio_run_completes_with_bounded_skew(self):
        config = LiveRunConfig(
            topology="line:5", algorithm="gradient", duration=6.0,
            rho=0.2, seed=1, transport="asyncio", time_scale=0.05,
        )
        execution = run_live(config)
        assert execution.source == "live-asyncio"
        assert execution.max_skew(config.duration) <= skew_bound(
            execution.topology.diameter
        )
        # Traffic actually flowed and was recorded.
        assert len(execution.messages) > 0
        assert len(execution.trace.of_kind("receive")) > 0
        assert len(execution.trace.of_kind("start")) == 5

    def test_asyncio_execution_passes_model_checks(self):
        config = LiveRunConfig(
            topology="ring:4", algorithm="averaging", duration=5.0,
            rho=0.2, seed=3, transport="asyncio", time_scale=0.05,
        )
        execution = run_live(config)
        execution.check_validity()
        execution.check_drift_bounds()
        execution.check_delay_bounds()

    def test_trace_times_stay_inside_run(self):
        config = LiveRunConfig(
            topology="line:4", algorithm="max-based", duration=4.0,
            rho=0.2, seed=0, transport="asyncio", time_scale=0.05,
        )
        execution = run_live(config)
        assert all(
            0.0 <= e.real_time <= config.duration for e in execution.trace
        )
        # Per-node event times are monotone (frozen-now discipline).
        for node in execution.topology.nodes:
            times = [e.real_time for e in execution.trace.for_node(node)]
            assert times == sorted(times)


class TestUdpTransport:
    def test_udp_run_completes_with_bounded_skew(self):
        config = LiveRunConfig(
            topology="line:4", algorithm="gradient", duration=6.0,
            rho=0.2, seed=1, transport="udp", time_scale=0.2,
        )
        execution = run_live(config)
        assert execution.source == "live-udp"
        assert execution.max_skew(config.duration) <= skew_bound(
            execution.topology.diameter
        )
        assert len(execution.trace.of_kind("start")) == 4
        assert len(execution.trace.of_kind("receive")) > 0
        execution.check_validity()
        execution.check_delay_bounds()

    def test_udp_trace_is_globally_time_ordered(self):
        config = LiveRunConfig(
            topology="line:3", algorithm="averaging", duration=4.0,
            rho=0.2, seed=2, transport="udp", time_scale=0.2,
        )
        execution = run_live(config)
        times = [e.real_time for e in execution.trace]
        assert times == sorted(times)
        # Every node reported home: each has clock state and a START.
        assert set(execution.logical) == set(execution.topology.nodes)


class TestWireFormat:
    def test_frame_roundtrip(self):
        record = {"seq": 7, "src": 0, "dst": 1, "payload": ["clock", 1.5],
                  "send": 0.25, "delay": 0.5}
        assert decode_frame(encode_frame(record)) == record

    def test_truncated_frame_rejected(self):
        frame = encode_frame({"seq": 1})
        assert decode_frame(frame[:-2]) is None
        assert decode_frame(b"") is None
        assert decode_frame(b"\x00\x00\x00\x05oops") is None


class TestLiveCli:
    def test_virtual_demo(self, capsys):
        assert live_main(
            ["--alg", "gradient", "--topology", "line", "--nodes", "5",
             "--transport", "virtual", "--duration", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "live-virtual" in out
        assert "max skew" in out

    def test_full_topology_spec_overrides_nodes(self, capsys):
        assert live_main(
            ["--topology", "grid:2,3", "--nodes", "99",
             "--transport", "virtual", "--duration", "5"]
        ) == 0
        assert "grid:2,3" in capsys.readouterr().out

    def test_bad_algorithm_exits_nonzero(self, capsys):
        assert live_main(
            ["--alg", "nope", "--transport", "virtual", "--duration", "5"]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_udp_cell_via_cli(self, capsys):
        """The E14-style udp quick cell, through the CLI, well under 30s."""
        assert live_main(
            ["--alg", "averaging", "--topology", "line", "--nodes", "3",
             "--transport", "udp", "--duration", "4", "--time-scale", "0.2"]
        ) == 0
        assert "live-udp" in capsys.readouterr().out
