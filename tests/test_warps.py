"""Tests for TimeWarp (gcs.warps)."""

import pytest

from repro.errors import ScheduleError
from repro.gcs.warps import TimeWarp


class TestConstruction:
    def test_must_fix_origin(self):
        with pytest.raises(ScheduleError):
            TimeWarp((1.0, 2.0), (1.0, 2.0))
        with pytest.raises(ScheduleError):
            TimeWarp((0.0, 2.0), (0.5, 2.0))

    def test_must_increase(self):
        with pytest.raises(ScheduleError):
            TimeWarp((0.0, 2.0, 1.0), (0.0, 1.0, 2.0))
        with pytest.raises(ScheduleError):
            TimeWarp((0.0, 1.0, 2.0), (0.0, 2.0, 1.0))

    def test_needs_two_knots(self):
        with pytest.raises(ScheduleError):
            TimeWarp((0.0,), (0.0,))

    def test_knee_validation(self):
        with pytest.raises(ScheduleError):
            TimeWarp.knee(5.0, 3.0, 0.9)
        with pytest.raises(ScheduleError):
            TimeWarp.knee(1.0, 2.0, 0.0)


class TestEvaluation:
    def test_identity(self):
        w = TimeWarp.identity(10.0)
        for t in (0.0, 3.3, 10.0, 15.0):
            assert w(t) == pytest.approx(t)

    def test_knee_shape(self):
        gamma = 1.25
        w = TimeWarp.knee(4.0, 10.0, 1.0 / gamma)
        assert w(2.0) == 2.0
        assert w(4.0) == 4.0
        assert w(10.0) == pytest.approx(4.0 + 6.0 / gamma)

    def test_zero_knee_is_pure_slope(self):
        w = TimeWarp.knee(0.0, 10.0, 0.8)
        assert w(5.0) == pytest.approx(4.0)

    def test_extends_beyond_domain_with_last_slope(self):
        w = TimeWarp.knee(4.0, 10.0, 0.5)
        assert w(12.0) == pytest.approx(w(10.0) + 1.0)

    def test_negative_time_rejected(self):
        w = TimeWarp.identity()
        with pytest.raises(ScheduleError):
            w(-1.0)
        with pytest.raises(ScheduleError):
            w.inverse(-1.0)


class TestInverse:
    def test_roundtrip(self):
        w = TimeWarp.knee(3.0, 12.0, 0.9)
        for t in (0.0, 1.5, 3.0, 7.7, 12.0):
            assert w.inverse(w(t)) == pytest.approx(t, abs=1e-12)

    def test_roundtrip_multi_knot(self):
        w = TimeWarp((0.0, 2.0, 5.0, 9.0), (0.0, 2.0, 4.0, 9.0))
        for t in (0.5, 2.0, 3.5, 6.0, 9.0):
            assert w.inverse(w(t)) == pytest.approx(t, abs=1e-12)


class TestProperties:
    def test_domain_and_range(self):
        w = TimeWarp.knee(4.0, 10.0, 0.5)
        assert w.domain_end == 10.0
        assert w.range_end == pytest.approx(7.0)

    def test_is_identity_until(self):
        w = TimeWarp.knee(4.0, 10.0, 0.5)
        assert w.is_identity_until(4.0)
        assert not w.is_identity_until(5.0)

    def test_slope_at(self):
        w = TimeWarp.knee(4.0, 10.0, 0.5)
        assert w.slope_at(1.0) == pytest.approx(1.0)
        assert w.slope_at(6.0) == pytest.approx(0.5)

    def test_monotonicity_sampled(self):
        w = TimeWarp.knee(2.0, 8.0, 0.7)
        samples = [w(t * 0.25) for t in range(40)]
        assert samples == sorted(samples)
