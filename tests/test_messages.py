"""Tests for messages and delay policies (sim.messages)."""

import random

import pytest

from repro.errors import DelayBoundError
from repro.sim.messages import (
    FixedFractionDelay,
    HalfDistanceDelay,
    JitterDelay,
    Message,
    PerPairDelay,
    SequenceDelay,
    UniformRandomDelay,
    validate_delay,
)

RNG = random.Random(0)


def d(policy, sender=0, receiver=1, t=0.0, distance=4.0, seq=0):
    return policy.delay(sender, receiver, t, distance, seq, RNG)


class TestValidateDelay:
    def test_in_band_passes(self):
        assert validate_delay(2.0, 4.0) == 2.0

    def test_clamps_tiny_violations(self):
        assert validate_delay(-1e-12, 4.0) == 0.0
        assert validate_delay(4.0 + 1e-12, 4.0) == 4.0

    def test_rejects_real_violations(self):
        with pytest.raises(DelayBoundError):
            validate_delay(-0.5, 4.0)
        with pytest.raises(DelayBoundError):
            validate_delay(4.5, 4.0)


class TestMessage:
    def test_receive_time(self):
        m = Message(seq=0, sender=0, receiver=1, payload=None, send_time=3.0, delay=1.5)
        assert m.receive_time == 4.5


class TestHalfDistance:
    def test_exactly_half(self):
        assert d(HalfDistanceDelay(), distance=6.0) == 3.0


class TestFixedFraction:
    def test_fraction(self):
        assert d(FixedFractionDelay(0.25), distance=8.0) == 2.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(DelayBoundError):
            FixedFractionDelay(1.5)
        with pytest.raises(DelayBoundError):
            FixedFractionDelay(-0.1)


class TestUniformRandom:
    def test_within_band(self):
        policy = UniformRandomDelay(0.25, 0.75)
        rng = random.Random(42)
        for _ in range(200):
            delay = policy.delay(0, 1, 0.0, 4.0, 0, rng)
            assert 1.0 <= delay <= 3.0

    def test_rejects_bad_band(self):
        with pytest.raises(DelayBoundError):
            UniformRandomDelay(0.8, 0.2)
        with pytest.raises(DelayBoundError):
            UniformRandomDelay(-0.1, 0.5)


class TestPerPair:
    def test_fixed_pair_and_fallback(self):
        policy = PerPairDelay()
        policy.set(0, 1, 3.5)
        assert d(policy, 0, 1) == 3.5
        assert d(policy, 1, 0) == 2.0  # fallback d/2

    def test_directionality(self):
        policy = PerPairDelay()
        policy.set(0, 1, 0.0)
        policy.set(1, 0, 4.0)
        assert d(policy, 0, 1) == 0.0
        assert d(policy, 1, 0) == 4.0

    def test_set_after_switches_at_time(self):
        policy = PerPairDelay()
        policy.set(0, 1, 4.0)
        policy.set_after(0, 1, 10.0, 0.5)
        assert d(policy, 0, 1, t=9.9) == 4.0
        assert d(policy, 0, 1, t=10.0) == 0.5
        assert d(policy, 0, 1, t=50.0) == 0.5

    def test_multiple_set_after_uses_latest(self):
        policy = PerPairDelay()
        policy.set_after(0, 1, 5.0, 1.0)
        policy.set_after(0, 1, 10.0, 2.0)
        assert d(policy, 0, 1, t=7.0) == 1.0
        assert d(policy, 0, 1, t=12.0) == 2.0


class TestJitter:
    def test_within_uncertainty(self):
        policy = JitterDelay()
        rng = random.Random(7)
        for _ in range(100):
            delay = policy.delay(0, 1, 0.0, 0.01, 0, rng)
            assert 0.0 <= delay <= 0.01


class TestSequenceDelay:
    def test_scripted_and_fallback(self):
        policy = SequenceDelay({3: 1.25})
        assert d(policy, seq=3) == 1.25
        assert d(policy, seq=4) == 2.0
