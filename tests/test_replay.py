"""Tests for execution replay (sim.replay)."""

import pytest

from repro.algorithms import AveragingAlgorithm, MaxBasedAlgorithm
from repro.experiments.common import drifted_rates
from repro.sim.messages import UniformRandomDelay
from repro.sim.replay import delay_script, replay, verify_replay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line


def random_run(alg, seed=3, duration=25.0):
    topo = line(6)
    return run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=0.3, seed=seed),
        rate_schedules=drifted_rates(topo, rho=0.3, seed=seed),
        delay_policy=UniformRandomDelay(),
    )


class TestDelayScript:
    def test_covers_all_messages(self):
        ex = random_run(MaxBasedAlgorithm())
        script = delay_script(ex)
        assert len(script) == len(ex.messages)
        for m in ex.messages:
            assert script[m.seq] == m.delay


class TestReplay:
    def test_replay_of_random_run_is_identical(self):
        alg = MaxBasedAlgorithm()
        ex = random_run(alg)
        replayed = verify_replay(ex, MaxBasedAlgorithm())
        # Logical trajectories match at sampled times.
        for node in ex.topology.nodes:
            for t in (5.0, 15.0, 25.0):
                assert replayed.logical_value(node, t) == pytest.approx(
                    ex.logical_value(node, t), abs=1e-6
                )

    def test_replay_keeps_delays_frozen(self):
        alg = MaxBasedAlgorithm()
        ex = random_run(alg)
        replayed = replay(ex, MaxBasedAlgorithm())
        assert [m.delay for m in replayed.messages] == pytest.approx(
            [m.delay for m in ex.messages]
        )

    def test_replay_with_different_seed_is_still_identical(self):
        # Seeds only feed random delay policies and node RNGs; a scripted
        # replay of a deterministic algorithm ignores both.
        alg = MaxBasedAlgorithm()
        ex = random_run(alg, seed=3)
        replayed = verify_replay(ex, MaxBasedAlgorithm(), seed=99)
        assert len(replayed.trace) == len(ex.trace)

    def test_different_algorithm_detected(self):
        from repro.errors import IndistinguishabilityError, SimulationError

        ex = random_run(MaxBasedAlgorithm())
        with pytest.raises((IndistinguishabilityError, SimulationError)):
            verify_replay(ex, AveragingAlgorithm())


@pytest.mark.engine
class TestEngineRoundTrip:
    """Replay across simulation engines: the latent gap this closes.

    An execution recorded under one engine must replay — and verify —
    under the other, in both directions.  The byte-identity contract
    between the engines makes the replayed runs comparable down to the
    trace digest.
    """

    def batched_run(self, alg, seed=3, duration=25.0):
        topo = line(6)
        return run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=duration, rho=0.3, seed=seed, engine="batched"),
            rate_schedules=drifted_rates(topo, rho=0.3, seed=seed),
            delay_policy=UniformRandomDelay(),
        )

    def test_scalar_run_replays_under_batched(self):
        ex = random_run(MaxBasedAlgorithm())
        replayed = verify_replay(ex, MaxBasedAlgorithm(), engine="batched")
        assert replayed.trace.digest() == ex.trace.digest()
        assert replayed.messages == ex.messages

    def test_batched_run_replays_under_scalar(self):
        ex = self.batched_run(MaxBasedAlgorithm())
        replayed = verify_replay(ex, MaxBasedAlgorithm(), engine="scalar")
        assert replayed.trace.digest() == ex.trace.digest()
        assert replayed.messages == ex.messages

    def test_batched_run_replays_under_batched(self):
        ex = self.batched_run(MaxBasedAlgorithm())
        replayed = verify_replay(ex, MaxBasedAlgorithm(), engine="batched")
        assert replayed.trace.digest() == ex.trace.digest()

    def test_scalar_and_batched_replays_agree(self):
        ex = random_run(MaxBasedAlgorithm())
        via_scalar = replay(ex, MaxBasedAlgorithm())
        via_batched = replay(ex, MaxBasedAlgorithm(), engine="batched")
        assert via_scalar.trace.digest() == via_batched.trace.digest()
        assert via_scalar.messages == via_batched.messages
