"""Tests for PiecewiseConstantRate (sim.rates)."""

import math

import pytest

from repro.errors import ScheduleError
from repro.sim.rates import PiecewiseConstantRate, constant_schedules


class TestConstruction:
    def test_default_is_unit_rate(self):
        r = PiecewiseConstantRate()
        assert r.rate_at(0.0) == 1.0
        assert r.value_at(5.0) == 5.0

    def test_constant(self):
        r = PiecewiseConstantRate.constant(2.0)
        assert r.value_at(3.0) == 6.0

    def test_must_start_at_zero(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate(starts=(1.0,), rates=(1.0,))

    def test_anchor_within_time_eps_is_normalized(self):
        # Regression for the repro-check FLT001 fix: an anchor carrying
        # accumulated float error within TIME_EPS is accepted — but
        # normalized to the exact origin, so segment lookup at t = 0
        # still lands inside the first segment instead of before it.
        r = PiecewiseConstantRate(starts=(1e-12, 2.0), rates=(1.0, 3.0))
        assert r.starts[0] == 0.0
        assert r.rate_at(0.0) == 1.0
        assert r.value_at(0.0) == 0.0
        assert r.value_at(3.0) == 2.0 + 3.0

    def test_anchor_beyond_time_eps_still_rejected(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate(starts=(1e-6,), rates=(1.0,))
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate(starts=(-1e-6,), rates=(1.0,))

    def test_breakpoints_must_increase(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate(starts=(0.0, 2.0, 2.0), rates=(1.0, 1.0, 1.0))
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate(starts=(0.0, 3.0, 1.0), rates=(1.0, 1.0, 1.0))

    def test_rates_must_be_positive(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate(starts=(0.0,), rates=(0.0,))
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate(starts=(0.0, 1.0), rates=(1.0, -0.5))

    def test_length_mismatch(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate(starts=(0.0, 1.0), rates=(1.0,))

    def test_from_segments_sorts(self):
        r = PiecewiseConstantRate.from_segments([(2.0, 3.0), (0.0, 1.0)])
        assert r.rate_at(1.0) == 1.0
        assert r.rate_at(2.5) == 3.0


class TestIntegration:
    def test_value_accumulates_across_segments(self):
        r = PiecewiseConstantRate(starts=(0.0, 2.0), rates=(1.0, 2.0))
        assert r.value_at(2.0) == 2.0
        assert r.value_at(3.0) == 4.0
        assert r.value_at(5.0) == 8.0

    def test_value_at_rejects_negative_time(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate().value_at(-1.0)

    def test_rate_at_is_right_continuous(self):
        r = PiecewiseConstantRate(starts=(0.0, 2.0), rates=(1.0, 3.0))
        assert r.rate_at(2.0) == 3.0
        assert r.rate_at(1.999999) == 1.0


class TestInversion:
    def test_roundtrip(self):
        r = PiecewiseConstantRate(starts=(0.0, 1.0, 4.0), rates=(1.0, 0.5, 2.0))
        for t in (0.0, 0.5, 1.0, 2.5, 4.0, 7.3):
            assert r.invert(r.value_at(t)) == pytest.approx(t, abs=1e-12)

    def test_invert_rejects_negative(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate().invert(-0.1)

    def test_invert_simple(self):
        r = PiecewiseConstantRate.constant(2.0)
        assert r.invert(10.0) == 5.0


class TestEditing:
    def test_with_rate_inserts_window(self):
        r = PiecewiseConstantRate.constant(1.0).with_rate(2.0, 5.0, 1.5)
        assert r.rate_at(1.0) == 1.0
        assert r.rate_at(2.0) == 1.5
        assert r.rate_at(4.999) == 1.5
        assert r.rate_at(5.0) == 1.0

    def test_with_rate_preserves_integral_outside(self):
        base = PiecewiseConstantRate(starts=(0.0, 10.0), rates=(1.0, 2.0))
        edited = base.with_rate(2.0, 4.0, 3.0)
        assert edited.value_at(2.0) == base.value_at(2.0)
        # After the window the *rates* match even though values diverge.
        assert edited.rate_at(11.0) == base.rate_at(11.0)

    def test_with_rate_rejects_empty_window(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate().with_rate(3.0, 3.0, 2.0)

    def test_with_rate_rejects_negative_start(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate().with_rate(-1.0, 3.0, 2.0)

    def test_with_rate_overlapping_existing_breakpoints(self):
        base = PiecewiseConstantRate(starts=(0.0, 3.0, 6.0), rates=(1.0, 2.0, 3.0))
        edited = base.with_rate(2.0, 7.0, 5.0)
        assert edited.rate_at(2.5) == 5.0
        assert edited.rate_at(6.5) == 5.0
        assert edited.rate_at(7.5) == 3.0

    def test_normalized_merges_equal_adjacent(self):
        r = PiecewiseConstantRate(starts=(0.0, 1.0, 2.0), rates=(1.0, 1.0, 2.0))
        n = r.normalized()
        assert n.starts == (0.0, 2.0)
        assert n.rates == (1.0, 2.0)


class TestQueries:
    def test_min_max_rate_windowed(self):
        r = PiecewiseConstantRate(starts=(0.0, 2.0, 4.0), rates=(1.0, 3.0, 0.5))
        assert r.min_rate() == 0.5
        assert r.max_rate() == 3.0
        assert r.min_rate(0.0, 1.5) == 1.0
        assert r.max_rate(0.0, 1.5) == 1.0
        assert r.max_rate(2.5, 3.0) == 3.0

    def test_within_bounds(self):
        r = PiecewiseConstantRate(starts=(0.0, 1.0), rates=(1.0, 1.2))
        assert r.within_bounds(0.9, 1.3)
        assert not r.within_bounds(1.1, 1.3)

    def test_breakpoints_in(self):
        r = PiecewiseConstantRate(starts=(0.0, 1.0, 2.0, 3.0), rates=(1,) * 4)
        assert r.breakpoints_in(0.5, 2.5) == [1.0, 2.0]

    def test_segments_iteration(self):
        r = PiecewiseConstantRate(starts=(0.0, 2.0), rates=(1.0, 2.0))
        segs = list(r.segments())
        assert len(segs) == 2
        assert segs[0].start == 0.0 and segs[0].end == 2.0
        assert math.isinf(segs[1].end)

    def test_equivalent_to(self):
        a = PiecewiseConstantRate(starts=(0.0, 2.0), rates=(1.0, 2.0))
        b = PiecewiseConstantRate(starts=(0.0, 1.0, 2.0), rates=(1.0, 1.0, 2.0))
        assert a.equivalent_to(b)
        c = PiecewiseConstantRate(starts=(0.0, 2.5), rates=(1.0, 2.0))
        assert not a.equivalent_to(c)
        # But they agree before the divergence point.
        assert a.equivalent_to(c, until=1.5)


def test_constant_schedules_helper():
    schedules = constant_schedules(range(4), 1.0)
    assert set(schedules) == {0, 1, 2, 3}
    assert all(s.rate_at(0.0) == 1.0 for s in schedules.values())
