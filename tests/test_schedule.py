"""Tests for AdversarySchedule (gcs.schedule)."""

import pytest

from repro.algorithms import MaxBasedAlgorithm
from repro.errors import ScheduleError
from repro.gcs.schedule import AdversarySchedule
from repro.sim.rates import PiecewiseConstantRate
from repro.topology.generators import line


class TestQuiet:
    def test_quiet_schedule_shape(self):
        topo = line(4)
        s = AdversarySchedule.quiet(topo.nodes, 10.0)
        assert s.duration == 10.0
        assert s.rates_constant_one(0.0, 10.0)

    def test_quiet_run_has_half_delays_and_zero_skew(self):
        topo = line(4)
        s = AdversarySchedule.quiet(topo.nodes, 10.0)
        ex = s.run(topo, MaxBasedAlgorithm(), rho=0.5, seed=0)
        assert ex.delays_within(0.5, 0.5)
        assert ex.max_skew(10.0) == pytest.approx(0.0, abs=1e-9)

    def test_duration_must_be_positive(self):
        with pytest.raises(ScheduleError):
            AdversarySchedule.quiet(range(3), 0.0)


class TestEditing:
    def test_extended(self):
        s = AdversarySchedule.quiet(range(3), 10.0)
        assert s.extended(5.0).duration == 15.0

    def test_extended_rejects_nonpositive(self):
        s = AdversarySchedule.quiet(range(3), 10.0)
        with pytest.raises(ScheduleError):
            s.extended(0.0)

    def test_with_rates_replaces(self):
        s = AdversarySchedule.quiet(range(2), 10.0)
        fast = {0: PiecewiseConstantRate.constant(1.2),
                1: PiecewiseConstantRate.constant(1.0)}
        s2 = s.with_rates(fast)
        assert not s2.rates_constant_one(0.0, 10.0)
        # original untouched (immutability)
        assert s.rates_constant_one(0.0, 10.0)

    def test_rates_constant_one_windowed(self):
        rates = {
            0: PiecewiseConstantRate.constant(1.0).with_rate(5.0, 8.0, 1.1),
            1: PiecewiseConstantRate.constant(1.0),
        }
        s = AdversarySchedule(rates=rates, delay_oracle=None, duration=10.0)
        assert s.rates_constant_one(0.0, 5.0)
        assert not s.rates_constant_one(0.0, 10.0)
        assert s.rates_constant_one(8.0, 10.0)


class TestRunning:
    def test_rerun_is_deterministic(self):
        topo = line(5)
        s = AdversarySchedule.quiet(topo.nodes, 12.0)
        ex1 = s.run(topo, MaxBasedAlgorithm(), rho=0.5, seed=0)
        ex2 = s.run(topo, MaxBasedAlgorithm(), rho=0.5, seed=0)
        assert len(ex1.trace) == len(ex2.trace)
        assert [m.delay for m in ex1.messages] == [m.delay for m in ex2.messages]
