"""Tests for the experiment registry and runners (smoke level).

Each experiment runs at quick scale with reduced parameters where the
runner supports it; assertions check the *shape* claims the paper makes,
not absolute numbers.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import REGISTRY, run_experiment
from repro.experiments.cli import main as cli_main


class TestRegistry:
    def test_all_experiments_present(self):
        # E01-E11 reproduce the paper; E12 (Section 9 candidates), E13
        # (fault robustness), E14 (sim-vs-live), E15 (gradient profiles
        # at scale), and E16 (mobility) are the extensions.
        assert sorted(REGISTRY) == [f"E{k:02d}" for k in range(1, 17)]

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("E99")

    def test_case_insensitive(self):
        result = run_experiment("e03")
        assert result.experiment_id == "E03"

    def test_bad_scale_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("E01", scale="huge")


class TestRunners:
    def test_e01_linear_growth(self):
        result = run_experiment("E01")
        series = result.data["series"]["max-based"]
        ds = sorted(series)
        assert series[ds[-1]] > series[ds[0]]
        # Omega(d): at least the d/12 guarantee scale.
        for d, skew in series.items():
            assert skew >= d / 12.0 - 1e-6

    def test_e03_figure_shape(self):
        result = run_experiment("E03")
        windows = result.data["windows"]
        knees = [w[0] for w in windows.values()]
        assert knees == sorted(knees)

    def test_e04_linear_in_d(self):
        result = run_experiment("E04")
        series = result.data["series"]["max-based"]
        ds = sorted(series)
        assert series[ds[-1]] > series[ds[0]]
        # peak ~ D: within a small constant factor
        for d in ds:
            assert series[d] > 0.5 * d

    def test_e08_cluster_beats_multihop(self):
        result = run_experiment("E08")
        assert result.data["cluster_skew"] < result.data["line_skew"]

    def test_e09_sync_beats_null(self):
        result = run_experiment("E09")
        series = result.data["series"]
        tolerances = sorted(series["max-based"])
        mid = tolerances[len(tolerances) // 2]
        assert series["max-based"][mid] < series["null"][mid]

    def test_e10_budget_grows_linearly(self):
        result = run_experiment("E10")
        series = result.data["series"]["max-based"]
        assert len(series) >= 3

    def test_e11_renders(self):
        result = run_experiment("E11")
        rendered = result.render()
        assert "validity" in rendered
        profiles = result.data["profiles"]
        assert set(profiles) == {
            "max-based",
            "srikanth-toueg",
            "averaging",
            "bounded-catch-up",
            "slewing-max",
            "external",
        }

    def test_e15_scale_cells_and_timings(self):
        result = run_experiment("E15")
        profiles = result.data["profiles"]
        # Three topology families per diameter, profiles rising to D=128.
        assert {c.split(":")[0] for c in profiles} == {
            "line",
            "grid",
            "geometric",
        }
        assert "line:128" in profiles
        for cell, profile in profiles.items():
            assert profile, cell
            assert all(v >= 0.0 for v in profile.values())
        # The batched analysis must not dominate the simulation: the
        # whole point is that big-D cells are simulation-bound now.
        for cell, timing in result.data["timings"].items():
            assert timing["field_s"] + timing["query_s"] < max(
                timing["sim_s"], 1.0
            ), cell

    def test_result_render_contains_tables(self):
        result = run_experiment("E03")
        out = result.render()
        assert "E03" in out
        assert "paper artifact" in out


@pytest.mark.slow
class TestSlowRunners:
    def test_e02_growth_with_diameter(self):
        result = run_experiment("E02")
        series = result.data["series"]["max-based"]
        ds = sorted(series)
        assert series[ds[-1]] >= series[ds[0]] - 1e-9

    def test_e05_all_verified(self):
        result = run_experiment("E05")
        for row in result.tables[0].as_dicts():
            assert row["indist."] == "yes"
            assert row["delays in [d/4,3d/4]"] == "yes"

    def test_e06_within_bound(self):
        result = run_experiment("E06")
        for row in result.tables[0].as_dicts():
            assert row["within bound"] == "yes"

    def test_e07_adversarial_collisions_appear(self):
        result = run_experiment("E07")
        adv = result.data["series"]["adversarial"]
        quiet = result.data["series"]["quiet"]
        assert all(v == 0 for v in quiet.values())
        assert any(v > 0 for v in adv.values())

    def test_e12_candidates_flat_spikes(self):
        result = run_experiment("E12")
        spikes = result.data["spikes"]
        ds = sorted(spikes["max-based"])
        assert spikes["max-based"][ds[-1]] > 2.0 * spikes["max-based"][ds[0]]
        for name in ("slewing-max", "bounded-catch-up"):
            assert spikes[name][ds[-1]] < spikes["max-based"][ds[-1]] / 2.0


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E11" in out and "E12" in out
        # The listing names every registered experiment plus its scale
        # knobs, and E14 (the live runtime) is present.
        assert "E14" in out
        assert "scales: quick, full" in out
        assert "workers" in out  # E13/E14 expose the workers knob

    def test_list_covers_whole_registry(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in REGISTRY:
            assert f"{key}:" in out

    def test_verbs_must_come_first(self, capsys):
        assert cli_main(["E03", "live"]) == 2
        assert "'live' verb must come first" in capsys.readouterr().err

    def test_run_single(self, capsys):
        assert cli_main(["E03"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_run_multiple(self, capsys):
        assert cli_main(["E03", "E01"]) == 0
        out = capsys.readouterr().out
        assert "E03" in out and "E01" in out

    def test_unknown_id_exits_nonzero(self, capsys):
        assert cli_main(["E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
