"""Tests for the averaging baseline."""

import pytest

from repro.algorithms import AveragingAlgorithm, NullAlgorithm
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.4


def run_line(alg, n=6, duration=50.0, fast=None):
    topo = line(n)
    rates = {}
    if fast is not None:
        rates[fast] = PiecewiseConstantRate.constant(1.0 + RHO)
    return run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=0),
        rate_schedules=rates,
    )


class TestParameters:
    def test_rejects_bad_pull(self):
        with pytest.raises(ValueError):
            AveragingAlgorithm(pull=0.0)
        with pytest.raises(ValueError):
            AveragingAlgorithm(pull=1.5)

    def test_pull_one_allowed(self):
        AveragingAlgorithm(pull=1.0)


class TestBehavior:
    def test_converges_toward_fast_node(self):
        ex = run_line(AveragingAlgorithm(period=0.5), fast=5)
        null = run_line(NullAlgorithm(), fast=5)
        assert ex.max_skew(50.0) < null.max_skew(50.0) / 2.0

    def test_smaller_pull_adjusts_more_slowly(self):
        gentle = run_line(AveragingAlgorithm(period=0.5, pull=0.2), fast=5)
        eager = run_line(AveragingAlgorithm(period=0.5, pull=1.0), fast=5)
        assert eager.max_skew(50.0) <= gentle.max_skew(50.0) + 1e-9

    def test_validity(self):
        run_line(AveragingAlgorithm(), fast=3).check_validity()

    def test_jumps_are_halved_gaps(self):
        # With pull=0.5 the first jump closes half the observed gap.
        ex = run_line(AveragingAlgorithm(period=0.5, pull=0.5), fast=5)
        jumps = [e for e in ex.trace.of_kind("jump") if e.node == 4]
        assert jumps, "neighbor of the fast node must adjust"
