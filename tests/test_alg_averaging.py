"""Tests for the averaging baseline."""

import pytest

from _fault_helpers import assert_monotone_logical, run_crash_recovery
from repro.algorithms import AveragingAlgorithm, NullAlgorithm
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.4


def run_line(alg, n=6, duration=50.0, fast=None):
    topo = line(n)
    rates = {}
    if fast is not None:
        rates[fast] = PiecewiseConstantRate.constant(1.0 + RHO)
    return run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=0),
        rate_schedules=rates,
    )


class TestParameters:
    def test_rejects_bad_pull(self):
        with pytest.raises(ValueError):
            AveragingAlgorithm(pull=0.0)
        with pytest.raises(ValueError):
            AveragingAlgorithm(pull=1.5)

    def test_pull_one_allowed(self):
        AveragingAlgorithm(pull=1.0)


class TestBehavior:
    def test_converges_toward_fast_node(self):
        ex = run_line(AveragingAlgorithm(period=0.5), fast=5)
        null = run_line(NullAlgorithm(), fast=5)
        assert ex.max_skew(50.0) < null.max_skew(50.0) / 2.0

    def test_smaller_pull_adjusts_more_slowly(self):
        gentle = run_line(AveragingAlgorithm(period=0.5, pull=0.2), fast=5)
        eager = run_line(AveragingAlgorithm(period=0.5, pull=1.0), fast=5)
        assert eager.max_skew(50.0) <= gentle.max_skew(50.0) + 1e-9

    def test_validity(self):
        run_line(AveragingAlgorithm(), fast=3).check_validity()

    def test_jumps_are_halved_gaps(self):
        # With pull=0.5 the first jump closes half the observed gap.
        ex = run_line(AveragingAlgorithm(period=0.5, pull=0.5), fast=5)
        jumps = [e for e in ex.trace.of_kind("jump") if e.node == 4]
        assert jumps, "neighbor of the fast node must adjust"


@pytest.mark.faults
class TestRecovery:
    """Crash-recovery: monotone clock, stale estimates dropped, re-convergence."""

    def test_recovered_clock_never_jumps_backward(self):
        ex = run_crash_recovery(AveragingAlgorithm(period=0.5))
        assert_monotone_logical(ex, 2)
        ex.check_validity()

    def test_reconverges_to_fault_free_skew(self):
        ex = run_crash_recovery(AveragingAlgorithm(period=0.5))
        assert ex.max_skew(16.5) > ex.max_skew(40.0)
        assert ex.max_skew(40.0) < 4.0

    def test_recovery_clears_stale_estimates(self):
        from repro.algorithms.averaging import AveragingProcess

        class Probe(AveragingProcess):
            cleared_with = None

            def recover(self, api):
                Probe.cleared_with = len(self.estimates.known())
                super().recover(api)
                assert self.estimates.known() == []

        topo = line(5)
        procs = {n: Probe(0.5, 0.5) for n in topo.nodes}
        from repro.sim.faults import FaultPlan
        run_simulation(
            topo,
            procs,
            SimConfig(duration=30.0, rho=RHO, seed=0),
            fault_plan=FaultPlan().with_crash(2, at=8.0, recover_at=16.0),
        )
        # The crashed node had neighbor estimates to discard.
        assert Probe.cleared_with and Probe.cleared_with > 0
