"""Tests for Reference Broadcast Synchronization."""

import pytest

from repro.algorithms import RBSAlgorithm
from repro.experiments.common import drifted_rates
from repro.sim.messages import JitterDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import broadcast_cluster

RHO = 0.1


def run_cluster(n=6, duration=40.0, eps=0.01, seed=0):
    topo = broadcast_cluster(n, uncertainty=eps)
    alg = RBSAlgorithm(period=2.0)
    ex = run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=seed),
        rate_schedules=drifted_rates(topo, rho=RHO, seed=seed),
        delay_policy=JitterDelay(),
    )
    return ex, alg


def receiver_spread(ex, beacon, t):
    values = [
        ex.logical_value(n, t) for n in ex.topology.nodes if n != beacon
    ]
    return max(values) - min(values)


class TestRBS:
    def test_receivers_converge_to_jitter_scale(self):
        ex, alg = run_cluster()
        # After a few pulses the receiver spread collapses to roughly the
        # drift accumulated within one period plus jitter — far below the
        # unsynchronized drift (~0.2 * 40 = 8).
        spread = max(receiver_spread(ex, alg.beacon, t) for t in (30.0, 35.0, 40.0))
        assert spread < 1.0

    def test_no_runaway_offsets(self):
        """Regression: offsets must converge, not grow once per pulse."""
        ex, alg = run_cluster(duration=60.0)
        early = receiver_spread(ex, alg.beacon, 20.0)
        late = receiver_spread(ex, alg.beacon, 60.0)
        assert late < early + 1.0
        # Logical clocks stay within a sane envelope of real time.
        for node in ex.topology.nodes:
            assert ex.logical_value(node, 60.0) < 60.0 * 1.5

    def test_validity(self):
        ex, _ = run_cluster()
        ex.check_validity()

    def test_beacon_emits_numbered_pulses(self):
        ex, alg = run_cluster()
        pulses = [
            e.detail[1][1]
            for e in ex.trace.of_kind("send")
            if e.node == alg.beacon and e.detail[1][0] == "pulse"
        ]
        per_receiver = len(ex.topology.nodes) - 1
        assert len(pulses) >= 2 * per_receiver
        # Pulse numbers increase.
        distinct = sorted(set(pulses))
        assert distinct == list(range(1, len(distinct) + 1))

    def test_observation_exchange_happens(self):
        ex, alg = run_cluster()
        obs = [
            e
            for e in ex.trace.of_kind("send")
            if e.node != alg.beacon and e.detail[1][0] == "obs"
        ]
        assert obs
