"""Cross-validation: the virtual-time live runtime vs the simulator.

The acceptance contract of the LiveNode adapter: an unchanged algorithm
process run on :class:`VirtualTimeTransport` with the same (topology,
rates, delays, seed, duration) produces an execution matching the
:class:`Simulator`'s within the documented tolerance — in fact the two
are identical to float round-off, because the engines share event
ordering, RNG streams, and clock arithmetic.  Any widening of this gap
is a semantic change in the adapter, not noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RtError
from repro.rt import LiveRunConfig, run_live
from repro.sim.simulator import SimConfig, run_simulation
from repro.sweep.families import (
    algorithm_from_spec,
    delay_policy_from_spec,
    rates_from_spec,
    topology_from_spec,
)

#: Documented sim-vs-virtual tolerance on per-sample skew trajectories.
TOLERANCE = 1e-9


def _sim_twin(config: LiveRunConfig):
    """The simulator run of exactly the scenario ``config`` describes."""
    topology = topology_from_spec(config.topology)
    algorithm = algorithm_from_spec(config.algorithm)
    return run_simulation(
        topology,
        algorithm.processes(topology),
        SimConfig(duration=config.duration, rho=config.rho, seed=config.seed),
        rate_schedules=rates_from_spec(
            config.rates, topology, rho=config.rho, seed=config.seed,
            horizon=config.duration,
        ),
        delay_policy=delay_policy_from_spec(config.delays),
    )


GRADIENT_8 = LiveRunConfig(
    topology="line:8", algorithm="gradient", rates="drifted",
    delays="uniform", duration=30.0, rho=0.2, seed=5, transport="virtual",
)


class TestCrossValidation:
    def test_gradient_skew_trajectory_matches_simulator(self):
        """The acceptance criterion: 8-node line, gradient, same seed —
        the max-skew trajectory agrees within TOLERANCE at every sample."""
        live = run_live(GRADIENT_8)
        sim = _sim_twin(GRADIENT_8)
        times = sim.sample_times(0.5)
        live_traj = np.array([live.max_skew(t) for t in times])
        sim_traj = np.array([sim.max_skew(t) for t in times])
        assert np.abs(live_traj - sim_traj).max() <= TOLERANCE

    def test_trace_and_messages_identical(self):
        live = run_live(GRADIENT_8)
        sim = _sim_twin(GRADIENT_8)
        assert len(live.trace) == len(sim.trace)
        for a, b in zip(live.trace, sim.trace):
            assert repr(a) == repr(b)
        assert [repr(m) for m in live.messages] == [repr(m) for m in sim.messages]

    @pytest.mark.parametrize(
        "algorithm", ["max-based", "averaging", "slewing-max", "srikanth-toueg"]
    )
    def test_every_algorithm_matches_simulator(self, algorithm):
        config = LiveRunConfig(
            topology="ring:6", algorithm=algorithm, rates="spread",
            delays="half", duration=15.0, rho=0.2, seed=2, transport="virtual",
        )
        live = run_live(config)
        sim = _sim_twin(config)
        for t in sim.sample_times(1.0):
            assert abs(live.max_skew(t) - sim.max_skew(t)) <= TOLERANCE

    def test_virtual_runs_deterministic(self):
        one = run_live(GRADIENT_8)
        two = run_live(GRADIENT_8)
        assert [repr(e) for e in one.trace] == [repr(e) for e in two.trace]


class TestExecutionCompatibility:
    """Live executions feed the whole measurement stack verbatim."""

    def test_model_compliance_checks_pass(self):
        execution = run_live(GRADIENT_8)
        execution.check_validity()
        execution.check_drift_bounds()
        execution.check_delay_bounds()

    def test_analysis_functions_accept_live_runs(self):
        from repro.analysis.convergence import settling_time
        from repro.analysis.skew import summarize

        execution = run_live(GRADIENT_8)
        skew = summarize(execution)
        assert skew.max_skew > 0.0
        settling_time(execution, threshold=5.0)  # shape check, value free
        profile = execution.gradient_profile()
        assert min(profile) == pytest.approx(1.0)
        assert execution.source == "live-virtual"

    def test_trace_queries_work(self):
        execution = run_live(GRADIENT_8)
        for node in execution.topology.nodes:
            observations = execution.trace.local_observations(node)
            assert observations[0][0] == "start"


class TestConfigValidation:
    def test_unknown_transport_rejected(self):
        with pytest.raises(RtError):
            LiveRunConfig(transport="carrier-pigeon")

    def test_bad_duration_rejected(self):
        with pytest.raises(RtError):
            LiveRunConfig(duration=0.0)

    def test_bad_time_scale_rejected(self):
        with pytest.raises(RtError):
            LiveRunConfig(time_scale=-1.0)

    def test_virtual_transport_runs_once(self):
        from repro.rt import LiveRecorder, VirtualTimeTransport

        transport = VirtualTimeTransport(recorder=LiveRecorder(), seed=0)
        transport.run({}, 1.0)
        with pytest.raises(RtError):
            transport.run({}, 1.0)
