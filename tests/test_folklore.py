"""Tests for the folklore Omega(d) construction (gcs.folklore)."""

import pytest

from repro.algorithms import BoundedCatchUpAlgorithm, MaxBasedAlgorithm
from repro.errors import ConstructionError
from repro.gcs.folklore import force_distance_skew


class TestValidation:
    def test_rejects_sub_unit_distance(self):
        with pytest.raises(ConstructionError):
            force_distance_skew(MaxBasedAlgorithm(), 0)

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConstructionError):
            force_distance_skew(MaxBasedAlgorithm(), 4, rounds=0)


class TestForcedSkew:
    def test_single_round_meets_guarantee(self):
        result = force_distance_skew(MaxBasedAlgorithm(), 6, rounds=1)
        # The quiet baseline has zero skew and the extension cannot erase
        # more than the delay floor; the guarantee d/12 applies to the
        # skew at T', and for max-based the residual stays above d/12 - d/2
        # ... measured: it retains at least the d/12 guarantee at small d.
        assert result.forced_skew > 0.0
        assert result.guaranteed == pytest.approx(0.5)

    def test_skew_grows_linearly_with_distance(self):
        skews = {
            d: force_distance_skew(MaxBasedAlgorithm(), d, rounds=2).forced_skew
            for d in (2, 4, 8)
        }
        assert skews[4] > skews[2]
        assert skews[8] > skews[4]
        # Linear shape: doubling d roughly doubles the forced skew.
        assert skews[8] / skews[4] == pytest.approx(2.0, rel=0.5)

    def test_result_fields(self):
        result = force_distance_skew(MaxBasedAlgorithm(), 4, rounds=2)
        assert result.distance == 4
        assert result.rounds == 2
        assert result.skew_per_distance == pytest.approx(
            result.forced_skew / 4.0
        )
        result.execution.check_validity()
        result.execution.check_delay_bounds()

    def test_gradient_algorithm_also_forced(self):
        result = force_distance_skew(
            BoundedCatchUpAlgorithm(), 6, rounds=1
        )
        assert result.forced_skew > 0.0
