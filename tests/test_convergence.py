"""Tests for convergence metrics (analysis.convergence)."""

import pytest

from repro.algorithms import MaxBasedAlgorithm, NullAlgorithm
from repro.analysis.convergence import settling_time, steady_state
from repro.sim.execution import Execution
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.4


def run(alg, duration=40.0):
    topo = line(5)
    rates = {4: PiecewiseConstantRate.constant(1.0 + RHO)}
    return run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=0),
        rate_schedules=rates,
    )


class TestSettlingTime:
    def test_synchronized_run_settles(self):
        ex = run(MaxBasedAlgorithm(period=0.5))
        t = settling_time(ex, threshold=4.0)
        assert t is not None
        assert t < ex.duration

    def test_unsynchronized_run_never_settles(self):
        ex = run(NullAlgorithm())
        # Drift accumulates 0.4/s: max skew ends at 16 and keeps growing.
        assert settling_time(ex, threshold=4.0) is None

    def test_trivial_threshold_settles_at_zero(self):
        ex = run(NullAlgorithm())
        assert settling_time(ex, threshold=1e9) == 0.0

    def test_custom_metric(self):
        ex = run(MaxBasedAlgorithm(period=0.5))
        t = settling_time(
            ex, threshold=3.0, metric=Execution.max_adjacent_skew
        )
        assert t is not None


class TestSteadyState:
    def test_summary_ordering(self):
        ex = run(MaxBasedAlgorithm(period=0.5))
        s = steady_state(ex)
        assert s.mean_max_skew <= s.worst_max_skew + 1e-12
        assert s.mean_adjacent_skew <= s.worst_adjacent_skew + 1e-12
        assert s.worst_adjacent_skew <= s.worst_max_skew + 1e-12
        assert s.tail_start == pytest.approx(30.0)

    def test_synchronized_beats_null_in_steady_state(self):
        synced = steady_state(run(MaxBasedAlgorithm(period=0.5)))
        free = steady_state(run(NullAlgorithm()))
        assert synced.mean_max_skew < free.mean_max_skew / 2

    def test_bad_fraction_rejected(self):
        ex = run(NullAlgorithm(), duration=10.0)
        with pytest.raises(ValueError):
            steady_state(ex, tail_fraction=0.0)
