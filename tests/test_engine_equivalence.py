"""Differential trace-equivalence harness: batched engine vs. scalar loop.

The batched engine (``repro.sim.engine``) is allowed to reorganize *how*
work is done — array-backed event queue, batch-scheduled broadcast
deliveries, memoized schedule cursors — but never *what* happens: every
scenario must produce a byte-identical trace digest, identical message
list, identical fault counters and bitwise-equal clock values under both
engines (see ``tests/_engine_helpers.py`` for the exact contract).

The suite crosses every algorithm with every topology family, layers
fault plans, random-delay policies, mobility (dynamic topology) and
untraced runs on top, and finishes with a hypothesis property test that
draws whole random scenarios.  Select with ``-m engine``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from _engine_helpers import assert_equivalent, run_both, run_engine
from repro.algorithms import (
    AveragingAlgorithm,
    BoundedCatchUpAlgorithm,
    MaxBasedAlgorithm,
    SlewingMaxAlgorithm,
)
from repro.sim.faults import FaultPlan
from repro.sim.messages import (
    FixedFractionDelay,
    JitterDelay,
    PerPairDelay,
    UniformRandomDelay,
)
from repro.sim.rates import PiecewiseConstantRate
from repro.sweep.families import drifted_rates, wandering_rates
from repro.topology.dynamic import snapshot_sequence
from repro.topology.generators import grid, line, random_geometric, ring

pytestmark = pytest.mark.engine

ALGORITHMS = {
    "max": MaxBasedAlgorithm,
    "avg": AveragingAlgorithm,
    "bcu": BoundedCatchUpAlgorithm,
    "slew": SlewingMaxAlgorithm,
}

TOPOLOGIES = {
    "line": lambda: line(7),
    "ring": lambda: ring(8),
    "grid": lambda: grid(3, 3),
    "geometric": lambda: random_geometric(12, seed=4),
}


class TestAlgorithmTopologyGrid:
    """Every algorithm x every topology family, benign half-distance runs."""

    @pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
    def test_equivalent(self, alg_name, topo_name):
        topo = TOPOLOGIES[topo_name]()
        rates = drifted_rates(topo, rho=0.3, seed=7)
        scalar, batched = run_both(
            topo, ALGORITHMS[alg_name], duration=12.0, seed=7, rate_schedules=rates
        )
        assert_equivalent(scalar, batched)


class TestDelayPolicies:
    """Policies with and without a ``broadcast_delays`` hook.

    ``FixedFractionDelay`` exercises the batch-scheduled broadcast path;
    the RNG-driven and stateful policies have no hook, so the engine
    must fall back to per-send delay draws in exactly the scalar loop's
    RNG order.
    """

    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: FixedFractionDelay(0.75),
            lambda: UniformRandomDelay(),
            lambda: UniformRandomDelay(0.25, 0.75),
            lambda: JitterDelay(),
            lambda: PerPairDelay().set(0, 1, 0.9).set_after(1, 0, 6.0, 0.1),
        ],
    )
    def test_equivalent(self, policy_factory):
        topo = line(6)
        scalar, batched = run_both(
            topo,
            MaxBasedAlgorithm,
            duration=15.0,
            seed=3,
            rate_schedules=drifted_rates(topo, rho=0.2, seed=3),
            delay_policy=policy_factory(),
        )
        assert_equivalent(scalar, batched)


class TestFaultPlans:
    """Crash windows, link faults and down windows under both engines."""

    PLANS = {
        "crash-recover": lambda: FaultPlan().with_crash(2, 4.0, recover_at=9.0),
        "crash-forever": lambda: FaultPlan().with_crash(1, 3.0),
        "link-noise": lambda: FaultPlan().with_link(
            loss=0.15, duplicate=0.1, reorder=0.1
        ),
        "link-down": lambda: FaultPlan().with_link_down(0, 1, (2.0, 8.0)),
        "everything": lambda: FaultPlan()
        .with_crash(3, 5.0, recover_at=10.0)
        .with_link(loss=0.1, duplicate=0.1, reorder=0.2)
        .with_link_down(1, 2, (3.0, 7.0)),
    }

    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    @pytest.mark.parametrize("alg_name", ["max", "avg"])
    def test_equivalent(self, plan_name, alg_name):
        topo = grid(3, 3)
        scalar, batched = run_both(
            topo,
            ALGORITHMS[alg_name],
            duration=14.0,
            seed=11,
            rate_schedules=drifted_rates(topo, rho=0.3, seed=11),
            fault_plan=self.PLANS[plan_name](),
        )
        assert scalar.fault_stats is not None
        assert_equivalent(scalar, batched)


class TestMobility:
    """Dynamic-topology runs: rewires interleave with deliveries and timers."""

    @pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
    def test_snapshot_sequence_equivalent(self, alg_name):
        dyn = snapshot_sequence((0.0, line(6)), (8.0, ring(6)), (16.0, line(6)))
        scalar, batched = run_both(
            dyn, ALGORITHMS[alg_name], duration=20.0, seed=5
        )
        assert scalar.is_dynamic and batched.is_dynamic
        assert_equivalent(scalar, batched)

    def test_swap_coinciding_with_timers(self):
        # Change-points landing exactly on whole-period timer instants:
        # the swap must pop before every same-instant delivery or firing
        # under both engines (lowest seq at the instant).
        dyn = snapshot_sequence((0.0, line(5)), (4.0, ring(5)), (8.0, line(5)))
        scalar, batched = run_both(dyn, MaxBasedAlgorithm, duration=12.0, seed=2)
        assert_equivalent(scalar, batched)

    def test_wandering_rates_equivalent(self):
        topo = line(6)
        rates = wandering_rates(topo, rho=0.4, horizon=15.0, seed=9)
        scalar, batched = run_both(
            topo, MaxBasedAlgorithm, duration=15.0, rho=0.4, seed=9,
            rate_schedules=rates,
        )
        assert_equivalent(scalar, batched)


class TestUntraced:
    """``record_trace=False`` must not change what the run computes."""

    def test_untraced_matches_scalar_untraced(self):
        topo = line(8)
        scalar, batched = run_both(
            topo,
            MaxBasedAlgorithm,
            duration=15.0,
            seed=1,
            rate_schedules=drifted_rates(topo, rho=0.3, seed=1),
            record_trace=False,
        )
        assert len(scalar.trace) == len(batched.trace) == 0
        assert_equivalent(scalar, batched)

    def test_untraced_clocks_match_traced_run(self):
        # Tracing is pure observation: turning it off must leave
        # messages and clocks bitwise identical to the traced run.
        topo = ring(7)
        traced = run_engine("batched", topo, MaxBasedAlgorithm(), duration=12.0, seed=6)
        untraced = run_engine(
            "batched", topo, MaxBasedAlgorithm(), duration=12.0, seed=6,
            record_trace=False,
        )
        assert traced.messages == untraced.messages
        import numpy as np

        probe = np.linspace(0.0, 12.0, 61)
        assert np.array_equal(
            traced.logical_matrix(probe), untraced.logical_matrix(probe)
        )


@st.composite
def scenarios(draw):
    """A whole random scenario: network, rates, algorithm, delays, faults."""
    n = draw(st.integers(min_value=3, max_value=8))
    shape = draw(st.sampled_from(["line", "ring", "grid"]))
    if shape == "line":
        topo = line(n)
    elif shape == "ring":
        topo = ring(max(n, 3))
    else:
        topo = grid(2, max(n // 2, 2))
    rho = draw(st.sampled_from([0.1, 0.3, 0.5]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    rates = {
        node: PiecewiseConstantRate.constant(rng.uniform(1 - rho, 1 + rho))
        for node in topo.nodes
    }
    alg_name = draw(st.sampled_from(sorted(ALGORITHMS)))
    policy = draw(
        st.sampled_from(["half", "fraction", "uniform", "jitter"])
    )
    delay_policy = {
        "half": None,
        "fraction": FixedFractionDelay(0.5),
        "uniform": UniformRandomDelay(),
        "jitter": JitterDelay(),
    }[policy]
    plan = None
    if draw(st.booleans()):
        plan = FaultPlan(seed_salt=draw(st.integers(min_value=0, max_value=2**16)))
        if draw(st.booleans()):
            node = draw(st.integers(min_value=0, max_value=len(topo.nodes) - 1))
            at = draw(st.floats(min_value=0.5, max_value=6.0))
            recover = (
                at + draw(st.floats(min_value=0.5, max_value=4.0))
                if draw(st.booleans())
                else None
            )
            plan = plan.with_crash(node, at, recover_at=recover)
        if draw(st.booleans()):
            plan = plan.with_link(
                loss=draw(st.sampled_from([0.0, 0.1, 0.4])),
                duplicate=draw(st.sampled_from([0.0, 0.2])),
                reorder=draw(st.sampled_from([0.0, 0.3])),
            )
    return topo, rho, seed, rates, alg_name, delay_policy, plan


class TestRandomScenarios:
    @given(scenarios())
    @settings(max_examples=25, deadline=None)
    def test_random_scenario_equivalent(self, scenario):
        topo, rho, seed, rates, alg_name, delay_policy, plan = scenario
        scalar, batched = run_both(
            topo,
            ALGORITHMS[alg_name],
            duration=10.0,
            rho=rho,
            seed=seed,
            rate_schedules=rates,
            delay_policy=delay_policy,
            fault_plan=plan,
        )
        assert_equivalent(scalar, batched)
