"""Property-based tests (hypothesis) for simulator-level invariants.

Random small networks, random drift assignments, random delay bands —
the invariants every execution must satisfy regardless:

* every receive happens exactly ``delay`` after its send, within the
  model band ``[0, d_ij]``;
* per-node trace hardware readings are nondecreasing in time;
* logical clocks satisfy validity;
* replaying the recorded delays reproduces the run;
* the fault determinism contract: an empty ``FaultPlan`` reproduces the
  fault-free trace exactly, and identical (plan, seed) pairs reproduce
  each other.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    AveragingAlgorithm,
    BoundedCatchUpAlgorithm,
    MaxBasedAlgorithm,
    SlewingMaxAlgorithm,
)
from repro.sim.faults import FaultPlan
from repro.sim.messages import UniformRandomDelay
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.replay import verify_replay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line, ring

ALGORITHMS = {
    "max": MaxBasedAlgorithm,
    "avg": AveragingAlgorithm,
    "bcu": BoundedCatchUpAlgorithm,
    "slew": SlewingMaxAlgorithm,
}


@st.composite
def scenarios(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    shape = draw(st.sampled_from(["line", "ring"]))
    topo = line(n) if shape == "line" else ring(max(n, 3))
    rho = draw(st.sampled_from([0.1, 0.3, 0.5]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    rates = {
        node: PiecewiseConstantRate.constant(rng.uniform(1 - rho, 1 + rho))
        for node in topo.nodes
    }
    alg_name = draw(st.sampled_from(sorted(ALGORITHMS)))
    lo = draw(st.sampled_from([0.0, 0.25]))
    hi = draw(st.sampled_from([0.75, 1.0]))
    return topo, rho, seed, rates, alg_name, (lo, hi)


def run_scenario(scenario, duration=12.0, fault_plan=None):
    topo, rho, seed, rates, alg_name, (lo, hi) = scenario
    alg = ALGORITHMS[alg_name]()
    return (
        run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=duration, rho=rho, seed=seed),
            rate_schedules=rates,
            delay_policy=UniformRandomDelay(lo, hi),
            fault_plan=fault_plan,
        ),
        alg_name,
    )


@st.composite
def fault_plans(draw, n_nodes: int, duration: float = 12.0):
    """A random non-trivial fault plan over ``n_nodes`` nodes."""
    plan = FaultPlan(seed_salt=draw(st.integers(min_value=0, max_value=2**16)))
    if draw(st.booleans()):
        node = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        at = draw(st.floats(min_value=0.5, max_value=duration * 0.6))
        recover_at = (
            at + draw(st.floats(min_value=0.5, max_value=duration * 0.3))
            if draw(st.booleans())
            else None
        )
        plan = plan.with_crash(node, at, recover_at=recover_at)
    if draw(st.booleans()):
        plan = plan.with_link(
            loss=draw(st.sampled_from([0.0, 0.1, 0.4])),
            duplicate=draw(st.sampled_from([0.0, 0.2])),
            reorder=draw(st.sampled_from([0.0, 0.3])),
        )
    if draw(st.booleans()):
        t0 = draw(st.floats(min_value=0.0, max_value=duration / 2))
        plan = plan.with_link_down(
            0, 1, (t0, t0 + draw(st.floats(min_value=0.5, max_value=duration / 2)))
        )
    return plan


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_receive_equals_send_plus_delay(scenario):
    ex, _ = run_scenario(scenario)
    for m in ex.messages:
        assert m.receive_time == m.send_time + m.delay
        d = ex.topology.distance(m.sender, m.receiver)
        assert -1e-9 <= m.delay <= d + 1e-9


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_per_node_hardware_readings_nondecreasing(scenario):
    ex, _ = run_scenario(scenario)
    for node in ex.topology.nodes:
        readings = [e.hardware for e in ex.trace.for_node(node)]
        assert readings == sorted(readings)


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_validity_always_holds(scenario):
    ex, _ = run_scenario(scenario)
    ex.check_validity()


@given(scenarios())
@settings(max_examples=15, deadline=None)
def test_replay_reproduces_random_runs(scenario):
    ex, alg_name = run_scenario(scenario)
    verify_replay(ex, ALGORITHMS[alg_name]())


@given(scenarios())
@settings(max_examples=20, deadline=None)
def test_empty_fault_plan_reproduces_fault_free_trace(scenario):
    """The fault machinery is free when unused: byte-identical traces."""
    bare, _ = run_scenario(scenario)
    empty, _ = run_scenario(scenario, fault_plan=FaultPlan())
    assert bare.trace.events == empty.trace.events
    assert bare.messages == empty.messages


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_same_fault_plan_and_seed_reproduce_each_other(data):
    """Identical (plan, seed): identical traces, messages and counters."""
    scenario = data.draw(scenarios())
    plan = data.draw(fault_plans(n_nodes=scenario[0].n))
    first, _ = run_scenario(scenario, fault_plan=plan)
    second, _ = run_scenario(scenario, fault_plan=plan)
    assert first.trace.events == second.trace.events
    assert first.messages == second.messages
    assert first.fault_stats == second.fault_stats


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_validity_holds_under_faults(data):
    """Crashes and link faults cannot break Requirement 1."""
    scenario = data.draw(scenarios())
    plan = data.draw(fault_plans(n_nodes=scenario[0].n))
    ex, _ = run_scenario(scenario, fault_plan=plan)
    ex.check_validity()
    ex.check_delay_bounds()


@given(scenarios())
@settings(max_examples=25, deadline=None)
def test_skew_antisymmetry_and_triangle(scenario):
    ex, _ = run_scenario(scenario)
    t = ex.duration
    nodes = list(ex.topology.nodes)[:4]
    for i in nodes:
        for j in nodes:
            assert abs(ex.skew(i, j, t) + ex.skew(j, i, t)) < 1e-9
    # Skew is a difference of potentials: it telescopes (up to float).
    if len(nodes) >= 3:
        a, b, c = nodes[:3]
        assert abs(
            ex.skew(a, c, t) - (ex.skew(a, b, t) + ex.skew(b, c, t))
        ) < 1e-9
