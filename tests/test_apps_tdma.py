"""Tests for the TDMA overlay (apps.tdma)."""

import pytest

from repro.algorithms import MaxBasedAlgorithm, NullAlgorithm
from repro.apps.tdma import TDMASchedule, assign_slots, evaluate_tdma
from repro.errors import ExperimentError
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line, ring


class TestScheduleValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ExperimentError):
            TDMASchedule(slots={0: 0}, n_slots=0, slot_width=1.0)
        with pytest.raises(ExperimentError):
            TDMASchedule(slots={0: 0}, n_slots=2, slot_width=1.0, guard=0.6)

    def test_frame_length(self):
        s = TDMASchedule(slots={0: 0, 1: 1}, n_slots=3, slot_width=2.0)
        assert s.frame == 6.0


class TestAssignment:
    def test_coloring_is_proper(self):
        topo = ring(7)
        schedule = assign_slots(topo, slot_width=1.0)
        for i, j in topo.comm_pairs():
            assert schedule.slots[i] != schedule.slots[j]

    def test_line_needs_two_slots(self):
        topo = line(9)
        schedule = assign_slots(topo, slot_width=1.0)
        assert schedule.n_slots == 2

    def test_constant_slots_as_network_grows(self):
        # The paper's premise: constant degree -> constant frame size.
        sizes = [assign_slots(line(n), slot_width=1.0).n_slots for n in (4, 16, 64)]
        assert len(set(sizes)) == 1


class TestEvaluation:
    def test_no_collisions_with_synchronized_clocks(self):
        topo = line(5)
        ex = run_simulation(
            topo,
            NullAlgorithm().processes(topo),
            SimConfig(duration=20.0, rho=0.0, seed=0),
        )
        schedule = assign_slots(topo, slot_width=1.0, guard=0.1)
        report = evaluate_tdma(ex, schedule)
        assert report.transmissions > 0
        assert report.collisions == 0
        assert report.collision_rate == 0.0
        assert not report.collided

    def test_collisions_with_skewed_clocks(self):
        # A fast node's slots drift across its neighbor's: collisions.
        topo = line(3)
        rates = {1: PiecewiseConstantRate.constant(1.4)}
        ex = run_simulation(
            topo,
            NullAlgorithm().processes(topo),
            SimConfig(duration=40.0, rho=0.5, seed=0),
            rate_schedules=rates,
        )
        schedule = assign_slots(topo, slot_width=1.0, guard=0.1)
        report = evaluate_tdma(ex, schedule)
        assert report.collided
        assert report.colliding_pairs

    def test_guard_bands_absorb_small_skew(self):
        topo = line(3)
        rates = {1: PiecewiseConstantRate.constant(1.02)}
        ex = run_simulation(
            topo,
            NullAlgorithm().processes(topo),
            SimConfig(duration=10.0, rho=0.1, seed=0),
            rate_schedules=rates,
        )
        tight = evaluate_tdma(ex, assign_slots(topo, slot_width=1.0, guard=0.0))
        guarded = evaluate_tdma(ex, assign_slots(topo, slot_width=1.0, guard=0.3))
        assert guarded.collisions <= tight.collisions
        assert guarded.collisions == 0

    def test_horizon_limits_analysis(self):
        topo = line(3)
        ex = run_simulation(
            topo,
            NullAlgorithm().processes(topo),
            SimConfig(duration=20.0, rho=0.0, seed=0),
        )
        schedule = assign_slots(topo, slot_width=1.0)
        short = evaluate_tdma(ex, schedule, horizon=5.0)
        full = evaluate_tdma(ex, schedule)
        assert short.transmissions < full.transmissions
