"""Shared fixtures for the test suite.

Session-scoped fixtures cache the expensive executions (full lower-bound
constructions) so many test modules can assert on them without re-running
the adversary.
"""

from __future__ import annotations

import pytest

from repro.algorithms import MaxBasedAlgorithm
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew
from repro.gcs.lower_bound import LowerBoundAdversary
from repro.gcs.schedule import AdversarySchedule
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.5
TAU = 1.0 / RHO


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "faults: fault/churn robustness suite (slower; select with -m faults, "
        "skip with -m 'not faults')",
    )
    config.addinivalue_line("markers", "slow: long-running full-scale checks")
    config.addinivalue_line(
        "markers",
        "engine: differential batched-vs-scalar engine equivalence suite "
        "(select with -m engine)",
    )
    config.addinivalue_line(
        "markers",
        "rt: live-runtime transport suite (wall-clock sleeps and node "
        "processes; select with -m rt, skip with -m 'not rt')",
    )
    config.addinivalue_line(
        "markers",
        "check: static invariant linter self-tests (repro.check; "
        "select with -m check)",
    )
    config.addinivalue_line(
        "markers",
        "serve: sweep-as-a-service suite (daemon subprocesses, sockets, "
        "SIGKILL crash/resume; select with -m serve, skip with "
        "-m 'not serve')",
    )


@pytest.fixture(scope="session")
def line9():
    """A 9-node line (diameter 8)."""
    return line(9)


@pytest.fixture(scope="session")
def quiet_line9_execution(line9):
    """A quiet execution of max-based sync on the 9-node line."""
    schedule = AdversarySchedule.quiet(line9.nodes, TAU * 8)
    return schedule.run(line9, MaxBasedAlgorithm(), rho=RHO, seed=0)


@pytest.fixture(scope="session")
def add_skew_pair(line9):
    """(alpha, beta, plan): one verified Add Skew application."""
    algorithm = MaxBasedAlgorithm()
    schedule = AdversarySchedule.quiet(line9.nodes, TAU * 8)
    alpha = schedule.run(line9, algorithm, rho=RHO, seed=0)
    plan = AddSkewPlan(
        i=0, j=8, n=9, alpha_duration=schedule.duration, rho=RHO, lead="lo"
    )
    beta_schedule = apply_add_skew(schedule, plan)
    beta = beta_schedule.run(line9, algorithm, rho=RHO, seed=0)
    return alpha, beta, plan


@pytest.fixture(scope="session")
def lower_bound_result():
    """A complete Theorem 8.1 construction at diameter 8 (fast)."""
    adversary = LowerBoundAdversary(8, rho=RHO, shrink=4, seed=0)
    return adversary.run(MaxBasedAlgorithm())


@pytest.fixture()
def simple_execution(line9):
    """A short benign run, rebuilt per test (cheap)."""
    algorithm = MaxBasedAlgorithm()
    return run_simulation(
        line9,
        algorithm.processes(line9),
        SimConfig(duration=10.0, rho=RHO, seed=1),
    )
