"""Tests for the Bounded Increase lemma machinery (gcs.bounded_increase)."""

import pytest

from repro.algorithms import MaxBasedAlgorithm
from repro.errors import ConstructionError
from repro.gcs.bounded_increase import (
    check_preconditions,
    measure_bounded_increase,
)
from repro.gcs.schedule import AdversarySchedule
from repro.sim.messages import UniformRandomDelay
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.5


def quiet_execution(n=5, duration=12.0):
    topo = line(n)
    schedule = AdversarySchedule.quiet(topo.nodes, duration)
    return schedule.run(topo, MaxBasedAlgorithm(), rho=RHO, seed=0)


class TestPreconditions:
    def test_quiet_execution_satisfies(self):
        check_preconditions(quiet_execution(), rho=RHO)

    def test_out_of_band_rate_rejected(self):
        topo = line(3)
        rates = {0: PiecewiseConstantRate.constant(1.0 - RHO)}  # below 1
        ex = run_simulation(
            topo,
            MaxBasedAlgorithm().processes(topo),
            SimConfig(duration=8.0, rho=RHO, seed=0),
            rate_schedules=rates,
        )
        with pytest.raises(ConstructionError):
            check_preconditions(ex, rho=RHO)

    def test_out_of_band_delay_rejected(self):
        topo = line(3)
        ex = run_simulation(
            topo,
            MaxBasedAlgorithm().processes(topo),
            SimConfig(duration=8.0, rho=RHO, seed=0),
            delay_policy=UniformRandomDelay(0.0, 1.0),  # delays can hit 0
        )
        with pytest.raises(ConstructionError):
            check_preconditions(ex, rho=RHO)


class TestMeasurement:
    def test_quiet_gain_is_hardware_rate(self):
        report = measure_bounded_increase(quiet_execution(), 1.0, rho=RHO)
        # Quiet run: no jumps, all rates 1 -> exactly 1 per unit.
        assert report.max_increase == pytest.approx(1.0)
        assert report.bound == 16.0
        assert report.satisfied
        assert report.ratio == pytest.approx(1.0 / 16.0)

    def test_bound_scales_with_f(self):
        report = measure_bounded_increase(quiet_execution(), 0.5, rho=RHO)
        assert report.bound == 8.0

    def test_lower_bound_execution_within_bound(self, lower_bound_result):
        ex = lower_bound_result.final_execution
        from repro.gcs.properties import empirical_f

        f_one = max(empirical_f([ex]).get(1.0, 0.0), 1e-6)
        report = measure_bounded_increase(ex, f_one, rho=RHO)
        assert report.satisfied

    def test_preconditions_can_be_skipped(self):
        topo = line(3)
        ex = run_simulation(
            topo,
            MaxBasedAlgorithm().processes(topo),
            SimConfig(duration=8.0, rho=RHO, seed=0),
            delay_policy=UniformRandomDelay(),
        )
        report = measure_bounded_increase(
            ex, 1.0, rho=RHO, enforce_preconditions=False
        )
        assert report.max_increase > 0
