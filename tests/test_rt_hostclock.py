"""Property-based tests (hypothesis) for the live runtime's HostClock.

The three guarantees the runtime leans on, each driven through a fake
time source so hypothesis fully controls the wall clock:

* readings are monotone non-decreasing, even when the source jitters
  backwards (the never-backwards clamp);
* any two readings respect the Assumption-1 drift envelope
  ``(1 - rho) dt <= dH <= (1 + rho) dt`` as long as every rate stays in
  the band;
* re-binding the rate at a boundary loses no elapsed time — the reading
  immediately before and after ``set_rate`` is identical (the live
  analogue of the ``LogicalClock.time_at`` bug class fixed in PR 2).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DriftBoundError
from repro.rt import HostClock
from repro.sim.rates import PiecewiseConstantRate

RHO = 0.5

rates_in_band = st.floats(min_value=1.0 - RHO, max_value=1.0 + RHO)


class FakeSource:
    """A scripted time source hypothesis can steer, jitter included."""

    def __init__(self, start: float = 100.0):
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@st.composite
def clock_scripts(draw, max_steps=12):
    """(steps) where each step is ('advance', dt) or ('rate', r)."""
    n = draw(st.integers(min_value=1, max_value=max_steps))
    steps = []
    for _ in range(n):
        if draw(st.booleans()):
            steps.append(("advance", draw(st.floats(min_value=0.0, max_value=5.0))))
        else:
            steps.append(("rate", draw(rates_in_band)))
    return steps


@given(clock_scripts())
@settings(max_examples=200)
def test_readings_monotone_nondecreasing(steps):
    source = FakeSource()
    clock = HostClock(rho=RHO, rate=1.0, time_source=source)
    last = clock.read()
    for kind, value in steps:
        if kind == "advance":
            source.advance(value)
        else:
            clock.set_rate(value)
        now = clock.read()
        assert now >= last - 1e-12
        last = now


@given(
    st.lists(st.floats(min_value=-2.0, max_value=2.0), min_size=1, max_size=20)
)
@settings(max_examples=200)
def test_never_backwards_under_source_jitter(jitters):
    """Even a source that jumps backwards never drags readings back."""
    source = FakeSource()
    clock = HostClock(rho=RHO, rate=1.2, time_source=source)
    last = clock.read()
    for dt in jitters:
        source.advance(dt)  # may be negative: a misbehaving wall clock
        now = clock.read()
        assert now >= last - 1e-12
        assert clock.elapsed() >= 0.0
        last = now


@given(clock_scripts())
@settings(max_examples=200)
def test_drift_envelope(steps):
    """Between any two reads: (1-rho) dt <= dH <= (1+rho) dt."""
    source = FakeSource()
    clock = HostClock(rho=RHO, rate=1.0, time_source=source)
    t0, h0 = clock.elapsed(), clock.read()
    for kind, value in steps:
        if kind == "advance":
            source.advance(value)
        else:
            clock.set_rate(value)
    t1, h1 = clock.elapsed(), clock.read()
    dt, dh = t1 - t0, h1 - h0
    assert dh >= (1.0 - RHO) * dt - 1e-9
    assert dh <= (1.0 + RHO) * dt + 1e-9


@given(
    st.floats(min_value=0.0, max_value=10.0),
    rates_in_band,
    rates_in_band,
    st.floats(min_value=0.0, max_value=10.0),
)
@settings(max_examples=200)
def test_rate_rebinding_loses_no_elapsed_time(dt1, r1, r2, dt2):
    """The reading just before and just after set_rate is identical, and
    the segments integrate exactly: no time is dropped at the boundary."""
    source = FakeSource()
    clock = HostClock(rho=RHO, rate=r1, time_source=source)
    source.advance(dt1)
    before = clock.read()
    clock.set_rate(r2)
    after = clock.read()
    assert after == pytest.approx(before, abs=1e-9)
    source.advance(dt2)
    expected = r1 * dt1 + r2 * dt2
    # Same-instant rebinds collapse onto the open segment: the later
    # rate legitimately covers the whole (zero-width-so-far) piece.
    if dt1 > 1e-9:
        assert clock.read() == pytest.approx(expected, rel=1e-9, abs=1e-9)


def test_out_of_band_rate_rejected():
    clock = HostClock(rho=0.1, rate=1.0, time_source=FakeSource())
    with pytest.raises(DriftBoundError):
        clock.set_rate(1.5)
    with pytest.raises(DriftBoundError):
        HostClock(rho=0.1, rate=0.5, time_source=FakeSource())


def test_from_schedule_matches_schedule_exactly():
    """A pre-programmed clock realizes the simulator schedule verbatim."""
    schedule = PiecewiseConstantRate(
        starts=(0.0, 2.0, 5.0), rates=(1.2, 0.8, 1.0)
    )
    source = FakeSource()
    clock = HostClock.from_schedule(schedule, rho=RHO, time_source=source)
    for elapsed in (0.0, 1.0, 2.0, 3.5, 5.0, 9.0):
        assert clock.value_at_elapsed(elapsed) == pytest.approx(
            schedule.value_at(elapsed), abs=1e-12
        )
        assert clock.elapsed_at_value(schedule.value_at(elapsed)) == pytest.approx(
            elapsed, abs=1e-9
        )


def test_time_scale_maps_wall_seconds_to_sim_units():
    source = FakeSource()
    clock = HostClock(rho=0.0, rate=1.0, time_source=source, time_scale=0.5)
    source.advance(1.0)  # one wall second = two sim units
    assert clock.elapsed() == pytest.approx(2.0)
    assert clock.read() == pytest.approx(2.0)
    assert clock.wall_deadline(3.0) == pytest.approx(100.0 + 1.5)
