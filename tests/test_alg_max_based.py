"""Tests for the max-based algorithm (Section 2's simplified Srikanth-Toueg)."""

import pytest

from _fault_helpers import assert_monotone_logical, run_crash_recovery
from repro.algorithms import MaxBasedAlgorithm, NullAlgorithm
from repro.sim.messages import PerPairDelay
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.5


def run_with_fast_node(alg, n=5, duration=40.0, fast=4, period_check=True):
    topo = line(n)
    rates = {fast: PiecewiseConstantRate.constant(1.0 + RHO)}
    return run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=RHO, seed=0),
        rate_schedules=rates,
    )


class TestConvergence:
    def test_everyone_chases_fastest_clock(self):
        ex = run_with_fast_node(MaxBasedAlgorithm(period=0.5))
        null = run_with_fast_node(NullAlgorithm())
        assert ex.max_skew(40.0) < null.max_skew(40.0) / 2.0

    def test_skew_bounded_by_propagation_lag(self):
        # Steady state: node at distance d from the max lags at most
        # ~(d/2 delay + period) * fast rate + drift slack.
        ex = run_with_fast_node(MaxBasedAlgorithm(period=0.5), n=5)
        # distance-1 neighbor of the fast node
        lag = abs(ex.skew(4, 3, 40.0))
        assert lag < 2.5

    def test_clocks_never_jump_backward(self):
        ex = run_with_fast_node(MaxBasedAlgorithm())
        ex.check_validity()

    def test_period_validation(self):
        with pytest.raises(ValueError):
            MaxBasedAlgorithm(period=0.0).processes(line(3))


class TestGradientViolation:
    def test_distance_one_spike_after_delay_drop(self):
        """The Section 2 mechanism in miniature: y jumps, z lags."""
        topo = line(3, comm_radius=2.0)
        # x=0 runs fast and its messages to y=1 are maximally delayed,
        # then at t=20 the delay drops to zero.
        rates = {0: PiecewiseConstantRate.constant(1.5)}
        delays = PerPairDelay()
        delays.set(0, 1, 1.0)
        delays.set_after(0, 1, 20.0, 0.0)
        ex = run_simulation(
            topo,
            MaxBasedAlgorithm(period=0.5).processes(topo),
            SimConfig(duration=30.0, rho=RHO, seed=0),
            rate_schedules=rates,
            delay_policy=delays,
        )
        # Right after the drop, (1, 2) skew spikes above its pre-drop level.
        pre = max(abs(ex.skew(1, 2, t)) for t in (18.0, 19.0, 19.9))
        post = max(abs(ex.skew(1, 2, t)) for t in (20.1, 20.3, 20.5, 21.0))
        assert post > pre

    def test_ignores_foreign_payloads(self):
        from repro.algorithms.max_based import MaxProcess
        from repro.sim.simulator import Simulator
        from repro.sim.node import Process

        class Noise(Process):
            def on_start(self, api):
                api.send(1, ("garbage", 123.0))

        topo = line(2)
        procs = {0: Noise(), 1: MaxProcess(period=1.0)}
        ex = run_simulation(topo, procs, SimConfig(duration=5.0, seed=0))
        # Receiving garbage must not move the clock.
        assert ex.logical[1].total_jump() == 0.0


@pytest.mark.faults
class TestRecovery:
    """Crash-recovery semantics: the recovered clock stays monotone
    (Validity) and the network re-converges to its fault-free skew."""

    def test_recovered_clock_never_jumps_backward(self):
        ex = run_crash_recovery(MaxBasedAlgorithm(period=0.5))
        assert_monotone_logical(ex, 2)
        ex.check_validity()

    def test_reconverges_to_fault_free_skew(self):
        ex = run_crash_recovery(MaxBasedAlgorithm(period=0.5))
        # Elevated right after the outage, back to baseline by the end.
        assert ex.max_skew(16.5) > ex.max_skew(40.0)
        assert ex.max_skew(40.0) < 3.5

    def test_recovered_node_rejoins_gossip(self):
        ex = run_crash_recovery(MaxBasedAlgorithm(period=0.5))
        assert [
            e for e in ex.trace.of_kind("send")
            if e.node == 2 and e.real_time >= 16.0
        ]
