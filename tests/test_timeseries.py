"""Tests for time-series helpers (analysis.timeseries)."""

import pytest

from repro.algorithms import NullAlgorithm
from repro.analysis.timeseries import (
    adjacent_skew_series,
    render_csv,
    skew_series,
    sparkline,
    write_csv,
)
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line


@pytest.fixture()
def drift_exec():
    topo = line(4)
    rates = {3: PiecewiseConstantRate.constant(1.5)}
    return run_simulation(
        topo,
        NullAlgorithm().processes(topo),
        SimConfig(duration=10.0, rho=0.5, seed=0),
        rate_schedules=rates,
    )


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_is_flat(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_monotone_rises(self):
        s = sparkline([0.0, 1.0, 2.0, 3.0])
        assert s[0] == "▁" and s[-1] == "█"
        assert len(s) == 4

    def test_pinned_scale(self):
        s = sparkline([5.0], lo=0.0, hi=10.0)
        assert s not in ("▁", "█")


class TestSeries:
    def test_skew_series_grows_with_drift(self, drift_exec):
        times, values = skew_series(drift_exec, 3, 0, step=2.0)
        assert len(times) == len(values)
        assert values[0] == pytest.approx(0.0)
        assert values[-1] == pytest.approx(5.0)

    def test_adjacent_series(self, drift_exec):
        times, values = adjacent_skew_series(drift_exec, step=5.0)
        assert values[-1] == pytest.approx(5.0)


class TestCSV:
    def test_write_and_read_back(self, drift_exec, tmp_path):
        times, values = skew_series(drift_exec, 3, 0, step=5.0)
        path = write_csv(tmp_path / "skew.csv", times, {"skew30": values})
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,skew30"
        assert len(lines) == len(times) + 1

    def test_render_csv(self):
        out = render_csv([0.0, 1.0], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        lines = out.strip().splitlines()
        assert lines[0] == "time,a,b"
        assert lines[1].startswith("0.0,1.0,3.0")

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "bad.csv", [0.0, 1.0], {"a": [1.0]})
