"""The observability layer: headless renderers, escaping, CLI verbs.

Everything here draws to strings or in-memory buffers and re-parses the
result with :mod:`xml.etree` — well-formedness is the contract every
SVG consumer (browsers, CI artifact viewers) actually relies on.  The
acceptance scenario is the ISSUE's: a 64-node dynamic-topology faulted
run must render (a) a skew dashboard with event markers, (b) a mobility
animation, and (c) a sweep report bundle, with zero third-party
rendering deps.
"""

from __future__ import annotations

import io
import json
import math
import xml.etree.ElementTree as ET

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult
from repro.rt import LiveRunConfig, run_live
from repro.viz import (
    EventMarker,
    Series,
    SvgCanvas,
    experiment_report,
    mobility_animation,
    mobility_frames,
    render_report,
    report_payload,
    rows_from_artifact,
    save_svg,
    skew_dashboard,
    write_report,
)
from repro.viz.cli import main as viz_main, run_scenario
from repro.viz.panels import (
    bar_panel,
    downsample_columns,
    heatmap_panel,
    line_panel,
    nice_ticks,
)
from repro.viz.svg import escape_attr, escape_text, sequential_color


def parsed(svg: str) -> ET.Element:
    """Well-formedness gate: every rendered figure must pass here."""
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    return root


# ----------------------------------------------------------------------
# primitives


class TestSvgPrimitives:
    def test_canvas_renders_well_formed_document(self):
        canvas = SvgCanvas(200, 100)
        canvas.rect(10, 10, 50, 30, fill="#ff0000", title="a<b&c")
        canvas.line(0, 0, 200, 100, stroke="#000000", dash="4,3")
        canvas.polyline([(0, 0), (10, 5), (20, 3)], stroke="#00ff00")
        canvas.circle(100, 50, 8, fill="#0000ff", title='say "hi"')
        canvas.text(5, 95, "label <&> done", klass="t")
        parsed(canvas.to_string())

    def test_save_svg_accepts_paths_and_buffers(self, tmp_path):
        canvas = SvgCanvas(50, 50)
        canvas.text(10, 25, "x")
        svg = canvas.to_string()
        target = tmp_path / "out.svg"
        save_svg(svg, target)
        assert target.read_text(encoding="utf-8") == svg
        text_buf = io.StringIO()
        save_svg(svg, text_buf)
        assert text_buf.getvalue() == svg
        byte_buf = io.BytesIO()
        save_svg(svg, byte_buf)
        assert byte_buf.getvalue().decode("utf-8") == svg

    def test_color_ramps_are_hex_and_nan_safe(self):
        for t in (-1.0, 0.0, 0.25, 0.5, 1.0, 2.0, float("nan")):
            color = sequential_color(t)
            assert len(color) == 7 and color.startswith("#")
            int(color[1:], 16)

    def test_nice_ticks_cover_range(self):
        ticks = nice_ticks(0.0, 10.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 10.0 and len(ticks) >= 2
        assert nice_ticks(5.0, 5.0)  # degenerate span still yields ticks
        assert nice_ticks(float("nan"), 1.0) == [0.0]

    def test_downsample_columns_max_pools_spikes(self):
        matrix = np.zeros((2, 1000))
        matrix[1, 777] = 9.0  # a one-sample spike must survive pooling
        pooled, stride = downsample_columns(matrix, limit=100)
        assert pooled.shape[1] <= 100 and stride > 1
        assert pooled.max() == 9.0

    @given(st.text(max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_labels_never_break_the_document(self, label):
        """The escaping property: any node label, title, or caption —
        including XML metacharacters and control bytes — yields a
        parseable document."""
        canvas = SvgCanvas(120, 60)
        canvas.text(5, 20, label)
        canvas.rect(5, 30, 20, 10, fill="#aaaaaa", title=label)
        canvas.circle(60, 40, 5, fill="#bbbbbb", title=label, klass=label)
        parsed(canvas.to_string())

    @given(st.text(max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_escape_leaves_no_raw_metacharacters(self, text):
        for escaped in (escape_text(text), escape_attr(text)):
            assert "<" not in escaped
            body = escaped
            for entity in ("&amp;", "&lt;", "&gt;", "&quot;", "&#"):
                body = body.replace(entity, "")
            assert "&" not in body
        assert '"' not in escape_attr(text).replace("&quot;", "")


# ----------------------------------------------------------------------
# panels


class TestPanels:
    def test_line_panel_with_markers_and_boundaries(self):
        canvas = SvgCanvas(400, 200)
        line_panel(
            canvas, 40, 20, 320, 150,
            [Series("a", [0, 1, 2, 3], [0.0, 1.0, 0.5, 2.0]),
             Series("b", [0, 1, 2, 3], [1.0, float("nan"), 1.5, 1.0])],
            title="t", y_label="y",
            markers=[EventMarker(1.5, "crash"), EventMarker(2.5, "recover")],
            boundaries=[2.0],
        )
        svg = canvas.to_string()
        parsed(svg)
        assert 'class="event-crash"' in svg
        assert 'class="event-recover"' in svg
        assert 'class="segment-boundary"' in svg

    def test_heatmap_panel_counts_cells_and_masks(self):
        canvas = SvgCanvas(300, 200)
        matrix = np.arange(12.0).reshape(3, 4)
        mask = np.zeros((3, 4), dtype=bool)
        mask[0, 0] = True
        cells = heatmap_panel(
            canvas, 30, 20, 200, 120, matrix,
            row_labels=["r0", "r1", "r2"], x_extent=(0.0, 4.0), mask=mask,
        )
        assert cells == 12
        svg = canvas.to_string()
        parsed(svg)
        assert "#f0f0f0" in svg  # the masked (not-in-force) cell

    def test_heatmap_rejects_empty_matrix(self):
        with pytest.raises(ValueError):
            heatmap_panel(SvgCanvas(100, 100), 0, 0, 50, 50, np.empty((0, 0)))

    def test_bar_panel_draws_grouped_bars_with_tooltips(self):
        canvas = SvgCanvas(400, 200)
        bar_panel(
            canvas, 40, 20, 320, 150,
            ["cell-a", "cell-b"],
            [("alg1", [1.0, 2.0]), ("alg2", [1.5, float("nan")])],
        )
        svg = canvas.to_string()
        parsed(svg)
        assert svg.count('class="bar"') == 3  # NaN bar skipped
        assert "cell-a / alg1: 1" in svg


# ----------------------------------------------------------------------
# the acceptance scenario: 64 nodes, dynamic topology, faults


@pytest.fixture(scope="module")
def churny_execution():
    return run_scenario(
        topology="line:64",
        algorithm="gradient",
        faults="crash-recover:0.25,3",
        mobility="waypoint:0.5",
        duration=8.0,
        seed=2,
    )


class TestDashboard:
    def test_dashboard_renders_with_event_markers(self, churny_execution):
        svg = skew_dashboard(churny_execution)
        parsed(svg)
        assert 'class="event-crash"' in svg
        assert 'class="event-recover"' in svg
        assert 'class="event-topology"' in svg
        assert 'class="segment-boundary"' in svg
        assert "n=64" in svg

    def test_dashboard_shows_live_and_fault_stats(self, churny_execution):
        svg = skew_dashboard(churny_execution)
        assert "source: sim" in svg
        assert "rewirings:" in svg
        assert "faults:" in svg

    def test_dashboard_writes_to_memory_buffer(self, churny_execution):
        buf = io.StringIO()
        save_svg(skew_dashboard(churny_execution), buf)
        parsed(buf.getvalue())

    def test_static_run_dashboard_has_no_boundaries(self):
        execution = run_scenario(
            topology="ring:6", algorithm="averaging", duration=5.0
        )
        svg = skew_dashboard(execution)
        parsed(svg)
        assert "segment-boundary" not in svg
        assert "event-topology" not in svg


class TestMobility:
    def test_animation_cycles_one_group_per_snapshot(self, churny_execution):
        svg = mobility_animation(churny_execution)
        parsed(svg)
        snapshots = len(churny_execution.topology_timeline)
        assert svg.count("<animate") == snapshots
        assert svg.count('calcMode="discrete"') == snapshots
        assert 'class="node-down"' in svg or 'class="node"' in svg

    def test_frames_match_snapshot_count(self, churny_execution):
        frames = mobility_frames(churny_execution)
        assert len(frames) == len(churny_execution.topology_timeline)
        for frame in frames:
            parsed(frame)

    def test_static_run_renders_single_visible_frame(self):
        execution = run_scenario(
            topology="line:5", algorithm="gradient", duration=4.0
        )
        svg = mobility_animation(execution)
        parsed(svg)
        assert "<animate" not in svg  # nothing to cycle
        assert svg.count('class="node"') == 5


# ----------------------------------------------------------------------
# reports


def sample_rows():
    rows = []
    for alg in ("gradient", "averaging"):
        for seed in range(2):
            rows.append({
                "topology": "line:8", "algorithm": alg, "rates": "drifted",
                "delays": "uniform", "faults": "none", "mobility": "static",
                "transport": "sim", "seed": seed,
                "max_skew": 1.0 + seed * 0.2, "max_adjacent_skew": 0.5,
                "final_skew": 0.8,
            })
    rows.append({
        "topology": "ring:8", "algorithm": "gradient", "rates": "drifted",
        "delays": "uniform", "faults": "none", "mobility": "static",
        "transport": "router", "seed": 0, "max_skew": 2.0,
        "max_adjacent_skew": 1.0, "final_skew": 1.4,
        "frames_dropped": 3, "frames_routed": 120, "workers": 2,
    })
    return rows


class TestSweepReport:
    def test_render_report_groups_by_algorithm(self):
        svg = render_report(sample_rows())
        parsed(svg)
        assert "gradient" in svg and "averaging" in svg
        assert 'class="bar"' in svg

    def test_render_report_rejects_empty_rows(self):
        with pytest.raises(ValueError):
            render_report([])

    def test_payload_aggregates_seeds_and_counters(self):
        payload = report_payload(sample_rows())
        assert payload["n_jobs"] == 5
        by_key = {
            (r["cell"].get("topology"), r["algorithm"]): r
            for r in payload["rows"]
        }
        sim_row = by_key[("line:8", "gradient")]
        assert sim_row["seeds"] == 2
        assert math.isclose(sim_row["mean_max_skew"], 1.1)
        router_row = by_key[("ring:8", "gradient")]
        assert router_row["frames_dropped"] == 3
        assert router_row["frames_routed"] == 120

    def test_write_report_emits_svg_and_json(self, tmp_path):
        svg_path, json_path = write_report(tmp_path / "rep", sample_rows())
        parsed(svg_path.read_text(encoding="utf-8"))
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["metrics"] == ["max_skew", "max_adjacent_skew",
                                      "final_skew"]

    def test_rows_from_artifact_requires_jobs(self):
        with pytest.raises(ValueError):
            rows_from_artifact({"spec": {}})
        rows = rows_from_artifact(
            {"jobs": [{"metrics": {"max_skew": 1.0}}]}
        )
        assert rows == [{"max_skew": 1.0}]


class TestExperimentReport:
    def result_with_tables(self, figures=None):
        table = Table(
            title="demo", headers=["n", "max skew", "note"],
        )
        table.add_row(8, 1.25, "a")
        table.add_row(16, 2.5, "b")
        return ExperimentResult(
            experiment_id="E99",
            title="synthetic",
            paper_artifact="none",
            tables=[table],
            figures=figures or [],
        )

    def test_auto_charts_numeric_columns(self):
        svg = experiment_report(self.result_with_tables())
        assert svg is not None
        parsed(svg)
        assert "E99" in svg

    def test_figure_spec_selects_columns(self):
        svg = experiment_report(self.result_with_tables(
            figures=[{"table": 0, "x": "n", "y": ["max skew"],
                      "kind": "line", "title": "skew vs n"}]
        ))
        assert svg is not None
        parsed(svg)
        assert "skew vs n" in svg

    def test_uncharted_result_returns_none(self):
        table = Table(title="words", headers=["a", "b"])
        table.add_row("x", "y")
        result = ExperimentResult(
            experiment_id="E98", title="t", paper_artifact="none",
            tables=[table],
        )
        assert experiment_report(result) is None


# ----------------------------------------------------------------------
# live_stats uniformity (satellite: never None on live runs)


class TestLiveStats:
    def test_in_process_live_run_reports_dict_stats(self):
        execution = run_live(
            LiveRunConfig(topology="line:4", duration=4.0,
                          transport="virtual")
        )
        assert isinstance(execution.live_stats, dict)
        assert execution.live_stats["frames_dropped"] == 0
        assert execution.live_stats["events"] > 0

    def test_live_stats_surface_in_dashboard(self):
        execution = run_live(
            LiveRunConfig(topology="line:4", duration=4.0,
                          transport="virtual")
        )
        svg = skew_dashboard(execution)
        assert "frames_dropped: 0" in svg
        assert "source: live-virtual" in svg


# ----------------------------------------------------------------------
# the viz CLI


class TestVizCli:
    def test_report_verb_renders_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "sweep.json"
        artifact.write_text(json.dumps(
            {"spec": {"name": "t"},
             "jobs": [{"metrics": row} for row in sample_rows()]}
        ))
        out = tmp_path / "figs"
        assert viz_main(["report", str(artifact), "--out", str(out)]) == 0
        parsed((out / "report.svg").read_text(encoding="utf-8"))
        assert (out / "report.json").exists()

    def test_dashboard_verb_writes_figures(self, tmp_path, capsys):
        out = tmp_path / "figs"
        code = viz_main([
            "dashboard", "--topology", "line", "--nodes", "5",
            "--duration", "4", "--out", str(out),
        ])
        assert code == 0
        parsed((out / "dashboard.svg").read_text(encoding="utf-8"))
        parsed((out / "mobility.svg").read_text(encoding="utf-8"))

    def test_report_verb_fails_cleanly_on_bad_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert viz_main(["report", str(bad), "--out", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err
