"""Tests for HardwareClock and LogicalClock (sim.clock)."""

import pytest

from repro.errors import DriftBoundError, ValidityError
from repro.sim.clock import HardwareClock, LogicalClock
from repro.sim.rates import PiecewiseConstantRate


def hw(rate=1.0, rho=0.5):
    return HardwareClock(PiecewiseConstantRate.constant(rate), rho)


class TestHardwareClock:
    def test_rejects_out_of_band_rates(self):
        with pytest.raises(DriftBoundError):
            HardwareClock(PiecewiseConstantRate.constant(1.6), rho=0.5)
        with pytest.raises(DriftBoundError):
            HardwareClock(PiecewiseConstantRate.constant(0.4), rho=0.5)

    def test_accepts_band_edges(self):
        HardwareClock(PiecewiseConstantRate.constant(1.5), rho=0.5)
        HardwareClock(PiecewiseConstantRate.constant(0.5), rho=0.5)

    def test_rejects_bad_rho(self):
        with pytest.raises(DriftBoundError):
            HardwareClock(PiecewiseConstantRate.constant(1.0), rho=1.0)
        with pytest.raises(DriftBoundError):
            HardwareClock(PiecewiseConstantRate.constant(1.0), rho=-0.1)

    def test_value_time_roundtrip(self):
        clock = HardwareClock(
            PiecewiseConstantRate(starts=(0.0, 4.0), rates=(1.0, 1.25)), rho=0.5
        )
        for t in (0.0, 2.0, 4.0, 9.0):
            assert clock.time_at(clock.value_at(t)) == pytest.approx(t)

    def test_rate_at(self):
        clock = HardwareClock(
            PiecewiseConstantRate(starts=(0.0, 4.0), rates=(1.0, 1.25)), rho=0.5
        )
        assert clock.rate_at(1.0) == 1.0
        assert clock.rate_at(5.0) == 1.25


class TestLogicalClockJumps:
    def test_initially_tracks_hardware(self):
        lc = LogicalClock(hw(1.25))
        assert lc.read(4.0) == 5.0

    def test_jump_to_moves_forward(self):
        lc = LogicalClock(hw())
        assert lc.jump_to(1.0, 5.0) == pytest.approx(4.0)
        assert lc.read(1.0) == pytest.approx(5.0)
        assert lc.read(2.0) == pytest.approx(6.0)

    def test_jump_to_behind_is_noop(self):
        lc = LogicalClock(hw())
        assert lc.jump_to(5.0, 3.0) == 0.0
        assert lc.read(5.0) == 5.0

    def test_backward_jump_raises(self):
        lc = LogicalClock(hw())
        with pytest.raises(ValidityError):
            lc.jump_by(1.0, -0.5)

    def test_jump_in_past_raises(self):
        lc = LogicalClock(hw())
        lc.jump_by(5.0, 1.0)
        with pytest.raises(ValidityError):
            lc.jump_by(3.0, 1.0)

    def test_same_instant_jumps_merge(self):
        lc = LogicalClock(hw())
        lc.jump_by(2.0, 1.0)
        lc.jump_by(2.0, 1.0)
        assert lc.read(2.0) == pytest.approx(4.0)
        # Merged into a single control point.
        assert len(lc.segments()) == 2

    def test_total_jump(self):
        lc = LogicalClock(hw())
        lc.jump_by(1.0, 2.0)
        lc.jump_by(3.0, 0.5)
        assert lc.total_jump() == pytest.approx(2.5)


class TestLogicalClockHistory:
    def test_value_at_reconstructs_past(self):
        lc = LogicalClock(hw())
        lc.jump_by(2.0, 3.0)
        assert lc.value_at(1.0) == pytest.approx(1.0)
        assert lc.value_at(2.0) == pytest.approx(5.0)
        assert lc.value_at(4.0) == pytest.approx(7.0)

    def test_value_at_before_first_action(self):
        lc = LogicalClock(hw())
        assert lc.value_at(0.0) == 0.0

    def test_time_at_inverts(self):
        lc = LogicalClock(hw())
        lc.jump_by(2.0, 3.0)
        assert lc.time_at(1.0) == pytest.approx(1.0)
        assert lc.time_at(7.0) == pytest.approx(4.0)

    def test_time_at_jump_gap_maps_to_jump_instant(self):
        lc = LogicalClock(hw())
        lc.jump_by(2.0, 3.0)  # L goes 2 -> 5 at t=2
        assert lc.time_at(3.5) == pytest.approx(2.0)

    def test_time_at_never_lands_before_its_segment(self):
        """Regression: under a drifting schedule, float error in the
        hardware inversion could land a hair *before* a jump instant,
        silently losing the jump in value_at(time_at(v))."""
        schedule = PiecewiseConstantRate(
            starts=(0.0, 0.5680261567874192), rates=(0.9375, 1.0)
        )
        lc = LogicalClock(HardwareClock(schedule, 0.5))
        lc.jump_by(5.0, 1.0)
        value = lc.value_at(5.0)  # the post-jump value, exactly
        back = lc.time_at(value)
        assert back >= 5.0
        assert lc.value_at(back) >= value - 1e-7

    def test_initial_value(self):
        lc = LogicalClock(hw(), initial_value=10.0)
        assert lc.read(0.0) == 10.0
        assert lc.value_at(2.0) == 12.0


class TestMultipliers:
    def test_set_multiplier_speeds_clock(self):
        lc = LogicalClock(hw())
        lc.set_multiplier(2.0, 2.0)
        assert lc.value_at(2.0) == pytest.approx(2.0)
        assert lc.value_at(4.0) == pytest.approx(6.0)

    def test_multiplier_floor_depends_on_rho(self):
        lc = LogicalClock(hw(rho=0.5))
        assert lc.min_multiplier() == pytest.approx(1.0)
        lc0 = LogicalClock(hw(rho=0.0))
        assert lc0.min_multiplier() == pytest.approx(0.5)

    def test_below_floor_raises(self):
        lc = LogicalClock(hw(rho=0.5))
        with pytest.raises(ValidityError):
            lc.set_multiplier(1.0, 0.9)

    def test_above_cap_raises(self):
        lc = LogicalClock(hw())
        with pytest.raises(ValidityError):
            lc.set_multiplier(1.0, 100.0)

    def test_multiplier_then_jump(self):
        lc = LogicalClock(hw())
        lc.set_multiplier(1.0, 2.0)
        lc.jump_by(3.0, 1.0)  # L(3) = 1 + 2*2 = 5, +1 = 6
        assert lc.value_at(3.0) == pytest.approx(6.0)
        assert lc.value_at(4.0) == pytest.approx(8.0)  # still multiplier 2

    def test_max_multiplier_used(self):
        lc = LogicalClock(hw())
        lc.set_multiplier(1.0, 1.5)
        lc.set_multiplier(2.0, 1.0)
        assert lc.max_multiplier_used() == 1.5

    def test_noop_multiplier_change_adds_no_segment(self):
        lc = LogicalClock(hw())
        before = len(lc.segments())
        lc.set_multiplier(1.0, 1.0)
        assert len(lc.segments()) == before


class TestValidity:
    def test_hardware_rate_clock_is_valid(self):
        lc = LogicalClock(hw(rate=0.5, rho=0.5))
        lc.check_validity(10.0)

    def test_jumps_do_not_break_validity(self):
        lc = LogicalClock(hw())
        for t in range(1, 9):
            lc.jump_by(float(t), 0.5)
        lc.check_validity(9.0)

    def test_detects_slow_clock(self):
        # rho = 0.6 permits hardware at 0.4 < 1/2: validity genuinely fails.
        slow = HardwareClock(PiecewiseConstantRate.constant(0.4), rho=0.7)
        lc = LogicalClock(slow)
        with pytest.raises(ValidityError):
            lc.check_validity(5.0)
