"""Tests for analysis utilities (reporting, skew, gradient_profile)."""

import numpy as np
import pytest

from repro.algorithms import NullAlgorithm
from repro.analysis.field import SkewField
from repro.analysis.gradient_profile import (
    fit_linear,
    normalize_profile,
    profile_ratio,
)
from repro.analysis.reporting import Table
from repro.analysis.skew import (
    peak_adjacent_over_time,
    peak_skew_over_time,
    skew_heatmap,
    summarize,
)
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line


class TestTable:
    def test_render_alignment(self):
        t = Table(title="T", headers=["a", "long-header"], caption="cap")
        t.add_row(1, 2.5)
        t.add_row("xyz", 1e-8)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "cap"
        assert "a" in lines[2] and "long-header" in lines[2]
        assert len(set(len(l) for l in lines[2:])) <= 2  # aligned widths

    def test_row_arity_checked(self):
        t = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_float_formatting(self):
        t = Table(title="T", headers=["x"])
        t.add_row(float("nan"))
        t.add_row(0.5)
        t.add_row(123456.0)
        rendered = t.render()
        assert "-" in rendered
        assert "0.5" in rendered

    def test_as_dicts(self):
        t = Table(title="T", headers=["a", "b"])
        t.add_row(1, 2)
        assert t.as_dicts() == [{"a": "1", "b": "2"}]

    def test_extend(self):
        t = Table(title="T", headers=["a"])
        t.extend([[1], [2]])
        assert len(t.rows) == 2


class TestFitLinear:
    def test_exact_linear_recovered(self):
        profile = {1.0: 3.0, 2.0: 5.0, 3.0: 7.0}
        fit = fit_linear(profile)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.residual_rms == pytest.approx(0.0, abs=1e-9)
        assert fit.predict(4.0) == pytest.approx(9.0)

    def test_single_point_degenerates(self):
        fit = fit_linear({2.0: 5.0})
        assert fit.slope == 0.0
        assert fit.intercept == 5.0

    def test_max_over_linear(self):
        profile = {1.0: 2.0, 2.0: 4.0, 3.0: 9.0}  # last point above trend
        fit = fit_linear(profile)
        assert fit.max_over_linear > 1.0


class TestProfileUtils:
    def test_profile_ratio(self):
        r = profile_ratio({1.0: 2.0, 2.0: 6.0}, {1.0: 1.0, 2.0: 3.0})
        assert r == {1.0: 2.0, 2.0: 2.0}

    def test_normalize(self):
        n = normalize_profile({1.0: 2.0, 4.0: 8.0})
        assert n == {1.0: 1.0, 4.0: 4.0}

    def test_normalize_empty(self):
        assert normalize_profile({}) == {}


class TestSkewSummaries:
    @pytest.fixture()
    def drift_exec(self):
        topo = line(4)
        rates = {3: PiecewiseConstantRate.constant(1.5)}
        return run_simulation(
            topo,
            NullAlgorithm().processes(topo),
            SimConfig(duration=10.0, rho=0.5, seed=0),
            rate_schedules=rates,
        )

    def test_summarize(self, drift_exec):
        s = summarize(drift_exec, step=1.0)
        assert s.max_skew == pytest.approx(5.0)
        assert s.final_skew == pytest.approx(5.0)
        assert s.max_adjacent_skew == pytest.approx(5.0)
        assert s.mean_abs_skew > 0
        assert len(s.as_row()) == 5

    def test_time_series(self, drift_exec):
        times = [0.0, 5.0, 10.0]
        peaks = peak_skew_over_time(drift_exec, times)
        assert list(peaks) == pytest.approx([0.0, 2.5, 5.0])
        adj = peak_adjacent_over_time(drift_exec, times)
        assert list(adj) == pytest.approx([0.0, 2.5, 5.0])

    def test_heatmap_shape(self, drift_exec):
        hm = skew_heatmap(drift_exec, [0.0, 5.0])
        assert hm.shape == (2, 4, 4)
        assert np.allclose(hm[0], 0.0)


class TestSkewField:
    @pytest.fixture()
    def drift_exec(self):
        topo = line(4)
        rates = {3: PiecewiseConstantRate.constant(1.5)}
        return run_simulation(
            topo,
            NullAlgorithm().processes(topo),
            SimConfig(duration=10.0, rho=0.5, seed=0),
            rate_schedules=rates,
        )

    def test_matrix_shape_and_values(self, drift_exec):
        field = SkewField(drift_exec, step=1.0)
        assert field.values.shape == (4, 11)
        # Node 3 runs at 1.5, everyone else at 1.0.
        assert field.values[3, -1] == pytest.approx(15.0)
        assert field.values[0, -1] == pytest.approx(10.0)

    def test_series_queries(self, drift_exec):
        field = SkewField(drift_exec, step=1.0)
        assert field.max_skew() == pytest.approx(5.0)
        assert field.max_adjacent_skew() == pytest.approx(5.0)
        t, s = field.peak_adjacent_skew()
        assert (t, s) == (pytest.approx(10.0), pytest.approx(5.0))
        t, s = field.peak_skew()
        assert (t, s) == (pytest.approx(10.0), pytest.approx(5.0))

    def test_skew_matrix_column(self, drift_exec):
        field = SkewField(drift_exec, [0.0, 8.0])
        assert np.allclose(field.skew_matrix(1), drift_exec.skew_matrix(8.0))

    def test_pair_series(self, drift_exec):
        field = SkewField(drift_exec, [0.0, 5.0, 10.0])
        assert field.pair_series(3, 0) == pytest.approx([0.0, 2.5, 5.0])

    def test_mean_abs_matches_matrix_mean(self, drift_exec):
        field = SkewField(drift_exec, step=2.0)
        scalar = []
        for t in drift_exec.sample_times(2.0):
            m = np.abs(drift_exec.skew_matrix(t))
            scalar.append(m.sum() / (m.size - m.shape[0]))
        assert field.mean_abs_series() == pytest.approx(scalar, abs=1e-9)

    def test_gradient_profile_matches_execution(self, drift_exec):
        field = SkewField(drift_exec, drift_exec.sample_times())
        assert field.gradient_profile() == drift_exec.gradient_profile()

    def test_summary_matches_summarize(self, drift_exec):
        field = SkewField(drift_exec, step=1.0)
        assert field.summary() == summarize(drift_exec, step=1.0)

    def test_rejects_empty_grid(self, drift_exec):
        with pytest.raises(ValueError):
            SkewField(drift_exec, [])
