"""Fault & churn adversary tests (sim.faults) — extensions beyond the paper.

The load-bearing guarantees:

* an empty ``FaultPlan`` is *free*: traces byte-identical to a run with
  no plan at all;
* identical (plan, seed) pairs produce identical traces;
* a down node executes nothing — no sends, no receives, no timer
  firings, not even trace events — and recovery restarts it through
  ``on_recover``;
* link faults (loss / duplication / reordering / down windows) stay
  inside the ``[0, d_ij]`` delay band and are fully counted in
  ``fault_stats``.
"""

import pickle

import pytest

from repro.algorithms import AveragingAlgorithm, MaxBasedAlgorithm
from repro.errors import FaultError
from repro.sim.faults import (
    CrashingProcess,
    CrashWindow,
    DroppingDelayPolicy,
    FaultPlan,
    LinkFault,
)
from repro.sim.messages import HalfDistanceDelay, UniformRandomDelay
from repro.sim.simulator import SimConfig, Simulator, run_simulation
from repro.topology.generators import line, ring

pytestmark = pytest.mark.faults


def run(topo, alg, *, duration=20.0, seed=0, plan=None, delay_policy=None, rho=0.2):
    return run_simulation(
        topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=rho, seed=seed),
        delay_policy=delay_policy,
        fault_plan=plan,
    )


class TestFaultPlan:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan().with_crash(0, at=1.0).is_empty()
        assert not FaultPlan().with_link(loss=0.1).is_empty()

    def test_builders_are_pure(self):
        base = FaultPlan()
        grown = base.with_crash(1, at=2.0).with_link(0, 1, loss=0.5)
        assert base.is_empty()
        assert len(grown.crashes) == 1 and len(grown.links) == 1

    def test_picklable_and_hashable(self):
        plan = (
            FaultPlan()
            .with_crash(0, at=3.0, recover_at=6.0)
            .with_link(loss=0.2, duplicate=0.1)
            .with_link_down(1, 2, (4.0, 8.0))
        )
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert isinstance(hash(plan), int)

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan().with_crash(99, at=1.0),
            FaultPlan().with_crash(0, at=-1.0),
            FaultPlan().with_crash(0, at=5.0, recover_at=5.0),
            FaultPlan().with_crash(0, at=1.0).with_crash(0, at=2.0),
            FaultPlan().with_link(0, 99, loss=0.1),
            FaultPlan().with_link(loss=1.0),
            FaultPlan().with_link(0, 1, down=((3.0, 2.0),)),
        ],
    )
    def test_bad_plans_rejected(self, plan):
        topo = line(3)
        alg = MaxBasedAlgorithm()
        with pytest.raises(FaultError):
            run(topo, alg, plan=plan)

    def test_link_fault_wildcards(self):
        assert LinkFault(loss=0.1).matches(0, 5)
        assert LinkFault(sender=0).matches(0, 5)
        assert not LinkFault(sender=1).matches(0, 5)
        assert LinkFault(receiver=5).matches(0, 5)
        assert not LinkFault(receiver=4).matches(0, 5)


class TestDeterminismContract:
    def test_empty_plan_reproduces_fault_free_trace_exactly(self):
        topo = line(5)
        alg = MaxBasedAlgorithm()
        bare = run(topo, alg, delay_policy=UniformRandomDelay())
        empty = run(topo, alg, plan=FaultPlan(), delay_policy=UniformRandomDelay())
        assert bare.trace.events == empty.trace.events
        assert bare.messages == empty.messages
        assert bare.fault_stats is None and empty.fault_stats is None

    def test_same_plan_same_seed_identical_traces(self):
        topo = ring(6)
        plan = (
            FaultPlan()
            .with_crash(2, at=5.0, recover_at=11.0)
            .with_link(loss=0.2, duplicate=0.1, reorder=0.3)
        )
        runs = [
            run(topo, MaxBasedAlgorithm(), plan=plan,
                delay_policy=UniformRandomDelay())
            for _ in range(2)
        ]
        assert runs[0].trace.events == runs[1].trace.events
        assert runs[0].messages == runs[1].messages
        assert runs[0].fault_stats == runs[1].fault_stats

    def test_different_seed_different_losses(self):
        topo = line(5)
        plan = FaultPlan().with_link(loss=0.3)
        a = run(topo, MaxBasedAlgorithm(), plan=plan, seed=0)
        b = run(topo, MaxBasedAlgorithm(), plan=plan, seed=1)
        assert a.fault_stats != b.fault_stats or a.trace.events != b.trace.events


class TestCrashStop:
    def test_down_node_emits_and_observes_nothing(self):
        topo = line(4)
        plan = FaultPlan().with_crash(3, at=5.0)
        ex = run(topo, MaxBasedAlgorithm(), plan=plan, duration=30.0)
        post = [
            e for e in ex.trace.events if e.node == 3 and e.real_time > 5.0
        ]
        # Nothing after the crash: no sends, receives, or timer firings.
        assert [e.kind for e in post] == []
        crash_events = ex.trace.of_kind("crash")
        assert [(e.node, e.real_time) for e in crash_events] == [(3, 5.0)]

    def test_in_flight_messages_lost_by_default(self):
        # 0 -> 1 at distance 1, full delay: a message sent at t=0.9
        # arrives at 1.9, after the sender's crash at t=1.0.
        topo = line(2)
        plan = FaultPlan().with_crash(0, at=1.0)
        ex = run(
            topo,
            MaxBasedAlgorithm(period=0.45),
            plan=plan,
            delay_policy=UniformRandomDelay(1.0, 1.0),
            duration=10.0,
        )
        assert ex.fault_stats["lost_in_flight"] > 0
        receives_from_0 = [
            e for e in ex.trace.of_kind("receive")
            if e.node == 1 and e.real_time > 1.0
        ]
        assert receives_from_0 == []

    def test_in_flight_messages_survive_when_asked(self):
        topo = line(2)
        plan = FaultPlan().with_crash(0, at=1.0, lose_in_flight=False)
        ex = run(
            topo,
            MaxBasedAlgorithm(period=0.45),
            plan=plan,
            delay_policy=UniformRandomDelay(1.0, 1.0),
            duration=10.0,
        )
        assert ex.fault_stats["lost_in_flight"] == 0
        assert [
            e for e in ex.trace.of_kind("receive")
            if e.node == 1 and e.real_time > 1.0
        ]

    def test_crash_at_zero_never_starts(self):
        topo = line(3)
        plan = FaultPlan().with_crash(1, at=0.0)
        ex = run(topo, MaxBasedAlgorithm(), plan=plan, duration=10.0)
        assert not [e for e in ex.trace.of_kind("send") if e.node == 1]
        # The time-0 crash is still fully accounted for.
        assert ex.fault_stats["crashes"] == 1
        assert [(e.node, e.real_time) for e in ex.trace.of_kind("crash")] == [
            (1, 0.0)
        ]

    def test_crash_at_zero_with_recovery_balances_stats(self):
        topo = line(3)
        plan = FaultPlan().with_crash(1, at=0.0, recover_at=3.0)
        ex = run(topo, MaxBasedAlgorithm(), plan=plan, duration=10.0)
        assert ex.fault_stats["crashes"] == ex.fault_stats["recoveries"] == 1
        assert len(ex.trace.of_kind("crash")) == len(ex.trace.of_kind("recover"))
        # The node joins the network for the first time at recovery.
        assert [e for e in ex.trace.of_kind("send") if e.node == 1]

    def test_survivors_keep_syncing(self):
        topo = line(4)
        plan = FaultPlan().with_crash(3, at=2.0)
        ex = run(topo, MaxBasedAlgorithm(), plan=plan, duration=30.0)
        ex.check_validity()
        late_sends = [
            e
            for e in ex.trace.of_kind("send")
            if e.node in (0, 1, 2) and e.real_time > 10.0
        ]
        assert late_sends


class TestCrashRecovery:
    def test_recovery_restarts_gossip(self):
        topo = line(4)
        plan = FaultPlan().with_crash(1, at=5.0, recover_at=12.0)
        ex = run(topo, MaxBasedAlgorithm(), plan=plan, duration=30.0)
        assert ex.fault_stats["crashes"] == 1
        assert ex.fault_stats["recoveries"] == 1
        recover_events = ex.trace.of_kind("recover")
        assert [(e.node, e.real_time) for e in recover_events] == [(1, 12.0)]
        # Silent while down, gossiping again after recovery.
        sends = [e for e in ex.trace.of_kind("send") if e.node == 1]
        assert not [e for e in sends if 5.0 < e.real_time < 12.0]
        assert [e for e in sends if e.real_time >= 12.0]

    def test_pre_crash_timers_never_fire_after_recovery(self):
        # Period 10 > outage [2, 4]: the pre-crash timer would come due
        # at ~10, after recovery — it must stay cancelled, replaced by
        # the timer on_recover re-arms at ~14.
        topo = line(2)
        plan = FaultPlan().with_crash(0, at=2.0, recover_at=4.0)
        ex = run(topo, MaxBasedAlgorithm(period=10.0), plan=plan, duration=30.0)
        assert ex.fault_stats["timers_cancelled"] == 1
        timers = [
            e.real_time for e in ex.trace.of_kind("timer") if e.node == 0
        ]
        assert timers and min(timers) == pytest.approx(14.0)

    def test_logical_clock_never_goes_backward_through_outage(self):
        topo = line(5)
        plan = FaultPlan().with_crash(2, at=4.0, recover_at=9.0)
        ex = run(topo, AveragingAlgorithm(), plan=plan, duration=25.0)
        times = [t / 4 for t in range(100)]
        values = [ex.logical_value(2, t) for t in times]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        ex.check_validity()


class TestLinkFaults:
    def test_loss_reduces_deliveries(self):
        topo = line(4)
        plan = FaultPlan().with_link(loss=0.5)
        ex = run(topo, MaxBasedAlgorithm(period=0.5), plan=plan, duration=40.0)
        sent = len(ex.trace.of_kind("send"))
        received = len(ex.trace.of_kind("receive"))
        assert ex.fault_stats["lost_random"] > 0
        assert received < sent
        assert 0.3 < ex.fault_stats["lost_random"] / sent < 0.7

    def test_duplication_adds_deliveries(self):
        topo = line(3)
        plan = FaultPlan().with_link(duplicate=0.5)
        ex = run(topo, MaxBasedAlgorithm(), plan=plan, duration=20.0)
        sent = len(ex.trace.of_kind("send"))
        received = len(ex.trace.of_kind("receive"))
        assert ex.fault_stats["duplicated"] > 0
        # Every extra delivery is a duplicate (some copies may still be
        # in flight when the run ends).
        assert sent < received <= sent + ex.fault_stats["duplicated"]
        ex.check_delay_bounds()

    def test_reordering_stays_in_band(self):
        topo = line(3)
        plan = FaultPlan().with_link(reorder=0.8)
        ex = run(topo, MaxBasedAlgorithm(), plan=plan, duration=20.0)
        assert ex.fault_stats["reordered"] > 0
        ex.check_delay_bounds()

    def test_down_window_silences_the_link(self):
        topo = line(3)
        plan = FaultPlan().with_link_down(0, 1, (5.0, 15.0))
        ex = run(topo, MaxBasedAlgorithm(), plan=plan, duration=20.0)
        assert ex.fault_stats["lost_link_down"] > 0
        in_window = [
            m for m in ex.messages
            if {m.sender, m.receiver} == {0, 1} and 5.0 <= m.send_time < 15.0
        ]
        assert in_window == []
        # The other link was untouched.
        assert [
            m for m in ex.messages
            if {m.sender, m.receiver} == {1, 2} and 5.0 <= m.send_time < 15.0
        ]

    def test_directed_fault_hits_one_direction_only(self):
        topo = line(2)
        plan = FaultPlan().with_link(0, 1, loss=0.9)
        ex = run(topo, MaxBasedAlgorithm(period=0.5), plan=plan, duration=40.0)
        forward = [e for e in ex.trace.of_kind("receive") if e.node == 1]
        backward = [e for e in ex.trace.of_kind("receive") if e.node == 0]
        assert len(forward) < len(backward)


class TestCrashingProcessWrapper:
    """The legacy wrapper, now promoted to a native crash by the simulator."""

    def test_crashed_node_stops_sending(self):
        topo = line(3)
        procs = MaxBasedAlgorithm().processes(topo)
        procs[0] = CrashingProcess(procs[0], crash_at_hardware=5.0)
        ex = run_simulation(topo, procs, SimConfig(duration=20.0, seed=0))
        sends_from_0 = [e for e in ex.trace.of_kind("send") if e.node == 0]
        assert sends_from_0, "node 0 should send before crashing"
        assert all(e.hardware < 5.0 + 1e-9 for e in sends_from_0)

    def test_crashed_node_stops_emitting_entirely(self):
        """Promotion closes the old leaks: no timer firings, receives or
        in-flight deliveries from the crashed node after the crash."""
        topo = line(3)
        procs = MaxBasedAlgorithm().processes(topo)
        procs[0] = CrashingProcess(procs[0], crash_at_hardware=5.0)
        ex = run_simulation(topo, procs, SimConfig(duration=20.0, seed=0))
        post = [e for e in ex.trace.events if e.node == 0 and e.real_time > 5.0]
        assert post == []
        assert ex.trace.of_kind("crash")

    def test_promotion_respects_rate_schedules(self):
        """The crash reading converts through the node's own rate."""
        from repro.sim.rates import PiecewiseConstantRate

        topo = line(2)
        procs = MaxBasedAlgorithm().processes(topo)
        procs[0] = CrashingProcess(procs[0], crash_at_hardware=5.0)
        rates = {0: PiecewiseConstantRate.constant(0.5),
                 1: PiecewiseConstantRate.constant(1.0)}
        ex = run_simulation(
            topo, procs, SimConfig(duration=20.0, rho=0.5, seed=0),
            rate_schedules=rates,
        )
        [crash] = ex.trace.of_kind("crash")
        assert crash.real_time == pytest.approx(10.0)  # H(10) = 5 at rate 0.5

    def test_crash_at_zero_never_starts(self):
        topo = line(3)
        procs = MaxBasedAlgorithm().processes(topo)
        procs[1] = CrashingProcess(procs[1], crash_at_hardware=0.0)
        ex = run_simulation(topo, procs, SimConfig(duration=10.0, seed=0))
        assert not [e for e in ex.trace.of_kind("send") if e.node == 1]

    def test_survivors_keep_syncing(self):
        topo = line(4)
        procs = MaxBasedAlgorithm().processes(topo)
        procs[3] = CrashingProcess(procs[3], crash_at_hardware=2.0)
        ex = run_simulation(topo, procs, SimConfig(duration=30.0, seed=0))
        ex.check_validity()
        late_sends = [
            e
            for e in ex.trace.of_kind("send")
            if e.node in (0, 1, 2) and e.real_time > 10.0
        ]
        assert late_sends

    def test_rejects_negative_reading(self):
        with pytest.raises(ValueError):
            CrashingProcess(MaxBasedAlgorithm().processes(line(2))[0], -1.0)


class TestDropping:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            DroppingDelayPolicy(HalfDistanceDelay(), drop_prob=1.0)

    def test_drops_expected_fraction(self):
        topo = line(4)
        alg = MaxBasedAlgorithm(period=0.5)
        policy = DroppingDelayPolicy(HalfDistanceDelay(), drop_prob=0.5, seed=3)
        ex = run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=40.0, seed=0),
            delay_policy=policy,
        )
        sent = len(ex.trace.of_kind("send"))
        received = len(ex.trace.of_kind("receive"))
        assert policy.dropped > 0
        assert received < sent
        # Roughly half dropped (binomial; wide tolerance).
        assert 0.3 < policy.dropped / sent < 0.7

    def test_zero_probability_drops_nothing(self):
        topo = line(3)
        alg = MaxBasedAlgorithm()
        policy = DroppingDelayPolicy(HalfDistanceDelay(), drop_prob=0.0)
        ex = run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=10.0, seed=0),
            delay_policy=policy,
        )
        assert policy.dropped == 0

    def test_shared_instance_leaks_nothing_between_runs(self):
        """One policy object reused across a grid: every run re-derives
        its RNG and counter from the run seed (satellite fix)."""
        topo = line(4)
        alg = MaxBasedAlgorithm(period=0.5)
        policy = DroppingDelayPolicy(HalfDistanceDelay(), drop_prob=0.4, seed=7)

        def one_run(seed):
            ex = run_simulation(
                topo,
                alg.processes(topo),
                SimConfig(duration=30.0, seed=seed),
                delay_policy=policy,
            )
            return policy.dropped, [e for e in ex.trace.events]

        first = one_run(0)
        second = one_run(1)  # perturb the policy's state
        again = one_run(0)
        assert first == again, "rerunning a cell must not see earlier runs"
        assert first != second

    def test_sync_survives_light_loss(self):
        topo = line(4)
        alg = MaxBasedAlgorithm(period=0.5)
        policy = DroppingDelayPolicy(HalfDistanceDelay(), drop_prob=0.2, seed=1)
        ex = run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=40.0, seed=0),
            delay_policy=policy,
        )
        ex.check_validity()


@pytest.mark.engine
class TestBatchedEngineParity:
    """Fault paths under the batched engine: regression guards.

    Crash-epoch timer cancellation is the subtlest interaction between
    faults and batch-scheduled timers — a timer set before a crash must
    never fire after the node's epoch advanced, and the batched engine
    must cancel *exactly* the firings the scalar loop cancels (counted
    by ``timers_cancelled``).
    """

    def _run_both(self, topo, plan, *, duration=16.0, seed=4):
        from _engine_helpers import assert_equivalent, run_both

        scalar, batched = run_both(
            topo,
            MaxBasedAlgorithm,
            duration=duration,
            seed=seed,
            fault_plan=plan,
        )
        assert_equivalent(scalar, batched)
        return scalar, batched

    def test_mid_epoch_crash_cancels_identical_timers(self):
        # Crash mid-tick (period 1.0, crash at 4.3) with recovery: the
        # pending firing set in epoch 0 comes due inside the outage and
        # must be cancelled under both engines.
        topo = line(5)
        plan = FaultPlan().with_crash(2, at=4.3, recover_at=9.7)
        scalar, batched = self._run_both(topo, plan)
        assert scalar.fault_stats["timers_cancelled"] > 0
        assert (
            scalar.fault_stats["timers_cancelled"]
            == batched.fault_stats["timers_cancelled"]
        )

    def test_repeated_crash_windows_cancel_identically(self):
        topo = ring(6)
        plan = (
            FaultPlan()
            .with_crash(1, at=3.4, recover_at=6.6)
            .with_crash(4, at=8.2, recover_at=12.1)
        )
        scalar, batched = self._run_both(topo, plan)
        assert scalar.fault_stats == batched.fault_stats

    def test_crash_without_recovery_equivalent(self):
        topo = line(6)
        plan = FaultPlan().with_crash(0, at=5.5)
        self._run_both(topo, plan)

    def test_empty_plan_byte_identical_under_batched(self):
        # An empty plan must be a no-op for the batched engine too: same
        # digest as the batched fault-free run *and* as the scalar runs.
        from _engine_helpers import run_engine

        topo = line(5)
        kwargs = dict(duration=16.0, seed=4)
        batched_bare = run_engine("batched", topo, MaxBasedAlgorithm(), **kwargs)
        batched_empty = run_engine(
            "batched", topo, MaxBasedAlgorithm(), fault_plan=FaultPlan(), **kwargs
        )
        scalar_empty = run_engine(
            "scalar", topo, MaxBasedAlgorithm(), fault_plan=FaultPlan(), **kwargs
        )
        assert batched_bare.trace.digest() == batched_empty.trace.digest()
        assert batched_empty.trace.digest() == scalar_empty.trace.digest()
        assert batched_bare.messages == batched_empty.messages == scalar_empty.messages
        assert batched_bare.fault_stats is None
        assert batched_empty.fault_stats is None
