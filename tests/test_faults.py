"""Failure-injection tests (sim.faults) — extensions beyond the paper."""

import pytest

from repro.algorithms import MaxBasedAlgorithm
from repro.sim.faults import CrashingProcess, DroppingDelayPolicy
from repro.sim.messages import HalfDistanceDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line


class TestCrashing:
    def test_crashed_node_stops_sending(self):
        topo = line(3)
        alg = MaxBasedAlgorithm()
        procs = alg.processes(topo)
        procs[0] = CrashingProcess(procs[0], crash_at_hardware=5.0)
        ex = run_simulation(topo, procs, SimConfig(duration=20.0, seed=0))
        sends_from_0 = [e for e in ex.trace.of_kind("send") if e.node == 0]
        assert sends_from_0, "node 0 should send before crashing"
        assert all(e.hardware < 5.0 + 1e-9 for e in sends_from_0)

    def test_crash_at_zero_never_starts(self):
        topo = line(3)
        alg = MaxBasedAlgorithm()
        procs = alg.processes(topo)
        procs[1] = CrashingProcess(procs[1], crash_at_hardware=0.0)
        ex = run_simulation(topo, procs, SimConfig(duration=10.0, seed=0))
        assert not [e for e in ex.trace.of_kind("send") if e.node == 1]

    def test_survivors_keep_syncing(self):
        topo = line(4)
        alg = MaxBasedAlgorithm()
        procs = alg.processes(topo)
        procs[3] = CrashingProcess(procs[3], crash_at_hardware=2.0)
        ex = run_simulation(topo, procs, SimConfig(duration=30.0, seed=0))
        ex.check_validity()
        # Nodes 0..2 still exchange messages after the crash.
        late_sends = [
            e
            for e in ex.trace.of_kind("send")
            if e.node in (0, 1, 2) and e.real_time > 10.0
        ]
        assert late_sends


class TestDropping:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            DroppingDelayPolicy(HalfDistanceDelay(), drop_prob=1.0)

    def test_drops_expected_fraction(self):
        topo = line(4)
        alg = MaxBasedAlgorithm(period=0.5)
        policy = DroppingDelayPolicy(HalfDistanceDelay(), drop_prob=0.5, seed=3)
        ex = run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=40.0, seed=0),
            delay_policy=policy,
        )
        sent = len(ex.trace.of_kind("send"))
        received = len(ex.trace.of_kind("receive"))
        assert policy.dropped > 0
        assert received < sent
        # Roughly half dropped (binomial; wide tolerance).
        assert 0.3 < policy.dropped / sent < 0.7

    def test_zero_probability_drops_nothing(self):
        topo = line(3)
        alg = MaxBasedAlgorithm()
        policy = DroppingDelayPolicy(HalfDistanceDelay(), drop_prob=0.0)
        ex = run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=10.0, seed=0),
            delay_policy=policy,
        )
        assert policy.dropped == 0

    def test_sync_survives_light_loss(self):
        topo = line(4)
        alg = MaxBasedAlgorithm(period=0.5)
        policy = DroppingDelayPolicy(HalfDistanceDelay(), drop_prob=0.2, seed=1)
        ex = run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=40.0, seed=0),
            delay_policy=policy,
        )
        ex.check_validity()
