"""Shared helpers for the per-algorithm crash-recovery tests.

A plain module (not a conftest) so the test files can import it without
colliding with ``benchmarks/conftest.py`` in whole-repo runs.
"""

from __future__ import annotations

from repro.sim.faults import FaultPlan
from repro.sim.simulator import SimConfig, run_simulation
from repro.sweep.families import spread_rates
from repro.topology.generators import line

__all__ = ["run_crash_recovery", "assert_monotone_logical"]


def run_crash_recovery(
    algorithm,
    *,
    n=5,
    crash_node=2,
    crash_at=8.0,
    recover_at=16.0,
    duration=40.0,
    rho=0.2,
    seed=0,
):
    """Shared scenario for the per-algorithm recovery tests.

    A line under deterministically spread rates (node 0 slowest, node
    ``n-1`` fastest) with one mid-line node crashed and recovered —
    the hardest benign placement, since the crash severs the line.
    """
    topo = line(n)
    plan = FaultPlan().with_crash(crash_node, at=crash_at, recover_at=recover_at)
    return run_simulation(
        topo,
        algorithm.processes(topo),
        SimConfig(duration=duration, rho=rho, seed=seed),
        rate_schedules=spread_rates(topo, rho=rho),
        fault_plan=plan,
    )


def assert_monotone_logical(execution, node, *, step=0.25):
    """Validity across the outage: the clock never runs backward."""
    t, previous = 0.0, float("-inf")
    while t <= execution.duration + 1e-9:
        value = execution.logical_value(node, t)
        assert value >= previous - 1e-9, (
            f"node {node} logical clock went backward at t={t}"
        )
        previous = value
        t += step
