"""Tests for the round-based Srikanth-Toueg style algorithm."""

import pytest

from _fault_helpers import assert_monotone_logical, run_crash_recovery
from repro.algorithms import SrikanthTouegAlgorithm
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

RHO = 0.4


def run_line(n=5, duration=60.0, round_length=8.0, fast=None):
    topo = line(n)
    alg = SrikanthTouegAlgorithm(round_length=round_length)
    rates = {}
    if fast is not None:
        rates[fast] = PiecewiseConstantRate.constant(1.0 + RHO)
    return (
        run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=duration, rho=RHO, seed=0),
            rate_schedules=rates,
        ),
        topo,
    )


class TestRounds:
    def test_resync_messages_flow(self):
        ex, _ = run_line(fast=4)
        resyncs = [
            e
            for e in ex.trace.of_kind("send")
            if e.detail[1][0] == "resync"
        ]
        assert resyncs, "rounds should trigger resync broadcasts"

    def test_slow_nodes_jump_to_round_boundaries(self):
        ex, _ = run_line(fast=4)
        jumps = [e for e in ex.trace.of_kind("jump") if e.node != 4]
        assert jumps, "slow nodes should be dragged forward"
        # After a jump the logical value sits at a round boundary.
        boundary_hits = [
            e for e in jumps if abs(e.logical % 8.0) < 1e-6 or abs(e.logical % 8.0 - 8.0) < 1e-6
        ]
        assert boundary_hits

    def test_global_skew_stays_bounded(self):
        ex, topo = run_line(n=6, duration=100.0, fast=5)
        # O(D) bound: with drift and relaying, peak skew must stay well
        # below the unsynchronized drift accumulation (~0.8 * 100 = 80).
        peak = max(ex.max_skew(t) for t in ex.sample_times(5.0))
        assert peak < 20.0

    def test_validity(self):
        ex, _ = run_line(fast=3)
        ex.check_validity()

    def test_rounds_monotone(self):
        ex, topo = run_line(fast=4)
        # Round counters are nondecreasing by construction; spot-check by
        # replaying resync payload sequence per node.
        per_node = {n: [] for n in topo.nodes}
        for e in ex.trace.of_kind("send"):
            if e.detail[1][0] == "resync":
                per_node[e.node].append(e.detail[1][1])
        for rounds in per_node.values():
            assert rounds == sorted(rounds)


@pytest.mark.faults
class TestRecovery:
    """Crash-recovery: the rejoining node adopts the current round
    without re-broadcasting stale ones, and skew re-converges."""

    def test_recovered_clock_never_jumps_backward(self):
        ex = run_crash_recovery(SrikanthTouegAlgorithm(round_length=4.0))
        assert_monotone_logical(ex, 2)
        ex.check_validity()

    def test_reconverges_to_fault_free_skew(self):
        ex = run_crash_recovery(SrikanthTouegAlgorithm(round_length=4.0))
        assert ex.max_skew(16.5) > ex.max_skew(40.0)
        assert ex.max_skew(40.0) < 4.0

    def test_no_stale_round_flood_on_rejoin(self):
        ex = run_crash_recovery(SrikanthTouegAlgorithm(round_length=4.0))
        # Resync broadcasts from node 2 right at recovery would carry
        # rounds it slept through; on_recover adopts instead of relaying.
        rejoin_sends = [
            e for e in ex.trace.of_kind("send")
            if e.node == 2 and abs(e.real_time - 16.0) < 1e-9
        ]
        assert rejoin_sends == []
