"""E07 — TDMA with fixed slot granularity fails as the network grows."""

from __future__ import annotations

from repro.algorithms import MaxBasedAlgorithm
from repro.analysis.reporting import Table
from repro.apps.tdma import assign_slots, evaluate_tdma
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.lower_bound import LowerBoundAdversary
from repro.gcs.schedule import AdversarySchedule
from repro.topology.generators import line

__all__ = ["run"]


def run(scale: Scale = "quick", *, rho: float = 0.5, seed: int = 0) -> ExperimentResult:
    """Overlay a fixed-granularity TDMA schedule on line networks.

    Degree stays 2 (so the frame stays 3 slots) while the diameter
    grows.  Under a quiet execution there are no collisions at any size;
    under the Theorem 8.1 adversary the forced distance-1 skew
    eventually exceeds the guard margin and interfering transmissions
    overlap — the paper's TDMA claim.
    """
    diameters = pick(scale, [8, 16, 32], [8, 16, 32, 64, 128])
    slot_width = 1.0
    guard = 0.2
    algorithm = MaxBasedAlgorithm()
    table = Table(
        title="E07: TDMA collisions vs diameter (slot width fixed, degree 2)",
        headers=[
            "D",
            "slots/frame",
            "execution",
            "transmissions",
            "collisions",
            "collision rate",
            "peak adj skew",
        ],
        caption=(
            f"slot width {slot_width}, guard {guard}; collisions appear "
            "once forced adjacent skew crosses the guard margin."
        ),
    )
    series: dict[str, dict[int, float]] = {"quiet": {}, "adversarial": {}}
    for diameter in diameters:
        topology = line(diameter + 1)
        schedule = assign_slots(topology, slot_width=slot_width, guard=guard)

        quiet = AdversarySchedule.quiet(
            topology.nodes, 4.0 * diameter
        ).run(topology, algorithm, rho=rho, seed=seed)
        quiet_report = evaluate_tdma(quiet, schedule)
        table.add_row(
            diameter,
            schedule.n_slots,
            "quiet",
            quiet_report.transmissions,
            quiet_report.collisions,
            quiet_report.collision_rate,
            quiet.max_adjacent_skew(quiet.duration),
        )
        series["quiet"][diameter] = quiet_report.collision_rate

        adversary = LowerBoundAdversary(diameter, rho=rho, shrink=4, seed=seed)
        forced = adversary.run(algorithm)
        execution = forced.final_execution
        adv_report = evaluate_tdma(execution, schedule)
        table.add_row(
            diameter,
            schedule.n_slots,
            "adversarial",
            adv_report.transmissions,
            adv_report.collisions,
            adv_report.collision_rate,
            forced.peak_adjacent_skew,
        )
        series["adversarial"][diameter] = adv_report.collision_rate
    return ExperimentResult(
        experiment_id="E07",
        title="TDMA cannot scale with fixed slot granularity",
        paper_artifact="Abstract & Section 1: the TDMA implication",
        tables=[table],
        data={"series": series, "slot_width": slot_width, "guard": guard},
    )
