"""E05 — Lemma 6.1 (Add Skew), quantitatively verified."""

from __future__ import annotations

from repro._constants import tau as tau_of
from repro.algorithms import (
    AveragingAlgorithm,
    BoundedCatchUpAlgorithm,
    MaxBasedAlgorithm,
)
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew, verify_add_skew_claims
from repro.gcs.indistinguishability import assert_indistinguishable_prefix
from repro.gcs.schedule import AdversarySchedule
from repro.topology.generators import line

__all__ = ["run"]


def run(scale: Scale = "quick", *, rho: float = 0.5, seed: int = 0) -> ExperimentResult:
    spans = pick(scale, [2, 4, 8], [2, 4, 8, 16, 32])
    algorithms = [
        MaxBasedAlgorithm(),
        AveragingAlgorithm(),
        BoundedCatchUpAlgorithm(),
    ]
    tau = tau_of(rho)
    table = Table(
        title="E05: one Add Skew application per (algorithm, span)",
        headers=[
            "algorithm",
            "span j-i",
            "gain",
            "guarantee (j-i)/12",
            "T - T'",
            "indist.",
            "delays in [d/4,3d/4]",
        ],
        caption=(
            "Lemma 6.1: gain >= (j-i)/12, window shrink >= (j-i)/6, "
            "beta indistinguishable from alpha, delays within bounds."
        ),
    )
    for algorithm in algorithms:
        for span in spans:
            n = span + 1
            topology = line(n)
            schedule = AdversarySchedule.quiet(topology.nodes, tau * span)
            alpha = schedule.run(topology, algorithm, rho=rho, seed=seed)
            plan = AddSkewPlan(
                i=0,
                j=span,
                n=n,
                alpha_duration=schedule.duration,
                rho=rho,
                lead="lo",
            )
            beta_schedule = apply_add_skew(schedule, plan)
            beta = beta_schedule.run(topology, algorithm, rho=rho, seed=seed)
            assert_indistinguishable_prefix(alpha, beta)
            summary = verify_add_skew_claims(alpha, beta, plan)
            delays_ok = beta.delays_within(
                0.25, 0.75, received_from=plan.window_start
            )
            table.add_row(
                algorithm.name,
                span,
                summary["gain"],
                summary["guaranteed_gain"],
                summary["window_shrink"],
                "yes",
                "yes" if delays_ok else "NO",
            )
    return ExperimentResult(
        experiment_id="E05",
        title="Add Skew lemma, claims 6.2-6.5 verified numerically",
        paper_artifact="Lemma 6.1 and Claims 6.2-6.5",
        tables=[table],
        data={"spans": spans},
    )
