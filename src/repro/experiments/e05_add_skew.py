"""E05 — Lemma 6.1 (Add Skew), quantitatively verified.

Each (algorithm, span) cell is an independent construction, so the grid
runs through the sweep engine as ``add-skew-cell`` jobs: serial by
default, fanned across a worker pool with ``workers > 1``, identical
numbers either way.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro._constants import tau as tau_of
from repro.analysis.field import SkewField
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew, verify_add_skew_claims
from repro.gcs.indistinguishability import assert_indistinguishable_prefix
from repro.gcs.schedule import AdversarySchedule
from repro.sweep import Job, algorithm_from_spec, job_kind, run_jobs
from repro.topology.generators import line

__all__ = ["run"]


@job_kind("add-skew-cell")
def add_skew_cell(params: Mapping[str, Any]) -> dict:
    """One Add Skew application: build alpha, warp to beta, verify claims."""
    algorithm = algorithm_from_spec(params["algorithm"])
    span = int(params["span"])
    rho = float(params["rho"])
    seed = int(params["seed"])
    tau = tau_of(rho)
    n = span + 1
    topology = line(n)
    schedule = AdversarySchedule.quiet(topology.nodes, tau * span)
    alpha = schedule.run(topology, algorithm, rho=rho, seed=seed)
    plan = AddSkewPlan(
        i=0, j=span, n=n, alpha_duration=schedule.duration, rho=rho, lead="lo"
    )
    beta_schedule = apply_add_skew(schedule, plan)
    beta = beta_schedule.run(topology, algorithm, rho=rho, seed=seed)
    assert_indistinguishable_prefix(alpha, beta)
    summary = verify_add_skew_claims(alpha, beta, plan)
    delays_ok = beta.delays_within(0.25, 0.75, received_from=plan.window_start)
    # The attacked pair's full skew trajectory in beta, answered from one
    # batched trajectory matrix (the cell's measurement path).
    peak_pair = float(SkewField(beta, step=1.0).pair_series(0, span).max())
    return {
        "algorithm": params["algorithm"],
        "algorithm_name": algorithm.name,
        "span": span,
        "gain": float(summary["gain"]),
        "guaranteed_gain": float(summary["guaranteed_gain"]),
        "window_shrink": float(summary["window_shrink"]),
        "peak_pair_skew": peak_pair,
        "indistinguishable": True,  # assert above raises otherwise
        "delays_ok": bool(delays_ok),
    }


def run(
    scale: Scale = "quick", *, rho: float = 0.5, seed: int = 0, workers: int = 1
) -> ExperimentResult:
    spans = pick(scale, [2, 4, 8], [2, 4, 8, 16, 32])
    algorithms = ["max-based", "averaging", "bounded-catch-up"]
    jobs = [
        Job(
            kind="add-skew-cell",
            params={
                "algorithm": algorithm,
                "span": span,
                "rho": rho,
                "seed": seed,
            },
        )
        for algorithm in algorithms
        for span in spans
    ]
    outcomes = run_jobs(jobs, workers=workers)

    table = Table(
        title="E05: one Add Skew application per (algorithm, span)",
        headers=[
            "algorithm",
            "span j-i",
            "gain",
            "guarantee (j-i)/12",
            "T - T'",
            "peak |skew|",
            "indist.",
            "delays in [d/4,3d/4]",
        ],
        caption=(
            "Lemma 6.1: gain >= (j-i)/12, window shrink >= (j-i)/6, "
            "beta indistinguishable from alpha, delays within bounds."
        ),
    )
    for outcome in outcomes:
        m = outcome.metrics
        table.add_row(
            m["algorithm_name"],
            m["span"],
            m["gain"],
            m["guaranteed_gain"],
            m["window_shrink"],
            m["peak_pair_skew"],
            "yes" if m["indistinguishable"] else "NO",
            "yes" if m["delays_ok"] else "NO",
        )
    return ExperimentResult(
        experiment_id="E05",
        title="Add Skew lemma, claims 6.2-6.5 verified numerically",
        paper_artifact="Lemma 6.1 and Claims 6.2-6.5",
        tables=[table],
        data={"spans": spans},
    )
