"""E03 — Figure 1: the staggered rate-gamma windows of execution beta.

The beta construction-and-run is a single sweep-engine job
(``figure1-beta``), so repeated invocations — e.g. from a cached sweep —
pay for the simulation only once.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro._constants import tau as tau_of
from repro.algorithms import MaxBasedAlgorithm
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew
from repro.gcs.schedule import AdversarySchedule
from repro.sweep import Job, job_kind, run_jobs
from repro.topology.generators import line

__all__ = ["run"]


def _build_plan(n: int, rho: float) -> tuple[AddSkewPlan, AdversarySchedule]:
    i, j = 1, n - 2
    tau = tau_of(rho)
    schedule = AdversarySchedule.quiet(range(n), tau * (j - i))
    plan = AddSkewPlan(
        i=i, j=j, n=n, alpha_duration=schedule.duration, rho=rho, lead="lo"
    )
    return plan, schedule


@job_kind("figure1-beta")
def figure1_beta(params: Mapping[str, Any]) -> dict:
    """Apply the Add Skew plan, run beta, and read the windows back."""
    n = int(params["n"])
    rho = float(params["rho"])
    seed = int(params["seed"])
    topology = line(n)
    plan, schedule = _build_plan(n, rho)
    beta_schedule = apply_add_skew(schedule, plan)
    # Run it so the schedule is exercised, not just printed.
    beta = beta_schedule.run(topology, MaxBasedAlgorithm(), rho=rho, seed=seed)
    beta.check_drift_bounds()
    windows = plan.gamma_windows()
    measured = []
    for node in range(n):
        knee, end = windows[node]
        span = max(end - knee, 0.0)
        mid = (knee + end) / 2.0 if span > 0 else plan.window_start
        measured.append(
            float(beta_schedule.rates[node].rate_at(mid)) if span > 1e-9 else 1.0
        )
    return {
        "n": n,
        "windows": [[float(a), float(b)] for a, b in (windows[k] for k in range(n))],
        "measured_rates": measured,
        "gamma": float(plan.gamma),
    }


def run(scale: Scale = "quick", *, rho: float = 0.5, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 1's data: per-node knee times ``T_k``.

    The figure shows nodes ``1..D`` with thick bars marking when each
    runs at rate gamma: node ``k`` runs gamma for ``tau/gamma`` longer
    than node ``k+1`` along the ramp ``i < k < j``.  We build an actual
    plan, apply it, and read the windows back from the *resulting
    schedule* (not the formulas), so the table is measured output.
    """
    n = pick(scale, 10, 14)
    tau = tau_of(rho)
    [outcome] = run_jobs(
        [Job(kind="figure1-beta", params={"n": n, "rho": rho, "seed": seed})]
    )
    plan, _ = _build_plan(n, rho)
    windows = {node: tuple(w) for node, w in enumerate(outcome.metrics["windows"])}
    measured_rates = outcome.metrics["measured_rates"]

    table = Table(
        title="E03: Figure 1 — rate-gamma window per node",
        headers=["node k", "T_k (knee)", "window end T'", "gamma span", "measured rate"],
        caption=(
            f"i={plan.i}, j={plan.j}, S={plan.window_start:g}, "
            f"T={plan.window_end:g}, T'={plan.beta_end:g}, "
            f"gamma={plan.gamma:.4f}; successive ramp knees differ by "
            f"tau/gamma = {tau / plan.gamma:.4f}."
        ),
    )
    ascii_rows = []
    for node in range(n):
        knee, end = windows[node]
        span = max(end - knee, 0.0)
        table.add_row(node, knee, end, span, measured_rates[node])
        # ASCII rendition of the figure itself.
        scale_len = 40
        t0 = plan.window_start
        total = plan.window_end - t0
        a = int((knee - t0) / total * scale_len)
        b = int((end - t0) / total * scale_len)
        ascii_rows.append(f"  node {node:2d} |" + "." * a + "#" * (b - a) + "." * (scale_len - b))

    figure = Table(
        title="E03: Figure 1 (ASCII; '#' = running at rate gamma)",
        headers=["bar"],
        caption="Compare with the paper's Figure 1: a staircase of windows.",
    )
    for row in ascii_rows:
        figure.add_row(row)
    return ExperimentResult(
        experiment_id="E03",
        title="Figure 1: hardware rate schedule of beta",
        paper_artifact="Figure 1 (the paper's only figure)",
        tables=[table, figure],
        data={"windows": windows, "gamma": outcome.metrics["gamma"]},
    )
