"""E03 — Figure 1: the staggered rate-gamma windows of execution beta."""

from __future__ import annotations

from repro._constants import tau as tau_of
from repro.algorithms import MaxBasedAlgorithm
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew
from repro.gcs.schedule import AdversarySchedule
from repro.topology.generators import line

__all__ = ["run"]


def run(scale: Scale = "quick", *, rho: float = 0.5, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 1's data: per-node knee times ``T_k``.

    The figure shows nodes ``1..D`` with thick bars marking when each
    runs at rate gamma: node ``k`` runs gamma for ``tau/gamma`` longer
    than node ``k+1`` along the ramp ``i < k < j``.  We build an actual
    plan, apply it, and read the windows back from the *resulting
    schedule* (not the formulas), so the table is measured output.
    """
    n = pick(scale, 10, 14)
    i, j = 1, n - 2
    tau = tau_of(rho)
    topology = line(n)
    schedule = AdversarySchedule.quiet(topology.nodes, tau * (j - i))
    plan = AddSkewPlan(
        i=i, j=j, n=n, alpha_duration=schedule.duration, rho=rho, lead="lo"
    )
    beta_schedule = apply_add_skew(schedule, plan)
    # Run it so the schedule is exercised, not just printed.
    beta = beta_schedule.run(topology, MaxBasedAlgorithm(), rho=rho, seed=seed)
    beta.check_drift_bounds()

    table = Table(
        title="E03: Figure 1 — rate-gamma window per node",
        headers=["node k", "T_k (knee)", "window end T'", "gamma span", "measured rate"],
        caption=(
            f"i={i}, j={j}, S={plan.window_start:g}, T={plan.window_end:g}, "
            f"T'={plan.beta_end:g}, gamma={plan.gamma:.4f}; successive ramp "
            f"knees differ by tau/gamma = {tau / plan.gamma:.4f}."
        ),
    )
    ascii_rows = []
    for node in range(n):
        knee, end = plan.gamma_windows()[node]
        span = max(end - knee, 0.0)
        mid = (knee + end) / 2.0 if span > 0 else plan.window_start
        measured = beta_schedule.rates[node].rate_at(mid) if span > 1e-9 else 1.0
        table.add_row(node, knee, end, span, measured)
        # ASCII rendition of the figure itself.
        scale_len = 40
        t0 = plan.window_start
        total = plan.window_end - t0
        a = int((knee - t0) / total * scale_len)
        b = int((end - t0) / total * scale_len)
        ascii_rows.append(f"  node {node:2d} |" + "." * a + "#" * (b - a) + "." * (scale_len - b))

    figure = Table(
        title="E03: Figure 1 (ASCII; '#' = running at rate gamma)",
        headers=["bar"],
        caption="Compare with the paper's Figure 1: a staircase of windows.",
    )
    for row in ascii_rows:
        figure.add_row(row)
    return ExperimentResult(
        experiment_id="E03",
        title="Figure 1: hardware rate schedule of beta",
        paper_artifact="Figure 1 (the paper's only figure)",
        tables=[table, figure],
        data={"windows": plan.gamma_windows(), "gamma": plan.gamma},
    )
