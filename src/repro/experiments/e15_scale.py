"""E15 — gradient profiles at scale (beyond the paper's evaluation).

The paper's gradient property is about the *shape* of skew as a
function of distance, but profiles at production diameters were out of
reach while every measurement cost ``O(T n^2)`` scalar clock lookups:
the experiments stopped near ``D = 128``.  With the vectorized
:class:`~repro.analysis.field.SkewField` the full ``f(d)`` of a
multi-hundred-diameter network is one trajectory-matrix build plus array
arithmetic — which moved the bottleneck to the simulation itself.  The
batched engine (``repro.sim.engine``, byte-identical to the scalar loop
by the differential harness in ``tests/test_engine_equivalence.py``)
moves it back: this experiment runs each cell under the batched engine
with tracing off (the at-scale configuration) and sweeps line / grid /
random-geometric topologies past ``D = 512``, reporting both the
profiles and the cost split (sim seconds vs. field build + query
seconds per cell).  Both halves are benchmarkable artifacts
(``benchmarks/bench_analysis.py`` pins the analysis speedup,
``benchmarks/bench_sim.py`` the engine speedup).
"""

from __future__ import annotations

import time

from repro.algorithms import BoundedCatchUpAlgorithm
from repro.analysis.field import SkewField
from repro.analysis.gradient_profile import fit_linear
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.sim.messages import UniformRandomDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.sweep.families import drifted_rates
from repro.topology.generators import grid, line, random_geometric

__all__ = ["run"]

#: Topology families swept, each built to hit a target diameter ``D``:
#: the line has ``D + 1`` nodes, the 4-row grid ``4 (D - 2)``, and the
#: geometric field uses ``D`` nodes (its realized diameter is measured).
FAMILIES = ("line", "grid", "geometric")


def _build_topology(family: str, diameter: int, *, seed: int):
    if family == "line":
        return line(diameter + 1)
    if family == "grid":
        return grid(4, diameter - 2)
    if family == "geometric":
        return random_geometric(diameter, seed=seed)
    raise ValueError(f"unknown topology family {family!r}")


def run(
    scale: Scale = "quick",
    *,
    rho: float = 0.2,
    seed: int = 0,
    engine: str = "batched",
) -> ExperimentResult:
    """Profile the gradient candidate across diameters in the hundreds.

    Expected shape: per cell, the empirical ``f(d)`` rises with distance
    and both measurement and simulation cost stay tractable out to
    ``D = 768``.  ``engine`` defaults to the batched engine; passing
    ``"scalar"`` reproduces the pre-engine cost column (the results are
    byte-identical either way, only the ``sim s`` column moves).
    """
    diameters = pick(scale, [32, 64, 128], [32, 64, 128, 256, 512, 768])
    duration = pick(scale, 20.0, 30.0)
    algorithm = BoundedCatchUpAlgorithm()
    table = Table(
        title="E15: gradient profiles at scale (batched analysis path)",
        headers=[
            "topology",
            "D target",
            "D actual",
            "n",
            "samples",
            "sim s",
            "field s",
            "query s",
            "f(d_min)",
            "f(d_med)",
            "f(d_max)",
            "fit a*d+b",
        ],
        caption=(
            "One drifted benign run per cell; 'field s' builds the n x T "
            "trajectory matrix, 'query s' answers the profile, summary, "
            "and adjacent-skew series from it.  f is reported at the "
            "smallest, median, and largest distinct pair distances (for "
            "the geometric family d_min is 1 by normalization but "
            "d_max is the realized diameter, not the target)."
        ),
    )
    profiles: dict[str, dict[float, float]] = {}
    timings: dict[str, dict[str, float]] = {}
    for family in FAMILIES:
        for diameter in diameters:
            topology = _build_topology(family, diameter, seed=seed)
            sim_start = time.perf_counter()
            execution = run_simulation(
                topology,
                algorithm.processes(topology),
                SimConfig(
                    duration=duration,
                    rho=rho,
                    seed=seed,
                    # At-scale configuration: no trace, vectorized engine.
                    # Every measurement below reads clocks, not the trace.
                    record_trace=False,
                    engine=engine,
                ),
                rate_schedules=drifted_rates(topology, rho=rho, seed=seed),
                delay_policy=UniformRandomDelay(),
            )
            sim_s = time.perf_counter() - sim_start

            build_start = time.perf_counter()
            field = SkewField(execution, step=0.5)
            field_s = time.perf_counter() - build_start

            query_start = time.perf_counter()
            profile = field.gradient_profile()
            field.summary()
            field.max_adjacent_series()
            query_s = time.perf_counter() - query_start

            actual = topology.diameter
            fit = fit_linear(profile)
            distances = sorted(profile)
            mid = distances[len(distances) // 2]
            cell = f"{family}:{diameter}"
            profiles[cell] = profile
            timings[cell] = {
                "sim_s": sim_s,
                "field_s": field_s,
                "query_s": query_s,
                "n": topology.n,
                "samples": field.n_samples,
            }
            table.add_row(
                topology.name,
                diameter,
                actual,
                topology.n,
                field.n_samples,
                round(sim_s, 3),
                round(field_s, 4),
                round(query_s, 4),
                profile[distances[0]],
                profile[mid],
                profile[distances[-1]],
                f"{fit.slope:.3f}*d+{fit.intercept:.3f}",
            )
    return ExperimentResult(
        experiment_id="E15",
        title="gradient profiles at scale (vectorized analysis core)",
        paper_artifact=(
            "none — scales the Section 4 gradient-profile measurement "
            "beyond the paper's diameters"
        ),
        tables=[table],
        notes=[
            "Every profile is answered from one n x T trajectory matrix "
            "(SkewField); the scalar value_at path is O(T n^2) bisects "
            "and capped earlier experiments near D = 128.",
            f"Simulation ran on the {engine!r} engine with tracing off; "
            "the batched engine is byte-identical to the scalar loop "
            "(tests/test_engine_equivalence.py) and lifted the sim-side "
            "cap near D = 512.",
        ],
        data={
            "profiles": profiles,
            "timings": timings,
            "diameters": diameters,
            "engine": engine,
        },
    )
