"""E14 — sim vs live: the same algorithms, re-run on real transports.

Every other experiment measures algorithms inside the discrete-event
simulator.  E14 runs the *same* process objects through the live runtime
(:mod:`repro.rt`) on each transport backend and puts the skew numbers
side by side:

* ``sim`` — the simulator baseline (a ``benign-run`` sweep job);
* ``virtual`` — the runtime's deterministic virtual-time scheduler,
  which must reproduce the simulator **exactly** (tolerance
  :data:`VIRTUAL_TOLERANCE`, enforced by ``tests/test_rt_virtual.py``);
  any gap here would mean the LiveNode adapter changed semantics;
* ``asyncio`` — real wall-clock tasks in one process: the skew gap vs
  sim is genuine OS scheduling noise on top of the injected delays;
* ``udp`` — one OS process per node over localhost UDP: adds real
  serialization, kernel queues, and cross-process clock realization.

Each live cell reports its wall-clock cost and a ``bounded`` verdict:
final skew within :func:`skew_bound` (a gradient-style ``O(diameter)``
budget).  Beyond the paper — the paper has no implementation; this is
the reproduction graduating from model to system.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.sweep import Job, run_jobs

__all__ = ["run", "BACKENDS", "VIRTUAL_TOLERANCE", "skew_bound"]

#: Execution backends compared, in table order.
BACKENDS = ("sim", "virtual", "asyncio", "udp")

#: Max allowed |max-skew trajectory difference| between the simulator
#: and a virtual-time live run of the same scenario (float round-off;
#: the two engines share event ordering, RNG streams, and clock math).
VIRTUAL_TOLERANCE = 1e-9


def skew_bound(diameter: float) -> float:
    """The ``bounded`` verdict's budget: full-diameter gradient slack.

    ``diameter + 1``: an ``f(d) = O(d)`` budget evaluated at the network
    diameter plus one distance unit of measurement slack.  Synchronized
    benign runs sit well inside it; an adapter or transport bug that
    breaks synchronization blows straight through it.
    """
    return diameter + 1.0


def _jobs(
    topology: str,
    algorithms: list[str],
    backends: list[str],
    *,
    duration: float,
    rho: float,
    seed: int,
    time_scale: float,
) -> list[Job]:
    jobs = []
    for algorithm in algorithms:
        for backend in backends:
            if backend == "sim":
                jobs.append(
                    Job(
                        kind="benign-run",
                        params={
                            "topology": topology,
                            "algorithm": algorithm,
                            "rates": "drifted",
                            "delays": "uniform",
                            "faults": "none",
                            "seed": seed,
                            "duration": duration,
                            "rho": rho,
                            "step": 1.0,
                        },
                    )
                )
            else:
                jobs.append(
                    Job(
                        kind="live-run",
                        params={
                            "topology": topology,
                            "algorithm": algorithm,
                            "rates": "drifted",
                            "delays": "uniform",
                            "transport": backend,
                            "seed": seed,
                            "duration": duration,
                            "rho": rho,
                            "step": 1.0,
                            "time_scale": time_scale,
                        },
                        module="repro.rt.jobs",
                    )
                )
    return jobs


def run(
    scale: Scale = "quick", *, rho: float = 0.2, seed: int = 0, workers: int = 1
) -> ExperimentResult:
    """Compare each algorithm's skew across sim and live transports."""
    topology = pick(scale, "line:6", "line:10")
    algorithms = ["gradient", "averaging"]
    backends = list(BACKENDS)
    duration = pick(scale, 8.0, 24.0)
    time_scale = pick(scale, 0.15, 0.1)

    jobs = _jobs(
        topology, algorithms, backends,
        duration=duration, rho=rho, seed=seed, time_scale=time_scale,
    )
    # udp cells spawn node processes, which daemonic pool workers may
    # not do — they run serially in the parent; everything else may fan
    # out across the pool.
    pool_jobs = [j for j in jobs if j.params.get("transport") != "udp"]
    udp_jobs = [j for j in jobs if j.params.get("transport") == "udp"]
    outcomes = run_jobs(pool_jobs, workers=workers) + run_jobs(udp_jobs, workers=1)

    cells: dict[tuple[str, str], dict] = {}
    for outcome in outcomes:
        m = outcome.metrics
        cells[(m["algorithm"], m["transport"])] = m

    table = Table(
        title="E14: sim vs live skew, same scenario on every backend",
        headers=[
            "algorithm",
            "backend",
            "max_skew",
            "final_skew",
            "d final vs sim",
            "bounded",
            "msgs",
            "wall s",
        ],
        caption=(
            f"topology {topology}, duration {duration} sim units, seed "
            f"{seed}, drifted rates, uniform delays.  'd final vs sim' is "
            f"|final_skew - sim final_skew|: 0 for the virtual backend "
            f"(deterministic replay, tolerance {VIRTUAL_TOLERANCE}), "
            f"scheduling noise for asyncio/udp.  'bounded' checks final "
            f"skew against the diameter+1 gradient budget."
        ),
    )
    comparisons: dict[str, dict] = {}
    for algorithm in algorithms:
        sim = cells[(algorithm, "sim")]
        bound = skew_bound(sim["diameter"])
        for backend in backends:
            m = cells[(algorithm, backend)]
            delta = abs(m["final_skew"] - sim["final_skew"])
            bounded = m["final_skew"] <= bound
            table.add_row(
                algorithm,
                backend,
                round(m["max_skew"], 4),
                round(m["final_skew"], 4),
                round(delta, 6),
                "yes" if bounded else "NO",
                m["messages"],
                m.get("wall_elapsed", "-"),
            )
            comparisons.setdefault(algorithm, {})[backend] = {
                "max_skew": m["max_skew"],
                "final_skew": m["final_skew"],
                "delta_vs_sim": delta,
                "bounded": bounded,
                "wall_elapsed": m.get("wall_elapsed"),
            }
    return ExperimentResult(
        experiment_id="E14",
        title="live runtime: sim-vs-live skew across transports",
        paper_artifact=(
            "none — the paper has no implementation; this validates the "
            "live runtime against the model"
        ),
        tables=[table],
        notes=[
            f"{len(outcomes)} cells ({len(algorithms)} algorithms x "
            f"{len(backends)} backends), workers={workers}; udp cells "
            f"run one OS process per node",
        ],
        data={
            "topology": topology,
            "backends": backends,
            "virtual_tolerance": VIRTUAL_TOLERANCE,
            "cells": comparisons,
        },
    )
