"""E14 — sim vs live: the same algorithms, re-run on real transports.

Every other experiment measures algorithms inside the discrete-event
simulator.  E14 runs the *same* process objects through the live runtime
(:mod:`repro.rt`) on each transport backend and puts the skew numbers
side by side:

* ``sim`` — the simulator baseline (a ``benign-run`` sweep job);
* ``virtual`` — the runtime's deterministic virtual-time scheduler,
  which must reproduce the simulator **exactly** (tolerance
  :data:`VIRTUAL_TOLERANCE`, enforced by ``tests/test_rt_virtual.py``);
  any gap here would mean the LiveNode adapter changed semantics;
* ``asyncio`` — real wall-clock tasks in one process: the skew gap vs
  sim is genuine OS scheduling noise on top of the injected delays;
* ``udp`` — one OS process per node over localhost UDP: adds real
  serialization, kernel queues, and cross-process clock realization;
* ``router`` — many nodes multiplexed onto a few worker processes
  around one central router socket: the scale backend.

Each live cell reports its wall-clock cost and a ``bounded`` verdict:
final skew within :func:`skew_bound` (a gradient-style ``O(diameter)``
budget).  A second table climbs a router node-count ladder
(:data:`LADDER_QUICK` / :data:`LADDER_FULL`) recording throughput
(events/sec) and the bounded verdict at each size — the runtime's
scale envelope.  Beyond the paper — the paper has no implementation;
this is the reproduction graduating from model to system.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import Table
from repro.analysis.skew import summarize
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.rt.run import LiveRunConfig, run_live
from repro.sweep import Job, run_jobs

__all__ = [
    "run",
    "BACKENDS",
    "VIRTUAL_TOLERANCE",
    "skew_bound",
    "LADDER_QUICK",
    "LADDER_FULL",
    "ladder_cell",
]

#: Execution backends compared, in table order.
BACKENDS = ("sim", "virtual", "asyncio", "udp", "router")

#: Router-ladder topologies per scale: node counts 8 -> 512 on the two
#: shapes the paper's gradient bound distinguishes (long thin line,
#: denser grid).
LADDER_QUICK = ("line:8", "line:32")
LADDER_FULL = (
    "line:8",
    "line:32",
    "grid:8,4",
    "line:128",
    "grid:16,8",
    "line:512",
)

#: Max allowed |max-skew trajectory difference| between the simulator
#: and a virtual-time live run of the same scenario (float round-off;
#: the two engines share event ordering, RNG streams, and clock math).
VIRTUAL_TOLERANCE = 1e-9


def skew_bound(diameter: float) -> float:
    """The ``bounded`` verdict's budget: full-diameter gradient slack.

    ``diameter + 1``: an ``f(d) = O(d)`` budget evaluated at the network
    diameter plus one distance unit of measurement slack.  Synchronized
    benign runs sit well inside it; an adapter or transport bug that
    breaks synchronization blows straight through it.
    """
    return diameter + 1.0


def ladder_cell(
    topology: str,
    *,
    duration: float,
    rho: float,
    seed: int,
    time_scale: float,
) -> dict:
    """One router-ladder rung: run live, report throughput + the verdict.

    Traces are only recorded up to 64 nodes — above that the merged
    event list dominates memory and the ladder measures throughput and
    the bounded verdict, both of which survive without a trace.
    """
    config = LiveRunConfig(
        topology=topology,
        algorithm="gradient",
        duration=duration,
        rho=rho,
        seed=seed,
        transport="router",
        time_scale=time_scale,
        record_trace=topology_nodes(topology) <= 64,
    )
    wall_start = time.perf_counter()
    execution = run_live(config)
    wall = time.perf_counter() - wall_start
    skew = summarize(execution)
    events = int(execution.live_stats.get("events", 0))
    return {
        "topology": topology,
        "n_nodes": int(execution.topology.n),
        "workers": int(execution.live_stats.get("workers", 0)),
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "messages": len(execution.messages),
        "final_skew": float(skew.final_skew),
        "bounded": bool(skew.final_skew <= skew_bound(execution.topology.diameter)),
        "frames_dropped": int(execution.live_stats.get("frames_dropped", 0)),
        "wall_elapsed": wall,
    }


def topology_nodes(spec: str) -> int:
    """Node count of a topology spec (probe-build, used for gating)."""
    from repro.sweep.families import topology_from_spec

    return topology_from_spec(spec).n


def _jobs(
    topology: str,
    algorithms: list[str],
    backends: list[str],
    *,
    duration: float,
    rho: float,
    seed: int,
    time_scale: float,
) -> list[Job]:
    jobs = []
    for algorithm in algorithms:
        for backend in backends:
            if backend == "sim":
                jobs.append(
                    Job(
                        kind="benign-run",
                        params={
                            "topology": topology,
                            "algorithm": algorithm,
                            "rates": "drifted",
                            "delays": "uniform",
                            "faults": "none",
                            "seed": seed,
                            "duration": duration,
                            "rho": rho,
                            "step": 1.0,
                        },
                    )
                )
            else:
                jobs.append(
                    Job(
                        kind="live-run",
                        params={
                            "topology": topology,
                            "algorithm": algorithm,
                            "rates": "drifted",
                            "delays": "uniform",
                            "transport": backend,
                            "seed": seed,
                            "duration": duration,
                            "rho": rho,
                            "step": 1.0,
                            "time_scale": time_scale,
                        },
                        module="repro.rt.jobs",
                    )
                )
    return jobs


def run(
    scale: Scale = "quick", *, rho: float = 0.2, seed: int = 0, workers: int = 1
) -> ExperimentResult:
    """Compare each algorithm's skew across sim and live transports."""
    topology = pick(scale, "line:6", "line:10")
    algorithms = ["gradient", "averaging"]
    backends = list(BACKENDS)
    duration = pick(scale, 8.0, 24.0)
    time_scale = pick(scale, 0.15, 0.1)

    jobs = _jobs(
        topology, algorithms, backends,
        duration=duration, rho=rho, seed=seed, time_scale=time_scale,
    )
    # udp/router cells spawn OS processes, which daemonic pool workers
    # may not do — they run serially in the parent; everything else may
    # fan out across the pool.
    forking = ("udp", "router")
    pool_jobs = [j for j in jobs if j.params.get("transport") not in forking]
    serial_jobs = [j for j in jobs if j.params.get("transport") in forking]
    outcomes = run_jobs(pool_jobs, workers=workers) + run_jobs(serial_jobs, workers=1)

    cells: dict[tuple[str, str], dict] = {}
    for outcome in outcomes:
        m = outcome.metrics
        cells[(m["algorithm"], m["transport"])] = m

    table = Table(
        title="E14: sim vs live skew, same scenario on every backend",
        headers=[
            "algorithm",
            "backend",
            "max_skew",
            "final_skew",
            "d final vs sim",
            "bounded",
            "msgs",
            "wall s",
        ],
        caption=(
            f"topology {topology}, duration {duration} sim units, seed "
            f"{seed}, drifted rates, uniform delays.  'd final vs sim' is "
            f"|final_skew - sim final_skew|: 0 for the virtual backend "
            f"(deterministic replay, tolerance {VIRTUAL_TOLERANCE}), "
            f"scheduling noise for asyncio/udp.  'bounded' checks final "
            f"skew against the diameter+1 gradient budget."
        ),
    )
    comparisons: dict[str, dict] = {}
    for algorithm in algorithms:
        sim = cells[(algorithm, "sim")]
        bound = skew_bound(sim["diameter"])
        for backend in backends:
            m = cells[(algorithm, backend)]
            delta = abs(m["final_skew"] - sim["final_skew"])
            bounded = m["final_skew"] <= bound
            table.add_row(
                algorithm,
                backend,
                round(m["max_skew"], 4),
                round(m["final_skew"], 4),
                round(delta, 6),
                "yes" if bounded else "NO",
                m["messages"],
                m.get("wall_elapsed", "-"),
            )
            comparisons.setdefault(algorithm, {})[backend] = {
                "max_skew": m["max_skew"],
                "final_skew": m["final_skew"],
                "delta_vs_sim": delta,
                "bounded": bounded,
                "wall_elapsed": m.get("wall_elapsed"),
            }
    # The router node-count ladder: how far up the live runtime scales.
    ladder_topologies = pick(scale, LADDER_QUICK, LADDER_FULL)
    ladder_duration = pick(scale, 4.0, 6.0)
    ladder = [
        ladder_cell(
            spec,
            duration=ladder_duration,
            rho=rho,
            seed=seed,
            time_scale=0.1,
        )
        for spec in ladder_topologies
    ]
    ladder_table = Table(
        title="E14: router scale ladder, gradient on growing networks",
        headers=[
            "topology", "n", "workers", "events", "events/sec",
            "final_skew", "bounded", "wall s",
        ],
        caption=(
            f"router transport, duration {ladder_duration} sim units at "
            f"time_scale 0.1, seed {seed}.  'events/sec' is callback "
            f"events dispatched across all workers per wall second; "
            f"'bounded' checks final skew against the diameter+1 budget."
        ),
    )
    for cell in ladder:
        ladder_table.add_row(
            cell["topology"],
            cell["n_nodes"],
            cell["workers"],
            cell["events"],
            round(cell["events_per_sec"], 1),
            round(cell["final_skew"], 4),
            "yes" if cell["bounded"] else "NO",
            round(cell["wall_elapsed"], 3),
        )

    return ExperimentResult(
        experiment_id="E14",
        title="live runtime: sim-vs-live skew across transports",
        paper_artifact=(
            "none — the paper has no implementation; this validates the "
            "live runtime against the model"
        ),
        tables=[table, ladder_table],
        notes=[
            f"{len(outcomes)} cells ({len(algorithms)} algorithms x "
            f"{len(backends)} backends), workers={workers}; udp cells "
            f"run one OS process per node, router cells multiplex nodes "
            f"onto worker processes",
            f"router ladder: {len(ladder)} sizes up to "
            f"n={max(c['n_nodes'] for c in ladder)}",
        ],
        data={
            "topology": topology,
            "backends": backends,
            "virtual_tolerance": VIRTUAL_TOLERANCE,
            "cells": comparisons,
            "ladder": ladder,
        },
    )
