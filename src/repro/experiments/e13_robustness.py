"""E13 — robustness: skew degradation under faults and churn.

The paper's model (Section 3) assumes a reliable network and
non-crashing nodes; this experiment measures what its algorithms do
when that assumption is dropped.  A fault-intensity ladder — message
loss, duplication, reordering, crash-stop, crash-recovery, link churn —
is swept against algorithm x topology through the sweep engine's
``benign-run`` jobs (the fault axis of :class:`~repro.sweep.SweepSpec`),
and every faulted cell is reported next to its fault-free baseline as a
degradation factor.  Gradient-style algorithms and global-skew ones
separate exactly here: dead-reckoned neighbor estimates go stale under
loss and churn, while max-propagation only needs *some* path to stay up.

Beyond the paper; determinism contract: identical tables at any worker
count (the sweep engine guarantees it, and a test enforces it).
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.sweep import SweepSpec, run_jobs

__all__ = ["run", "FAULT_LADDER"]

#: The fault-intensity ladder, mildest to harshest.  ``none`` anchors
#: the degradation baseline for every (topology, algorithm) pair.
FAULT_LADDER = (
    "none",
    "loss:0.1",
    "loss:0.3",
    "duplicate:0.2",
    "reorder:0.5",
    "crash:0.25",
    "crash-recover:0.25,6",
    "churn:0.25,5",
)


def run(
    scale: Scale = "quick", *, rho: float = 0.2, seed: int = 0, workers: int = 1
) -> ExperimentResult:
    """Sweep the fault-intensity ladder against algorithm x topology and
    report skew degradation relative to each fault-free baseline."""
    topologies = pick(
        scale, ["line:7", "ring:8"], ["line:13", "ring:12", "grid:4,4"]
    )
    algorithms = ["max-based", "bounded-catch-up", "averaging", "slewing-max"]
    ladder = pick(
        scale,
        ["none", "loss:0.1", "loss:0.3", "crash-recover:0.25,6", "churn:0.25,5"],
        list(FAULT_LADDER),
    )
    seeds = pick(scale, [seed], [seed, seed + 1, seed + 2])
    spec = SweepSpec(
        name=f"e13-{scale}",
        topologies=tuple(topologies),
        algorithms=tuple(algorithms),
        rate_families=("drifted",),
        delay_policies=("uniform",),
        fault_families=tuple(ladder),
        seeds=tuple(int(s) for s in seeds),
        duration=pick(scale, 25.0, 60.0),
        rho=rho,
    )
    outcomes = run_jobs(spec.jobs(), workers=workers)

    # Mean-over-seeds metrics per (topology, algorithm, fault) cell, in
    # grid order (topology-major, then algorithm, then ladder rung).
    cells: dict[tuple[str, str, str], list[dict]] = {}
    for outcome in outcomes:
        m = outcome.metrics
        key = (m["topology"], m["algorithm"], m["faults"])
        cells.setdefault(key, []).append(m)

    def mean(key: tuple[str, str, str], metric: str) -> float:
        group = cells[key]
        return sum(m[metric] for m in group) / len(group)

    table = Table(
        title="E13: skew degradation under fault intensity",
        headers=[
            "topology",
            "algorithm",
            "fault",
            "max_skew",
            "final_skew",
            "final_adj",
            "x baseline",
            "msgs",
        ],
        caption=(
            "Mean over seeds; 'x baseline' is final_skew relative to the "
            "same cell's fault-free ('none') run.  Crash-stop cells keep "
            "dead nodes in the skew metrics, so their degradation "
            "measures how far a dead clock drifts."
        ),
    )
    curves: dict[str, dict] = {}
    for topology in topologies:
        for algorithm in algorithms:
            base_key = (topology, algorithm, "none")
            baseline = max(mean(base_key, "final_skew"), 1e-9)
            for fault in ladder:
                key = (topology, algorithm, fault)
                final = mean(key, "final_skew")
                table.add_row(
                    topology,
                    algorithm,
                    fault,
                    round(mean(key, "max_skew"), 3),
                    round(final, 3),
                    round(mean(key, "final_adjacent_skew"), 3),
                    round(final / baseline, 2),
                    int(mean(key, "messages")),
                )
                curves.setdefault(f"{topology}/{algorithm}", {})[fault] = {
                    "max_skew": mean(key, "max_skew"),
                    "final_skew": final,
                    "degradation": final / baseline,
                }
    return ExperimentResult(
        experiment_id="E13",
        title="robustness under faults & churn (beyond the paper's model)",
        paper_artifact="none — drops the Section 3 reliability assumptions",
        tables=[table],
        notes=[
            f"{len(outcomes)} sweep jobs over the fault axis "
            f"({len(ladder)} fault families), workers={workers}"
        ],
        data={"spec": spec.name, "ladder": list(ladder), "curves": curves},
        figures=[
            {
                "table": 0,
                "x": "fault",
                "y": ["max_skew", "final_skew", "final_adj"],
                "kind": "bar",
                "title": "E13: skew degradation up the fault ladder",
            }
        ],
    )
