"""E04 — Section 2's worked example: max-style sync violates the gradient.

Three nodes x, y, z with ``d_xy = D``, ``d_yz = 1``, ``d_xz = D + 1``.
The adversary runs x's clock fast and delays its messages fully; then it
drops the ``x -> y`` delay to zero.  y jumps ``~D`` forward the moment
it hears x; z — one unit of delay away — does not, so for about one unit
of real time the *distance-1* pair (y, z) carries ``~D`` skew.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import MaxBasedAlgorithm, SrikanthTouegAlgorithm
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.theory import ThreeNodeScenario
from repro.sim.messages import PerPairDelay
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.base import Topology

__all__ = ["run", "build_scenario_topology", "run_scenario"]


def build_scenario_topology(big_d: float) -> Topology:
    """The x, y, z line: distances D, 1, D+1 (nodes 0, 1, 2)."""
    d = np.array(
        [
            [0.0, big_d, big_d + 1.0],
            [big_d, 0.0, 1.0],
            [big_d + 1.0, 1.0, 0.0],
        ]
    )
    return Topology.fully_connected(d, name=f"xyz(D={big_d:g})")


def run_scenario(
    algorithm, big_d: float, *, rho: float = 0.5, seed: int = 0
):
    """Execute the Section 2 scenario; return (execution, peak yz-skew, time)."""
    scenario = ThreeNodeScenario(big_d)
    topology = build_scenario_topology(big_d)
    # Phase 1 builds the x-ahead state; the switch happens at cut_time.
    cut_time = max(3.0 * big_d, 12.0)
    duration = cut_time + 4.0 * big_d
    rates = {
        scenario.x: PiecewiseConstantRate.constant(1.0 + rho),
        scenario.y: PiecewiseConstantRate.constant(1.0),
        scenario.z: PiecewiseConstantRate.constant(1.0 - rho),
    }
    delays = PerPairDelay()
    delays.set(scenario.x, scenario.y, big_d)          # x -> y: full uncertainty
    delays.set(scenario.y, scenario.x, 0.0)
    delays.set(scenario.y, scenario.z, 1.0)            # y -> z: one unit
    delays.set(scenario.z, scenario.y, 0.0)
    delays.set(scenario.x, scenario.z, big_d + 1.0)
    delays.set(scenario.z, scenario.x, 0.0)
    delays.set_after(scenario.x, scenario.y, cut_time, 0.0)  # the drop

    execution = run_simulation(
        topology,
        algorithm.processes(topology),
        SimConfig(duration=duration, rho=rho, seed=seed),
        rate_schedules=rates,
        delay_policy=delays,
    )
    times = np.arange(0.0, duration, 0.25)
    skews = [abs(execution.skew(scenario.y, scenario.z, t)) for t in times]
    peak_idx = int(np.argmax(skews))
    return execution, float(skews[peak_idx]), float(times[peak_idx])


def run(scale: Scale = "quick", *, rho: float = 0.5, seed: int = 0) -> ExperimentResult:
    big_ds = pick(scale, [4.0, 8.0, 16.0], [4.0, 8.0, 16.0, 32.0, 64.0])
    algorithms = [MaxBasedAlgorithm(period=0.5), SrikanthTouegAlgorithm()]
    table = Table(
        title="E04: Section 2 scenario — distance-1 skew of the (y,z) pair",
        headers=["algorithm", "D", "peak |L_y - L_z|", "paper's figure D+1", "peak/D"],
        caption=(
            "Existing CSAs keep global skew O(D) but allow ~D skew at "
            "distance 1; peak/D should be flat (linear growth)."
        ),
    )
    series: dict[str, dict[float, float]] = {}
    for algorithm in algorithms:
        series[algorithm.name] = {}
        for big_d in big_ds:
            _, peak, _ = run_scenario(algorithm, big_d, rho=rho, seed=seed)
            table.add_row(
                algorithm.name, big_d, peak, big_d + 1.0, peak / big_d
            )
            series[algorithm.name][big_d] = peak
    return ExperimentResult(
        experiment_id="E04",
        title="Srikanth-Toueg-style algorithms violate the gradient property",
        paper_artifact="Section 2, three-node worked example",
        tables=[table],
        notes=[
            "Drift details make the concrete peak ~D rather than exactly "
            "D+1; the linear-in-D growth is the reproduced claim.",
        ],
        data={"series": series},
    )
