"""E01 — the folklore lower bound ``f(d) = Omega(d)`` (Section 5, item 1)."""

from __future__ import annotations

from repro.algorithms import BoundedCatchUpAlgorithm, MaxBasedAlgorithm
from repro.analysis.field import SkewField
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.folklore import force_distance_skew

__all__ = ["run"]


def run(scale: Scale = "quick", *, rho: float = 0.5, seed: int = 0) -> ExperimentResult:
    """Force skew between nodes at distance ``d`` and sweep ``d``.

    Expected shape: forced skew grows linearly in ``d`` (the paper's
    ``Omega(d)``), with the measured value at or above the per-round
    guarantee ``d/12``.
    """
    distances = pick(scale, [1, 2, 4, 8], [1, 2, 4, 8, 16, 32])
    rounds = 2
    algorithms = [MaxBasedAlgorithm(), BoundedCatchUpAlgorithm()]
    table = Table(
        title="E01: forced skew between nodes at distance d",
        headers=[
            "algorithm",
            "d",
            "rounds",
            "forced skew",
            "peak |skew| over run",
            "guarantee d/12",
            "skew / d",
        ],
        caption="Section 5 item 1: f(d) = Omega(d); skew/d should be flat.",
    )
    series: dict[str, dict[int, float]] = {}
    peaks: dict[str, dict[int, float]] = {}
    for algorithm in algorithms:
        series[algorithm.name] = {}
        peaks[algorithm.name] = {}
        for d in distances:
            result = force_distance_skew(
                algorithm, d, rho=rho, rounds=rounds, seed=seed
            )
            # The endpoint pair's whole trajectory, from one batched
            # field build — not just the closing instant.
            field = SkewField(result.execution, step=1.0)
            peak = float(field.pair_series(0, d).max())
            table.add_row(
                algorithm.name,
                d,
                rounds,
                result.forced_skew,
                peak,
                result.guaranteed,
                result.skew_per_distance,
            )
            series[algorithm.name][d] = result.forced_skew
            peaks[algorithm.name][d] = peak
    return ExperimentResult(
        experiment_id="E01",
        title="folklore Omega(d) lower bound",
        paper_artifact="Section 5, item 1 (folklore bound, proof sketch)",
        tables=[table],
        notes=[
            "Realized via one-sided Add Skew on the line 0..d (DESIGN.md "
            "documents the substitution for the shift argument).",
        ],
        data={
            "series": series,
            "peaks": peaks,
            "distances": distances,
            "rounds": rounds,
        },
    )
