"""E11 — model requirements audit: validity, drift, gradient profiles."""

from __future__ import annotations

from repro.algorithms import standard_suite
from repro.analysis.gradient_profile import fit_linear
from repro.analysis.reporting import Table
from repro.errors import ValidityError
from repro.experiments.common import ExperimentResult, Scale, drifted_rates, pick
from repro.gcs.properties import GradientBound, check_gradient, empirical_f
from repro.sim.messages import UniformRandomDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

__all__ = ["run"]


def run(scale: Scale = "quick", *, rho: float = 0.3, seed: int = 0) -> ExperimentResult:
    """Audit every algorithm: Requirement 1, Assumption 1, and the
    empirical gradient profile with a linear fit."""
    n = pick(scale, 13, 25)
    duration = pick(scale, 60.0, 120.0)
    diameter = n - 1
    topology = line(n)
    table = Table(
        title="E11: requirements audit under benign drifted executions",
        headers=[
            "algorithm",
            "validity",
            "f(1)",
            "f(D/2)",
            "f(D)",
            "linear fit a*d+b",
            "const-f(1) bound holds",
        ],
        caption=(
            "f columns are the empirical gradient profile; the last column "
            "checks Requirement 2 against f = const f_hat(1) — algorithms "
            "that fail it are not gradient algorithms for any constant f."
        ),
    )
    profiles: dict[str, dict[float, float]] = {}
    for algorithm in standard_suite():
        execution = run_simulation(
            topology,
            algorithm.processes(topology),
            SimConfig(duration=duration, rho=rho, seed=seed),
            rate_schedules=drifted_rates(topology, rho=rho, seed=seed),
            delay_policy=UniformRandomDelay(),
        )
        try:
            execution.check_validity()
            validity = "ok"
        except ValidityError:
            validity = "VIOLATED"
        profile = empirical_f([execution])
        profiles[algorithm.name] = profile
        fit = fit_linear(profile)
        f1 = profile.get(1.0, 0.0)
        fmid = profile.get(float(diameter // 2), 0.0)
        fend = profile.get(float(diameter), 0.0)
        constant_bound = GradientBound.constant(max(f1, 1e-9))
        violations = check_gradient(execution, constant_bound)
        table.add_row(
            algorithm.name,
            validity,
            f1,
            fmid,
            fend,
            f"{fit.slope:.3f}*d+{fit.intercept:.3f}",
            "yes" if not violations else f"no ({len(violations)} viol.)",
        )
    return ExperimentResult(
        experiment_id="E11",
        title="validity + gradient profile audit of every algorithm",
        paper_artifact="Section 3 (Assumption 1), Section 4 (Requirements 1-2)",
        tables=[table],
        data={"profiles": profiles, "diameter": diameter},
    )
