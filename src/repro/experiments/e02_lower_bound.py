"""E02 — Theorem 8.1: ``f(1) = Omega(log D / log log D)``."""

from __future__ import annotations

from repro._constants import lower_bound_curve
from repro.algorithms import (
    AveragingAlgorithm,
    BoundedCatchUpAlgorithm,
    MaxBasedAlgorithm,
    SlewingMaxAlgorithm,
)
from repro.analysis.field import SkewField
from repro.analysis.reporting import Table
from repro.analysis.timeseries import sparkline
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.lower_bound import LowerBoundAdversary

__all__ = ["run"]


def run(scale: Scale = "quick", *, rho: float = 0.5, seed: int = 0) -> ExperimentResult:
    """Run the iterated adversary across diameters and algorithms.

    Expected shape: the forced distance-1 skew grows with ``D`` —
    clock synchronization is *not* a local property — tracking the
    ``log D / log log D`` envelope within constants.
    """
    diameters = pick(scale, [8, 16, 32], [8, 16, 32, 64, 128])
    algorithms = [
        MaxBasedAlgorithm(),
        AveragingAlgorithm(),
        BoundedCatchUpAlgorithm(),
        SlewingMaxAlgorithm(),
    ]
    table = Table(
        title="E02: adversarially forced distance-1 skew vs diameter",
        headers=[
            "algorithm",
            "D",
            "rounds",
            "final pair skew",
            "peak adjacent skew",
            "k/24 guarantee",
            "logD/loglogD",
        ],
        caption=(
            "Theorem 8.1: every algorithm concedes growing distance-1 skew; "
            "columns 5 vs 7 compare measured growth to the bound's envelope."
        ),
    )
    rounds_table = Table(
        title="E02 detail: per-round transcript (largest D, max-based)",
        headers=["k", "pair", "span n_k", "lead", "skew before", "skew after", "next pair", "next skew"],
        caption="One construction unrolled: Add Skew gain then pigeonhole.",
    )
    series: dict[str, dict[int, float]] = {}
    adjacent_series: list[float] = []
    detail_done = False
    for algorithm in algorithms:
        series[algorithm.name] = {}
        for diameter in diameters:
            adversary = LowerBoundAdversary(diameter, rho=rho, shrink=4, seed=seed)
            result = adversary.run(algorithm)
            k = result.rounds_applied
            table.add_row(
                algorithm.name,
                diameter,
                k,
                result.final_adjacent_skew,
                result.peak_adjacent_skew,
                k / 24.0,
                lower_bound_curve(diameter),
            )
            series[algorithm.name][diameter] = result.peak_adjacent_skew
            if (
                not detail_done
                and diameter == diameters[-1]
                and algorithm.name == "max-based"
            ):
                for r in result.rounds:
                    rounds_table.add_row(
                        r.round_index,
                        f"({r.i},{r.j})",
                        r.span,
                        r.lead,
                        r.skew_before,
                        r.skew_after_round,
                        f"({r.next_i},{r.next_j})",
                        r.next_pair_skew,
                    )
                # Theorem 8.1's watched series over the whole final
                # execution, from one batched trajectory matrix — the
                # construction is long, so the scalar per-time sweep
                # used to be the expensive part of this detail.
                field = SkewField(result.final_execution, step=1.0)
                adjacent_series = [
                    float(v) for v in field.max_adjacent_series()
                ]
                detail_done = True
    return ExperimentResult(
        experiment_id="E02",
        title="main theorem: Omega(log D / log log D) at distance 1",
        paper_artifact="Theorem 8.1 (the paper's main result)",
        tables=[table, rounds_table],
        notes=[
            "Shrink factor B=4 replaces the proof's 384*tau*f(1) "
            "(asymptotics unchanged; DESIGN.md).",
            "Growth with D, not absolute values, is the reproduced claim.",
            "adjacent skew over the detailed run: "
            + sparkline(adjacent_series),
        ],
        data={
            "series": series,
            "diameters": diameters,
            "adjacent_series": adjacent_series,
        },
        figures=[
            {
                "table": 0,
                "x": "D",
                "y": ["peak adjacent skew", "logD/loglogD"],
                "kind": "bar",
                "title": "E02: forced distance-1 skew vs the bound's envelope",
            }
        ],
    )
