"""Experiment registry: every evaluation artifact of the paper, runnable.

Each experiment is a function ``run(scale, *, seed) -> ExperimentResult``;
the registry maps experiment ids (E01..E16) to them.  Benchmarks wrap the
same runners, and ``python -m repro.experiments E02`` runs one from the
command line.
"""

import inspect
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    e01_folklore,
    e02_lower_bound,
    e03_figure1,
    e04_st_violation,
    e05_add_skew,
    e06_bounded_increase,
    e07_tdma,
    e08_rbs,
    e09_fusion,
    e10_tracking,
    e11_properties,
    e12_candidates,
    e13_robustness,
    e14_live,
    e15_scale,
    e16_mobility,
)
from repro.experiments.common import ExperimentResult

__all__ = ["REGISTRY", "run_experiment", "ExperimentResult", "ExperimentError"]

REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "E01": e01_folklore.run,
    "E02": e02_lower_bound.run,
    "E03": e03_figure1.run,
    "E04": e04_st_violation.run,
    "E05": e05_add_skew.run,
    "E06": e06_bounded_increase.run,
    "E07": e07_tdma.run,
    "E08": e08_rbs.run,
    "E09": e09_fusion.run,
    "E10": e10_tracking.run,
    "E11": e11_properties.run,
    "E12": e12_candidates.run,
    "E13": e13_robustness.run,
    "E14": e14_live.run,
    "E15": e15_scale.run,
    "E16": e16_mobility.run,
}


#: Uniform CLI options a runner may legitimately not declare (e.g.
#: ``workers`` for experiments not ported to the sweep engine).  Only
#: these are dropped when unsupported — a misspelled ``rho``/``seed``
#: still raises TypeError instead of silently running with defaults.
_OPTIONAL_KWARGS = frozenset({"workers"})


def run_experiment(experiment_id: str, scale: str = "quick", **kwargs) -> ExperimentResult:
    """Run one experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in REGISTRY:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; have {sorted(REGISTRY)}"
        )
    runner = REGISTRY[key]
    accepted = inspect.signature(runner).parameters
    if not any(p.kind is p.VAR_KEYWORD for p in accepted.values()):
        kwargs = {
            k: v
            for k, v in kwargs.items()
            if k in accepted or k not in _OPTIONAL_KWARGS
        }
    return runner(scale, **kwargs)
