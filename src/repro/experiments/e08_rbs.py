"""E08 — RBS: near-zero uncertainty makes the bound small (Section 2)."""

from __future__ import annotations

from repro._constants import lower_bound_curve
from repro.algorithms import MaxBasedAlgorithm, RBSAlgorithm
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, drifted_rates, pick
from repro.sim.messages import JitterDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import broadcast_cluster, line

__all__ = ["run"]


def _receiver_peak_skew(execution, beacon: int, *, step: float = 0.5) -> float:
    """Worst pairwise skew among non-beacon nodes over time."""
    nodes = [n for n in execution.topology.nodes if n != beacon]
    worst = 0.0
    for t in execution.sample_times(step):
        values = [execution.logical_value(n, t) for n in nodes]
        worst = max(worst, max(values) - min(values))
    return worst


def run(scale: Scale = "quick", *, rho: float = 0.1, seed: int = 0) -> ExperimentResult:
    """RBS in a broadcast cluster vs gossip sync over multi-hop.

    The broadcast cluster has pairwise uncertainty ``eps << 1``; RBS
    receivers synchronize to ~eps.  The same number of nodes on a
    multi-hop line has diameter ``n - 1`` and skews orders of magnitude
    larger.  The paper's remark: our bound applies to RBS too, but with
    a tiny diameter it is tiny — growing again as the network expands.
    """
    n = pick(scale, 8, 16)
    eps = 0.01
    duration = pick(scale, 40.0, 80.0)

    cluster = broadcast_cluster(n, uncertainty=eps)
    rbs = RBSAlgorithm(period=2.0)
    cluster_exec = run_simulation(
        cluster,
        rbs.processes(cluster),
        SimConfig(duration=duration, rho=rho, seed=seed),
        rate_schedules=drifted_rates(cluster, rho=rho, seed=seed),
        delay_policy=JitterDelay(),
    )
    cluster_skew = _receiver_peak_skew(cluster_exec, rbs.beacon)

    multihop = line(n)
    gossip = MaxBasedAlgorithm()
    line_exec = run_simulation(
        multihop,
        gossip.processes(multihop),
        SimConfig(duration=duration, rho=rho, seed=seed),
        rate_schedules=drifted_rates(multihop, rho=rho, seed=seed),
    )
    line_skew = max(
        line_exec.max_skew(t) for t in line_exec.sample_times(1.0)
    )

    table = Table(
        title="E08: RBS broadcast cluster vs multi-hop gossip",
        headers=[
            "setting",
            "nodes",
            "diameter (uncertainty)",
            "peak receiver skew",
            "lower-bound envelope",
        ],
        caption=(
            "RBS turns uncertainty, hence the achievable skew, down to the "
            "jitter scale; the same nodes multi-hop pay the full diameter."
        ),
    )
    table.add_row(
        "RBS cluster",
        n,
        cluster.diameter,
        cluster_skew,
        lower_bound_curve(cluster.diameter),
    )
    table.add_row(
        "line + max gossip",
        n,
        multihop.diameter,
        line_skew,
        lower_bound_curve(multihop.diameter),
    )
    return ExperimentResult(
        experiment_id="E08",
        title="RBS: tiny uncertainty, tiny bound (but not zero)",
        paper_artifact="Section 2, discussion of Elson et al. [2]",
        tables=[table],
        notes=[
            "The RBS cluster deliberately relaxes the min-distance "
            "normalization (DESIGN.md, substitutions).",
        ],
        data={"cluster_skew": cluster_skew, "line_skew": line_skew, "eps": eps},
    )
