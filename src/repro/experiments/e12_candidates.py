"""E12 — Section 9's open problem: candidate gradient algorithms.

    "The main open problem for GCS is whether there exists any f-GCS
     algorithm with f(d) = o(D).  We believe the answer is yes, and that
     there exist an f-GCS algorithm with f(d) = O(d + log D).  We are
     currently analyzing one such candidate algorithm."

This experiment is an **extension beyond the paper's own results** (it
reproduces the paper's *conjecture*, not a theorem): it pits three
candidates against the conjectured ``O(d + log D)`` envelope —

* ``max-based``: the Section 2 algorithm (known NOT to be a gradient
  algorithm — its distance-1 skew scales with ``D`` under attack);
* ``slewing-max``: max with amortized (bounded-slew) corrections;
* ``bounded-catch-up``: the distance-aware blocking candidate (the
  design family later proven ``O(d + log D)``-ish by Locher/Lenzen et
  al.).

Two measurements per candidate and diameter:

1. **benign envelope fit** — on a drifted random execution, the smallest
   ``c`` with ``f_hat(d) <= c (d + log D)`` for all ``d``;
2. **attack spike** — the Section 2 three-node scenario's peak
   distance-1 skew, the quantity that separates gradient algorithms
   from mere global synchronizers (it grows ~linearly in ``D`` for
   max-based, stays flat for the candidates).
"""

from __future__ import annotations

import math

from repro.algorithms import (
    BoundedCatchUpAlgorithm,
    MaxBasedAlgorithm,
    SlewingMaxAlgorithm,
)
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, drifted_rates, pick
from repro.experiments.e04_st_violation import run_scenario
from repro.gcs.properties import empirical_f
from repro.sim.messages import UniformRandomDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

__all__ = ["run"]


ATTACK_RHO = 0.2


def _candidates():
    """Candidates parameterized for drift up to ATTACK_RHO.

    Stability requires the catch-up budget to beat the worst drift
    differential: slewing needs ``sigma >= 2 rho * period`` per period
    with slack; blocking needs ``(1 + mu)(1 - rho) > 1 + rho``.  (With
    budgets below these thresholds a slow node can never keep up and
    local skew degrades — a genuine design constraint this experiment
    surfaced; see the notes.)
    """
    return [
        MaxBasedAlgorithm(period=0.5),
        SlewingMaxAlgorithm(period=0.5, sigma=1.0),
        BoundedCatchUpAlgorithm(period=0.5, kappa=0.5, mu=1.0),
    ]


def _envelope_constant(profile: dict[float, float], diameter: int) -> float:
    """Smallest c with f_hat(d) <= c * (d + log D) for every d."""
    log_d = math.log(max(diameter, 2))
    return max(v / (d + log_d) for d, v in profile.items())


def run(scale: Scale = "quick", *, rho: float = 0.1, seed: int = 0) -> ExperimentResult:
    diameters = pick(scale, [8, 16, 32], [8, 16, 32, 64])
    duration_factor = 4.0
    table = Table(
        title="E12: candidates vs the conjectured O(d + log D) envelope",
        headers=[
            "algorithm",
            "D",
            "benign f(1)",
            "benign f(D)",
            "envelope c",
            "attack spike (dist 1)",
        ],
        caption=(
            "envelope c = min constant with f_hat(d) <= c (d + log D); "
            "attack spike = peak distance-1 skew in the Section 2 scenario "
            "(grows with D only for non-gradient algorithms)."
        ),
    )
    spikes: dict[str, dict[int, float]] = {}
    constants: dict[str, dict[int, float]] = {}
    for algorithm in _candidates():
        spikes[algorithm.name] = {}
        constants[algorithm.name] = {}
        for diameter in diameters:
            topology = line(diameter + 1)
            execution = run_simulation(
                topology,
                algorithm.processes(topology),
                SimConfig(
                    duration=duration_factor * diameter, rho=rho, seed=seed
                ),
                rate_schedules=drifted_rates(topology, rho=rho, seed=seed),
                delay_policy=UniformRandomDelay(),
            )
            profile = empirical_f([execution])
            c = _envelope_constant(profile, diameter)
            _, spike, _ = run_scenario(
                algorithm, float(diameter), rho=ATTACK_RHO, seed=seed
            )
            table.add_row(
                algorithm.name,
                diameter,
                profile.get(1.0, 0.0),
                profile.get(float(diameter), 0.0),
                c,
                spike,
            )
            spikes[algorithm.name][diameter] = spike
            constants[algorithm.name][diameter] = c
    return ExperimentResult(
        experiment_id="E12",
        title="candidate gradient algorithms (extension: Section 9 conjecture)",
        paper_artifact="Section 9, open problems (conjecture, not a theorem)",
        tables=[table],
        notes=[
            "Extension beyond the paper: regenerates the conjecture's "
            "playing field, not a published result.",
            "Expected shape: max-based spike grows ~linearly with D; the "
            "two candidates' spikes stay flat (bounded by sigma / by mu).",
            "Candidate budgets must beat the drift differential "
            "(sigma > 2 rho period; (1+mu)(1-rho) > 1+rho) or slow nodes "
            "can never catch up — a design constraint this harness "
            "surfaces empirically.",
        ],
        data={"spikes": spikes, "envelope_constants": constants},
    )
