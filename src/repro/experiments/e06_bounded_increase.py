"""E06 — Lemma 7.1 (Bounded Increase), measured."""

from __future__ import annotations

from repro._constants import BOUNDED_INCREASE_FACTOR
from repro.algorithms import (
    AveragingAlgorithm,
    BoundedCatchUpAlgorithm,
    MaxBasedAlgorithm,
)
from repro.analysis.reporting import Table
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.bounded_increase import measure_bounded_increase
from repro.gcs.lower_bound import LowerBoundAdversary
from repro.gcs.properties import empirical_f

__all__ = ["run"]


def run(scale: Scale = "quick", *, rho: float = 0.5, seed: int = 0) -> ExperimentResult:
    """Measure max one-unit logical gain under the lemma's preconditions.

    The preconditions (rates in ``[1, 1+rho/2]``, delays in
    ``[d/4, 3d/4]``) hold for the Theorem 8.1 executions by
    construction, so we measure on those.  ``f(1)`` is instantiated
    empirically (the algorithm's observed distance-1 profile on the same
    run), making the check ``measured <= 16 * f_hat(1)`` meaningful.
    """
    diameter = pick(scale, 16, 64)
    algorithms = [
        MaxBasedAlgorithm(),
        AveragingAlgorithm(),
        BoundedCatchUpAlgorithm(),
    ]
    table = Table(
        title="E06: fastest one-unit logical clock gain vs 16 f(1)",
        headers=[
            "algorithm",
            "D",
            "max L(t+1)-L(t)",
            "empirical f(1)",
            "bound 16 f(1)",
            "within bound",
        ],
        caption="Lemma 7.1 caps how fast skew can be repaired.",
    )
    for algorithm in algorithms:
        adversary = LowerBoundAdversary(diameter, rho=rho, shrink=4, seed=seed)
        result = adversary.run(algorithm)
        execution = result.final_execution
        f_hat = empirical_f([execution])
        f_one = max(f_hat.get(1.0, 0.0), 1e-6)
        report = measure_bounded_increase(
            execution, f_one, rho=rho, enforce_preconditions=True
        )
        table.add_row(
            algorithm.name,
            diameter,
            report.max_increase,
            f_one,
            report.bound,
            "yes" if report.satisfied else "NO",
        )
    return ExperimentResult(
        experiment_id="E06",
        title="Bounded Increase lemma, measured",
        paper_artifact="Lemma 7.1",
        tables=[table],
        notes=[
            f"The factor {BOUNDED_INCREASE_FACTOR:g} is the lemma's constant; "
            "measured gains sit far below it (the lemma is not tight).",
        ],
    )
