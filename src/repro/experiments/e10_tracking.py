"""E10 — target tracking: acceptable skew grows with distance."""

from __future__ import annotations

from repro.algorithms import BoundedCatchUpAlgorithm, MaxBasedAlgorithm
from repro.analysis.reporting import Table
from repro.apps.tracking import required_skew_for_accuracy, track_velocity
from repro.experiments.common import ExperimentResult, Scale, drifted_rates, pick
from repro.sim.messages import UniformRandomDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line

__all__ = ["run"]


def run(scale: Scale = "quick", *, rho: float = 0.05, seed: int = 0) -> ExperimentResult:
    """Velocity estimation error vs node separation.

    With skew roughly flat in distance (a synced network), relative
    error falls as ``1/separation`` — equivalently the skew *budget* for
    1% accuracy grows linearly: the introduction's gradient argument.
    """
    n = pick(scale, 17, 33)
    separations = [s for s in (1, 2, 4, 8, 16, 32) if s < n]
    velocity = 0.5
    duration = pick(scale, 80.0, 160.0)
    topology = line(n)
    algorithms = [MaxBasedAlgorithm(period=0.5), BoundedCatchUpAlgorithm(period=0.5, kappa=0.5, mu=0.5)]
    table = Table(
        title="E10: velocity estimate error vs separation",
        headers=[
            "algorithm",
            "separation",
            "pair skew",
            "rel. error",
            "meets 1%",
            "skew budget for 1%",
        ],
        caption=(
            "v = d/t with logical timestamps; the last column is the "
            "paper's acceptable-skew gradient (linear in d)."
        ),
    )
    series: dict[str, dict[int, float]] = {}
    for algorithm in algorithms:
        execution = run_simulation(
            topology,
            algorithm.processes(topology),
            SimConfig(duration=duration, rho=rho, seed=seed),
            rate_schedules=drifted_rates(topology, rho=rho, seed=seed),
            delay_policy=UniformRandomDelay(),
        )
        series[algorithm.name] = {}
        for sep in separations:
            # Average several passes at different times to denoise.
            starts = [duration * frac for frac in (0.3, 0.4, 0.5)]
            estimates = [
                track_velocity(
                    execution, 0, sep, velocity=velocity, start_time=s
                )
                for s in starts
            ]
            mean_error = sum(e.relative_error for e in estimates) / len(estimates)
            mean_skew = sum(abs(e.pair_skew) for e in estimates) / len(estimates)
            meets = mean_error <= 0.01
            budget = required_skew_for_accuracy(sep, velocity)
            table.add_row(
                algorithm.name,
                sep,
                mean_skew,
                mean_error,
                "yes" if meets else "no",
                budget,
            )
            series[algorithm.name][sep] = mean_error
    return ExperimentResult(
        experiment_id="E10",
        title="target tracking: error tolerance forms a gradient",
        paper_artifact="Section 1, target tracking motivation",
        tables=[table],
        data={"series": series, "velocity": velocity},
    )
