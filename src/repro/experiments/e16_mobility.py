"""E16 — mobility: the gradient property under a changing network.

The paper bounds skew between two nodes by a function of their
*current* distance — a claim whose content shows only when distances
change.  This experiment opens the mobility axis in two parts:

1. **Speed ladder** (through the sweep engine's ``mobility`` axis):
   random-waypoint mobility at several speeds against a folklore-style
   global-sync algorithm (max-based), the gradient candidate
   (bounded-catch-up), and averaging, each next to its static baseline.
   Faster rewiring hurts dead-reckoned neighbor state more than
   max-propagation, and the ladder shows by how much.
2. **Re-convergence after rewiring**: a hand-authored two-phase network
   (a line whose node order is interleaved mid-run, so every
   neighborhood re-forms at once).  For each algorithm the table reports
   the pre-change adjacent skew, the spike when new neighbors meet, and
   the time the adjacent series takes to re-tighten below its pre-change
   band — while :func:`repro.gcs.properties.check_gradient` evaluates
   Requirement 2 against the *time-varying* pairwise distances.

Beyond the paper; determinism contract: identical tables at any worker
count (the sweep engine guarantees part 1, part 2 is a fixed set of
single runs; a test enforces both).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.field import SkewField
from repro.analysis.reporting import Table
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult, Scale, pick
from repro.gcs.properties import GradientBound, check_gradient
from repro.sim.messages import UniformRandomDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.sweep import SweepSpec, algorithm_from_spec, run_jobs
from repro.sweep.families import drifted_rates
from repro.topology.base import Topology
from repro.topology.dynamic import snapshot_sequence

__all__ = ["run", "SPEED_LADDER", "interleaved_line"]

#: The mobility-intensity ladder, stillness to fast drift (speeds in
#: distance units per real-time unit; snapshots every 4 time units).
#: ``waypoint:0,4`` is the ladder's anchor: the *same* random placement
#: as the moving rungs, sampled at the same instants, but frozen — so
#: the 'x still' degradation column compares motion against stillness on
#: identical geometry.  ``static`` keeps the frozen cell topology for
#: reference.
SPEED_LADDER = (
    "static",
    "waypoint:0,4",
    "waypoint:0.25,4",
    "waypoint:0.5,4",
    "waypoint:1,4",
    "waypoint:2,4",
)


def interleaved_line(n: int, *, interleave: bool = False) -> Topology:
    """A line whose *node order* along the axis can be interleaved.

    With ``interleave=False`` this is the plain Section 8 line
    (node ``i`` at position ``i``).  With ``interleave=True`` the even
    nodes take the first positions and the odd nodes the rest — every
    node keeps its identity but nearly every neighborhood changes, the
    worst single rewiring a line can suffer.  Both variants share the
    node set, so they form a valid two-phase
    :class:`~repro.topology.dynamic.DynamicTopology`.
    """
    if n < 4:
        raise ExperimentError("interleaved_line needs at least 4 nodes")
    order = list(range(0, n, 2)) + list(range(1, n, 2)) if interleave else list(range(n))
    position = {node: idx for idx, node in enumerate(order)}
    d = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            d[i, j] = abs(position[i] - position[j])
    suffix = "interleaved" if interleave else "straight"
    return Topology.with_radius(d, 1.0, name=f"line({n},{suffix})")


def run(
    scale: Scale = "quick", *, rho: float = 0.2, seed: int = 0, workers: int = 1
) -> ExperimentResult:
    """Sweep mobility speeds against algorithms, then measure
    re-convergence after one all-at-once rewiring."""
    # ------------------------------------------------------------------
    # part 1: the speed ladder, through the sweep engine
    topologies = pick(scale, ["geometric:12,3"], ["geometric:16,3", "geometric:24,5"])
    algorithms = ["max-based", "bounded-catch-up", "averaging"]
    ladder = pick(
        scale,
        ["static", "waypoint:0,4", "waypoint:0.5,4", "waypoint:1,4"],
        list(SPEED_LADDER),
    )
    seeds = pick(scale, [seed], [seed, seed + 1, seed + 2])
    duration = pick(scale, 24.0, 60.0)
    spec = SweepSpec(
        name=f"e16-{scale}",
        topologies=tuple(topologies),
        algorithms=tuple(algorithms),
        rate_families=("drifted",),
        delay_policies=("uniform",),
        mobilities=tuple(ladder),
        seeds=tuple(int(s) for s in seeds),
        duration=duration,
        rho=rho,
    )
    outcomes = run_jobs(spec.jobs(), workers=workers)

    cells: dict[tuple[str, str, str], list[dict]] = {}
    for outcome in outcomes:
        m = outcome.metrics
        cells.setdefault((m["topology"], m["algorithm"], m["mobility"]), []).append(m)

    def mean(key: tuple[str, str, str], metric: str) -> float:
        group = cells[key]
        return sum(m[metric] for m in group) / len(group)

    ladder_table = Table(
        title="E16: skew vs mobility speed (random waypoint)",
        headers=[
            "topology",
            "algorithm",
            "mobility",
            "max_skew",
            "final_skew",
            "final_adj",
            "x still",
            "rewirings",
        ],
        caption=(
            "Mean over seeds; 'x still' is final_skew relative to the "
            "same cell's waypoint:0 run (identical geometry, no "
            "motion).  'waypoint:v,i' drifts nodes at speed v with a "
            "snapshot every i time units; each snapshot swaps the "
            "distance/adjacency tables atomically.  'static' keeps the "
            "frozen cell topology for reference."
        ),
    )
    still = "waypoint:0,4" if "waypoint:0,4" in ladder else "static"
    curves: dict[str, dict] = {}
    for topology in topologies:
        for algorithm in algorithms:
            baseline = max(mean((topology, algorithm, still), "final_skew"), 1e-9)
            for mobility in ladder:
                key = (topology, algorithm, mobility)
                final = mean(key, "final_skew")
                ladder_table.add_row(
                    topology,
                    algorithm,
                    mobility,
                    round(mean(key, "max_skew"), 3),
                    round(final, 3),
                    round(mean(key, "final_adjacent_skew"), 3),
                    round(final / baseline, 2),
                    int(mean(key, "rewirings")),
                )
                curves.setdefault(f"{topology}/{algorithm}", {})[mobility] = {
                    "max_skew": mean(key, "max_skew"),
                    "final_skew": final,
                    "degradation": final / baseline,
                }

    # ------------------------------------------------------------------
    # part 2: re-convergence after one all-at-once rewiring
    n = pick(scale, 9, 13)
    total = pick(scale, 40.0, 80.0)
    change_at = total / 2.0
    before = interleaved_line(n)
    after = interleaved_line(n, interleave=True)
    dyn = snapshot_sequence(
        (0.0, before), (change_at, after), name=f"line({n})-interleave"
    )
    bound = GradientBound.linear(2.0 * rho, 1.0)

    reconv_table = Table(
        title="E16: re-convergence after rewiring (two-phase line)",
        headers=[
            "algorithm",
            "pre adj",
            "peak adj",
            "peak at",
            "re-tight at",
            "re-tightened",
            "f-violations",
        ],
        caption=(
            f"At t={change_at:g} the line's node order is interleaved: "
            "every neighborhood re-forms at once.  'pre adj' is the "
            "worst adjacent skew in the window before the change, "
            "'re-tight at' the first sample after which the adjacent "
            "series stays back inside 1.25x that band.  'f-violations' "
            "counts check_gradient hits against f(d)="
            f"{bound.label} with d read from the topology live at each "
            "sample."
        ),
    )
    reconvergence: dict[str, dict] = {}
    for name in algorithms:
        algorithm = algorithm_from_spec(name)
        execution = run_simulation(
            dyn,
            algorithm.processes(before),
            SimConfig(duration=total, rho=rho, seed=seed),
            rate_schedules=drifted_rates(before, rho=rho, seed=seed),
            delay_policy=UniformRandomDelay(),
        )
        field = SkewField(execution, execution.sample_times(0.25))
        series = field.max_adjacent_series()
        times = field.times
        pre_mask = (times >= change_at - 8.0) & (times < change_at)
        pre = float(series[pre_mask].max())
        post = np.nonzero(times >= change_at)[0]
        peak_idx = post[int(series[post].argmax())]
        threshold = max(1.25 * pre, pre + 0.05)
        exceeding = post[series[post] > threshold + 1e-9]
        if exceeding.size == 0:
            resettle: float | None = float(times[post[0]])
        elif int(exceeding[-1]) + 1 < times.size:
            resettle = float(times[int(exceeding[-1]) + 1])
        else:
            resettle = None
        # Same 0.25-step grid as every other column in this row (and
        # check_gradient reuses its sample times instead of rebuilding
        # a coarser SkewField).
        violations = check_gradient(execution, bound, times=field.times)
        reconv_table.add_row(
            name,
            round(pre, 3),
            round(float(series[peak_idx]), 3),
            round(float(times[peak_idx]), 2),
            "-" if resettle is None else round(resettle, 2),
            "yes" if resettle is not None else "NO",
            len(violations),
        )
        reconvergence[name] = {
            "pre": pre,
            "peak": float(series[peak_idx]),
            "peak_at": float(times[peak_idx]),
            "resettle": resettle,
            "violations": len(violations),
        }

    return ExperimentResult(
        experiment_id="E16",
        title="mobility & dynamic topologies (beyond the paper's model)",
        paper_artifact=(
            "none — animates Section 3's distances, which the paper "
            "holds frozen"
        ),
        tables=[ladder_table, reconv_table],
        notes=[
            f"{len(outcomes)} sweep jobs over the mobility axis "
            f"({len(ladder)} mobility families), workers={workers}",
            "part 2 evaluates Requirement 2 against time-varying "
            "distances (see repro.gcs.properties.check_gradient)",
        ],
        data={
            "spec": spec.name,
            "ladder": list(ladder),
            "curves": curves,
            "reconvergence": reconvergence,
        },
        figures=[
            {
                "table": 0,
                "x": "mobility",
                "y": ["max_skew", "final_skew", "final_adj"],
                "kind": "bar",
                "title": "E16: skew vs mobility speed",
            }
        ],
    )
