"""Entry point: ``python -m repro.experiments [ids|sweep|live|viz|check|serve]``.

Six verbs share the entry point: bare experiment ids (``E01``..``E16``)
run individual reproductions, ``sweep`` dispatches to the parallel
scenario-sweep engine (:mod:`repro.sweep.cli`), ``live`` runs an
algorithm on a real transport through the live runtime
(:mod:`repro.rt.cli`), ``viz`` renders SVG figures from scenarios,
sweep artifacts, and experiments (:mod:`repro.viz.cli`), ``check``
runs the static invariant linter (:mod:`repro.check.cli`), and
``serve`` drives the sweep-as-a-service daemon
(:mod:`repro.serve.cli`)::

    python -m repro.experiments E03 E05 --workers 4
    python -m repro.experiments E02 --report figures/
    python -m repro.experiments sweep --quick --workers 4
    python -m repro.experiments live --alg gradient --topology line \\
        --nodes 8 --transport virtual
    python -m repro.experiments viz dashboard --topology grid:4,4
    python -m repro.experiments check src/
    python -m repro.experiments serve start --store /tmp/store
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.errors import ReproError
from repro.experiments import REGISTRY, run_experiment

__all__ = ["main", "list_experiments"]


def list_experiments() -> str:
    """The registry, one line per experiment: id, title, scale knobs."""
    lines = []
    for key in sorted(REGISTRY):
        runner = REGISTRY[key]
        doc = (runner.__doc__ or "").strip().splitlines()
        title = doc[0] if doc else ""
        knobs = [
            name
            for name, param in inspect.signature(runner).parameters.items()
            if param.kind is param.KEYWORD_ONLY
        ]
        lines.append(f"{key}: {title}")
        lines.append(f"     scales: quick, full; knobs: {', '.join(knobs) or '-'}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "sweep":
        from repro.sweep.cli import main as sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "live":
        from repro.rt.cli import main as live_main

        return live_main(argv[1:])
    if argv and argv[0] == "viz":
        from repro.viz.cli import main as viz_main

        return viz_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.check.cli import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Run reproduction experiments for 'Gradient Clock "
            "Synchronization' (Fan & Lynch, PODC 2004).  Use the 'sweep' "
            "verb for parallel scenario grids and the 'live' verb to run "
            "algorithms on real transports."
        ),
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="ID",
        help=(
            "experiment ids (E01..E16), or 'sweep' / 'live' / 'viz' / "
            "'check' / 'serve'; default: all"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="parameter scale (full matches EXPERIMENTS.md)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep-engine experiments (e.g. E05)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--report", metavar="DIR", default=None,
        help="also chart each experiment's tables as <id>.svg under DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(list_experiments())
        return 0

    ids = [i.upper() for i in args.ids] or sorted(REGISTRY)
    for verb in ("SWEEP", "LIVE", "VIZ", "CHECK", "SERVE"):
        if verb in ids:
            print(
                f"error: the '{verb.lower()}' verb must come first: "
                f"python -m repro.experiments {verb.lower()} [options]",
                file=sys.stderr,
            )
            return 2
    for experiment_id in ids:
        start = time.time()
        try:
            result = run_experiment(
                experiment_id, args.scale, seed=args.seed, workers=args.workers
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.render())
        if args.report:
            from pathlib import Path

            from repro.viz.report import experiment_report

            svg = experiment_report(result)
            if svg is not None:
                out = Path(args.report)
                out.mkdir(parents=True, exist_ok=True)
                path = out / f"{experiment_id.lower()}.svg"
                path.write_text(svg, encoding="utf-8")
                print(f"wrote {path}")
        print(f"[{experiment_id} took {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
