"""Command-line entry point: ``python -m repro.experiments [ids]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ExperimentError
from repro.experiments import REGISTRY, run_experiment

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Run reproduction experiments for 'Gradient Clock "
            "Synchronization' (Fan & Lynch, PODC 2004)."
        ),
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="ID",
        help="experiment ids (E01..E11); default: all",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="parameter scale (full matches EXPERIMENTS.md)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for key in sorted(REGISTRY):
            doc = (REGISTRY[key].__doc__ or "").strip().splitlines()
            print(f"{key}: {doc[0] if doc else ''}")
        return 0

    ids = [i.upper() for i in args.ids] or sorted(REGISTRY)
    for experiment_id in ids:
        start = time.time()
        try:
            result = run_experiment(experiment_id, args.scale, seed=args.seed)
        except ExperimentError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.render())
        print(f"[{experiment_id} took {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
