"""Command-line entry point: ``python -m repro.experiments [ids|sweep]``.

Two verbs share the entry point: bare experiment ids (``E01``..``E12``)
run individual reproductions, and ``sweep`` dispatches to the parallel
scenario-sweep engine (see :mod:`repro.sweep.cli`)::

    python -m repro.experiments E03 E05 --workers 4
    python -m repro.experiments sweep --quick --workers 4
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ExperimentError, SweepError
from repro.experiments import REGISTRY, run_experiment

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "sweep":
        from repro.sweep.cli import main as sweep_main

        return sweep_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Run reproduction experiments for 'Gradient Clock "
            "Synchronization' (Fan & Lynch, PODC 2004).  Use the 'sweep' "
            "verb for parallel scenario grids."
        ),
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="ID",
        help="experiment ids (E01..E13), or 'sweep'; default: all",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="parameter scale (full matches EXPERIMENTS.md)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep-engine experiments (e.g. E05)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for key in sorted(REGISTRY):
            doc = (REGISTRY[key].__doc__ or "").strip().splitlines()
            print(f"{key}: {doc[0] if doc else ''}")
        return 0

    ids = [i.upper() for i in args.ids] or sorted(REGISTRY)
    if "SWEEP" in ids:
        print(
            "error: the 'sweep' verb must come first: "
            "python -m repro.experiments sweep [sweep options]",
            file=sys.stderr,
        )
        return 2
    for experiment_id in ids:
        start = time.time()
        try:
            result = run_experiment(
                experiment_id, args.scale, seed=args.seed, workers=args.workers
            )
        except (ExperimentError, SweepError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.render())
        print(f"[{experiment_id} took {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
