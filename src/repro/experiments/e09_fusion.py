"""E09 — data fusion: sibling skew decides fusion correctness."""

from __future__ import annotations

from repro.algorithms import (
    BoundedCatchUpAlgorithm,
    MaxBasedAlgorithm,
    NullAlgorithm,
)
from repro.analysis.reporting import Table
from repro.apps.fusion import evaluate_fusion
from repro.experiments.common import ExperimentResult, Scale, drifted_rates, pick
from repro.sim.messages import UniformRandomDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import balanced_tree

__all__ = ["run"]


def run(scale: Scale = "quick", *, rho: float = 0.1, seed: int = 0) -> ExperimentResult:
    """Fusion over a sensor tree with drifting clocks.

    Siblings are nearby nodes; algorithms with small near-distance skew
    fuse almost everything, the unsynchronized baseline almost nothing
    once drift exceeds the tolerance.
    """
    branching, height = pick(scale, (3, 2), (3, 3))
    duration = pick(scale, 60.0, 120.0)
    tolerances = pick(scale, [0.5, 1.0, 2.0], [0.25, 0.5, 1.0, 2.0, 4.0])
    topology = balanced_tree(branching, height)
    algorithms = [
        NullAlgorithm(),
        MaxBasedAlgorithm(period=0.5),
        BoundedCatchUpAlgorithm(period=0.5, kappa=0.5, mu=0.5),
    ]
    table = Table(
        title="E09: mis-fusion rate vs tolerance (sensor tree)",
        headers=[
            "algorithm",
            "tolerance",
            "misfusion rate",
            "worst sibling spread",
            "mean spread",
        ],
        caption=(
            f"balanced tree b={branching} h={height}, rho={rho}; one event "
            "is fused correctly iff sibling timestamps agree within the "
            "tolerance."
        ),
    )
    series: dict[str, dict[float, float]] = {}
    for algorithm in algorithms:
        execution = run_simulation(
            topology,
            algorithm.processes(topology),
            SimConfig(duration=duration, rho=rho, seed=seed),
            rate_schedules=drifted_rates(topology, rho=rho, seed=seed),
            delay_policy=UniformRandomDelay(),
        )
        series[algorithm.name] = {}
        for tolerance in tolerances:
            report = evaluate_fusion(
                execution,
                tolerance=tolerance,
                n_events=40,
                warmup=duration * 0.25,
                seed=seed,
            )
            table.add_row(
                algorithm.name,
                tolerance,
                report.misfusion_rate,
                report.worst_spread,
                report.mean_spread,
            )
            series[algorithm.name][tolerance] = report.misfusion_rate
    return ExperimentResult(
        experiment_id="E09",
        title="data fusion needs nearby-node synchronization",
        paper_artifact="Section 1, data fusion motivation",
        tables=[table],
        data={"series": series},
    )
