"""Shared infrastructure for the E01-E15 experiment runners.

The benign rate families (:func:`drifted_rates`, :func:`spread_rates`,
:func:`wandering_rates`) now live in :mod:`repro.sweep.families` — the
sweep engine's registry of named scenario ingredients — and are
re-exported here so experiment code keeps a single import site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._constants import DEFAULT_RHO
from repro.analysis.reporting import Table
from repro.errors import ExperimentError
from repro.sweep.families import (  # noqa: F401  (re-exported API)
    drifted_rates,
    spread_rates,
    wandering_rates,
)

__all__ = [
    "ExperimentResult",
    "Scale",
    "drifted_rates",
    "spread_rates",
    "wandering_rates",
    "DEFAULT_RHO",
]

#: Experiment scale: "quick" keeps benchmark runtime low; "full" matches
#: the writeup in EXPERIMENTS.md.
Scale = str


@dataclass
class ExperimentResult:
    """What an experiment produced: tables to print + raw data.

    ``figures`` optionally declares how :mod:`repro.viz` should chart
    the tables — a list of specs like ``{"table": 0, "x": "n",
    "y": ["max skew"], "kind": "line"}`` (``kind`` is ``"line"`` or
    ``"bar"``).  Experiments that leave it empty get auto-detected
    numeric-column charts.
    """

    experiment_id: str
    title: str
    paper_artifact: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    figures: list[dict] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper artifact: {self.paper_artifact}",
            "",
        ]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def pick(scale: Scale, quick, full):
    """Select a parameter set by scale."""
    if scale == "quick":
        return quick
    if scale == "full":
        return full
    raise ExperimentError(f"unknown scale {scale!r} (use 'quick' or 'full')")
