"""Shared infrastructure for the E01-E11 experiment runners."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._constants import DEFAULT_RHO
from repro.analysis.reporting import Table
from repro.errors import ExperimentError
from repro.sim.rates import PiecewiseConstantRate
from repro.topology.base import Topology

__all__ = [
    "ExperimentResult",
    "Scale",
    "drifted_rates",
    "spread_rates",
    "wandering_rates",
    "DEFAULT_RHO",
]

#: Experiment scale: "quick" keeps benchmark runtime low; "full" matches
#: the writeup in EXPERIMENTS.md.
Scale = str


@dataclass
class ExperimentResult:
    """What an experiment produced: tables to print + raw data."""

    experiment_id: str
    title: str
    paper_artifact: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper artifact: {self.paper_artifact}",
            "",
        ]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def drifted_rates(
    topology: Topology, *, rho: float = DEFAULT_RHO, seed: int = 0
) -> dict[int, PiecewiseConstantRate]:
    """Seeded random constant rates inside the drift band — a benign but
    heterogeneous network (every real deployment looks like this)."""
    rng = random.Random(seed ^ 0xD81F7)
    return {
        node: PiecewiseConstantRate.constant(rng.uniform(1.0 - rho, 1.0 + rho))
        for node in topology.nodes
    }


def wandering_rates(
    topology: Topology,
    *,
    rho: float = DEFAULT_RHO,
    horizon: float,
    interval: float = 5.0,
    seed: int = 0,
) -> dict[int, PiecewiseConstantRate]:
    """Time-varying drift: each node's rate random-walks inside the band.

    The most realistic benign setting — oscillators wander with
    temperature — while staying within Assumption 1.
    """
    from repro.sim.rates import random_walk_schedule

    return {
        node: random_walk_schedule(
            rho=rho,
            horizon=horizon,
            interval=interval,
            seed=(seed * 7919) ^ node,
        )
        for node in topology.nodes
    }


def spread_rates(
    topology: Topology, *, rho: float = DEFAULT_RHO
) -> dict[int, PiecewiseConstantRate]:
    """Deterministic linear spread of rates across node indices.

    Node 0 runs slowest (``1 - rho``), the last node fastest
    (``1 + rho``) — the worst benign arrangement for a line network.
    """
    n = topology.n
    return {
        node: PiecewiseConstantRate.constant(
            1.0 - rho + 2.0 * rho * (node / max(n - 1, 1))
        )
        for node in topology.nodes
    }


def pick(scale: Scale, quick, full):
    """Select a parameter set by scale."""
    if scale == "quick":
        return quick
    if scale == "full":
        return full
    raise ExperimentError(f"unknown scale {scale!r} (use 'quick' or 'full')")
