"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ModelViolationError(ReproError):
    """An execution violated one of the paper's model assumptions."""


class DriftBoundError(ModelViolationError):
    """A hardware clock rate left the ``[1 - rho, 1 + rho]`` band (Assumption 1)."""


class ValidityError(ModelViolationError):
    """A logical clock violated Requirement 1 (rate >= 1/2, no backward jumps)."""


class DelayBoundError(ModelViolationError):
    """A message delay left the ``[0, d_ij]`` band allowed by the model."""


class ScheduleError(ReproError):
    """An adversary schedule is malformed (non-monotone breakpoints, etc.)."""


class TopologyError(ReproError):
    """A topology is malformed (asymmetric distances, bad normalization, ...)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class IndistinguishabilityError(ReproError):
    """Two executions that must be indistinguishable were told apart.

    Raised by the verifiers in :mod:`repro.gcs.indistinguishability` when a
    re-run under a warped schedule fails to reproduce the original per-node
    observations.  This never happens for deterministic algorithms; seeing it
    indicates a nondeterministic algorithm or a bug in a warp construction.
    """


class ConstructionError(ReproError):
    """A lower-bound construction's preconditions do not hold."""


class ExperimentError(ReproError):
    """An experiment was asked to run with unusable parameters."""


class SweepError(ReproError):
    """A scenario sweep is malformed (unknown spec names, bad grid, ...)."""


class FaultError(ReproError):
    """A fault plan is malformed (unknown nodes, bad probabilities, ...)."""


class RtError(ReproError):
    """The live runtime (:mod:`repro.rt`) hit an unusable configuration
    or a transport-level failure (bad transport name, spawn failure,
    a node process that never reported back, ...)."""


class ServeError(ReproError):
    """The sweep service (:mod:`repro.serve`) hit a protocol or daemon
    failure (malformed frame, no daemon listening, a daemon that died
    mid-reply, a fetch on an incomplete or failed sweep, ...)."""
