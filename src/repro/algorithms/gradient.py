"""A gradient clock synchronization candidate (Section 9's conjecture).

The paper conjectures that algorithms with ``f(d) = O(d + log D)`` exist
and says the authors are "currently analyzing one such candidate".  The
follow-on literature (Locher & Wattenhofer 2006; Lenzen, Locher &
Wattenhofer 2008-10) settled the question with *rate-modulation*
("blocking") algorithms: a node chases the global maximum by running its
logical clock in a **fast mode** (rate ``(1 + mu) * h``) only while that
cannot tear it away from slower neighbors; otherwise it runs at the
plain hardware rate.  No jumps ever happen, so corrections diffuse
smoothly instead of producing the distance-1 spikes of the max
algorithm.

:class:`BoundedCatchUpAlgorithm` implements the simplified mode rule:

* every adjustment point, dead-reckon each neighbor ``u``'s clock;
* ``ahead  = max_u (est_u - own - kappa * d_u)`` — how urgently some
  neighbor is pulling us up;
* ``behind = max_u (own - est_u - kappa * d_u)`` — how hard some
  neighbor is holding us back;
* run fast iff ``ahead > max(behind, 0)``.

With ``kappa`` above the per-link estimate error (delay uncertainty plus
drift over a period) the local skew stays ``O(kappa * d)`` in benign
executions, while the adversarial construction of Theorem 8.1 still
forces the unavoidable ``Omega(log D / log log D)`` distance-1 skew —
which is exactly the paper's point: *no* algorithm is purely local.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import NeighborEstimates, PeriodicProcess, SyncAlgorithm
from repro.sim.node import NodeAPI, Process
from repro.topology.base import Topology

__all__ = ["BoundedCatchUpAlgorithm", "BoundedCatchUpProcess"]


class BoundedCatchUpProcess(PeriodicProcess):
    """Blocking gradient sync: fast mode while pulled, never torn."""

    def __init__(self, period: float, kappa: float, mu: float, compensation: float):
        super().__init__(period)
        self.kappa = kappa
        self.mu = mu
        self.estimates = NeighborEstimates(delay_compensation=compensation)

    def on_message(self, api: NodeAPI, sender: int, payload) -> None:
        kind, value = payload
        if kind != "clock":
            return
        self.estimates.update(api, sender, value)
        self._adjust(api)

    def tick(self, api: NodeAPI) -> None:
        self._adjust(api)

    def recover(self, api: NodeAPI) -> None:
        """Restart from local knowledge only: drop stale neighbor
        estimates and leave fast mode (fresh estimates re-engage it)."""
        self.estimates.clear()
        api.set_logical_multiplier(1.0)

    def _adjust(self, api: NodeAPI) -> None:
        estimates = self.estimates.estimates(api)
        if not estimates:
            return
        own = api.logical_now()
        ahead = max(
            value - own - self.kappa * api.distance(u)
            for u, value in estimates.items()
        )
        behind = max(
            own - value - self.kappa * api.distance(u)
            for u, value in estimates.items()
        )
        if ahead > max(behind, 0.0):
            api.set_logical_multiplier(1.0 + self.mu)
        else:
            api.set_logical_multiplier(1.0)


@dataclass
class BoundedCatchUpAlgorithm(SyncAlgorithm):
    """Factory for :class:`BoundedCatchUpProcess` nodes.

    Parameters
    ----------
    period:
        Hardware-time gossip period.
    kappa:
        Per-unit-distance skew budget; must exceed the per-link estimate
        error (delay uncertainty + drift over a period), i.e. ``> 1`` in
        the paper's normalization.  Default 2.
    mu:
        Fast-mode boost: fast mode runs at ``(1 + mu) * h``.  Must
        outrun the worst-case drift spread ``2 rho / (1 - rho)``;
        default 1.0 (double speed) covers every ``rho <= 1/2``.
    compensation:
        Delay compensation credited per unit distance when estimating
        neighbors (0.5 = expected delay; see
        :class:`~repro.algorithms.base.NeighborEstimates`).
    """

    period: float = 1.0
    kappa: float = 2.0
    mu: float = 1.0
    compensation: float = 0.5
    name: str = "bounded-catch-up"

    def __post_init__(self) -> None:
        if self.kappa <= 0:
            raise ValueError(f"kappa must be positive, got {self.kappa}")
        if self.mu <= 0:
            raise ValueError(f"mu must be positive, got {self.mu}")

    def processes(self, topology: Topology) -> dict[int, Process]:
        return {
            node: BoundedCatchUpProcess(
                self.period, self.kappa, self.mu, self.compensation
            )
            for node in topology.nodes
        }
