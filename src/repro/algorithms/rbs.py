"""Reference Broadcast Synchronization (Elson, Girod & Estrin [2]).

RBS exploits a physical property of radio: one broadcast reaches all
receivers at nearly the same instant, so *receiver-receiver* delay
uncertainty is tiny even when sender-side latency is large.

Protocol (as summarized in Section 2 of the paper):

1. a beacon node broadcasts a numbered pulse;
2. every receiver records its own clock reading at arrival;
3. receivers exchange recorded readings;
4. each node computes its offset to the others from the differences.

Our forward-jump logical clocks realize step 4 by jumping to the largest
recorded reading for the pulse (so everyone agrees with the fastest
receiver, within jitter).  Run on a
:func:`~repro.topology.generators.broadcast_cluster` topology, whose
distances *are* the receiver jitter, pairwise skew lands at the jitter
scale — and the paper's lower bound, applied to that tiny diameter,
is correspondingly tiny.  Experiment E08 measures both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import SyncAlgorithm
from repro.sim.node import NodeAPI, Process
from repro.topology.base import Topology

__all__ = ["RBSAlgorithm", "BeaconProcess", "ReceiverProcess"]


class BeaconProcess(Process):
    """The beacon: broadcast a numbered pulse every period."""

    PULSE = "pulse"

    def __init__(self, period: float):
        self.period = period
        self.pulse = 0

    def on_start(self, api: NodeAPI) -> None:
        self._fire(api)

    def on_timer(self, api: NodeAPI, name: str) -> None:
        if name == self.PULSE:
            self._fire(api)

    def on_recover(self, api: NodeAPI) -> None:
        """Resume pulsing (the crash cancelled the pending pulse timer)."""
        self._fire(api)

    def _fire(self, api: NodeAPI) -> None:
        self.pulse += 1
        api.broadcast(("pulse", self.pulse))
        api.set_timer(self.period, self.PULSE)


class ReceiverProcess(Process):
    """A receiver: record pulse arrivals, exchange readings, align forward."""

    def __init__(self, beacon: int):
        self.beacon = beacon
        self.readings: dict[int, float] = {}  # pulse -> own hardware reading

    def on_message(self, api: NodeAPI, sender: int, payload) -> None:
        kind = payload[0]
        if kind == "pulse" and sender == self.beacon:
            _, pulse = payload
            reading = api.hardware_now()
            self.readings[pulse] = reading
            for peer in api.neighbors():
                if peer != self.beacon:
                    api.send(peer, ("obs", pulse, round(reading, 9)))
        elif kind == "obs":
            _, pulse, peer_reading = payload
            own = self.readings.get(pulse)
            if own is None:
                # We have not heard this pulse ourselves yet; skip (the
                # next pulse will cover it).
                return
            # Peer's hardware clock read `peer_reading` at the instant ours
            # read `own`, so the peer's timeline leads ours by `gap`.
            # Align the *logical* clock to the fastest receiver's timeline:
            # L = H + gap (an absolute offset — never re-applied, unlike a
            # naive increment, which would accumulate once per pulse).
            gap = peer_reading - own
            if gap > 0:
                api.jump_logical_to(api.hardware_now() + gap)


@dataclass
class RBSAlgorithm(SyncAlgorithm):
    """Factory: node ``beacon`` pulses, everyone else receives.

    Parameters
    ----------
    period:
        Hardware-time pulse period of the beacon.
    beacon:
        Which node is the beacon (default node 0).  The beacon does not
        synchronize itself — RBS synchronizes *receivers with each
        other*, which is also why its skews are receiver-pair quantities.
    """

    period: float = 1.0
    beacon: int = 0
    name: str = "rbs"

    def processes(self, topology: Topology) -> dict[int, Process]:
        out: dict[int, Process] = {}
        for node in topology.nodes:
            if node == self.beacon:
                out[node] = BeaconProcess(self.period)
            else:
                out[node] = ReceiverProcess(self.beacon)
        return out
