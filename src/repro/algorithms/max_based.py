"""The simplified Srikanth–Toueg max algorithm (Section 2 of the paper).

    "Nodes periodically broadcast their clock values, and any node
    receiving a value sets its clock value to be the larger of its own
    clock value and the received value."

This is the algorithm the paper uses to show that existing CSAs violate
the gradient property: it keeps *global* skew at ``O(D)`` but allows a
node at distance 1 to lag ``D`` behind its neighbor for a full delay
interval (the three-node x, y, z scenario reproduced in experiment E04).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import PeriodicProcess, SyncAlgorithm
from repro.sim.node import NodeAPI, Process
from repro.topology.base import Topology

__all__ = ["MaxBasedAlgorithm", "MaxProcess"]


class MaxProcess(PeriodicProcess):
    """Broadcast ``L`` every period; on receive, ``L := max(L, received)``."""

    def on_message(self, api: NodeAPI, sender: int, payload) -> None:
        kind, value = payload
        if kind != "clock":
            return
        api.jump_logical_to(value)


@dataclass
class MaxBasedAlgorithm(SyncAlgorithm):
    """Factory for :class:`MaxProcess` nodes.

    Parameters
    ----------
    period:
        Hardware-time gossip period.  Smaller periods track the maximum
        more closely (and send more messages); the gradient violation
        exists for every period.
    """

    period: float = 1.0
    name: str = "max-based"

    def processes(self, topology: Topology) -> dict[int, Process]:
        return {node: MaxProcess(self.period) for node in topology.nodes}
