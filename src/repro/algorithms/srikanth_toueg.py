"""Round-based resynchronization in the style of Srikanth & Toueg [9].

The original algorithm tolerates Byzantine faults via authenticated
echoes; the paper cites it as the *optimal-accuracy* CSA whose worst-case
skew between any pair is ``O(D)``.  We implement the failure-free core
that produces that behavior:

* time is divided into rounds of ``P`` logical units;
* when a node's logical clock reaches ``k * P`` it broadcasts
  ``(resync, k)``;
* a node accepting ``(resync, k)`` for a round it has not finished sets
  its logical clock forward to ``k * P`` (never backward) and adopts
  round ``k``.

Fast nodes drag slow nodes forward once per round, bounding global skew
by drift plus one diameter of message delay — but, exactly as Section 2
argues, a node can still jump ``O(D)`` ahead of a distance-1 neighbor
whose resync message is still in flight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import SyncAlgorithm
from repro.sim.node import NodeAPI, Process
from repro.topology.base import Topology

__all__ = ["SrikanthTouegAlgorithm", "ResyncProcess"]


class ResyncProcess(Process):
    """One node of the round-based resynchronization algorithm."""

    CHECK = "resync-check"

    def __init__(self, round_length: float, check_period: float):
        self.round_length = round_length
        self.check_period = check_period
        self.round = 0  # highest round we have resynchronized to

    def on_start(self, api: NodeAPI) -> None:
        api.set_timer(self.check_period, self.CHECK)

    def _maybe_advance(self, api: NodeAPI) -> None:
        """Start round ``k`` when our own clock reaches ``k * round_length``."""
        while api.logical_now() >= (self.round + 1) * self.round_length:
            self.round += 1
            api.broadcast(("resync", self.round))

    def on_timer(self, api: NodeAPI, name: str) -> None:
        if name != self.CHECK:
            return
        self._maybe_advance(api)
        api.set_timer(self.check_period, self.CHECK)

    def on_recover(self, api: NodeAPI) -> None:
        """Rejoin after a crash: adopt the round the (still advancing)
        logical clock already sits in — without re-broadcasting stale
        rounds — and re-arm the boundary check."""
        self.round = max(self.round, int(api.logical_now() // self.round_length))
        api.set_timer(self.check_period, self.CHECK)

    def on_message(self, api: NodeAPI, sender: int, payload) -> None:
        kind, k = payload
        if kind != "resync" or k <= self.round:
            return
        # Accept round k: jump to its boundary and relay so the resync
        # propagates beyond our neighborhood.
        self.round = k
        api.jump_logical_to(k * self.round_length)
        api.broadcast(("resync", k))


@dataclass
class SrikanthTouegAlgorithm(SyncAlgorithm):
    """Factory for :class:`ResyncProcess` nodes.

    Parameters
    ----------
    round_length:
        Logical-time length ``P`` of a resynchronization round.
    check_period:
        Hardware-time granularity at which a node checks whether its own
        clock crossed a round boundary.
    """

    round_length: float = 8.0
    check_period: float = 0.5
    name: str = "srikanth-toueg"

    def processes(self, topology: Topology) -> dict[int, Process]:
        return {
            node: ResyncProcess(self.round_length, self.check_period)
            for node in topology.nodes
        }
