"""Clock synchronization algorithms discussed by or implied by the paper."""

from repro.algorithms.averaging import AveragingAlgorithm
from repro.algorithms.base import NullAlgorithm, SyncAlgorithm
from repro.algorithms.external import ExternalSyncAlgorithm
from repro.algorithms.gradient import BoundedCatchUpAlgorithm
from repro.algorithms.max_based import MaxBasedAlgorithm
from repro.algorithms.rbs import RBSAlgorithm
from repro.algorithms.slewing import SlewingMaxAlgorithm
from repro.algorithms.srikanth_toueg import SrikanthTouegAlgorithm

__all__ = [
    "SyncAlgorithm",
    "NullAlgorithm",
    "MaxBasedAlgorithm",
    "SrikanthTouegAlgorithm",
    "AveragingAlgorithm",
    "BoundedCatchUpAlgorithm",
    "SlewingMaxAlgorithm",
    "RBSAlgorithm",
    "ExternalSyncAlgorithm",
    "standard_suite",
]


def standard_suite(period: float = 1.0) -> list[SyncAlgorithm]:
    """The algorithms every comparative experiment runs, in table order."""
    return [
        MaxBasedAlgorithm(period=period),
        SrikanthTouegAlgorithm(),
        AveragingAlgorithm(period=period),
        BoundedCatchUpAlgorithm(period=period),
        SlewingMaxAlgorithm(period=period),
        ExternalSyncAlgorithm(period=period),
    ]
