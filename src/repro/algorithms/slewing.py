"""Bounded-slew max synchronization (a second gradient candidate).

The max algorithm's gradient violation (Section 2) comes from *instant*
catch-up: one message can yank a clock ``O(D)`` forward past a
distance-1 neighbor.  A classic systems remedy (NTP calls it *slewing*)
is to amortize corrections: chase the same max estimate, but move at
most ``sigma`` per gossip period.

Slewing bounds how fast two nearby clocks can be torn apart — the
distance-1 spike of the Section 2 scenario shrinks from ``~D`` to
``~sigma`` — at the price of slower global convergence (a ``D``-sized
correction now takes ``D / sigma`` periods to absorb).  Experiment E12
compares this candidate with the blocking candidate
(:class:`~repro.algorithms.gradient.BoundedCatchUpAlgorithm`) against
the conjectured ``O(d + log D)`` envelope of Section 9.

Unlike the blocking candidate, slewing does *not* consult neighbor
distances at all: it is the simplest possible smoothing and makes a
good ablation point (smoothing alone vs. distance-aware blocking).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import NeighborEstimates, PeriodicProcess, SyncAlgorithm
from repro.sim.node import NodeAPI, Process
from repro.topology.base import Topology

__all__ = ["SlewingMaxAlgorithm", "SlewingMaxProcess"]


class SlewingMaxProcess(PeriodicProcess):
    """Chase the max neighbor estimate, at most ``sigma`` per period."""

    def __init__(self, period: float, sigma: float, compensation: float):
        super().__init__(period)
        self.sigma = sigma
        self.estimates = NeighborEstimates(delay_compensation=compensation)

    def on_message(self, api: NodeAPI, sender: int, payload) -> None:
        kind, value = payload
        if kind != "clock":
            return
        self.estimates.update(api, sender, value)

    def tick(self, api: NodeAPI) -> None:
        estimates = self.estimates.estimates(api)
        if not estimates:
            return
        gap = max(estimates.values()) - api.logical_now()
        if gap > 0:
            api.jump_logical_by(min(gap, self.sigma))

    def recover(self, api: NodeAPI) -> None:
        """Drop estimates that went stale during the outage; slewing
        then chases fresh values only."""
        self.estimates.clear()


@dataclass
class SlewingMaxAlgorithm(SyncAlgorithm):
    """Factory for :class:`SlewingMaxProcess` nodes.

    Parameters
    ----------
    period:
        Hardware-time gossip period.
    sigma:
        Maximum forward correction per period.  Must exceed the drift
        differential accumulated per period (``2 rho * period``) or slow
        nodes can never catch up and the local skew diverges; smaller
        values give tighter local behavior.  The default 1.0 is stable
        for ``rho`` up to ~0.5 at the default period.
    compensation:
        Delay compensation per unit distance for neighbor estimates.
        Defaults to 0: compensation assumes delays near ``d/2``, and an
        adversary that drops a delay to zero turns the credit into a
        ``d/2`` *overshoot* that slewing then chases past the real
        maximum (experiment E12 demonstrates the exploit).  Leave it
        off unless delays are known benign.
    """

    period: float = 1.0
    sigma: float = 1.0
    compensation: float = 0.0
    name: str = "slewing-max"

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    def processes(self, topology: Topology) -> dict[int, Process]:
        return {
            node: SlewingMaxProcess(self.period, self.sigma, self.compensation)
            for node in topology.nodes
        }
