"""Averaging-style synchronization (a standard baseline).

Each node keeps dead-reckoned estimates of its neighbors' logical clocks
and periodically jumps *halfway* toward the largest estimate.  Moving
only forward keeps validity; moving halfway (instead of all the way, as
the max algorithm does) smooths corrections but — as experiment E11
shows — still fails the gradient property: a large correction arriving
over a short link produces the same distance-1 spike, just split across
a few periods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import NeighborEstimates, PeriodicProcess, SyncAlgorithm
from repro.sim.node import NodeAPI, Process
from repro.topology.base import Topology

__all__ = ["AveragingAlgorithm", "AveragingProcess"]


class AveragingProcess(PeriodicProcess):
    """Jump halfway toward the max neighbor estimate, once per period."""

    def __init__(self, period: float, pull: float):
        super().__init__(period)
        self.pull = pull
        self.estimates = NeighborEstimates()

    def on_message(self, api: NodeAPI, sender: int, payload) -> None:
        kind, value = payload
        if kind != "clock":
            return
        self.estimates.update(api, sender, value)

    def tick(self, api: NodeAPI) -> None:
        estimates = self.estimates.estimates(api)
        if not estimates:
            return
        target = max(estimates.values())
        gap = target - api.logical_now()
        if gap > 0:
            api.jump_logical_by(self.pull * gap)

    def recover(self, api: NodeAPI) -> None:
        """Drop estimates that went stale during the outage; the next
        round of gossip rebuilds them (jumps stay forward-only)."""
        self.estimates.clear()


@dataclass
class AveragingAlgorithm(SyncAlgorithm):
    """Factory for :class:`AveragingProcess` nodes.

    Parameters
    ----------
    period:
        Hardware-time gossip period.
    pull:
        Fraction of the gap to the max neighbor estimate closed per
        period (``0 < pull <= 1``; ``1`` degenerates to max-based with a
        one-period lag).
    """

    period: float = 1.0
    pull: float = 0.5
    name: str = "averaging"

    def __post_init__(self) -> None:
        if not 0.0 < self.pull <= 1.0:
            raise ValueError(f"pull must be in (0, 1], got {self.pull}")

    def processes(self, topology: Topology) -> dict[int, Process]:
        return {
            node: AveragingProcess(self.period, self.pull)
            for node in topology.nodes
        }
