"""Common scaffolding for clock synchronization algorithms.

Every algorithm is a :class:`SyncAlgorithm` — a factory producing one
:class:`~repro.sim.node.Process` per node — so experiments can treat
"the algorithm A" as a value, exactly as the paper's lower bound
quantifies over algorithms.

All algorithms here keep their logical clock as ``hardware + forward
jumps``, which satisfies the validity requirement (Requirement 1) for
``rho <= 1/2`` by construction.  They differ only in *when* and *how far*
they jump.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.sim.node import NodeAPI, Process
from repro.topology.base import Topology

__all__ = ["SyncAlgorithm", "PeriodicProcess", "NeighborEstimates", "NullAlgorithm"]


class SyncAlgorithm(ABC):
    """A clock synchronization algorithm: a recipe for node processes."""

    #: Short name used in experiment tables.
    name: str = "abstract"

    @abstractmethod
    def processes(self, topology: Topology) -> dict[int, Process]:
        """Instantiate one process per node of ``topology``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class PeriodicProcess(Process):
    """A process that broadcasts every ``period`` units of hardware time.

    Subclasses provide the broadcast payload and the receive handler.
    The timer is hardware-driven because hardware time is all a node can
    measure; under adversarial rate schedules the real-time period drifts
    accordingly, exactly as the model intends.
    """

    TICK = "gossip"

    def __init__(self, period: float):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period

    def on_start(self, api: NodeAPI) -> None:
        self.initialize(api)
        api.broadcast(self.payload(api))
        api.set_timer(self.period, self.TICK)

    def on_timer(self, api: NodeAPI, name: str) -> None:
        if name != self.TICK:
            return
        self.tick(api)
        api.broadcast(self.payload(api))
        api.set_timer(self.period, self.TICK)

    def on_recover(self, api: NodeAPI) -> None:
        """Come back from a crash: re-announce and re-arm the gossip timer.

        The crash cancelled the pending tick, so without this the node
        would stay silent forever.  ``recover`` runs first so subclasses
        can discard state that went stale during the outage.
        """
        self.recover(api)
        api.broadcast(self.payload(api))
        api.set_timer(self.period, self.TICK)

    # hooks ------------------------------------------------------------

    def initialize(self, api: NodeAPI) -> None:
        """Called once before the first broadcast."""

    def tick(self, api: NodeAPI) -> None:
        """Called every period before broadcasting."""

    def recover(self, api: NodeAPI) -> None:
        """Called on crash recovery, before the re-announcement broadcast."""

    def payload(self, api: NodeAPI) -> Any:
        """The broadcast content; default is the node's logical clock value."""
        return ("clock", round(api.logical_now(), 9))


class NeighborEstimates:
    """Dead-reckoned estimates of neighbors' logical clocks.

    On receipt of a neighbor's clock value, remember it together with our
    own hardware reading; later, estimate the neighbor's current value as
    ``value + (hardware_now - hardware_then)`` (neighbor clocks advance at
    roughly our own rate — the estimate is off by at most drift plus the
    message delay uncertainty, which is what the gradient algorithms
    budget for).

    ``delay_compensation`` adds ``compensation * d(sender)`` to each
    received value, crediting the expected in-flight time (delays lie in
    ``[0, d]``, so ``0.5`` matches both the uniform average and the
    quiet ``d/2`` schedules; ``0`` reproduces the uncompensated
    pessimistic estimate).
    """

    def __init__(self, delay_compensation: float = 0.0) -> None:
        if not 0.0 <= delay_compensation <= 1.0:
            raise ValueError("delay compensation must be in [0, 1]")
        self.delay_compensation = delay_compensation
        self._last: dict[int, tuple[float, float]] = {}

    def update(self, api: NodeAPI, sender: int, value: float) -> None:
        credited = value + self.delay_compensation * api.distance(sender)
        self._last[sender] = (credited, api.hardware_now())

    def estimate(self, api: NodeAPI, sender: int) -> float | None:
        if sender not in self._last:
            return None
        value, hw_then = self._last[sender]
        return value + (api.hardware_now() - hw_then)

    def estimates(self, api: NodeAPI) -> dict[int, float]:
        return {
            sender: self.estimate(api, sender)  # type: ignore[misc]
            for sender in self._last
        }

    def known(self) -> list[int]:
        return sorted(self._last)

    def clear(self) -> None:
        """Forget everything — estimates dead-reckoned across a crash
        outage are arbitrarily stale and must not be extrapolated."""
        self._last.clear()


@dataclass
class NullAlgorithm(SyncAlgorithm):
    """No synchronization at all: ``L = H``.  Control/baseline.

    Violates no requirement (validity holds) but its gradient profile is
    just the accumulated drift — useful as the floor in comparisons.
    """

    name: str = "null"

    def processes(self, topology: Topology) -> dict[int, Process]:
        return {node: Process() for node in topology.nodes}
