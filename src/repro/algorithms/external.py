"""External synchronization to a designated source (cf. Ostrovsky &
Patt-Shamir [6]).

Nodes form a BFS spanning tree of the communication graph rooted at the
source.  Each node follows its *parent*: the parent gossips its own
logical clock value, and a child jumps forward to any parent value ahead
of its own clock.  (Following the parent's actual sent value — rather
than relaying dead-reckoned estimates — avoids estimate-inflation
feedback; the price is that external error accumulates with tree depth,
which is the honest behavior of hierarchical external sync.)

External synchronization keeps every node within ``O(depth)`` of the
source — but, as the paper notes (Section 2), good external
synchronization does **not** imply a good gradient: a resync arriving at
one sibling a delay earlier than the other yanks them apart exactly like
the max algorithm.  Experiment E11 exhibits the profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.algorithms.base import PeriodicProcess, SyncAlgorithm
from repro.errors import TopologyError
from repro.sim.node import NodeAPI, Process
from repro.topology.base import Topology

__all__ = ["ExternalSyncAlgorithm", "TreeFollowerProcess"]


class TreeFollowerProcess(PeriodicProcess):
    """Follow the parent's clock; gossip own clock (children listen).

    A follower behind its parent jumps forward to the parent's value; a
    follower ahead of its parent *slows down* to the validity-safe floor
    rate until it drops back within ``slack`` of the parent's estimate.
    (Requirement 1 allows logical rates down to 1/2, so slowing is legal;
    clocks can never run backward.)
    """

    def __init__(self, period: float, parent: int | None, slack: float):
        super().__init__(period)
        self.parent = parent  # None for the source/root
        self.slack = slack
        self._parent_seen: tuple[float, float] | None = None  # (value, hw)

    def _parent_estimate(self, api: NodeAPI) -> float | None:
        if self._parent_seen is None:
            return None
        value, hw_then = self._parent_seen
        return value + (api.hardware_now() - hw_then)

    def _steer(self, api: NodeAPI) -> None:
        estimate = self._parent_estimate(api)
        if estimate is None:
            return
        own = api.logical_now()
        if own < estimate:
            api.jump_logical_to(estimate)
            api.set_logical_multiplier(1.0)
        elif own - estimate > self.slack:
            api.set_logical_multiplier(api.min_logical_multiplier)
        else:
            api.set_logical_multiplier(1.0)

    def on_message(self, api: NodeAPI, sender: int, payload) -> None:
        if self.parent is None or sender != self.parent:
            return
        kind, value = payload
        if kind != "clock":
            return
        self._parent_seen = (value, api.hardware_now())
        self._steer(api)

    def tick(self, api: NodeAPI) -> None:
        self._steer(api)


@dataclass
class ExternalSyncAlgorithm(SyncAlgorithm):
    """Factory: BFS tree rooted at ``source``; each node follows its parent.

    ``slack`` is how far a follower may run ahead of its parent estimate
    before it engages the slow mode; it should exceed the one-link
    estimate error (delay uncertainty + drift over a period).
    """

    period: float = 1.0
    source: int = 0
    slack: float = 2.0
    name: str = "external"

    def processes(self, topology: Topology) -> dict[int, Process]:
        graph = nx.Graph(topology.comm_pairs())
        graph.add_nodes_from(topology.nodes)
        if self.source not in graph:
            raise TopologyError(f"source {self.source} not in topology")
        parents: dict[int, int | None] = {self.source: None}
        for child, parent in nx.bfs_predecessors(graph, self.source):
            parents[child] = parent
        missing = set(topology.nodes) - set(parents)
        if missing:
            raise TopologyError(
                f"nodes {sorted(missing)} unreachable from source "
                f"{self.source}; external sync needs a connected graph"
            )
        return {
            node: TreeFollowerProcess(self.period, parents[node], self.slack)
            for node in topology.nodes
        }
