"""Multiplexed transport: many LiveNodes per worker, one router socket.

The UDP backend forks one OS process per node, which caps live runs at
tens of nodes.  This backend is the scale vehicle: ``n`` nodes are
sharded round-robin onto a handful of worker processes, each worker
hosts its shard of :class:`~repro.rt.node.LiveNode` objects inside one
select/heap event loop, and every frame — the same length-prefixed JSON
wire format as :mod:`repro.rt.udp` — travels through one central
*router* socket owned by the parent.  Live runs of hundreds to
thousands of nodes fit on one machine.

The router is also where live *churn* becomes real: it is the single
switch every frame crosses, so it enforces the in-force communication
graph of a :class:`~repro.topology.dynamic.DynamicTopology` (frames on
links the current snapshot does not have are dropped) and applies
:class:`~repro.sim.faults.LinkFault` loss/duplication/reordering/down
windows via the simulator's own :class:`~repro.sim.faults.FaultController`.
Crash windows are executed node-side: each worker downs and recovers
its shard's nodes at the plan's instants (recording the same
CRASH/RECOVER trace events the simulator records and invoking
``on_recover``), cancels crash-epoch timers, and suppresses deliveries
to down nodes — so E13/E16-style adversaries run on a real transport.

Division of labor
-----------------
* **router (parent)** — wire + network level: malformed frames, comm
  graph membership at forward time, link loss / duplication / reorder /
  down windows.  Mid-flight frames of a link that rewired away are
  dropped at the switch — a slightly *stronger* adversary than the
  simulator, which lets in-flight messages finish.
* **workers** — node level: crash/recovery windows, crash-epoch timer
  cancellation, receiver-down and sender-in-flight delivery loss,
  mid-run topology swaps visible to ``api.neighbors()``.

Fault counters from both sides are merged into
``Execution.fault_stats``; wire-level drop counts and events/sec inputs
land in ``Execution.live_stats``.

Timebase and failure handling follow :mod:`repro.rt.udp`: fork start
method, ready barrier before the shared CLOCK_MONOTONIC epoch, and
prompt :class:`RtError` (naming the worker) when a worker process dies
without reporting.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import random
import select
import socket
import time
import traceback
from typing import TYPE_CHECKING, Mapping, Optional

from repro.errors import RtError
from repro.rt.node import LiveNode
from repro.rt.recorder import LiveRecorder, build_execution, merge_recorders
from repro.rt.transport import DELAY_SEED_MIX, Transport
from repro.rt.udp import (
    _START_GRACE,
    _READY_GRACE,
    _REPORT_GRACE,
    _untuple,
    collect_messages,
    decode_frame,
    encode_frame,
    raise_reported_errors,
    warn_missed_epochs,
)
from repro.sim.clock import HardwareClock
from repro.sim.faults import FaultController, FaultPlan
from repro.sweep.families import (
    algorithm_from_spec,
    delay_policy_from_spec,
    fault_plan_from_spec,
    mobility_from_spec,
    rates_from_spec,
    topology_from_spec,
)
from repro.topology.dynamic import DynamicTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rt.run import LiveRunConfig
    from repro.sim.execution import Execution

__all__ = ["RouterWorkerTransport", "run_router", "default_workers"]

#: Mixed into the per-worker delay-RNG salt so worker streams never
#: collide with the per-node salts the udp backend uses.
_WORKER_SEED_MIX = 7_777_777


def default_workers(n: int) -> int:
    """Auto worker count: one worker per ~16 nodes, capped by cores.

    Small runs stay in one worker (no multiplexing overhead); large runs
    fan out to at most ``min(cores, 8)`` workers, each hosting a shard.
    """
    cores = os.cpu_count() or 2
    return max(1, min(cores, 8, (n + 15) // 16))


class RouterWorkerTransport(Transport):
    """The worker side: one event loop hosting a whole shard of nodes.

    Generalizes :class:`~repro.rt.udp.UdpTransport` from one node per
    process to many: heap entries carry the node they belong to, timers
    carry the crash epoch they were set in, and crash / recovery /
    rewiring instants are ordinary heap events (pushed before anything
    else, so they take the lowest tiebreaks and dispatch before
    same-instant deliveries or timers — the simulator's ordering).
    """

    name = "router"

    def __init__(
        self,
        *,
        worker: int,
        sock: socket.socket,
        router_port: int,
        recorder: LiveRecorder,
        delay_policy,
        seed: int,
        duration: float,
        time_scale: float,
        plan: Optional[FaultPlan] = None,
        dynamic: Optional[DynamicTopology] = None,
    ):
        self._worker = worker
        self._sock = sock
        self._router_addr = ("127.0.0.1", router_port)
        self._init_messaging(
            recorder=recorder,
            delay_policy=delay_policy,
            delay_rng=random.Random(
                (seed ^ DELAY_SEED_MIX) * 0x9E37 + _WORKER_SEED_MIX + worker
            ),
            seed=seed,
        )
        self._duration = duration
        self._time_scale = time_scale
        self._plan = plan
        self._dynamic = dynamic
        self._epoch_wall: float | None = None
        self._now = 0.0
        # Pending (due, tiebreak, kind, data): deliveries, timers, churn.
        self._pending: list[tuple[float, int, str, tuple]] = []
        self._tiebreak = 0
        self._seq_base = 0
        self._nodes: dict[int, LiveNode] = {}
        #: Shard nodes currently inside a crash window.
        self._down: set[int] = set()
        #: Per-node crash epoch; stale-epoch timers never fire.
        self._epochs: dict[int, int] = {}
        #: Crash windows by node — *all* nodes, not just the shard, so
        #: the in-flight check knows about remote senders' crashes.
        self._crash_by_node = (
            {c.node: c for c in plan.crashes} if plan is not None else {}
        )
        #: Malformed or misdirected datagrams dropped at the wire.
        self.frames_dropped = 0
        #: Callback events dispatched (deliveries + timer firings).
        self.events_processed = 0
        #: Node-level fault counters, merged parent-side with the
        #: router's FaultController stats into Execution.fault_stats.
        self.stats = {
            "crashes": 0,
            "recoveries": 0,
            "lost_receiver_down": 0,
            "lost_in_flight": 0,
            "timers_cancelled": 0,
        }

    def bind_epoch(self, epoch_wall: float) -> None:
        """Anchor measured time to the shared CLOCK_MONOTONIC epoch."""
        self._epoch_wall = epoch_wall

    def _elapsed(self) -> float:
        return (time.monotonic() - self._epoch_wall) / self._time_scale

    # ------------------------------------------------------------------
    # Transport interface

    def now(self) -> float:
        return self._now

    def _message_seq(self, counter: int) -> int:
        # Node-unique seq without cross-worker coordination: the shared
        # counter is unique within the worker, the node salt across all.
        return self._seq_base + counter

    def transmit(self, sender: LiveNode, receiver: int, payload) -> None:
        self._seq_base = sender.node * 1_000_000
        message = self._next_message(sender, receiver, payload)
        if message is None:
            return
        frame = encode_frame(
            {
                "seq": message.seq,
                "src": message.sender,
                "dst": message.receiver,
                "payload": message.payload,
                "send": message.send_time,
                "delay": message.delay,
            }
        )
        self._sock.sendto(frame, self._router_addr)

    def schedule_timer(self, node: LiveNode, fire_at: float, name: str) -> None:
        self._push(
            fire_at, "timer",
            (node.node, name, self._epochs.get(node.node, 0)),
        )

    def _push(self, due: float, kind: str, data: tuple) -> None:
        heapq.heappush(self._pending, (due, self._tiebreak, kind, data))
        self._tiebreak += 1

    # ------------------------------------------------------------------
    # the shard event loop

    def run(self, nodes: Mapping[int, LiveNode], duration: float) -> None:
        if self._epoch_wall is None:
            raise RtError("bind_epoch must be called before run")
        self._nodes = dict(nodes)
        down_at_start: set[int] = set()
        if self._plan is not None:
            for crash in self._plan.crashes:
                if crash.node not in self._nodes:
                    continue
                if crash.at <= 0.0:
                    # Down from the start: never begins (mirrors the
                    # simulator's down preseed).
                    down_at_start.add(crash.node)
                    self._down.add(crash.node)
                    self._epochs[crash.node] = 1
                    self.stats["crashes"] += 1
                else:
                    self._push(crash.at, "crash", (crash.node,))
                if crash.recover_at is not None:
                    self._push(crash.recover_at, "recover", (crash.node,))
        if self._dynamic is not None:
            for index, t in enumerate(self._dynamic.change_times):
                if t <= duration:
                    self._push(t, "topo", (index + 1,))
        # All STARTs recorded before any on_start runs, in node order —
        # the simulator's opening order.
        for node in sorted(self._nodes):
            if node not in down_at_start:
                self._nodes[node].record_start()
        for node in sorted(self._nodes):
            if node not in down_at_start:
                self._nodes[node].begin()
        while True:
            elapsed = self._elapsed()
            if elapsed >= duration:
                break
            due = self._pending[0][0] if self._pending else duration
            timeout = max(0.0, (min(due, duration) - elapsed) * self._time_scale)
            readable, _, _ = select.select([self._sock], [], [], timeout)
            if readable:
                self._drain_socket()
            self._dispatch_due()
        self._now = duration

    def _drain_socket(self) -> None:
        while True:
            try:
                datagram, _ = self._sock.recvfrom(65536)
            except BlockingIOError:
                return
            record = decode_frame(datagram)
            if record is None or record.get("dst") not in self._nodes:
                self.frames_dropped += 1
                continue
            deliver_at = float(record["send"]) + float(record["delay"])
            self._push(
                deliver_at,
                "msg",
                (
                    int(record["dst"]),
                    int(record["src"]),
                    float(record["send"]),
                    _untuple(record["payload"]),
                ),
            )

    def _dispatch_due(self) -> None:
        while self._pending:
            due = self._pending[0][0]
            elapsed = self._elapsed()
            if due > elapsed or elapsed >= self._duration:
                return
            _, _, kind, data = heapq.heappop(self._pending)
            # Freeze the callback's instant at measured time (>= due when
            # the OS woke us late), monotone and inside the run.
            self._now = min(max(self._now, elapsed), self._duration)
            if kind == "msg":
                dst, src, send_time, payload = data
                if self._delivery_lost(src, dst, send_time):
                    continue
                self.events_processed += 1
                self._nodes[dst].deliver(src, payload)
            elif kind == "timer":
                node, name, set_epoch = data
                if node in self._down or set_epoch != self._epochs.get(node, 0):
                    self.stats["timers_cancelled"] += 1
                    continue
                self.events_processed += 1
                self._nodes[node].fire_timer(name)
            elif kind == "crash":
                (node,) = data
                self._down.add(node)
                self._epochs[node] = self._epochs.get(node, 0) + 1
                self.stats["crashes"] += 1
                self._nodes[node].mark_crash()
            elif kind == "recover":
                (node,) = data
                self._down.discard(node)
                self.stats["recoveries"] += 1
                self._nodes[node].recover()
            else:  # "topo": swap every hosted node onto the new snapshot
                (index,) = data
                snapshot = self._dynamic.snapshots[index][1]
                for live in self._nodes.values():
                    live.topology = snapshot

    def _delivery_lost(self, src: int, dst: int, send_time: float) -> bool:
        """Crash-window delivery suppression (the simulator's semantics)."""
        if dst in self._down:
            self.stats["lost_receiver_down"] += 1
            return True
        crash = self._crash_by_node.get(src)
        if (
            crash is not None
            and crash.lose_in_flight
            and send_time < crash.at <= self._now
        ):
            self.stats["lost_in_flight"] += 1
            return True
        return False


# ----------------------------------------------------------------------
# the parent-side router


class _RouterCore:
    """The frame switch: decode, apply network-level churn, forward."""

    def __init__(
        self,
        *,
        topology,
        plan: Optional[FaultPlan],
        dynamic: Optional[DynamicTopology],
        seed: int,
        time_scale: float,
        owner: Mapping[int, int],
        worker_ports: Mapping[int, int],
        tail=None,
    ):
        self._topology = topology
        self._dynamic = dynamic
        self._time_scale = time_scale
        #: Optional streaming tail: sees every well-formed frame that
        #: crosses the switch, before churn decides its fate.
        self._tail = tail
        self._owner = dict(owner)
        self._addrs = {
            w: ("127.0.0.1", port) for w, port in worker_ports.items()
        }
        # Link-level faults ride the simulator's own controller (loss /
        # duplication / reorder / down windows + their stats); crash
        # windows are executed worker-side, so the controller's crash
        # machinery sits unused here.
        self._controller = (
            FaultController(plan, topology, seed) if plan is not None else None
        )
        self._edge_cache: dict[int, frozenset] = {}
        self._epoch_wall: float | None = None
        self.frames_routed = 0
        #: Malformed frames or frames for unknown destinations.
        self.frames_dropped = 0
        #: Frames dropped because the in-force comm graph lacks the link.
        self.dropped_no_edge = 0

    def bind_epoch(self, epoch_wall: float) -> None:
        self._epoch_wall = epoch_wall

    def now(self) -> float:
        """Elapsed simulation time since the shared epoch."""
        if self._epoch_wall is None:
            return 0.0
        return (time.monotonic() - self._epoch_wall) / self._time_scale

    def counters(self) -> dict:
        """Wire counters for the streaming tail / live_stats."""
        return {
            "frames_routed": self.frames_routed,
            "frames_dropped": self.frames_dropped,
            "lost_no_edge": self.dropped_no_edge,
        }

    def stats(self) -> dict:
        merged = dict(self._controller.stats) if self._controller else {}
        merged["lost_no_edge"] = self.dropped_no_edge
        return merged

    def _edges(self, topo) -> frozenset:
        cached = self._edge_cache.get(id(topo))
        if cached is None:
            cached = frozenset(
                (min(i, j), max(i, j)) for i, j in topo.comm_edges
            )
            self._edge_cache[id(topo)] = cached
        return cached

    def handle(self, datagram: bytes, sock: socket.socket) -> None:
        record = decode_frame(datagram)
        if record is None:
            self.frames_dropped += 1
            return
        src, dst = record.get("src"), record.get("dst")
        if dst not in self._owner or src not in self._owner:
            self.frames_dropped += 1
            return
        now = (time.monotonic() - self._epoch_wall) / self._time_scale
        if self._tail is not None:
            self._tail.frame(record, now)
        topo = self._dynamic.at(now) if self._dynamic else self._topology
        if (min(src, dst), max(src, dst)) not in self._edges(topo):
            self.dropped_no_edge += 1
            return
        addr = self._addrs[self._owner[dst]]
        if self._controller is None:
            sock.sendto(datagram, addr)
            self.frames_routed += 1
            return
        send_time = float(record["send"])
        delay = float(record["delay"])
        delays = self._controller.outbound_delays(
            src, dst, send_time, topo.distance(src, dst), delay
        )
        for out_delay in delays:
            out = (
                datagram
                if out_delay == delay
                else encode_frame({**record, "delay": out_delay})
            )
            sock.sendto(out, addr)
            self.frames_routed += 1


def _worker_main(
    worker: int,
    shard: tuple,
    cfg: dict,
    router_port: int,
    sock: socket.socket,
    conn,
) -> None:
    """Entry point of one worker process (fork-inherited socket)."""
    try:
        sock.setblocking(False)
        topology = topology_from_spec(cfg["topology"])
        dynamic = mobility_from_spec(
            cfg["mobility"], topology, seed=cfg["seed"], horizon=cfg["duration"]
        )
        base = dynamic.initial if dynamic is not None else topology
        plan = fault_plan_from_spec(
            cfg["faults"], base, seed=cfg["seed"], horizon=cfg["duration"]
        )
        if plan is not None and plan.is_empty():
            plan = None
        processes = algorithm_from_spec(cfg["algorithm"]).processes(base)
        schedules = rates_from_spec(
            cfg["rates"], base, rho=cfg["rho"], seed=cfg["seed"],
            horizon=cfg["duration"],
        )
        recorder = LiveRecorder(record_trace=cfg["record_trace"])
        transport = RouterWorkerTransport(
            worker=worker,
            sock=sock,
            router_port=router_port,
            recorder=recorder,
            delay_policy=delay_policy_from_spec(cfg["delays"]),
            seed=cfg["seed"],
            duration=cfg["duration"],
            time_scale=cfg["time_scale"],
            plan=plan,
            dynamic=dynamic,
        )
        nodes = {
            node: LiveNode(
                node,
                processes[node],
                topology=base,
                schedule=schedules[node],
                rho=cfg["rho"],
                seed=cfg["seed"],
                transport=transport,
                recorder=recorder,
            )
            for node in shard
        }
        conn.send({"worker": worker, "ready": True})
        epoch = conn.recv()["epoch"]
        transport.bind_epoch(epoch)
        lag = epoch - time.monotonic()
        if lag > 0:
            time.sleep(lag)
        transport.run(nodes, cfg["duration"])
        conn.send(
            {
                "worker": worker,
                "recorder": recorder,
                "logical": {node: nodes[node].logical for node in shard},
                "frames_dropped": transport.frames_dropped,
                "events": transport.events_processed,
                "stats": transport.stats,
                "missed_epoch": lag <= 0,
            }
        )
    except Exception:  # pragma: no cover - surfaced as RtError in the parent
        conn.send({"worker": worker, "error": traceback.format_exc()})
    finally:
        conn.close()
        sock.close()


def _route_and_collect(
    router_sock: socket.socket,
    core: _RouterCore,
    conns: dict,
    children: dict,
    deadline: float,
    tail=None,
) -> dict:
    """Switch frames until every worker has shipped its run report.

    One select loop serves both jobs: frames are forwarded as they
    arrive, and worker pipes (plus process sentinels) are watched so a
    dead or wedged worker raises a prompt :class:`RtError` naming it —
    the same failure contract :func:`~repro.rt.udp.collect_messages`
    gives the udp backend.  An attached ``tail`` additionally gets a
    counter snapshot per loop wakeup, so its panels track the switch
    in real time.
    """
    reports: dict[int, dict] = {}
    pending = dict(conns)
    while pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            names = ", ".join(str(w) for w in sorted(pending))
            raise RtError(
                f"router worker {names} did not report a run report "
                f"within the wall-clock budget"
            )
        watch = [router_sock] + list(pending.values()) + [
            children[w].sentinel for w in pending
        ]
        readable, _, _ = select.select(watch, [], [], remaining)
        if router_sock in readable:
            while True:
                try:
                    datagram, _ = router_sock.recvfrom(65536)
                except BlockingIOError:
                    break
                core.handle(datagram, router_sock)
            if tail is not None:
                tail.stats(core.now(), **core.counters())
        for w in list(pending):
            if not pending[w].poll(0):
                continue
            try:
                reports[w] = pending[w].recv()
            except EOFError:
                raise RtError(
                    f"router worker {w} closed its pipe without reporting "
                    f"(exit code {children[w].exitcode})"
                ) from None
            del pending[w]
        for w in list(pending):
            if not children[w].is_alive() and not pending[w].poll(0):
                raise RtError(
                    f"router worker {w} died with exit code "
                    f"{children[w].exitcode} before reporting"
                )
    return reports


def run_router(config: "LiveRunConfig", *, tail=None) -> "Execution":
    """Run one live scenario on the multiplexed router transport."""
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RtError(
            "the router transport needs the 'fork' start method (sockets "
            "are inherited); use --transport asyncio on this platform"
        )
    if multiprocessing.current_process().daemon:
        raise RtError(
            "the router transport spawns worker processes, which daemonic "
            "pool workers may not do; run router cells at workers=1"
        )
    ctx = multiprocessing.get_context("fork")
    topology = topology_from_spec(config.topology)
    dynamic = mobility_from_spec(
        config.mobility, topology, seed=config.seed, horizon=config.duration
    )
    base = dynamic.initial if dynamic is not None else topology
    plan = fault_plan_from_spec(
        config.faults, base, seed=config.seed, horizon=config.duration
    )
    if plan is not None and plan.is_empty():
        plan = None
    schedules = rates_from_spec(
        config.rates, base, rho=config.rho, seed=config.seed,
        horizon=config.duration,
    )
    n_workers = config.workers if config.workers > 0 else default_workers(base.n)
    n_workers = min(n_workers, base.n)
    all_nodes = tuple(base.nodes)
    shards = {w: all_nodes[w::n_workers] for w in range(n_workers)}
    owner = {node: w for w, shard in shards.items() for node in shard}
    cfg = {
        "topology": config.topology,
        "algorithm": config.algorithm,
        "rates": config.rates,
        "delays": config.delays,
        "faults": config.faults,
        "mobility": config.mobility,
        "duration": config.duration,
        "rho": config.rho,
        "seed": config.seed,
        "time_scale": config.time_scale,
        "record_trace": config.record_trace,
    }

    sockets: dict[int, socket.socket] = {}
    router_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        router_sock.bind(("127.0.0.1", 0))
        router_sock.setblocking(False)
        router_port = router_sock.getsockname()[1]
        worker_ports: dict[int, int] = {}
        for w in range(n_workers):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind(("127.0.0.1", 0))
            sockets[w] = sock
            worker_ports[w] = sock.getsockname()[1]
        core = _RouterCore(
            topology=base,
            plan=plan,
            dynamic=dynamic,
            seed=config.seed,
            time_scale=config.time_scale,
            owner=owner,
            worker_ports=worker_ports,
            tail=tail,
        )

        pipes = {w: ctx.Pipe() for w in range(n_workers)}
        children = {
            w: ctx.Process(
                target=_worker_main,
                args=(w, shards[w], cfg, router_port, sockets[w], pipes[w][1]),
                daemon=True,
            )
            for w in range(n_workers)
        }
        for child in children.values():
            child.start()
        parent_conns = {w: pipes[w][0] for w in range(n_workers)}
        for w in range(n_workers):
            pipes[w][1].close()
        readies = collect_messages(
            parent_conns,
            children,
            time.monotonic() + _READY_GRACE + 0.02 * base.n,
            what="ready signal",
            role="router worker",
        )
        raise_reported_errors(readies, role="router worker")
        epoch = time.monotonic() + _START_GRACE
        core.bind_epoch(epoch)
        for w in range(n_workers):
            try:
                parent_conns[w].send({"epoch": epoch})
            except BrokenPipeError:  # pragma: no cover - death race
                pass
        budget = _START_GRACE + config.duration * config.time_scale + _REPORT_GRACE
        reports = _route_and_collect(
            router_sock, core, parent_conns, children,
            time.monotonic() + budget, tail=tail,
        )
        for child in children.values():
            child.join(timeout=5.0)
    finally:
        router_sock.close()
        for sock in sockets.values():
            sock.close()
        for child in list(locals().get("children", {}).values()):
            if child.is_alive():  # pragma: no cover - crash cleanup
                child.terminate()

    raise_reported_errors(reports, role="router worker")
    warn_missed_epochs(reports, role="router worker")

    recorder = merge_recorders([reports[w]["recorder"] for w in sorted(reports)])
    logical = {}
    for w in sorted(reports):
        logical.update(reports[w]["logical"])

    churny = plan is not None or (dynamic is not None and not dynamic.is_static())
    fault_stats = None
    if churny:
        fault_stats = core.stats()
        for report in reports.values():
            for key, value in report["stats"].items():
                fault_stats[key] = fault_stats.get(key, 0) + value
    timeline = None
    if dynamic is not None and not dynamic.is_static():
        timeline = tuple(
            (t, topo) for t, topo in dynamic.snapshots if t <= config.duration
        )
    live_stats = {
        "workers": n_workers,
        "frames_routed": core.frames_routed,
        "frames_dropped": core.frames_dropped
        + sum(r.get("frames_dropped", 0) for r in reports.values()),
        "events": sum(r.get("events", 0) for r in reports.values()),
    }
    if tail is not None:
        tail.stats(config.duration, **core.counters())
        tail.close()
    return build_execution(
        topology=base,
        duration=config.duration,
        rho=config.rho,
        hardware={n: HardwareClock(schedules[n], config.rho) for n in base.nodes},
        logical=logical,
        recorder=recorder,
        source="live-router",
        fault_stats=fault_stats,
        topology_timeline=timeline,
        live_stats=live_stats,
    )
