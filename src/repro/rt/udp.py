"""Distributed transport: one OS process per node over localhost UDP.

This is the runtime's "really distributed" backend: every node is its
own process with its own :class:`~repro.rt.hostclock.HostClock`, and the
only shared state is the UDP datagrams between them — the deployment
shape of a real sync client fleet, scaled down to one machine.

Wire format
-----------
One datagram per message: a 4-byte big-endian length prefix followed by
exactly that many bytes of UTF-8 JSON::

    {"seq": …, "src": i, "dst": j, "payload": …, "send": t, "delay": d}

The prefix makes truncation detectable (a datagram whose body length
disagrees with its prefix is dropped and counted), and the format is
language-neutral, so a future non-Python node can join a run.  Payloads
must be JSON-serializable; tuples survive the round trip because the
receiver restores lists to tuples (every algorithm in
:mod:`repro.algorithms` sends ``(tag, number)`` pairs).

Timebase
--------
The parent waits for every child to report ready (the barrier absorbs
fork + construction lag, however large n gets), then picks one
CLOCK_MONOTONIC epoch a short grace ahead and ships it to every child;
``time.monotonic()`` is system-wide on Linux, so all hosts agree on
"simulation time 0" to scheduler precision.  A child that still misses
the epoch reports the fact and the parent warns.  Each child realizes its
assigned drift schedule with ``HostClock.from_schedule`` and injects
model-band message delays (sender-drawn, carried on the wire; the
receiver holds each datagram until its delivery instant).  After the
run, children ship their recorders and logical clocks home over pipes
and the parent assembles one :class:`~repro.sim.execution.Execution`.

Requires the ``fork`` start method (sockets are inherited, nothing else
is portable-pickled); :func:`run_udp` raises :class:`RtError` where fork
is unavailable.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import random
import select
import socket
import struct
import time
import traceback
import warnings
from multiprocessing.connection import wait as _mp_wait
from typing import TYPE_CHECKING, Mapping

from repro.errors import RtError
from repro.rt.hostclock import HostClock
from repro.rt.node import LiveNode
from repro.rt.recorder import LiveRecorder, build_execution, merge_recorders
from repro.rt.transport import DELAY_SEED_MIX, Transport
from repro.sim.clock import HardwareClock
from repro.sweep.families import (
    algorithm_from_spec,
    delay_policy_from_spec,
    rates_from_spec,
    topology_from_spec,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rt.run import LiveRunConfig
    from repro.sim.execution import Execution

__all__ = [
    "UdpTransport",
    "run_udp",
    "encode_frame",
    "decode_frame",
    "collect_messages",
    "raise_reported_errors",
    "warn_missed_epochs",
]

_LEN = struct.Struct(">I")

#: Wall seconds between the ready barrier and the shared start epoch.
#: Every child has already built its node and is blocked on its pipe by
#: the time the parent publishes the epoch, so this only needs to cover
#: pipe latency — not fork + construction lag, which the barrier absorbs
#: (the old fixed pre-barrier grace silently desynchronized starts once
#: n grew past a few dozen nodes).
_START_GRACE = 0.25

#: Base wall seconds the parent grants children to build themselves and
#: report ready; scaled up with node count by the callers.
_READY_GRACE = 10.0

#: Extra wall seconds the parent waits for children past the horizon.
_REPORT_GRACE = 10.0


def encode_frame(record: dict) -> bytes:
    """Length-prefixed JSON: the whole wire format in one line."""
    body = json.dumps(record, separators=(",", ":")).encode()
    return _LEN.pack(len(body)) + body


def decode_frame(datagram: bytes) -> dict | None:
    """Parse a frame; ``None`` for truncated or malformed datagrams."""
    if len(datagram) < _LEN.size:
        return None
    (length,) = _LEN.unpack_from(datagram)
    body = datagram[_LEN.size:]
    if len(body) != length:
        return None
    try:
        return json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None


def _untuple(value):
    """Restore JSON lists to tuples (payloads are tuple-shaped)."""
    if isinstance(value, list):
        return tuple(_untuple(v) for v in value)
    return value


class UdpTransport(Transport):
    """The node-process side: one socket in, N sockets out.

    Lives inside a child process and serves exactly one
    :class:`LiveNode`; the parent-side orchestration is
    :func:`run_udp`.
    """

    name = "udp"

    def __init__(
        self,
        *,
        node: int,
        sock: socket.socket,
        ports: Mapping[int, int],
        host: HostClock,
        recorder: LiveRecorder,
        delay_policy,
        seed: int,
        duration: float,
        tail_port: int | None = None,
    ):
        self._node = node
        self._sock = sock
        self._ports = dict(ports)
        self._host = host
        #: Parent-side tap port: when set, every sent frame is also
        #: mirrored there so a streaming tail can watch the run live
        #: (the parent is otherwise blind — frames go node to node).
        self._tail_port = tail_port
        # Per-sender delay stream: children share no RNG, so each mixes
        # its node id into the simulator's delay-seed recipe.
        self._init_messaging(
            recorder=recorder,
            delay_policy=delay_policy,
            delay_rng=random.Random((seed ^ DELAY_SEED_MIX) * 0x9E37 + node),
            seed=seed,
        )
        self._duration = duration
        self._now = 0.0
        # Pending (due_time, tiebreak, kind, data): held datagrams and timers.
        self._pending: list[tuple[float, int, str, tuple]] = []
        self._tiebreak = 0
        #: Malformed/truncated datagrams dropped at the wire.
        self.frames_dropped = 0

    # ------------------------------------------------------------------
    # Transport interface

    def now(self) -> float:
        return self._now

    def _message_seq(self, counter: int) -> int:
        # Node-unique seq: children never coordinate counters.
        return self._node * 1_000_000 + counter

    def transmit(self, sender: LiveNode, receiver: int, payload) -> None:
        message = self._next_message(sender, receiver, payload)
        if message is None:
            return
        frame = encode_frame(
            {
                "seq": message.seq,
                "src": message.sender,
                "dst": message.receiver,
                "payload": message.payload,
                "send": message.send_time,
                "delay": message.delay,
            }
        )
        self._sock.sendto(frame, ("127.0.0.1", self._ports[receiver]))
        if self._tail_port is not None:
            self._sock.sendto(frame, ("127.0.0.1", self._tail_port))

    def schedule_timer(self, node: LiveNode, fire_at: float, name: str) -> None:
        self._push(fire_at, "timer", (name,))

    def _push(self, due: float, kind: str, data: tuple) -> None:
        heapq.heappush(self._pending, (due, self._tiebreak, kind, data))
        self._tiebreak += 1

    # ------------------------------------------------------------------
    # the node event loop

    def run(self, nodes: Mapping[int, LiveNode], duration: float) -> None:
        (live,) = nodes.values()
        live.start()  # frozen now == 0.0: START + on_start at nominal time 0
        scale = self._host.time_scale
        while True:
            elapsed = self._host.elapsed()
            if elapsed >= duration:
                break
            due = self._pending[0][0] if self._pending else duration
            timeout = max(0.0, (min(due, duration) - elapsed) * scale)
            readable, _, _ = select.select([self._sock], [], [], timeout)
            if readable:
                self._drain_socket()
            self._dispatch_due(live)
        self._now = duration

    def _drain_socket(self) -> None:
        while True:
            try:
                datagram, _ = self._sock.recvfrom(65536)
            except BlockingIOError:
                return
            record = decode_frame(datagram)
            if record is None or record.get("dst") != self._node:
                self.frames_dropped += 1
                continue
            deliver_at = float(record["send"]) + float(record["delay"])
            self._push(
                deliver_at, "msg", (int(record["src"]), _untuple(record["payload"]))
            )

    def _dispatch_due(self, live: LiveNode) -> None:
        while self._pending:
            due = self._pending[0][0]
            elapsed = self._host.elapsed()
            if due > elapsed or elapsed >= self._duration:
                return
            _, _, kind, data = heapq.heappop(self._pending)
            # Freeze the callback's instant at measured time (>= due when
            # the OS woke us late), monotone and inside the run.
            self._now = min(max(self._now, elapsed), self._duration)
            if kind == "msg":
                sender, payload = data
                live.deliver(sender, payload)
            else:
                live.fire_timer(data[0])


# ----------------------------------------------------------------------
# parent-side orchestration (shared with the router backend)


def _drain_tap(sock: socket.socket, fn) -> None:
    """Feed every queued mirrored frame on the tap socket to ``fn``."""
    while True:
        try:
            datagram, _ = sock.recvfrom(65536)
        except BlockingIOError:
            return
        record = decode_frame(datagram)
        if record is not None:
            fn(record)


def collect_messages(
    conns: Mapping,
    children: Mapping,
    deadline: float,
    *,
    what: str,
    role: str = "node process",
    tap: tuple[socket.socket, "callable"] | None = None,
) -> dict:
    """Receive one message from every pipe, failing fast on dead peers.

    ``conns`` and ``children`` map the same keys to pipe connections and
    child processes.  Each child's liveness is watched alongside its
    pipe via :func:`multiprocessing.connection.wait`, so a process that
    dies without reporting raises a prompt, descriptive :class:`RtError`
    naming it (and its exit code) instead of blocking out the whole time
    budget.  EOF on a pipe — where ``poll()`` returns True but
    ``recv()`` raises ``EOFError`` — is translated the same way instead
    of escaping raw.

    ``tap`` is an optional ``(udp socket, fn)`` pair watched alongside
    the pipes (``multiprocessing.connection.wait`` accepts sockets on
    Unix): mirrored frames arriving on the socket are decoded and fed to
    ``fn(record)`` as they land, which is how a streaming tail observes
    a udp run whose real traffic never crosses the parent.
    """
    pending = dict(conns)
    out: dict = {}
    while pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            names = ", ".join(str(key) for key in sorted(pending))
            raise RtError(
                f"{role} {names} did not report a {what} within the "
                f"wall-clock budget"
            )
        watch = list(pending.values()) + [
            children[key].sentinel for key in pending if key in children
        ]
        if tap is not None:
            watch.append(tap[0])
        ready = _mp_wait(watch, timeout=remaining)
        if not ready:
            continue  # spurious wakeup; the loop re-checks the deadline
        if tap is not None and tap[0] in ready:
            _drain_tap(*tap)
        progressed = False
        for key in list(pending):
            conn = pending[key]
            if not conn.poll(0):
                continue
            try:
                out[key] = conn.recv()
            except EOFError:
                child = children.get(key)
                code = None if child is None else child.exitcode
                raise RtError(
                    f"{role} {key} closed its pipe without reporting a "
                    f"{what} (exit code {code})"
                ) from None
            del pending[key]
            progressed = True
        if progressed:
            continue
        # Only sentinels fired: someone died without writing a report.
        # (A child that reported and then exited was drained above; the
        # poll(0) guard covers the report-then-die race.)
        for key in list(pending):
            child = children.get(key)
            if (
                child is not None
                and not child.is_alive()
                and not pending[key].poll(0)
            ):
                raise RtError(
                    f"{role} {key} died with exit code {child.exitcode} "
                    f"before reporting a {what}"
                )
    return out


def raise_reported_errors(reports: Mapping, *, role: str = "node process") -> None:
    """Re-raise the first child-side exception shipped home over a pipe."""
    errors = {key: r["error"] for key, r in reports.items() if "error" in r}
    if errors:
        key, trace = sorted(errors.items())[0]
        raise RtError(f"{role} {key} failed:\n{trace}")


def warn_missed_epochs(reports: Mapping, *, role: str = "node process") -> None:
    """Warn when any peer started after the shared epoch had passed.

    With the ready barrier in place this should not happen; if it does
    (extreme scheduler pressure), skew measurements are offset by the
    late start and the run must not pass silently.
    """
    missed = sorted(key for key, r in reports.items() if r.get("missed_epoch"))
    if missed:
        names = ", ".join(str(key) for key in missed)
        warnings.warn(
            f"{role} {names} missed the shared start epoch (lag exceeded "
            f"the {_START_GRACE}s post-barrier grace); clocks started "
            f"late and skew measurements may be offset",
            RuntimeWarning,
            stacklevel=3,
        )


def _node_main(node: int, cfg: dict, ports: dict, sock: socket.socket, conn) -> None:
    """Entry point of one node process (fork-inherited socket)."""
    try:
        sock.setblocking(False)
        topology = topology_from_spec(cfg["topology"])
        process = algorithm_from_spec(cfg["algorithm"]).processes(topology)[node]
        schedule = rates_from_spec(
            cfg["rates"], topology, rho=cfg["rho"], seed=cfg["seed"],
            horizon=cfg["duration"],
        )[node]
        # Everything expensive is built; tell the parent we are ready
        # and block until it publishes the shared epoch.
        conn.send({"node": node, "ready": True})
        epoch = conn.recv()["epoch"]
        host = HostClock.from_schedule(
            schedule, rho=cfg["rho"], time_scale=cfg["time_scale"], origin=epoch
        )
        recorder = LiveRecorder(record_trace=cfg["record_trace"])
        transport = UdpTransport(
            node=node,
            sock=sock,
            ports=ports,
            host=host,
            recorder=recorder,
            delay_policy=delay_policy_from_spec(cfg["delays"]),
            seed=cfg["seed"],
            duration=cfg["duration"],
            tail_port=cfg.get("tail_port"),
        )
        live = LiveNode(
            node,
            process,
            topology=topology,
            schedule=schedule,
            rho=cfg["rho"],
            seed=cfg["seed"],
            transport=transport,
            recorder=recorder,
        )
        # Sleep off the start grace so every node begins at the epoch.
        lag = epoch - time.monotonic()
        if lag > 0:
            time.sleep(lag)
        transport.run({node: live}, cfg["duration"])
        conn.send(
            {
                "node": node,
                "recorder": recorder,
                "logical": live.logical,
                "frames_dropped": transport.frames_dropped,
                "missed_epoch": lag <= 0,
            }
        )
    except Exception:  # pragma: no cover - surfaced as RtError in the parent
        conn.send({"node": node, "error": traceback.format_exc()})
    finally:
        conn.close()
        sock.close()


def run_udp(config: "LiveRunConfig", *, tail=None) -> "Execution":
    """Run one live scenario with one OS process per node; see module doc."""
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RtError(
            "UdpTransport needs the 'fork' start method (sockets are "
            "inherited); use --transport asyncio on this platform"
        )
    if multiprocessing.current_process().daemon:
        raise RtError(
            "UdpTransport spawns node processes, which daemonic pool "
            "workers may not do; run udp cells at workers=1"
        )
    ctx = multiprocessing.get_context("fork")
    topology = topology_from_spec(config.topology)
    schedules = rates_from_spec(
        config.rates, topology, rho=config.rho, seed=config.seed,
        horizon=config.duration,
    )
    cfg = {
        "topology": config.topology,
        "algorithm": config.algorithm,
        "rates": config.rates,
        "delays": config.delays,
        "duration": config.duration,
        "rho": config.rho,
        "seed": config.seed,
        "time_scale": config.time_scale,
        "record_trace": config.record_trace,
    }

    sockets: dict[int, socket.socket] = {}
    ports: dict[int, int] = {}
    tap_sock: socket.socket | None = None
    tap = None
    try:
        for node in topology.nodes:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind(("127.0.0.1", 0))
            sockets[node] = sock
            ports[node] = sock.getsockname()[1]
        if tail is not None:
            # A parent-side tap socket children mirror their frames to;
            # its sim-time axis is each frame's own send stamp.
            tap_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            tap_sock.bind(("127.0.0.1", 0))
            tap_sock.setblocking(False)
            cfg["tail_port"] = tap_sock.getsockname()[1]
            tap = (
                tap_sock,
                lambda record: tail.frame(
                    record, float(record.get("send", 0.0))
                ),
            )

        pipes = {node: ctx.Pipe() for node in topology.nodes}
        children = {
            node: ctx.Process(
                target=_node_main,
                args=(node, cfg, ports, sockets[node], pipes[node][1]),
                daemon=True,
            )
            for node in topology.nodes
        }
        for child in children.values():
            child.start()
        parent_conns = {node: pipes[node][0] for node in topology.nodes}
        for node in topology.nodes:
            # Close the parent's copy of the child end: a dead child now
            # surfaces as EOF on the parent's pipe instead of a hang.
            pipes[node][1].close()
        # Ready barrier: every child finishes building its node *before*
        # the epoch is published, so the start grace no longer races
        # fork + construction lag (which grows with n).
        readies = collect_messages(
            parent_conns,
            children,
            time.monotonic() + _READY_GRACE + 0.05 * topology.n,
            what="ready signal",
        )
        raise_reported_errors(readies)
        epoch = time.monotonic() + _START_GRACE
        for node in topology.nodes:
            try:
                parent_conns[node].send({"epoch": epoch})
            except BrokenPipeError:  # pragma: no cover - death race
                pass  # surfaced as a prompt RtError by the collection below
        budget = _START_GRACE + config.duration * config.time_scale + _REPORT_GRACE
        reports = collect_messages(
            parent_conns, children, time.monotonic() + budget,
            what="run report", tap=tap,
        )
        for child in children.values():
            child.join(timeout=5.0)
    finally:
        if tap_sock is not None:
            tap_sock.close()
        for sock in sockets.values():
            sock.close()
        for child in list(locals().get("children", {}).values()):
            if child.is_alive():  # pragma: no cover - crash cleanup
                child.terminate()

    raise_reported_errors(reports)
    warn_missed_epochs(reports)
    recorder = merge_recorders([reports[n]["recorder"] for n in topology.nodes])
    if tail is not None:
        tail.stats(
            config.duration,
            frames_dropped=sum(
                r.get("frames_dropped", 0) for r in reports.values()
            ),
        )
        tail.close()
    return build_execution(
        topology=topology,
        duration=config.duration,
        rho=config.rho,
        hardware={n: HardwareClock(schedules[n], config.rho) for n in topology.nodes},
        logical={n: reports[n]["logical"] for n in topology.nodes},
        recorder=recorder,
        source="live-udp",
        live_stats={
            "frames_dropped": sum(
                r.get("frames_dropped", 0) for r in reports.values()
            ),
            "processes": len(children),
        },
    )
