"""In-process wall-clock transport: real asyncio tasks, injected delays.

Every node lives in one process on one asyncio event loop, but time is
*real*: message deliveries and hardware timers are ``loop.call_later``
callbacks, and "now" is measured from the loop's monotonic clock through
a rate-1 :class:`~repro.rt.hostclock.HostClock` (which also supplies the
never-backwards guarantee).  ``time_scale`` maps simulation units to
wall seconds, so a 60-unit experiment can run in 3 s of wall time
(``time_scale=0.05``) or in real time (``time_scale=1``).

What is — deliberately — no longer deterministic: the OS schedules the
loop, so callback order between near-simultaneous events varies run to
run, and measured event times carry real jitter.  What still holds, and
what the reconstructed :class:`~repro.sim.execution.Execution` verifies:
injected delays stay inside the ``[0, d_ij]`` model band, hardware
clocks follow their assigned drift schedules exactly, and logical clocks
never jump backwards.  E14 quantifies the skew gap this scheduling noise
introduces relative to the simulator.
"""

from __future__ import annotations

import asyncio
from typing import Mapping, Optional

import random

from repro.errors import RtError
from repro.rt.hostclock import HostClock
from repro.rt.node import LiveNode
from repro.rt.recorder import LiveRecorder
from repro.rt.transport import DELAY_SEED_MIX, Transport
from repro.sim.messages import DelayPolicy, Message

__all__ = ["InProcAsyncioTransport"]


class InProcAsyncioTransport(Transport):
    """Wall-clock asyncio backend: one loop, every node, real sleeping."""

    name = "asyncio"

    def __init__(
        self,
        *,
        recorder: LiveRecorder,
        delay_policy: Optional[DelayPolicy] = None,
        seed: int = 0,
        time_scale: float = 0.1,
    ):
        if time_scale <= 0:
            raise RtError(f"time_scale must be positive, got {time_scale}")
        self._init_messaging(
            recorder=recorder,
            delay_policy=delay_policy,
            delay_rng=random.Random(seed ^ DELAY_SEED_MIX),
            seed=seed,
        )
        self.time_scale = time_scale
        self._now = 0.0
        self._duration = 0.0
        self._finished = False
        self._host: Optional[HostClock] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # Transport interface

    def now(self) -> float:
        """The instant frozen at the current callback's dispatch."""
        return self._now

    def _touch_now(self) -> float:
        """Sample wall time into the frozen instant (clamped to the run)."""
        assert self._host is not None
        self._now = min(self._host.elapsed(), self._duration)
        return self._now

    def transmit(self, sender: LiveNode, receiver: int, payload) -> None:
        message = self._next_message(sender, receiver, payload)
        if message is not None:
            self._call_at(message.receive_time, self._deliver, receiver, message)

    def schedule_timer(self, node: LiveNode, fire_at: float, name: str) -> None:
        self._call_at(fire_at, self._fire_timer, node.node, name)

    def _call_at(self, sim_time: float, callback, *args) -> None:
        assert self._loop is not None and self._host is not None
        delay_wall = max(0.0, (sim_time - self._host.elapsed()) * self.time_scale)
        self._loop.call_later(delay_wall, callback, *args)

    # ------------------------------------------------------------------
    # callback dispatch (runs inside the loop)

    def _deliver(self, receiver: int, message: Message) -> None:
        if self._touch_now() >= self._duration:
            return  # landed after the run's horizon
        self._nodes[receiver].deliver(message.sender, message.payload)

    def _fire_timer(self, node: int, name: str) -> None:
        if self._touch_now() >= self._duration:
            return
        self._nodes[node].fire_timer(name)

    # ------------------------------------------------------------------

    def run(self, nodes: Mapping[int, LiveNode], duration: float) -> None:
        if self._finished:
            raise RtError("an InProcAsyncioTransport instance runs exactly once")
        self._finished = True
        self._duration = duration
        self._nodes = dict(nodes)
        asyncio.run(self._main())
        self._now = duration

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._host = HostClock(
            rho=0.0, rate=1.0, time_source=self._loop.time,
            time_scale=self.time_scale,
        )
        # All nodes start together at (nominal) real time 0.
        for node in sorted(self._nodes):
            self._nodes[node].record_start()
        for node in sorted(self._nodes):
            self._nodes[node].begin()
        self._touch_now()
        remaining = (self._duration - self._host.elapsed()) * self.time_scale
        await asyncio.sleep(max(0.0, remaining))
        # Returning ends the loop; call_later callbacks scheduled past
        # the horizon are discarded with it.
