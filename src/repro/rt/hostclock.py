"""A drifting hardware clock realized over a *real* time source.

The simulator evaluates Assumption 1 analytically: a hardware clock is
the exact integral of a piecewise-constant rate schedule over virtual
time.  :class:`HostClock` realizes the same model over
``time.monotonic()`` (or any injected source), the way a live sync
client does (cf. the ``LocalClock`` of Cristian-style clients:
``L_base + elapsed * rate`` with the base re-bound at every rate
change).  Three guarantees matter and are property-tested:

* **monotone** — readings never go backwards, even if the underlying
  source jitters (the never-backwards clamp on :meth:`elapsed`);
* **Assumption 1** — every rate lies in ``[1 - rho, 1 + rho]``, so any
  two readings satisfy the drift envelope
  ``(1 - rho) dt <= dH <= (1 + rho) dt``;
* **lossless rebinding** — :meth:`set_rate` closes the current segment
  at the reading it has reached; no elapsed time is dropped or double
  counted at the boundary (the live analogue of the
  ``LogicalClock.time_at`` bug class fixed in PR 2).

Time units: ``elapsed`` and all derived quantities are in *simulation
time units*; ``time_scale`` says how many wall seconds one unit takes,
so slowed-down (``time_scale > 1``) and accelerated (``< 1``) live runs
share one clock implementation.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Callable, Optional

from repro._constants import DEFAULT_RHO, TIME_EPS
from repro.errors import DriftBoundError, RtError
from repro.sim.rates import PiecewiseConstantRate

__all__ = ["HostClock"]


class HostClock:
    """Assumption 1 over a wall clock: piecewise-linear in real elapsed time.

    Parameters
    ----------
    rho:
        Drift bound; :meth:`set_rate` rejects rates outside
        ``[1 - rho, 1 + rho]``.
    rate:
        Initial rate.
    time_source:
        A monotonic-ish float clock in seconds (default
        ``time.monotonic``).  Non-monotonic sources are tolerated — see
        :meth:`elapsed`.
    time_scale:
        Wall seconds per simulation time unit.
    origin:
        Source reading that counts as elapsed 0; defaults to the source's
        value at construction.  Transports pass a shared origin so all
        node clocks start together.
    """

    def __init__(
        self,
        *,
        rho: float = DEFAULT_RHO,
        rate: float = 1.0,
        time_source: Callable[[], float] = time.monotonic,
        time_scale: float = 1.0,
        origin: Optional[float] = None,
    ):
        if not 0.0 <= rho < 1.0:
            raise DriftBoundError(f"rho must lie in [0, 1), got {rho}")
        if time_scale <= 0.0:
            raise RtError(f"time_scale must be positive, got {time_scale}")
        self.rho = rho
        self.time_scale = time_scale
        self._source = time_source
        self._origin = time_source() if origin is None else origin
        self._max_elapsed = 0.0
        # Segment k covers elapsed [starts[k], starts[k+1]) at rates[k];
        # values[k] is the reading at starts[k] (exact running integral).
        self._starts: list[float] = [0.0]
        self._rates: list[float] = []
        self._values: list[float] = [0.0]
        self._check_rate(rate)
        self._rates.append(rate)

    # ------------------------------------------------------------------
    # construction helpers

    @classmethod
    def from_schedule(
        cls,
        schedule: PiecewiseConstantRate,
        *,
        rho: float = DEFAULT_RHO,
        time_source: Callable[[], float] = time.monotonic,
        time_scale: float = 1.0,
        origin: Optional[float] = None,
    ) -> "HostClock":
        """Pre-program a whole simulator rate schedule onto a host clock.

        The returned clock realizes exactly the drift trajectory the
        simulator would assign the node, so an execution reconstructed
        from the live run uses the *same* ``HardwareClock`` — that is
        what keeps sim and live measurements directly comparable.
        """
        clock = cls(
            rho=rho,
            rate=schedule.rates[0],
            time_source=time_source,
            time_scale=time_scale,
            origin=origin,
        )
        for start, rate in zip(schedule.starts[1:], schedule.rates[1:]):
            clock._check_rate(rate)
            width = start - clock._starts[-1]
            clock._values.append(clock._values[-1] + width * clock._rates[-1])
            clock._starts.append(start)
            clock._rates.append(rate)
        return clock

    def _check_rate(self, rate: float) -> None:
        lo, hi = 1.0 - self.rho, 1.0 + self.rho
        if not lo - TIME_EPS <= rate <= hi + TIME_EPS:
            raise DriftBoundError(
                f"host clock rate {rate} outside [{lo}, {hi}] (Assumption 1)"
            )

    # ------------------------------------------------------------------
    # time queries

    def elapsed(self) -> float:
        """Simulation-time units since the origin, never decreasing.

        The raw source can jitter backwards (NTP slews on CLOCK_REALTIME
        sources, VM suspend artifacts); the clamp guarantees every
        caller sees monotone non-decreasing elapsed time, which makes
        :meth:`read` monotone because rates are positive.
        """
        raw = (self._source() - self._origin) / self.time_scale
        if raw > self._max_elapsed:
            self._max_elapsed = raw
        return self._max_elapsed

    def read(self) -> float:
        """The current hardware reading ``H`` (monotone non-decreasing)."""
        return self.value_at_elapsed(self.elapsed())

    def rate_now(self) -> float:
        """The rate in effect at the current elapsed time."""
        return self._rates[self._index(self.elapsed())]

    def _index(self, elapsed: float) -> int:
        k = bisect_right(self._starts, elapsed) - 1
        return max(k, 0)

    def value_at_elapsed(self, elapsed: float) -> float:
        """The reading the clock shows ``elapsed`` units after its origin."""
        k = self._index(elapsed)
        return self._values[k] + (elapsed - self._starts[k]) * self._rates[k]

    def elapsed_at_value(self, value: float) -> float:
        """Invert :meth:`value_at_elapsed` (rates positive, so well defined).

        Used to turn hardware-time timer deltas into wall deadlines:
        ``on_timer`` must fire when ``read()`` reaches ``value``.
        """
        k = bisect_right(self._values, value) - 1
        k = max(k, 0)
        return self._starts[k] + (value - self._values[k]) / self._rates[k]

    def wall_deadline(self, value: float) -> float:
        """The raw ``time_source`` reading at which ``read()`` hits ``value``."""
        return self._origin + self.elapsed_at_value(value) * self.time_scale

    # ------------------------------------------------------------------
    # rate control

    def set_rate(self, rate: float) -> None:
        """Change the drift rate from the current instant on.

        The closing segment is sealed at exactly the reading it has
        reached, so the reading immediately before and after the rebind
        is identical: no elapsed time is lost at the boundary.
        """
        self._check_rate(rate)
        now = self.elapsed()
        if now <= self._starts[-1]:
            # Same-instant rebind: the later rate wins the open segment.
            # (Strictly same-instant only — replacing the rate after even
            # a sliver of elapsed time would retroactively rescale that
            # sliver and could move an already-observed reading backwards.)
            self._rates[-1] = rate
            return
        self._values.append(self.value_at_elapsed(now))
        self._starts.append(now)
        self._rates.append(rate)

    def segments(self) -> list[tuple[float, float, float]]:
        """Recorded ``(elapsed_start, reading_at_start, rate)`` pieces."""
        return list(zip(self._starts, self._values, self._rates))

    def as_schedule(self) -> PiecewiseConstantRate:
        """The rate history as a simulator schedule (for reconstruction)."""
        return PiecewiseConstantRate(
            starts=tuple(self._starts), rates=tuple(self._rates)
        )
