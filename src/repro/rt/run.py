"""``run_live``: one live scenario in, one measurable ``Execution`` out.

A :class:`LiveRunConfig` names its ingredients with the same compact
spec strings the sweep engine uses (``"line:8"``, ``"gradient"``,
``"wandering"``, ``"uniform:0.25,0.75"``), so a scenario can move
between the simulator, the sweep grid, and the live runtime without
translation.  :func:`run_live` builds the pieces, dispatches to the
requested transport backend, and returns an
:class:`~repro.sim.execution.Execution` that every function in
:mod:`repro.analysis` accepts verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._constants import DEFAULT_RHO
from repro.errors import RtError
from repro.rt.asyncio_transport import InProcAsyncioTransport
from repro.rt.node import LiveNode
from repro.rt.recorder import LiveRecorder, build_execution
from repro.rt.transport import TRANSPORT_NAMES, Transport
from repro.rt.virtual import VirtualTimeTransport
from repro.sim.execution import Execution
from repro.sweep.families import (
    algorithm_from_spec,
    delay_policy_from_spec,
    rates_from_spec,
    topology_from_spec,
)

__all__ = ["LiveRunConfig", "run_live", "with_transport"]


@dataclass(frozen=True)
class LiveRunConfig:
    """One live scenario, named entirely by picklable spec strings.

    ``time_scale`` (wall seconds per simulation unit) only matters to
    the wall-clock backends; the virtual backend ignores it.

    Live churn — ``faults`` (a :mod:`repro.sim.faults` family spec such
    as ``"crash-recover:0.25,5"``) and ``mobility`` (a dynamic-topology
    family such as ``"blinking:0.2,2"``) — is implemented only by the
    ``router`` backend, whose central switch and multiplexed workers can
    drop/reroute frames and down/recover nodes mid-run; the other
    backends accept only the fault-free defaults.  ``workers`` sizes the
    router's process pool (``0`` = auto, about one worker per 16 nodes).
    """

    topology: str = "line:8"
    algorithm: str = "gradient"
    rates: str = "drifted"
    delays: str = "uniform"
    duration: float = 20.0
    rho: float = DEFAULT_RHO
    seed: int = 0
    transport: str = "virtual"
    time_scale: float = 0.1
    record_trace: bool = True
    faults: str = "none"
    mobility: str = "static"
    workers: int = 0

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORT_NAMES:
            raise RtError(
                f"unknown transport {self.transport!r}; "
                f"backends: {list(TRANSPORT_NAMES)}"
            )
        if self.duration <= 0:
            raise RtError(f"duration must be positive, got {self.duration}")
        if self.time_scale <= 0:
            raise RtError(f"time_scale must be positive, got {self.time_scale}")
        if self.workers < 0:
            raise RtError(f"workers must be >= 0, got {self.workers}")
        if self.transport != "router":
            if self.faults != "none":
                raise RtError(
                    f"transport {self.transport!r} cannot inject faults "
                    f"(faults={self.faults!r}); live churn needs "
                    f"transport='router'"
                )
            if self.mobility != "static":
                raise RtError(
                    f"transport {self.transport!r} cannot rewire mid-run "
                    f"(mobility={self.mobility!r}); live churn needs "
                    f"transport='router'"
                )


def run_live(config: LiveRunConfig, *, tail=None) -> Execution:
    """Execute one live scenario on its configured transport backend.

    ``tail`` is an optional :class:`~repro.viz.tail.StreamingTail` (or
    anything with its ``event`` / ``frame`` / ``stats`` / ``close``
    surface): the in-process backends feed it every trace event through
    the recorder tap, the router taps frames at the central switch, and
    the udp backend mirrors sent frames to a parent-side tap socket —
    so rolling panels render *while the run executes*.
    """
    if config.transport == "udp":
        from repro.rt.udp import run_udp

        return run_udp(config, tail=tail)
    if config.transport == "router":
        from repro.rt.router import run_router

        return run_router(config, tail=tail)

    topology = topology_from_spec(config.topology)
    algorithm = algorithm_from_spec(config.algorithm)
    schedules = rates_from_spec(
        config.rates, topology, rho=config.rho, seed=config.seed,
        horizon=config.duration,
    )
    recorder = LiveRecorder(
        record_trace=config.record_trace,
        tap=tail.event if tail is not None else None,
    )
    delay_policy = delay_policy_from_spec(config.delays)
    transport: Transport
    if config.transport == "virtual":
        transport = VirtualTimeTransport(
            recorder=recorder, delay_policy=delay_policy, seed=config.seed
        )
    else:
        transport = InProcAsyncioTransport(
            recorder=recorder,
            delay_policy=delay_policy,
            seed=config.seed,
            time_scale=config.time_scale,
        )
    processes = algorithm.processes(topology)
    nodes = {
        node: LiveNode(
            node,
            processes[node],
            topology=topology,
            schedule=schedules[node],
            rho=config.rho,
            seed=config.seed,
            transport=transport,
            recorder=recorder,
        )
        for node in topology.nodes
    }
    transport.run(nodes, config.duration)
    if tail is not None:
        tail.close()
    return build_execution(
        topology=topology,
        duration=config.duration,
        rho=config.rho,
        hardware={n: nodes[n].hardware for n in topology.nodes},
        logical={n: nodes[n].logical for n in topology.nodes},
        recorder=recorder,
        source=f"live-{config.transport}",
        # Every live backend reports transport counters; the in-process
        # ones have no wire, so their drop count is structurally zero
        # (live_stats is a dict on *all* live runs — callers never
        # need a None guard to tell live from simulated).
        live_stats={
            "frames_dropped": 0,
            "events": len(recorder.events),
        },
    )


def with_transport(config: LiveRunConfig, transport: str) -> LiveRunConfig:
    """The same scenario on a different backend (E14's comparison axis)."""
    return replace(config, transport=transport)
