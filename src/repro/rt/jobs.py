"""The ``live-run`` sweep job kind: live transports as a scenario axis.

Registering a job kind makes the runtime a first-class citizen of the
sweep engine: a :class:`~repro.sweep.spec.SweepSpec` whose
``transports`` axis names live backends expands into ``live-run`` cells
next to the ``benign-run`` simulator cells, and the aggregate tables
line them up by the shared metric names.  The metrics dict mirrors
``benign-run``'s exactly (plus ``transport``, ``frames_dropped``, and
``wall_elapsed``), so every downstream consumer — summary tables, JSON
artifacts, E14 — treats sim and live rows uniformly.  Router cells may
additionally carry non-default ``faults`` / ``mobility`` params: live
churn, counted in ``fault_events`` and ``rewirings`` like a simulator
cell.

Caveat for grids: ``udp`` and ``router`` cells spawn OS processes,
which daemonic pool workers may not do — run those cells at
``workers=1`` (the sweep runner's serial path); the in-process backends
parallelize freely.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.analysis.field import SkewField
from repro.rt.run import LiveRunConfig, run_live
from repro.sweep.families import topology_from_spec
from repro.sweep.jobs import job_kind

__all__ = ["live_run"]


@job_kind("live-run")
def live_run(params: Mapping[str, Any]) -> dict:
    """One live scenario cell -> the ``benign-run`` metric schema.

    Params: ``topology``, ``algorithm``, ``rates``, ``delays``,
    ``transport``, ``duration``, ``rho``, ``seed``, optional ``step``,
    ``time_scale``, ``settle_threshold``, and — router cells only —
    ``faults`` and ``mobility``.
    """
    topology = topology_from_spec(params["topology"])
    step = float(params.get("step", 1.0))
    config = LiveRunConfig(
        topology=str(params["topology"]),
        algorithm=str(params["algorithm"]),
        rates=str(params["rates"]),
        delays=str(params["delays"]),
        duration=float(params["duration"]),
        rho=float(params["rho"]),
        seed=int(params["seed"]),
        transport=str(params["transport"]),
        time_scale=float(params.get("time_scale", 0.1)),
        faults=str(params.get("faults", "none")),
        mobility=str(params.get("mobility", "static")),
    )
    wall_start = time.perf_counter()
    execution = run_live(config)
    wall_elapsed = time.perf_counter() - wall_start
    # Same batched measurement path as ``benign-run``: one SkewField,
    # every metric answered from its trajectory matrix.
    field = SkewField(execution, step=step)
    skew = field.summary()
    threshold = float(
        params.get("settle_threshold", 2.0 * topology.diameter * config.rho)
    )
    settled = field.settling_time(threshold)
    tail = field.steady_state()
    stats = execution.fault_stats or {}
    live = execution.live_stats or {}
    # Same convention as ``benign-run``: count *delivered* messages, so
    # crash-suppressed deliveries don't inflate live rows.
    messages = (
        len(execution.messages)
        - stats.get("lost_receiver_down", 0)
        - stats.get("lost_in_flight", 0)
    )
    return {
        "topology": config.topology,
        "algorithm": config.algorithm,
        "rates": config.rates,
        "delays": config.delays,
        "faults": config.faults,
        "mobility": config.mobility,
        "transport": config.transport,
        "seed": config.seed,
        "n_nodes": int(topology.n),
        "diameter": float(topology.diameter),
        "max_skew": float(skew.max_skew),
        "max_adjacent_skew": float(skew.max_adjacent_skew),
        "final_skew": float(skew.final_skew),
        "final_adjacent_skew": float(skew.final_adjacent_skew),
        "mean_abs_skew": float(skew.mean_abs_skew),
        "settling_time": None if settled is None else float(settled),
        "settle_threshold": threshold,
        "steady_mean_max_skew": float(tail.mean_max_skew),
        "steady_worst_adjacent_skew": float(tail.worst_adjacent_skew),
        "messages": messages,
        "fault_events": stats,
        "rewirings": (
            0
            if execution.topology_timeline is None
            else len(execution.topology_timeline) - 1
        ),
        # Wire-level drop count (malformed/misdirected frames), distinct
        # from the injected losses inside ``fault_events``.
        "frames_dropped": int(live.get("frames_dropped", 0)),
        # Transport counters for sweep reports: router cells count frames
        # crossing the switch and callback events, and carry their worker
        # pool size; the other backends report the keys they have.
        "frames_routed": int(live.get("frames_routed", 0)),
        "events": int(live.get("events", 0)),
        "workers": int(live.get("workers", live.get("processes", 0))),
        "wall_elapsed": round(wall_elapsed, 4),
    }
