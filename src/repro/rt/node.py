"""The adapter that hosts an unchanged simulator ``Process`` on a transport.

:class:`~repro.sim.node.NodeAPI` — the only interface algorithm code
ever touches — talks to five members of its host: ``now``, ``topology``,
``record``, ``send_message``, and ``set_timer``.  Inside the simulator
that host is the :class:`~repro.sim.simulator.Simulator`; here it is a
:class:`LiveNode`, which implements the same five members on top of a
:class:`~repro.rt.transport.Transport`.  Algorithm code therefore needs
**zero changes** to run live: the very same ``Process`` subclass objects
execute in both worlds, which is what makes sim-vs-live comparisons
(experiment E14) an apples-to-apples measurement.

Clocks: the node carries the exact :class:`HardwareClock` /
:class:`LogicalClock` pair the simulator would give it, evaluated at the
transport's notion of "now" (virtual time, or measured wall time mapped
to simulation units).  After the run those clock objects go straight
into the reconstructed :class:`~repro.sim.execution.Execution`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import RtError
from repro.sim.clock import HardwareClock, LogicalClock
from repro.sim.node import NodeAPI, Process
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.trace import (
    CRASH,
    RECEIVE,
    RECOVER,
    SEND,
    START,
    TIMER,
    TraceEvent,
)
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rt.recorder import LiveRecorder
    from repro.rt.transport import Transport

__all__ = ["LiveNode"]

#: Per-node RNG seed mix, identical to the simulator's so live and
#: simulated runs of a randomized algorithm draw the same streams.
NODE_SEED_MIX = 1_000_003


class LiveNode:
    """One node of a live run: process + clocks + the NodeAPI host shim."""

    def __init__(
        self,
        node: int,
        process: Process,
        *,
        topology: Topology,
        schedule: PiecewiseConstantRate,
        rho: float,
        seed: int,
        transport: "Transport",
        recorder: "LiveRecorder",
    ):
        self.node = node
        self.process = process
        self.topology = topology
        self.hardware = HardwareClock(schedule, rho)
        self.logical = LogicalClock(self.hardware)
        self._transport = transport
        self._recorder = recorder
        self.api = NodeAPI(
            self, node, self.logical, random.Random((seed * NODE_SEED_MIX) ^ node)
        )

    # ------------------------------------------------------------------
    # the five members NodeAPI expects of its host ("the simulator")

    @property
    def now(self) -> float:
        """Current simulation-time instant, as the transport defines it.

        Transports freeze this for the duration of one callback, so a
        callback observes a single consistent instant — the simulator's
        semantics of instantaneous computation.
        """
        return self._transport.now()

    def record(self, event: TraceEvent) -> None:
        self._recorder.record(event)

    def send_message(self, sender: int, receiver: int, payload) -> None:
        if sender == receiver:
            raise RtError(f"node {sender} tried to message itself")
        self.record(self._event(SEND, (receiver, payload)))
        self._transport.transmit(self, receiver, payload)

    def set_timer(self, node: int, delta_hardware: float, name: str) -> None:
        if delta_hardware <= 0:
            raise RtError(f"timer delta must be positive, got {delta_hardware}")
        hw = self.hardware
        fire_at = hw.time_at(hw.value_at(self.now) + delta_hardware)
        self._transport.schedule_timer(self, fire_at, name)

    # ------------------------------------------------------------------
    # callback entry points, invoked by transports

    def record_start(self) -> None:
        """Record the START event (real time 0; all nodes start together)."""
        self.record(
            TraceEvent(
                real_time=0.0,
                node=self.node,
                hardware=self.hardware.value_at(0.0),
                logical=self.logical.read(0.0),
                kind=START,
                detail=None,
            )
        )

    def begin(self) -> None:
        """Run the process's ``on_start`` callback."""
        self.process.on_start(self.api)

    def start(self) -> None:
        """Record START and run ``on_start`` in one step.

        Wall-clock transports use this per-node form; the virtual
        transport records every START before any ``on_start`` runs, the
        exact order the simulator uses, so it calls the two halves
        itself.
        """
        self.record_start()
        self.begin()

    def deliver(self, sender: int, payload) -> None:
        """Record the RECEIVE event and run ``on_message``."""
        self.record(self._event(RECEIVE, (sender, payload)))
        self.process.on_message(self.api, sender, payload)

    def fire_timer(self, name: str) -> None:
        """Record the TIMER event and run ``on_timer``."""
        self.record(self._event(TIMER, name))
        self.process.on_timer(self.api, name)

    def mark_crash(self) -> None:
        """Record the CRASH event (the simulator's crash-window semantics).

        While down the node executes nothing — the transport stops
        dispatching its deliveries and timers; the clocks keep advancing
        (hardware is physical), matching the simulator's contract.
        """
        self.record(self._event(CRASH, None))

    def recover(self) -> None:
        """Record the RECOVER event and run ``on_recover``."""
        self.record(self._event(RECOVER, None))
        self.process.on_recover(self.api)

    def _event(self, kind: str, detail) -> TraceEvent:
        t = self.now
        return TraceEvent(
            real_time=t,
            node=self.node,
            hardware=self.hardware.value_at(t),
            logical=self.logical.read(t),
            kind=kind,
            detail=detail,
        )
