"""The transport abstraction the live runtime is built around.

A :class:`Transport` owns three responsibilities, which are exactly the
three powers the model grants the *environment* (as opposed to the
nodes): it defines the current real time, it carries messages subject to
the ``[0, d_ij]`` delay model, and it fires hardware-time timers.  The
node side of the contract is :class:`~repro.rt.node.LiveNode`.

Four backends implement it:

* :class:`~repro.rt.virtual.VirtualTimeTransport` — a deterministic
  scheduler on virtual time (the simulator's event loop, re-hosted);
* :class:`~repro.rt.asyncio_transport.InProcAsyncioTransport` — real
  wall-clock asyncio tasks in one process, with injected delays;
* :mod:`repro.rt.udp` — one OS process per node over localhost UDP with
  a length-prefixed JSON wire format;
* :mod:`repro.rt.router` — many nodes multiplexed onto a few worker
  processes exchanging the same frames through one central router
  socket, which also applies live churn (crash windows, rewirings).

Delays are *injected* on every backend: a
:class:`~repro.sim.messages.DelayPolicy` draws each message's delay from
the model band, so live runs stay inside Assumption-land and the
reconstructed execution passes ``check_delay_bounds``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Mapping, Optional

from repro.sim.messages import (
    DelayPolicy,
    HalfDistanceDelay,
    Message,
    validate_delay,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rt.node import LiveNode
    from repro.rt.recorder import LiveRecorder

__all__ = ["Transport", "TRANSPORT_NAMES", "DELAY_SEED_MIX"]

#: The transport spec names accepted by the CLI, sweep axis, and E14.
TRANSPORT_NAMES = ("virtual", "asyncio", "udp", "router")

#: Delay-RNG seed mix, identical to the simulator's (``seed ^ 0x5EED``)
#: so the virtual backend draws the very same delay stream.
DELAY_SEED_MIX = 0x5EED


class Transport(ABC):
    """What the environment does for live nodes: time, messages, timers."""

    #: Spec-string name of the backend (one of :data:`TRANSPORT_NAMES`).
    name: str = "abstract"

    # ------------------------------------------------------------------
    # shared delay-injection machinery (one implementation, three users)

    def _init_messaging(
        self,
        *,
        recorder: "LiveRecorder",
        delay_policy: Optional[DelayPolicy],
        delay_rng: random.Random,
        seed: int,
    ) -> None:
        """Set up the delay-drawing state every backend shares."""
        self._recorder = recorder
        self.delay_policy: DelayPolicy = delay_policy or HalfDistanceDelay()
        self._delay_rng = delay_rng
        self._msg_counter = 0
        bind_run = getattr(self.delay_policy, "bind_run", None)
        if bind_run is not None:
            bind_run(seed)

    def _message_seq(self, counter: int) -> int:
        """The wire seq for the ``counter``-th send (udp salts per node)."""
        return counter

    def _next_message(
        self, sender: "LiveNode", receiver: int, payload
    ) -> Optional[Message]:
        """Draw one injected model-band delay and record the message.

        The single definition of the send protocol — counter increment,
        the ``float('inf')`` lost-message sentinel, delay validation —
        so the three backends cannot drift apart.  Returns ``None`` when
        the sentinel fires (the network lost the message).
        """
        now = self.now()
        distance = sender.topology.distance(sender.node, receiver)
        raw = self.delay_policy.delay(
            sender.node, receiver, now, distance, self._msg_counter, self._delay_rng
        )
        seq = self._message_seq(self._msg_counter)
        self._msg_counter += 1
        if raw == float("inf"):
            return None
        message = Message(
            seq=seq,
            sender=sender.node,
            receiver=receiver,
            payload=payload,
            send_time=now,
            delay=validate_delay(raw, distance),
        )
        self._recorder.add_message(message)
        return message

    @abstractmethod
    def now(self) -> float:
        """The current real time in simulation units.

        Frozen for the duration of one node callback, so algorithm code
        observes a single consistent instant per activation (the
        simulator's instantaneous-computation semantics).
        """

    @abstractmethod
    def transmit(self, sender: "LiveNode", receiver: int, payload) -> None:
        """Carry ``payload`` to ``receiver`` under an injected model delay."""

    @abstractmethod
    def schedule_timer(self, node: "LiveNode", fire_at: float, name: str) -> None:
        """Arrange ``on_timer(name)`` at simulation time ``fire_at``."""

    @abstractmethod
    def run(self, nodes: Mapping[int, "LiveNode"], duration: float) -> None:
        """Start every node and drive the run for ``duration`` sim units."""
