"""Virtual-time transport: a deterministic scheduler for live nodes.

This backend re-hosts the simulator's event loop — same
:class:`~repro.sim.events.EventQueue` with ``(time, insertion)``
ordering, same delay-RNG construction, same per-node RNG seeding — but
drives :class:`~repro.rt.node.LiveNode` adapters through the
:class:`~repro.rt.transport.Transport` interface instead of the
simulator's internals.  The payoff is a strong cross-validation
property, enforced by tests and reported in experiment E14:

    a virtual-time live run with the same (topology, algorithm, rates,
    delays, seed, duration) produces the **same execution** as the
    simulator — trace, clocks, and skew trajectories agree to float
    round-off (documented tolerance 1e-9 per sample).

That identity is what certifies the LiveNode adapter faithful: any
divergence on the wall-clock backends is then attributable to real
scheduling noise, not to adapter semantics.  It is also the fastest
backend (no sleeping), which makes it the scale vehicle: ``--transport
virtual`` runs arbitrarily long experiments in milliseconds of wall
time (measured by ``benchmarks/bench_rt.py``).
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from repro._constants import TIME_EPS
from repro.errors import RtError
from repro.rt.node import LiveNode
from repro.rt.recorder import LiveRecorder
from repro.rt.transport import DELAY_SEED_MIX, Transport
from repro.sim.events import DeliverMessage, EventQueue, FireTimer
from repro.sim.messages import DelayPolicy

__all__ = ["VirtualTimeTransport", "DELAY_SEED_MIX"]


class VirtualTimeTransport(Transport):
    """Deterministic asyncio-style scheduling on virtual time."""

    name = "virtual"

    def __init__(
        self,
        *,
        recorder: LiveRecorder,
        delay_policy: Optional[DelayPolicy] = None,
        seed: int = 0,
    ):
        self._init_messaging(
            recorder=recorder,
            delay_policy=delay_policy,
            delay_rng=random.Random(seed ^ DELAY_SEED_MIX),
            seed=seed,
        )
        self._queue = EventQueue()
        self._now = 0.0
        self._finished = False
        self._timer_generation = 0
        #: Events dispatched by :meth:`run` (the bench's throughput unit).
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Transport interface

    def now(self) -> float:
        return self._now

    def transmit(self, sender: LiveNode, receiver: int, payload) -> None:
        message = self._next_message(sender, receiver, payload)
        if message is not None:
            self._queue.push(message.receive_time, DeliverMessage(receiver, message))

    def schedule_timer(self, node: LiveNode, fire_at: float, name: str) -> None:
        self._timer_generation += 1
        self._queue.push(fire_at, FireTimer(node.node, name, self._timer_generation))

    def run(self, nodes: Mapping[int, LiveNode], duration: float) -> None:
        if self._finished:
            raise RtError("a VirtualTimeTransport instance runs exactly once")
        self._finished = True
        # START events first, then on_start callbacks, both in node
        # order — the simulator's exact opening sequence.
        for node in sorted(nodes):
            nodes[node].record_start()
        for node in sorted(nodes):
            nodes[node].begin()
        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > duration + TIME_EPS:
                break
            time, event = self._queue.pop()
            self._now = time
            self.events_processed += 1
            if isinstance(event, DeliverMessage):
                message = event.message
                nodes[event.node].deliver(message.sender, message.payload)
            elif isinstance(event, FireTimer):
                nodes[event.node].fire_timer(event.name)
            else:  # pragma: no cover - queue only ever holds these kinds
                raise RtError(f"unknown event {event!r}")
        self._now = duration
