"""Recording live runs as real :class:`~repro.sim.execution.Execution`s.

The whole point of the runtime is that a live run is *measurable with
the same code* as a simulated one: ``repro.analysis`` skew summaries,
gradient profiles, convergence metrics, and the model-compliance checks
all operate on an :class:`Execution`.  A :class:`LiveRecorder` therefore
collects exactly what the simulator collects — trace events and sent
messages — and :func:`build_execution` assembles them, together with the
per-node clocks, into an ``Execution`` whose ``source`` names the
transport it came from.

For the distributed UDP backend every node process records locally and
ships its recorder state home; :func:`merge_recorders` splices the
per-node views into one globally time-ordered record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.clock import HardwareClock, LogicalClock
from repro.sim.execution import Execution
from repro.sim.messages import Message
from repro.sim.trace import ExecutionTrace, TraceEvent
from repro.topology.base import Topology

__all__ = ["LiveRecorder", "merge_recorders", "build_execution"]


@dataclass
class LiveRecorder:
    """What one live run (or one node of a distributed run) observed.

    ``tap`` is an optional per-event callback (a streaming tail's
    ``event`` entry point): it sees every event as it happens, even when
    ``record_trace`` is off, and is never shipped across processes —
    the distributed backends construct their recorders child-side
    without one.
    """

    record_trace: bool = True
    events: list[TraceEvent] = field(default_factory=list)
    messages: list[Message] = field(default_factory=list)
    tap: Optional[Callable[[TraceEvent], None]] = field(
        default=None, compare=False
    )

    def record(self, event: TraceEvent) -> None:
        if self.record_trace:
            self.events.append(event)
        if self.tap is not None:
            self.tap(event)

    def add_message(self, message: Message) -> None:
        self.messages.append(message)


def merge_recorders(recorders: list[LiveRecorder]) -> LiveRecorder:
    """Splice per-node recorders into one global, time-ordered record.

    Each node's events are already in its local causal order; the merge
    sorts by real time with the sort kept *stable*, so same-instant
    events keep their per-node order — the property every trace query
    relies on.
    """
    merged = LiveRecorder(record_trace=any(r.record_trace for r in recorders))
    for recorder in recorders:
        merged.events.extend(recorder.events)
        merged.messages.extend(recorder.messages)
    merged.events.sort(key=lambda e: e.real_time)
    merged.messages.sort(key=lambda m: (m.send_time, m.seq))
    return merged


def build_execution(
    *,
    topology: Topology,
    duration: float,
    rho: float,
    hardware: dict[int, HardwareClock],
    logical: dict[int, LogicalClock],
    recorder: LiveRecorder,
    source: str,
    fault_stats: dict | None = None,
    topology_timeline: tuple | None = None,
    live_stats: dict | None = None,
) -> Execution:
    """Assemble the finished live run into a measurable ``Execution``.

    ``fault_stats`` and ``topology_timeline`` carry live churn (the
    router backend runs :class:`~repro.sim.faults.FaultPlan` windows and
    :class:`~repro.topology.dynamic.DynamicTopology` rewirings on real
    transports); ``live_stats`` carries transport-level counters such as
    the aggregate dropped-frame count.
    """
    return Execution(
        topology=topology,
        duration=duration,
        rho=rho,
        hardware=dict(hardware),
        logical=dict(logical),
        trace=ExecutionTrace(list(recorder.events)),
        messages=list(recorder.messages),
        fault_stats=fault_stats,
        source=source,
        topology_timeline=topology_timeline,
        live_stats=live_stats,
    )
