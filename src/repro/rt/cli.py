"""The ``live`` verb: run an algorithm on a real transport from the shell.

Reached as ``python -m repro.experiments live …`` or via the
``repro-live`` console script::

    repro-live --alg gradient --topology line --nodes 8 --transport virtual
    repro-live --alg averaging --topology ring --nodes 6 \\
        --transport udp --duration 10 --time-scale 0.2

Prints the same skew summary an experiment table would, so eyeballing a
live run against its simulator twin needs no extra tooling.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.reporting import Table
from repro.analysis.skew import summarize
from repro.errors import ReproError
from repro.rt.run import LiveRunConfig, run_live
from repro.rt.transport import TRANSPORT_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description=(
            "Run a clock synchronization algorithm live: unchanged "
            "simulator processes on a virtual-time scheduler, real "
            "asyncio tasks, one UDP process per node, or hundreds of "
            "nodes multiplexed onto router worker processes."
        ),
    )
    parser.add_argument(
        "--alg", "--algorithm", dest="algorithm", default="gradient",
        help="algorithm spec (e.g. gradient, max-based:0.5, averaging)",
    )
    parser.add_argument(
        "--topology", default="line",
        help="topology kind (line/ring/star/complete/...) or full spec "
             "like grid:3,4 (--nodes is ignored when a ':' is present)",
    )
    parser.add_argument(
        "--nodes", type=int, default=8, help="node count for 1-argument kinds"
    )
    parser.add_argument(
        "--transport", choices=list(TRANSPORT_NAMES), default="virtual"
    )
    parser.add_argument("--duration", type=float, default=20.0,
                        help="run length in simulation time units")
    parser.add_argument("--rho", type=float, default=0.2, help="drift bound")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rates", default="drifted", help="rate family")
    parser.add_argument("--delays", default="uniform", help="delay policy spec")
    parser.add_argument(
        "--time-scale", type=float, default=0.1,
        help="wall seconds per simulation unit (wall-clock transports)",
    )
    parser.add_argument(
        "--faults", default="none",
        help="fault-family spec, e.g. crash-recover:0.25,5 "
             "(router transport only)",
    )
    parser.add_argument(
        "--mobility", default="static",
        help="mobility-family spec, e.g. blink:0.2,2 "
             "(router transport only)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="router worker processes (0 = auto, ~1 per 16 nodes)",
    )
    parser.add_argument(
        "--tail", metavar="DIR", default=None,
        help="stream rolling-panel SVG frames (tail_NNNN.svg) into DIR "
             "while the run executes",
    )
    parser.add_argument(
        "--tail-interval", type=float, default=0.5,
        help="sim-time units between streamed tail frames",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    topology_spec = (
        args.topology if ":" in args.topology else f"{args.topology}:{args.nodes}"
    )
    try:
        config = LiveRunConfig(
            topology=topology_spec,
            algorithm=args.algorithm,
            rates=args.rates,
            delays=args.delays,
            duration=args.duration,
            rho=args.rho,
            seed=args.seed,
            transport=args.transport,
            time_scale=args.time_scale,
            faults=args.faults,
            mobility=args.mobility,
            workers=args.workers,
        )
        tail = None
        if args.tail is not None:
            from repro.viz.tail import StreamingTail

            tail = StreamingTail(
                interval=args.tail_interval, out_dir=args.tail
            )
        wall_start = time.perf_counter()
        execution = run_live(config, tail=tail)
        wall = time.perf_counter() - wall_start
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    skew = summarize(execution)
    table = Table(
        title=f"live run [{execution.source}]: {config.algorithm} on "
              f"{config.topology}",
        headers=["metric", "value"],
        caption=(
            f"duration {config.duration} sim units, seed {config.seed}, "
            f"rho {config.rho}; measured with the same Execution queries "
            f"the simulator uses"
        ),
    )
    table.add_row("max skew", round(skew.max_skew, 4))
    table.add_row("max adjacent skew", round(skew.max_adjacent_skew, 4))
    table.add_row("final skew", round(skew.final_skew, 4))
    table.add_row("final adjacent skew", round(skew.final_adjacent_skew, 4))
    table.add_row("mean |skew|", round(skew.mean_abs_skew, 4))
    table.add_row("messages sent", len(execution.messages))
    table.add_row("trace events", len(execution.trace))
    live = execution.live_stats or {}
    if "frames_dropped" in live:
        table.add_row("frames dropped", live["frames_dropped"])
    if "workers" in live:
        table.add_row("router workers", live["workers"])
    if execution.fault_stats:
        injected = {k: v for k, v in execution.fault_stats.items() if v}
        table.add_row("fault events", injected or "none fired")
    if execution.is_dynamic:
        table.add_row("rewirings", len(execution.topology_timeline) - 1)
    table.add_row("wall-clock seconds", round(wall, 3))
    if tail is not None:
        table.add_row("tail frames streamed", tail.frames_rendered)
    print(table.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
