"""repro.rt — the live runtime: paper algorithms on real transports.

Everything else in this repository executes inside the discrete-event
:class:`~repro.sim.simulator.Simulator`.  This package executes the very
same, unchanged :class:`~repro.sim.node.Process` algorithm classes
*outside* it:

* :class:`HostClock` realizes the paper's Assumption-1 drift model over
  ``time.monotonic()`` — piecewise rates, never-backwards, lossless
  rate rebinding;
* :class:`LiveNode` hosts a process behind the standard
  :class:`~repro.sim.node.NodeAPI`, so algorithm code needs zero changes;
* four :class:`Transport` backends carry the messages:
  :class:`VirtualTimeTransport` (deterministic, simulator-equivalent —
  the cross-validation anchor), :class:`InProcAsyncioTransport` (real
  wall-clock asyncio), the UDP backend (:func:`repro.rt.udp.run_udp`,
  one OS process per node, length-prefixed JSON datagrams), and the
  router backend (:func:`repro.rt.router.run_router`, many nodes
  multiplexed onto a few worker processes around one central router
  socket — the scale vehicle, and the only backend that applies live
  churn: :class:`~repro.sim.faults.FaultPlan` crash/link windows and
  :class:`~repro.topology.dynamic.DynamicTopology` rewirings);
* every run is recorded as a real
  :class:`~repro.sim.execution.Execution`, so skew, gradient-profile,
  and model-compliance queries — and all of :mod:`repro.analysis` —
  apply to live runs verbatim.

Entry points: :func:`run_live` in code, the ``live`` CLI verb
(``python -m repro.experiments live`` / ``repro-live``) from the shell,
the ``live-run`` sweep job kind for grids, and experiment E14 for the
sim-vs-live comparison table.
"""

from repro.rt.asyncio_transport import InProcAsyncioTransport
from repro.rt.hostclock import HostClock
from repro.rt.jobs import live_run
from repro.rt.node import LiveNode
from repro.rt.recorder import LiveRecorder, build_execution, merge_recorders
from repro.rt.run import LiveRunConfig, run_live, with_transport
from repro.rt.transport import TRANSPORT_NAMES, Transport
from repro.rt.virtual import VirtualTimeTransport

__all__ = [
    "HostClock",
    "LiveNode",
    "LiveRecorder",
    "LiveRunConfig",
    "Transport",
    "TRANSPORT_NAMES",
    "VirtualTimeTransport",
    "InProcAsyncioTransport",
    "build_execution",
    "merge_recorders",
    "live_run",
    "run_live",
    "with_transport",
]
