"""Measurement and reporting helpers for experiments and tests."""

from repro.analysis.convergence import SteadyState, settling_time, steady_state
from repro.analysis.field import SkewField
from repro.analysis.gradient_profile import (
    ProfileFit,
    fit_linear,
    normalize_profile,
    profile_ratio,
)
from repro.analysis.reporting import Table
from repro.analysis.timeseries import (
    adjacent_skew_series,
    render_csv,
    skew_series,
    sparkline,
    write_csv,
)
from repro.analysis.skew import (
    SkewSummary,
    peak_adjacent_over_time,
    peak_skew_over_time,
    skew_heatmap,
    summarize,
)

__all__ = [
    "SkewField",
    "ProfileFit",
    "fit_linear",
    "normalize_profile",
    "profile_ratio",
    "Table",
    "SkewSummary",
    "summarize",
    "peak_skew_over_time",
    "peak_adjacent_over_time",
    "skew_heatmap",
    "sparkline",
    "skew_series",
    "adjacent_skew_series",
    "write_csv",
    "render_csv",
    "SteadyState",
    "settling_time",
    "steady_state",
]
