"""Skew measurement utilities shared by experiments and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.sim.execution import Execution

__all__ = [
    "SkewSummary",
    "summarize",
    "peak_skew_over_time",
    "peak_adjacent_over_time",
    "skew_heatmap",
]


@dataclass(frozen=True)
class SkewSummary:
    """Headline skew numbers for one execution."""

    max_skew: float
    max_adjacent_skew: float
    final_skew: float
    final_adjacent_skew: float
    mean_abs_skew: float

    def as_row(self) -> tuple[float, float, float, float, float]:
        return (
            self.max_skew,
            self.max_adjacent_skew,
            self.final_skew,
            self.final_adjacent_skew,
            self.mean_abs_skew,
        )


def summarize(execution: Execution, *, step: float = 1.0) -> SkewSummary:
    """Peak/final skew statistics over a sampled grid."""
    times = execution.sample_times(step)
    peak, peak_adj, abs_sum, count = 0.0, 0.0, 0.0, 0
    for t in times:
        m = execution.skew_matrix(t)
        peak = max(peak, float(np.abs(m).max()))
        peak_adj = max(peak_adj, execution.max_adjacent_skew(t))
        abs_sum += float(np.abs(m).sum()) / max(m.size - m.shape[0], 1)
        count += 1
    end = execution.duration
    return SkewSummary(
        max_skew=peak,
        max_adjacent_skew=peak_adj,
        final_skew=execution.max_skew(end),
        final_adjacent_skew=execution.max_adjacent_skew(end),
        mean_abs_skew=abs_sum / max(count, 1),
    )


def peak_skew_over_time(
    execution: Execution, times: Sequence[float]
) -> np.ndarray:
    """``max_{i,j} |L_i - L_j|`` per sample time."""
    return np.array([execution.max_skew(t) for t in times])


def peak_adjacent_over_time(
    execution: Execution, times: Sequence[float]
) -> np.ndarray:
    """``max adjacent |L_i - L_j|`` per sample time — Theorem 8.1's series."""
    return np.array([execution.max_adjacent_skew(t) for t in times])


def skew_heatmap(
    execution: Execution, times: Iterable[float]
) -> np.ndarray:
    """Stack of signed skew matrices, one per sample (for offline plotting)."""
    return np.stack([execution.skew_matrix(t) for t in times])
