"""Skew measurement utilities shared by experiments and tests.

All functions here are thin views over a
:class:`~repro.analysis.field.SkewField`: the execution's logical-value
matrix is materialized once and every statistic is answered from it,
instead of a ``value_at`` bisect per (node, sample time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.field import SkewField
from repro.sim.execution import Execution

__all__ = [
    "SkewSummary",
    "summarize",
    "peak_skew_over_time",
    "peak_adjacent_over_time",
    "skew_heatmap",
]


@dataclass(frozen=True)
class SkewSummary:
    """Headline skew numbers for one execution."""

    max_skew: float
    max_adjacent_skew: float
    final_skew: float
    final_adjacent_skew: float
    mean_abs_skew: float

    def as_row(self) -> tuple[float, float, float, float, float]:
        return (
            self.max_skew,
            self.max_adjacent_skew,
            self.final_skew,
            self.final_adjacent_skew,
            self.mean_abs_skew,
        )


def summarize(
    execution: Execution, *, step: float = 1.0, field: SkewField | None = None
) -> SkewSummary:
    """Peak/final skew statistics over a sampled grid.

    Pass a prebuilt ``field`` to share one trajectory matrix across
    several statistics (the sweep engine's benign-run jobs do); the
    final ``t = duration`` sample is read from the grid's last column
    instead of being recomputed.
    """
    field = field if field is not None else SkewField(execution, step=step)
    return field.summary()


def peak_skew_over_time(
    execution: Execution, times: Sequence[float]
) -> np.ndarray:
    """``max_{i,j} |L_i - L_j|`` per sample time."""
    return SkewField(execution, times).max_skew_series()


def peak_adjacent_over_time(
    execution: Execution, times: Sequence[float]
) -> np.ndarray:
    """``max adjacent |L_i - L_j|`` per sample time — Theorem 8.1's series."""
    return SkewField(execution, times).max_adjacent_series()


def skew_heatmap(
    execution: Execution, times: Iterable[float]
) -> np.ndarray:
    """Stack of signed skew matrices, one per sample (for offline plotting)."""
    return SkewField(execution, list(times)).heatmap()
