"""Gradient profiles: the empirical ``f(d)`` and fits against envelopes.

The gradient property is about the *shape* of skew as a function of
distance.  A :class:`ProfileFit` regresses the observed profile against
``f(d) = a*d + b`` and reports how well a linear gradient explains the
data — max-style algorithms show large intercepts at ``d = 1`` (their
distance-1 spikes), gradient algorithms show a clean slope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = ["ProfileFit", "fit_linear", "profile_ratio", "normalize_profile"]


@dataclass(frozen=True)
class ProfileFit:
    """Least-squares fit of a gradient profile to ``a*d + b``."""

    slope: float
    intercept: float
    residual_rms: float
    max_over_linear: float  # max of observed / (slope*d + intercept)

    def predict(self, d: float) -> float:
        return self.slope * d + self.intercept


def fit_linear(profile: Mapping[float, float]) -> ProfileFit:
    """Fit ``skew = a * distance + b`` to a gradient profile."""
    if len(profile) < 2:
        d, v = next(iter(profile.items()))
        return ProfileFit(slope=0.0, intercept=v, residual_rms=0.0, max_over_linear=1.0)
    ds = np.array(sorted(profile))
    vs = np.array([profile[d] for d in sorted(profile)])
    a_mat = np.vstack([ds, np.ones_like(ds)]).T
    (slope, intercept), *_ = np.linalg.lstsq(a_mat, vs, rcond=None)
    pred = a_mat @ np.array([slope, intercept])
    residual = float(np.sqrt(np.mean((vs - pred) ** 2)))
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(pred > 1e-9, vs / pred, 1.0)
    return ProfileFit(
        slope=float(slope),
        intercept=float(intercept),
        residual_rms=residual,
        max_over_linear=float(np.max(ratios)),
    )


def profile_ratio(
    profile: Mapping[float, float], reference: Mapping[float, float]
) -> dict[float, float]:
    """Pointwise ``profile / reference`` on shared distances."""
    out = {}
    for d in sorted(set(profile) & set(reference)):
        ref = reference[d]
        out[d] = profile[d] / ref if ref > 1e-12 else float("inf")
    return out


def normalize_profile(profile: Mapping[float, float]) -> dict[float, float]:
    """Scale a profile so its value at the smallest distance is 1."""
    if not profile:
        return {}
    base = profile[min(profile)]
    if base <= 1e-12:
        return dict(profile)
    return {d: v / base for d, v in profile.items()}
