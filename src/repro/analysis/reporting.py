"""Plain-text tables for experiment output.

Every benchmark prints the rows its experiment defines through
:class:`Table`, so the harness output reads like the paper's evaluation
section: one table per artifact, aligned columns, a caption tying it
back to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


@dataclass
class Table:
    """A fixed-header table accumulating rows."""

    title: str
    headers: Sequence[str]
    caption: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_format_cell(v) for v in values])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for k, cell in enumerate(row):
                widths[k] = max(widths[k], len(cell))
        lines = [self.title]
        if self.caption:
            lines.append(self.caption)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

    # convenience for experiments that want machine-readable output too
    def as_dicts(self) -> list[dict[str, str]]:
        return [dict(zip(self.headers, row)) for row in self.rows]
