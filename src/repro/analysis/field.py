"""The vectorized skew-analysis core: one trajectory matrix, many queries.

Every quantity the paper defines on an execution — skew
``L_i(t) - L_j(t)``, the gradient profile ``f(d)``, Theorem 8.1's
adjacent-skew series — used to be computed by Python-level loops calling
``LogicalClock.value_at`` once per (node, sample time): ``O(T n^2)``
bisect lookups per summary, which capped experiments near diameter 128.

A :class:`SkewField` materializes the ``n x T`` logical-value matrix
*once* per execution (one batched
:meth:`~repro.sim.clock.LogicalClock.values_at` per node, the same
trajectory-matrix trick RBS/TDMA reference-broadcast analyses use) and
answers every skew query from it as array arithmetic.  The per-element
float operations mirror the scalar path exactly, so both agree to
bitwise for max/peak queries and well within 1e-9 everywhere else — an
equivalence the hypothesis suite pins.

The scalar ``value_at`` API stays untouched for the simulator hot loop;
this class is the post-hoc measurement path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.convergence import SteadyState
    from repro.analysis.skew import SkewSummary
    from repro.sim.execution import Execution
    from repro.topology.base import Topology

__all__ = ["SkewField"]


class SkewField:
    """The ``n x T`` logical-value field of one execution.

    Parameters
    ----------
    execution:
        Any finished :class:`~repro.sim.execution.Execution` — simulated
        or live (:mod:`repro.rt` builds the same clocks).
    times:
        Sample times; defaults to ``execution.sample_times(step)``.
    step:
        Grid step used when ``times`` is omitted.

    Attributes
    ----------
    times:
        The sample grid, as a float array.
    values:
        The materialized matrix: ``values[i, k] = L_i(times[k])``.
    """

    def __init__(
        self,
        execution: "Execution",
        times: Sequence[float] | np.ndarray | None = None,
        *,
        step: float = 1.0,
    ):
        self.execution = execution
        grid = execution.sample_times(step) if times is None else times
        self.times = np.asarray(grid, dtype=float)
        if self.times.ndim != 1 or self.times.size == 0:
            raise ValueError("SkewField needs a non-empty 1-D grid of sample times")
        self.values = execution.logical_matrix(self.times)
        self._max_series: np.ndarray | None = None
        self._adjacent_series: np.ndarray | None = None
        self._segments_cache: list | None = None

    @property
    def n(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.times.size)

    def topology_segments(self) -> list[tuple["Topology", np.ndarray]]:
        """``(topology, column indices)`` groups of the sample grid.

        Static executions yield one group holding every column; dynamic
        executions (:attr:`Execution.topology_timeline`) yield one group
        per topology snapshot that owns at least one sample time.  Every
        distance-dependent query below folds over these groups, so the
        gradient bound and the adjacent-pair set are always evaluated
        against the network live at each sample.
        """
        if self._segments_cache is None:
            timeline = getattr(self.execution, "topology_timeline", None)
            if timeline is None or len(timeline) <= 1:
                self._segments_cache = [
                    (self.execution.topology, np.arange(self.times.size))
                ]
            else:
                change_times = np.array([at for at, _ in timeline])
                owner = np.clip(
                    np.searchsorted(change_times, self.times, side="right") - 1,
                    0,
                    len(timeline) - 1,
                )
                self._segments_cache = [
                    (topo, np.nonzero(owner == k)[0])
                    for k, (_, topo) in enumerate(timeline)
                    if np.any(owner == k)
                ]
        return list(self._segments_cache)

    # ------------------------------------------------------------------
    # per-sample-time series

    def max_skew_series(self) -> np.ndarray:
        """``max_{i,j} |L_i - L_j|`` per sample time.

        The pairwise maximum is attained by the extremal pair, so one
        column max minus one column min replaces the ``n x n`` matrix.
        """
        if self._max_series is None:
            self._max_series = self.values.max(axis=0) - self.values.min(axis=0)
        return self._max_series

    def max_adjacent_series(self) -> np.ndarray:
        """``max`` adjacent ``|L_i - L_j|`` per sample time — Theorem
        8.1's watched series.

        On dynamic executions the adjacent (minimum-distance) pair set
        is re-read per topology segment, so the series always watches
        the pairs that are actually adjacent at each sample time.
        """
        if self._adjacent_series is None:
            segments = self.topology_segments()
            if len(segments) == 1:
                pairs = segments[0][0].adjacent_pairs()
                a = np.fromiter((i for i, _ in pairs), dtype=int, count=len(pairs))
                b = np.fromiter((j for _, j in pairs), dtype=int, count=len(pairs))
                self._adjacent_series = np.abs(
                    self.values[a] - self.values[b]
                ).max(axis=0)
            else:
                series = np.empty(self.times.size)
                for topology, cols in segments:
                    pairs = topology.adjacent_pairs()
                    a = np.fromiter(
                        (i for i, _ in pairs), dtype=int, count=len(pairs)
                    )
                    b = np.fromiter(
                        (j for _, j in pairs), dtype=int, count=len(pairs)
                    )
                    block = self.values[:, cols]
                    series[cols] = np.abs(block[a] - block[b]).max(axis=0)
                self._adjacent_series = series
        return self._adjacent_series

    def mean_abs_series(self) -> np.ndarray:
        """Mean ``|L_i - L_j|`` over ordered distinct pairs, per time.

        Uses the sorted-order identity ``sum_{i<j} (x_(j) - x_(i)) =
        sum_k (2k - n + 1) x_(k)`` — ``O(n log n)`` per sample instead of
        ``O(n^2)``.
        """
        n = self.n
        ranked = np.sort(self.values, axis=0)
        weights = 2.0 * np.arange(n) - (n - 1)
        unordered = weights @ ranked
        return 2.0 * unordered / max(n * n - n, 1)

    def pair_series(self, i: int, j: int) -> np.ndarray:
        """``|L_i - L_j|`` over the sample grid."""
        return np.abs(self.values[i] - self.values[j])

    # ------------------------------------------------------------------
    # scalar queries

    def max_skew(self) -> float:
        """Largest absolute skew over all pairs and sample times."""
        return float(self.max_skew_series().max())

    def max_adjacent_skew(self) -> float:
        """Largest absolute adjacent skew over all sample times."""
        return float(self.max_adjacent_series().max())

    def peak_skew(self) -> tuple[float, float]:
        """``(time, skew)`` of the largest all-pairs skew (first peak)."""
        series = self.max_skew_series()
        k = int(series.argmax())
        return float(self.times[k]), float(series[k])

    def peak_adjacent_skew(self) -> tuple[float, float]:
        """``(time, skew)`` of the largest adjacent skew (first peak)."""
        series = self.max_adjacent_series()
        k = int(series.argmax())
        return float(self.times[k]), float(series[k])

    def skew_matrix(self, k: int) -> np.ndarray:
        """Signed skew between every ordered pair at sample index ``k``."""
        column = self.values[:, k]
        return column[:, None] - column[None, :]

    def heatmap(self) -> np.ndarray:
        """The ``T x n x n`` stack of signed skew matrices."""
        columns = self.values.T
        return columns[:, :, None] - columns[:, None, :]

    def max_logical_increase(
        self, *, window: float = 1.0, step: float = 0.25, t_from: float = 0.0
    ) -> float:
        """Lemma 7.1's quantity (its own window grid, not this field's)."""
        return self.execution.max_logical_increase(
            window=window, step=step, t_from=t_from
        )

    # ------------------------------------------------------------------
    # profiles

    def gradient_profile(self) -> dict[float, float]:
        """Max absolute skew per pair distance — the empirical ``f(d)``.

        Row-vectorized: one ``|V[i+1:] - V[i]|`` broadcast per anchor
        node yields every pair's worst skew over time; only the
        group-by-distance fold stays in Python (it preserves the scalar
        path's ``round(d, 9)`` keying exactly).

        On dynamic executions each pair's skew is attributed to the
        distance it had *when the skew was observed* (one fold per
        topology segment), so the profile is the empirical ``f`` of
        Requirement 2 read against time-varying distances.
        """
        profile: dict[float, float] = {}
        for topology, cols in self.topology_segments():
            distances = topology.distances
            block = (
                self.values
                if cols.size == self.times.size
                else self.values[:, cols]
            )
            for i in range(self.n - 1):
                worst = np.abs(block[i + 1:] - block[i]).max(axis=1)
                row = distances[i, i + 1:]
                for offset in range(worst.shape[0]):
                    d = round(float(row[offset]), 9)
                    w = float(worst[offset])
                    if w > profile.get(d, float("-inf")):
                        profile[d] = w
        return dict(sorted(profile.items()))

    # ------------------------------------------------------------------
    # convergence

    def settling_time(
        self, threshold: float, *, series: np.ndarray | None = None
    ) -> float | None:
        """Earliest sample time after which the series stays
        ``<= threshold`` (default series: all-pairs max skew); ``None``
        if it never settles."""
        series = self.max_skew_series() if series is None else series
        exceeding = np.nonzero(series > threshold + 1e-9)[0]
        if exceeding.size == 0:
            return float(self.times[0])
        last = int(exceeding[-1])
        if last + 1 >= self.times.size:
            return None
        return float(self.times[last + 1])

    def steady_state(self, tail_fraction: float = 0.25) -> "SteadyState":
        """Tail-of-run skew summary over the final ``tail_fraction``."""
        from repro.analysis.convergence import SteadyState

        if not 0.0 < tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in (0, 1]")
        start = self.execution.duration * (1.0 - tail_fraction)
        mask = self.times >= start
        maxes = self.max_skew_series()[mask]
        adjacents = self.max_adjacent_series()[mask]
        return SteadyState(
            mean_max_skew=float(maxes.mean()),
            worst_max_skew=float(maxes.max()),
            mean_adjacent_skew=float(adjacents.mean()),
            worst_adjacent_skew=float(adjacents.max()),
            tail_start=start,
        )

    # ------------------------------------------------------------------
    # headline summary

    def summary(self) -> "SkewSummary":
        """The headline numbers, all answered from the one matrix.

        ``final_*`` read the last sample column — which, with the
        deduped :meth:`~repro.sim.execution.Execution.sample_times`
        grid, is the ``t = duration`` sample computed exactly once.
        """
        from repro.analysis.skew import SkewSummary

        series = self.max_skew_series()
        adjacent = self.max_adjacent_series()
        return SkewSummary(
            max_skew=max(float(series.max()), 0.0),
            max_adjacent_skew=max(float(adjacent.max()), 0.0),
            final_skew=float(series[-1]),
            final_adjacent_skew=float(adjacent[-1]),
            mean_abs_skew=float(self.mean_abs_series().mean()),
        )
