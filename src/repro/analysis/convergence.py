"""Convergence metrics: when does a network count as synchronized?

Comparative experiments need a scalar for "how fast did the algorithm
get there and did it stay": :func:`settling_time` is the earliest
sample time after which the watched skew never again exceeds the
threshold; :func:`steady_state` summarizes the tail of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.field import SkewField
from repro.sim.execution import Execution

__all__ = ["SteadyState", "settling_time", "steady_state"]


def settling_time(
    execution: Execution,
    threshold: float,
    *,
    step: float = 1.0,
    metric: Callable[[Execution, float], float] | None = None,
    field: SkewField | None = None,
) -> float | None:
    """Earliest sample time after which the metric stays <= threshold.

    ``metric`` defaults to network-wide max skew, answered from one
    batched :class:`~repro.analysis.field.SkewField` (pass ``field`` to
    reuse a prebuilt one); a custom per-time ``metric`` callable falls
    back to the scalar sweep.  Returns ``None`` if the run never settles
    (the honest answer for an unsynchronized network).
    """
    if metric is None:
        field = field if field is not None else SkewField(execution, step=step)
        return field.settling_time(threshold)
    times = execution.sample_times(step)
    settled_from: float | None = None
    for t in times:
        if metric(execution, t) > threshold + 1e-9:
            settled_from = None
        elif settled_from is None:
            settled_from = t
    return settled_from


@dataclass(frozen=True)
class SteadyState:
    """Tail-of-run skew summary."""

    mean_max_skew: float
    worst_max_skew: float
    mean_adjacent_skew: float
    worst_adjacent_skew: float
    tail_start: float


def steady_state(
    execution: Execution,
    *,
    tail_fraction: float = 0.25,
    step: float = 1.0,
    field: SkewField | None = None,
) -> SteadyState:
    """Summarize skew over the final ``tail_fraction`` of the run."""
    field = field if field is not None else SkewField(execution, step=step)
    return field.steady_state(tail_fraction)
