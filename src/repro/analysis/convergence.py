"""Convergence metrics: when does a network count as synchronized?

Comparative experiments need a scalar for "how fast did the algorithm
get there and did it stay": :func:`settling_time` is the earliest
sample time after which the watched skew never again exceeds the
threshold; :func:`steady_state` summarizes the tail of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.sim.execution import Execution

__all__ = ["SteadyState", "settling_time", "steady_state"]


def settling_time(
    execution: Execution,
    threshold: float,
    *,
    step: float = 1.0,
    metric: Callable[[Execution, float], float] | None = None,
) -> float | None:
    """Earliest sample time after which the metric stays <= threshold.

    ``metric`` defaults to network-wide max skew; pass e.g.
    ``Execution.max_adjacent_skew`` for the local variant.  Returns
    ``None`` if the run never settles (the honest answer for an
    unsynchronized network).
    """
    metric = metric or Execution.max_skew
    times = execution.sample_times(step)
    values = [metric(execution, t) for t in times]
    settled_from: float | None = None
    for t, v in zip(times, values):
        if v > threshold + 1e-9:
            settled_from = None
        elif settled_from is None:
            settled_from = t
    return settled_from


@dataclass(frozen=True)
class SteadyState:
    """Tail-of-run skew summary."""

    mean_max_skew: float
    worst_max_skew: float
    mean_adjacent_skew: float
    worst_adjacent_skew: float
    tail_start: float


def steady_state(
    execution: Execution, *, tail_fraction: float = 0.25, step: float = 1.0
) -> SteadyState:
    """Summarize skew over the final ``tail_fraction`` of the run."""
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    start = execution.duration * (1.0 - tail_fraction)
    times = [t for t in execution.sample_times(step) if t >= start]
    maxes = [execution.max_skew(t) for t in times]
    adjacents = [execution.max_adjacent_skew(t) for t in times]
    return SteadyState(
        mean_max_skew=sum(maxes) / len(maxes),
        worst_max_skew=max(maxes),
        mean_adjacent_skew=sum(adjacents) / len(adjacents),
        worst_adjacent_skew=max(adjacents),
        tail_start=start,
    )
