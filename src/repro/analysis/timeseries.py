"""Time-series export and terminal sparklines.

Experiments produce skew trajectories; these helpers render them in a
terminal (sparklines) and export them as CSV for offline plotting, so
the repository needs no plotting dependency.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.field import SkewField
from repro.sim.execution import Execution

__all__ = ["sparkline", "skew_series", "adjacent_skew_series", "write_csv"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, lo: float | None = None,
              hi: float | None = None) -> str:
    """Render values as a unicode sparkline.

    ``lo``/``hi`` pin the scale (defaults: data min/max); constant data
    renders as a flat low bar.
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _BARS[0] * len(values)
    out = []
    for v in values:
        k = int((v - lo) / span * (len(_BARS) - 1))
        out.append(_BARS[min(max(k, 0), len(_BARS) - 1)])
    return "".join(out)


def skew_series(
    execution: Execution, i: int, j: int, *, step: float = 1.0
) -> tuple[list[float], list[float]]:
    """``(times, |L_i - L_j|)`` sampled across the execution (batched)."""
    times = execution.sample_times(step)
    series = np.abs(execution.skew_trajectory(i, j, times))
    return times, [float(v) for v in series]


def adjacent_skew_series(
    execution: Execution, *, step: float = 1.0
) -> tuple[list[float], list[float]]:
    """``(times, max adjacent skew)`` — Theorem 8.1's watched quantity."""
    times = execution.sample_times(step)
    series = SkewField(execution, times).max_adjacent_series()
    return times, [float(v) for v in series]


def write_csv(
    path: str | Path,
    times: Sequence[float],
    columns: dict[str, Sequence[float]],
) -> Path:
    """Write ``time, <column>...`` rows to ``path``; returns the path."""
    path = Path(path)
    names = sorted(columns)
    for name in names:
        if len(columns[name]) != len(times):
            raise ValueError(
                f"column {name!r} has {len(columns[name])} values for "
                f"{len(times)} times"
            )
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", *names])
        for k, t in enumerate(times):
            writer.writerow([t, *(columns[n][k] for n in names)])
    return path


def render_csv(times: Sequence[float], columns: dict[str, Sequence[float]]) -> str:
    """Same as :func:`write_csv` but to a string (for tests/pipelines)."""
    buf = io.StringIO()
    names = sorted(columns)
    writer = csv.writer(buf)
    writer.writerow(["time", *names])
    for k, t in enumerate(times):
        writer.writerow([t, *(columns[n][k] for n in names)])
    return buf.getvalue()
