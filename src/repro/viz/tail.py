"""The streaming tail: rolling panels from a live run *while it runs*.

A :class:`StreamingTail` attaches to a :mod:`repro.rt` run
(``run_live(config, tail=...)``) and renders rolling SVG panels from
incremental observations, without waiting for the Execution to
finalize:

* **in-process transports** (virtual, asyncio) feed every
  :class:`~repro.sim.trace.TraceEvent` through the recorder's tap — the
  event's ``logical`` field gives exact per-node clock values;
* the **router** backend taps every frame crossing the central switch
  in the parent — ``("clock", value)`` payloads yield per-node logical
  estimates straight off the wire — plus periodic counter snapshots
  (``frames_routed`` / ``frames_dropped`` / ``events``);
* the **udp** backend mirrors each sent frame to a parent-side tap
  socket (opt-in, only when a tail is attached), which drains into the
  same ``frame`` entry point.

From these the tail maintains a rolling *skew-spread* series — the
spread ``max - min`` of the freshest logical value per node, the live
estimate of global skew — and rolling counter rates, and re-renders a
panel frame every ``interval`` simulation units.  Frames go to a
``sink`` callable and/or numbered ``tail_NNNN.svg`` files under
``out_dir``; tests pass a list-appending sink and never touch disk.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Callable, Optional

from repro.viz.panels import Series, line_panel, stat_strip
from repro.viz.svg import SvgCanvas

__all__ = ["StreamingTail"]


def _clock_value(payload) -> float | None:
    """Extract a logical-clock reading from a wire payload, if any.

    Every algorithm in :mod:`repro.algorithms` gossips ``(tag, number)``
    pairs; a numeric second element is treated as the sender's clock
    sample.  Unknown payload shapes are simply not charted.
    """
    if (
        isinstance(payload, (tuple, list))
        and len(payload) == 2
        and isinstance(payload[1], (int, float))
        and not isinstance(payload[1], bool)
    ):
        return float(payload[1])
    return None


class StreamingTail:
    """Rolling live-run panels rendered from incremental events.

    Parameters
    ----------
    interval:
        Simulation-time units between rendered frames.
    window:
        Width of the rolling time window each panel shows.
    sink:
        ``sink(svg_string, frame_index)`` called per rendered frame.
    out_dir:
        Directory receiving ``tail_NNNN.svg`` files (created on demand).
    max_points:
        Cap on retained series points (memory bound for long runs).
    """

    def __init__(
        self,
        *,
        interval: float = 0.5,
        window: float = 10.0,
        sink: Optional[Callable[[str, int], None]] = None,
        out_dir: str | Path | None = None,
        max_points: int = 4096,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self.window = float(window)
        self.sink = sink
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.frames_rendered = 0
        self.latest: dict[int, tuple[float, float]] = {}
        self.counters: dict[str, int] = {}
        self._spread: deque[tuple[float, float]] = deque(maxlen=max_points)
        self._rates: dict[str, deque[tuple[float, float]]] = {}
        self._events_seen = 0
        self._frames_seen = 0
        self._last_render: float | None = None
        self._now = 0.0

    # ------------------------------------------------------------------
    # observation entry points (called by the rt backends)

    def event(self, event) -> None:
        """Observe one in-process :class:`TraceEvent` (recorder tap)."""
        if event.node >= 0:
            self.latest[event.node] = (event.real_time, event.logical)
        self._events_seen += 1
        self._observe(event.real_time)

    def frame(self, record: dict, now: float) -> None:
        """Observe one wire frame (router tap / udp mirror)."""
        self._frames_seen += 1
        value = _clock_value(record.get("payload"))
        src = record.get("src")
        if value is not None and isinstance(src, int):
            self.latest[src] = (float(record.get("send", now)), value)
        self._observe(now)

    def stats(self, now: float, **counters) -> None:
        """Observe a counter snapshot (frames_routed, frames_dropped, ...)."""
        for key, value in counters.items():
            self.counters[key] = int(value)
            self._rates.setdefault(
                key, deque(maxlen=self._spread.maxlen)
            ).append((now, float(value)))
        self._observe(now)

    # ------------------------------------------------------------------
    # rolling state

    def _observe(self, now: float) -> None:
        self._now = max(self._now, float(now))
        if len(self.latest) >= 2:
            values = [v for _, v in self.latest.values()]
            self._spread.append((self._now, max(values) - min(values)))
        if self._last_render is None:
            # First observation: render immediately, so even very short
            # runs produce at least one in-flight frame.
            self.render_now()
        elif self._now - self._last_render >= self.interval:
            self.render_now()

    def _windowed(self, series) -> tuple[list[float], list[float]]:
        lo = self._now - self.window
        xs, ys = [], []
        for t, v in series:
            if t >= lo:
                xs.append(t)
                ys.append(v)
        return xs, ys

    # ------------------------------------------------------------------
    # rendering

    def render_now(self) -> str:
        """Render one rolling-panel frame and dispatch it."""
        canvas = SvgCanvas(640, 360, background="#fafafa")
        canvas.text(16, 22, f"live tail @ t={self._now:.2f}", size=13,
                    weight="bold", klass="tail-title")
        stat_strip(
            canvas, 16, 40,
            [
                ("nodes seen", len(self.latest)),
                ("events", self._events_seen),
                ("frames", self._frames_seen),
                *sorted(self.counters.items()),
            ],
        )
        xs, ys = self._windowed(self._spread)
        line_panel(
            canvas, 60, 70, 540, 120,
            [Series("skew spread (latest estimates)", xs or [self._now],
                    ys or [0.0], color="#c0392b")],
            title="rolling skew spread",
            y_label="spread",
            x_label="sim time",
        )
        rate_series = []
        for key in sorted(self._rates):
            rxs, rys = self._windowed(self._rates[key])
            if rxs:
                rate_series.append(Series(key, rxs, rys))
        line_panel(
            canvas, 60, 220, 540, 110,
            rate_series or [Series("no counters", [self._now], [0.0])],
            title="transport counters",
            y_label="count",
            x_label="sim time",
        )
        svg = canvas.to_string()
        index = self.frames_rendered
        self.frames_rendered += 1
        self._last_render = self._now
        if self.sink is not None:
            self.sink(svg, index)
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            (self.out_dir / f"tail_{index:04d}.svg").write_text(
                svg, encoding="utf-8"
            )
        return svg

    def close(self) -> None:
        """Render one final frame capturing the end-of-run state."""
        if self._last_render is None or self._now > self._last_render:
            self.render_now()
