"""Mobility animation: a dynamic-topology run as frame-per-snapshot SVG.

Each frame shows one topology snapshot of the run: node positions (the
generator's actual placements when the snapshot carries them, a
deterministic circular layout otherwise), the in-force communication
edges colored by the *instantaneous* adjacent skew ``|L_i(t) - L_j(t)|``
at that snapshot's sample instant, and crashed nodes drawn hollow.

Two outputs from the same frame builder:

* :func:`mobility_animation` — one self-contained SVG whose frames
  cycle via SMIL (``calcMode="discrete"`` opacity switching; every
  browser's native SVG engine plays it, no JS);
* :func:`mobility_frames` — the numbered-frame series as standalone SVG
  strings, for tools that want stills.

Static executions render as a single frame — the same code path, so
every execution is animatable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.trace import CRASH, RECOVER
from repro.viz.panels import AXIS_COLOR
from repro.viz.svg import SvgCanvas, sequential_color

__all__ = ["mobility_animation", "mobility_frames"]

_W, _H = 480.0, 420.0
_PLOT = (40.0, 56.0, 400.0, 320.0)  # x, y, w, h of the layout box


def _snapshots(execution) -> list[tuple[float, object]]:
    timeline = execution.topology_timeline
    if timeline is None or len(timeline) == 0:
        return [(0.0, execution.topology)]
    return [(t, topo) for t, topo in timeline if t <= execution.duration]


def _layout(snapshots, n: int) -> list[dict[int, tuple[float, float]]]:
    """Per-frame positions, normalized into the plot box."""
    raw: list[dict[int, tuple[float, float]]] = []
    for _, topo in snapshots:
        positions = getattr(topo, "positions", None)
        if positions and all(node in positions for node in range(n)):
            raw.append({node: tuple(positions[node]) for node in range(n)})
        else:
            raw.append({
                node: (
                    math.cos(2 * math.pi * node / n),
                    math.sin(2 * math.pi * node / n),
                )
                for node in range(n)
            })
    xs = [p[0] for frame in raw for p in frame.values()]
    ys = [p[1] for frame in raw for p in frame.values()]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    span = max(x_hi - x_lo, y_hi - y_lo, 1e-9)
    px, py, pw, ph = _PLOT
    scale = min(pw, ph) / span
    out = []
    for frame in raw:
        out.append({
            node: (
                px + pw / 2 + ((x - (x_lo + x_hi) / 2)) * scale,
                py + ph / 2 + ((y - (y_lo + y_hi) / 2)) * scale,
            )
            for node, (x, y) in frame.items()
        })
    return out


def _down_sets(execution, frame_times) -> list[set[int]]:
    """Which nodes are inside a crash window at each frame instant."""
    transitions = sorted(
        (e.real_time, e.kind, e.node)
        for e in execution.trace.of_kind(CRASH, RECOVER)
    )
    out = []
    for t in frame_times:
        down: set[int] = set()
        for at, kind, node in transitions:
            if at > t:
                break
            (down.add if kind == CRASH else down.discard)(node)
        out.append(down)
    return out


def _frame_marks(
    canvas: SvgCanvas,
    topo,
    positions,
    skews: dict[tuple[int, int], float],
    v_hi: float,
    down: set[int],
    caption: str,
) -> None:
    for i, j in sorted(topo.comm_edges):
        a, b = (i, j) if i < j else (j, i)
        value = skews.get((a, b), 0.0)
        canvas.line(
            *positions[i], *positions[j],
            stroke=sequential_color(value / v_hi if v_hi > 0 else 0.0),
            width=2.2, opacity=0.9, klass="edge",
        )
    for node, (x, y) in sorted(positions.items()):
        if node in down:
            canvas.circle(x, y, 6.0, fill="#ffffff", stroke="#c0392b",
                          stroke_width=1.6, klass="node-down",
                          title=f"node {node} (down)")
        else:
            canvas.circle(x, y, 6.0, fill="#2c3e50", stroke="#ffffff",
                          stroke_width=1.0, klass="node",
                          title=f"node {node}")
        canvas.text(x, y - 9, str(node), size=7, anchor="middle",
                    fill="#555555")
    canvas.text(_PLOT[0], _H - 18, caption, size=9, fill=AXIS_COLOR,
                klass="frame-caption")


def _build(execution):
    snapshots = _snapshots(execution)
    n = execution.topology.n
    duration = execution.duration
    # Sample each snapshot mid-segment: clocks have reacted to the
    # rewiring by then, and the instant is always inside the run.
    frame_times = []
    for k, (t, _) in enumerate(snapshots):
        t_end = snapshots[k + 1][0] if k + 1 < len(snapshots) else duration
        frame_times.append(min(t + 0.5 * max(t_end - t, 0.0), duration))
    values = execution.logical_matrix(frame_times)  # n x K
    layouts = _layout(snapshots, n)
    downs = _down_sets(execution, frame_times)

    per_frame_skews = []
    v_hi = 0.0
    for k, (t, topo) in enumerate(snapshots):
        skews = {}
        for i, j in topo.adjacent_pairs():
            skews[(i, j)] = abs(float(values[i, k] - values[j, k]))
        for i, j in sorted(topo.comm_edges):
            a, b = (i, j) if i < j else (j, i)
            skews.setdefault(
                (a, b), abs(float(values[a, k] - values[b, k]))
            )
        per_frame_skews.append(skews)
        if skews:
            v_hi = max(v_hi, max(skews.values()))
    return snapshots, frame_times, layouts, downs, per_frame_skews, v_hi


def _header(canvas: SvgCanvas, execution, v_hi: float) -> None:
    canvas.text(16, 22, f"mobility [{execution.source}]: "
                        f"{execution.topology.name}, n={execution.topology.n}",
                size=13, weight="bold")
    canvas.text(16, 38,
                f"edges colored by instantaneous adjacent |skew| "
                f"(0 .. {v_hi:.3g})", size=9, fill=AXIS_COLOR)


def mobility_frames(execution) -> list[str]:
    """The numbered-frame series: one standalone SVG per snapshot."""
    snapshots, frame_times, layouts, downs, skews, v_hi = _build(execution)
    frames = []
    for k, (t, topo) in enumerate(snapshots):
        canvas = SvgCanvas(_W, _H, background="#fafafa")
        _header(canvas, execution, v_hi)
        _frame_marks(
            canvas, topo, layouts[k], skews[k], v_hi, downs[k],
            f"frame {k + 1}/{len(snapshots)}: snapshot at t={t:g}, "
            f"sampled at t={frame_times[k]:.3g}",
        )
        frames.append(canvas.to_string())
    return frames


def mobility_animation(execution, *, frame_seconds: float = 0.6) -> str:
    """One SVG cycling through every snapshot via SMIL opacity switching."""
    snapshots, frame_times, layouts, downs, skews, v_hi = _build(execution)
    total = frame_seconds * len(snapshots)
    canvas = SvgCanvas(_W, _H, background="#fafafa")
    _header(canvas, execution, v_hi)
    for k, (t, topo) in enumerate(snapshots):
        start = k / len(snapshots)
        end = (k + 1) / len(snapshots)
        canvas.group_open(klass=f"frame frame-{k}",
                          opacity=1.0 if len(snapshots) == 1 else 0.0)
        if len(snapshots) > 1:
            canvas.add(
                '<animate attributeName="opacity" calcMode="discrete" '
                f'dur="{total:g}s" repeatCount="indefinite" '
                f'values="0;1;0" '
                f'keyTimes="0;{start:.6g};{min(end, 1.0):.6g}"/>'
            )
        _frame_marks(
            canvas, topo, layouts[k], skews[k], v_hi, downs[k],
            f"frame {k + 1}/{len(snapshots)}: snapshot at t={t:g}, "
            f"sampled at t={frame_times[k]:.3g}",
        )
        canvas.group_close()
    return canvas.to_string()
