"""The ``viz`` verb: render figures from the shell.

Reached as ``python -m repro.experiments viz …`` or via the
``repro-viz`` console script.  Three subcommands::

    repro-viz dashboard --topology line --nodes 16 --alg gradient \\
        --faults crash-recover:0.25,5 --out figures/
    repro-viz report sweep.json --out figures/
    repro-viz experiment E02 --scale quick --out figures/

``dashboard`` re-runs one scenario cell (the same spec strings the
sweep grid uses, with tracing on so event markers appear) and writes
the skew-field dashboard plus the mobility animation; ``report``
renders a saved sweep JSON artifact into ``report.svg``/``report.json``;
``experiment`` runs a registered experiment and charts its tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main", "build_parser", "run_scenario"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-viz",
        description=(
            "Render SVG figures from executions, sweep artifacts, and "
            "experiments — stdlib-only, no display needed."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dash = sub.add_parser(
        "dashboard", help="simulate one scenario and render its skew field"
    )
    dash.add_argument("--topology", default="line",
                      help="topology kind or full spec like grid:3,4")
    dash.add_argument("--nodes", type=int, default=8,
                      help="node count for 1-argument kinds")
    dash.add_argument("--alg", "--algorithm", dest="algorithm",
                      default="gradient", help="algorithm spec")
    dash.add_argument("--rates", default="drifted")
    dash.add_argument("--delays", default="uniform")
    dash.add_argument("--faults", default="none",
                      help="fault-family spec, e.g. crash-recover:0.25,5")
    dash.add_argument("--mobility", default="static",
                      help="mobility-family spec, e.g. waypoint:0.5")
    dash.add_argument("--duration", type=float, default=20.0)
    dash.add_argument("--rho", type=float, default=0.2)
    dash.add_argument("--seed", type=int, default=0)
    dash.add_argument("--out", default="viz-out", metavar="DIR")
    dash.add_argument("--frames", action="store_true",
                      help="also write numbered mobility stills")

    rep = sub.add_parser(
        "report", help="render a sweep JSON artifact as report.svg/.json"
    )
    rep.add_argument("artifact", help="sweep artifact (from sweep --json-out)")
    rep.add_argument("--out", default="viz-out", metavar="DIR")
    rep.add_argument("--group-key", default="algorithm",
                     help="metric key the bars are grouped by")
    rep.add_argument("--title", default=None)

    exp = sub.add_parser(
        "experiment", help="run one experiment and chart its tables"
    )
    exp.add_argument("id", help="experiment id (E01..E16)")
    exp.add_argument("--scale", choices=["quick", "full"], default="quick")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--workers", type=int, default=1)
    exp.add_argument("--out", default="viz-out", metavar="DIR")
    return parser


def run_scenario(
    *,
    topology: str,
    algorithm: str,
    rates: str = "drifted",
    delays: str = "uniform",
    faults: str = "none",
    mobility: str = "static",
    duration: float = 20.0,
    rho: float = 0.2,
    seed: int = 0,
):
    """Simulate one sweep-style scenario cell with tracing on.

    The same spec-string plumbing as the ``benign-run`` job kind, but
    the trace is always recorded so dashboards get their CRASH /
    RECOVER / TopologyChange markers.
    """
    from repro.sim.simulator import SimConfig, run_simulation
    from repro.sweep.families import (
        algorithm_from_spec,
        delay_policy_from_spec,
        fault_plan_from_spec,
        mobility_from_spec,
        rates_from_spec,
        topology_from_spec,
    )

    topo = topology_from_spec(topology)
    alg = algorithm_from_spec(algorithm)
    dynamic = mobility_from_spec(mobility, topo, seed=seed, horizon=duration)
    if dynamic is not None:
        topo = dynamic.initial
    return run_simulation(
        dynamic if dynamic is not None else topo,
        alg.processes(topo),
        SimConfig(duration=duration, rho=rho, seed=seed, record_trace=True),
        rate_schedules=rates_from_spec(
            rates, topo, rho=rho, seed=seed, horizon=duration
        ),
        delay_policy=delay_policy_from_spec(delays),
        fault_plan=fault_plan_from_spec(
            faults, topo, seed=seed, horizon=duration
        ),
    )


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.viz.dashboard import skew_dashboard
    from repro.viz.mobility import mobility_animation, mobility_frames

    topology_spec = (
        args.topology if ":" in args.topology
        else f"{args.topology}:{args.nodes}"
    )
    execution = run_scenario(
        topology=topology_spec,
        algorithm=args.algorithm,
        rates=args.rates,
        delays=args.delays,
        faults=args.faults,
        mobility=args.mobility,
        duration=args.duration,
        rho=args.rho,
        seed=args.seed,
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    dash_path = out / "dashboard.svg"
    dash_path.write_text(skew_dashboard(execution), encoding="utf-8")
    written.append(dash_path)
    anim_path = out / "mobility.svg"
    anim_path.write_text(mobility_animation(execution), encoding="utf-8")
    written.append(anim_path)
    if args.frames:
        for k, frame in enumerate(mobility_frames(execution)):
            frame_path = out / f"mobility_{k:03d}.svg"
            frame_path.write_text(frame, encoding="utf-8")
            written.append(frame_path)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.viz.report import rows_from_artifact, write_report

    with open(args.artifact) as handle:
        payload = json.load(handle)
    rows = rows_from_artifact(payload)
    title = args.title or (
        f"sweep '{payload.get('spec', {}).get('name', 'sweep')}' report"
    )
    svg_path, json_path = write_report(
        args.out, rows, title=title, group_key=args.group_key
    )
    print(f"wrote {svg_path}")
    print(f"wrote {json_path}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment
    from repro.viz.report import experiment_report

    result = run_experiment(
        args.id.upper(), args.scale, seed=args.seed, workers=args.workers
    )
    svg = experiment_report(result)
    if svg is None:
        print(f"error: {args.id} produced no chartable tables",
              file=sys.stderr)
        return 2
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{result.experiment_id.lower()}.svg"
    path.write_text(svg, encoding="utf-8")
    print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "dashboard":
            return _cmd_dashboard(args)
        if args.command == "report":
            return _cmd_report(args)
        return _cmd_experiment(args)
    except (ReproError, OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
