"""Reusable chart panels: the mid-level vocabulary of every dashboard.

A *panel* is a rectangular region of an :class:`~repro.viz.svg.SvgCanvas`
with axes, ticks, and one kind of mark.  Dashboards and reports are
compositions of three panel kinds:

* :func:`line_panel` — time series with optional vertical event markers
  (CRASH / RECOVER / topology changes) and segment boundaries;
* :func:`heatmap_panel` — a matrix of colored cells with a colorbar,
  column-downsampled so arbitrarily long sample grids stay renderable;
* :func:`bar_panel` — grouped bars for per-cell sweep metrics.

Everything is pure string assembly over the canvas primitives; there is
no layout engine, just explicit ``(x, y, w, h)`` rectangles, which keeps
render cost linear in the number of marks (the viz benchmark records
heatmap cells/second).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.viz.svg import SvgCanvas, sequential_color

__all__ = [
    "EventMarker",
    "Series",
    "nice_ticks",
    "line_panel",
    "heatmap_panel",
    "bar_panel",
    "stat_strip",
    "downsample_columns",
]

#: Marker palette by trace-event kind.
MARKER_COLORS = {
    "crash": "#c0392b",
    "recover": "#1e8449",
    "topology": "#2471a3",
}

AXIS_COLOR = "#555555"
GRID_COLOR = "#dddddd"
SERIES_COLORS = ("#2471a3", "#c0392b", "#1e8449", "#8e44ad", "#b7950b", "#148f77")


@dataclass(frozen=True)
class EventMarker:
    """One vertical marker: a trace event projected onto the time axis."""

    time: float
    kind: str
    label: str = ""


@dataclass
class Series:
    """One named polyline."""

    label: str
    xs: Sequence[float]
    ys: Sequence[float]
    color: str | None = None
    dash: str | None = None
    points: list = field(default_factory=list)


def nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """A 1-2-5 tick ladder covering ``[lo, hi]``."""
    if not (math.isfinite(lo) and math.isfinite(hi)):
        return [0.0]
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(target, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mult * magnitude
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12 * max(1.0, abs(hi)):
        ticks.append(round(t, 10))
        t += step
    return ticks or [lo]


def _frame(canvas: SvgCanvas, x: float, y: float, w: float, h: float, title: str) -> None:
    canvas.rect(x, y, w, h, fill="#ffffff", stroke=AXIS_COLOR, stroke_width=1.0)
    if title:
        canvas.text(x, y - 6, title, size=11, weight="bold", klass="panel-title")


def _x_axis(
    canvas: SvgCanvas, x: float, y: float, w: float, h: float,
    lo: float, hi: float, label: str,
) -> None:
    for t in nice_ticks(lo, hi):
        px = x + (t - lo) / (hi - lo or 1.0) * w
        canvas.line(px, y, px, y + h, stroke=GRID_COLOR, width=0.5)
        canvas.text(px, y + h + 12, f"{t:g}", size=8, anchor="middle", fill=AXIS_COLOR)
    if label:
        canvas.text(x + w / 2, y + h + 24, label, size=9, anchor="middle", fill=AXIS_COLOR)


def line_panel(
    canvas: SvgCanvas,
    x: float,
    y: float,
    w: float,
    h: float,
    series: Sequence[Series],
    *,
    title: str = "",
    x_label: str = "time",
    y_label: str = "",
    markers: Sequence[EventMarker] = (),
    boundaries: Sequence[float] = (),
    y_floor: float = 0.0,
) -> None:
    """Draw time series with event markers and segment boundaries."""
    _frame(canvas, x, y, w, h, title)
    xs_all = [float(v) for s in series for v in s.xs]
    ys_all = [float(v) for s in series for v in s.ys if math.isfinite(float(v))]
    x_lo, x_hi = (min(xs_all), max(xs_all)) if xs_all else (0.0, 1.0)
    y_lo = min([y_floor] + ys_all) if ys_all else 0.0
    y_hi = max(ys_all) if ys_all else 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    span_x = x_hi - x_lo or 1.0
    span_y = y_hi - y_lo

    def px(t: float) -> float:
        return x + (t - x_lo) / span_x * w

    def py(v: float) -> float:
        return y + h - (v - y_lo) / span_y * h

    _x_axis(canvas, x, y, w, h, x_lo, x_hi, x_label)
    for tick in nice_ticks(y_lo, y_hi, 4):
        canvas.line(x, py(tick), x + w, py(tick), stroke=GRID_COLOR, width=0.5)
        canvas.text(x - 4, py(tick) + 3, f"{tick:g}", size=8, anchor="end", fill=AXIS_COLOR)
    if y_label:
        canvas.text(x - 34, y + h / 2, y_label, size=9, anchor="middle",
                    fill=AXIS_COLOR, rotate=-90.0)

    for boundary in boundaries:
        if x_lo <= boundary <= x_hi:
            canvas.line(px(boundary), y, px(boundary), y + h,
                        stroke="#999999", width=1.0, dash="4,3",
                        klass="segment-boundary")
    for marker in markers:
        if not (x_lo <= marker.time <= x_hi):
            continue
        color = MARKER_COLORS.get(marker.kind, "#666666")
        canvas.line(px(marker.time), y, px(marker.time), y + h,
                    stroke=color, width=1.2, opacity=0.8,
                    klass=f"event-{marker.kind}")

    legend_x = x + 8
    for k, s in enumerate(series):
        color = s.color or SERIES_COLORS[k % len(SERIES_COLORS)]
        pts = [
            (px(float(t)), py(float(v)))
            for t, v in zip(s.xs, s.ys)
            if math.isfinite(float(v))
        ]
        canvas.polyline(pts, stroke=color, width=1.5, klass="series")
        canvas.line(legend_x, y + 10 + 12 * k, legend_x + 14, y + 10 + 12 * k,
                    stroke=color, width=2.0)
        canvas.text(legend_x + 18, y + 13 + 12 * k, s.label, size=8, fill="#333333")


def downsample_columns(matrix: np.ndarray, limit: int = 256) -> tuple[np.ndarray, int]:
    """Max-pool matrix columns down to ``limit``.

    Max (not mean) pooling, so a one-sample skew spike survives the
    downsampling — a dashboard that hides peaks would lie about exactly
    the quantity the paper bounds.  Returns ``(matrix, stride)``.
    """
    m = np.asarray(matrix, dtype=float)
    cols = m.shape[-1]
    if cols <= limit:
        return m, 1
    stride = math.ceil(cols / limit)
    pad = (-cols) % stride
    if pad:
        tail = np.repeat(m[..., -1:], pad, axis=-1)
        m = np.concatenate([m, tail], axis=-1)
    pooled = m.reshape(*m.shape[:-1], -1, stride).max(axis=-1)
    return pooled, stride


def heatmap_panel(
    canvas: SvgCanvas,
    x: float,
    y: float,
    w: float,
    h: float,
    matrix: np.ndarray,
    *,
    title: str = "",
    row_labels: Sequence[str] = (),
    x_extent: tuple[float, float] | None = None,
    x_label: str = "time",
    vmin: float | None = None,
    vmax: float | None = None,
    colorbar: bool = True,
    mask: np.ndarray | None = None,
    markers: Sequence[EventMarker] = (),
) -> int:
    """Draw a rows x columns heatmap; returns the number of cells drawn.

    ``mask`` (same shape, truthy = not-in-force) grays cells out — used
    for adjacent pairs that are not adjacent in the current topology
    segment of a dynamic run.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.size == 0:
        raise ValueError("heatmap needs a non-empty 2-D matrix")
    m, stride = downsample_columns(m)
    if mask is not None:
        mask = np.asarray(mask)
        mask, _ = downsample_columns(mask.astype(float))
        mask = mask > 0.5
    rows, cols = m.shape
    finite = m[np.isfinite(m)]
    lo = float(vmin) if vmin is not None else (float(finite.min()) if finite.size else 0.0)
    hi = float(vmax) if vmax is not None else (float(finite.max()) if finite.size else 1.0)
    if hi <= lo:
        hi = lo + 1.0
    _frame(canvas, x, y, w, h, title)
    cell_w, cell_h = w / cols, h / rows
    for i in range(rows):
        for k in range(cols):
            if mask is not None and mask[i, k]:
                fill = "#f0f0f0"
            else:
                fill = sequential_color((m[i, k] - lo) / (hi - lo))
            canvas.rect(x + k * cell_w, y + i * cell_h, cell_w + 0.05,
                        cell_h + 0.05, fill=fill, klass=None)
    for i, label in enumerate(row_labels):
        if rows > 24 and i % max(1, rows // 24):
            continue
        canvas.text(x - 4, y + (i + 0.5) * cell_h + 3, str(label), size=7,
                    anchor="end", fill=AXIS_COLOR)
    if x_extent is not None:
        x_lo, x_hi = x_extent
        for t in nice_ticks(x_lo, x_hi):
            px = x + (t - x_lo) / (x_hi - x_lo or 1.0) * w
            canvas.text(px, y + h + 10, f"{t:g}", size=8, anchor="middle",
                        fill=AXIS_COLOR)
        canvas.text(x + w / 2, y + h + 22, x_label, size=9, anchor="middle",
                    fill=AXIS_COLOR)
        for marker in markers:
            if x_lo <= marker.time <= x_hi:
                px = x + (marker.time - x_lo) / (x_hi - x_lo or 1.0) * w
                canvas.line(px, y, px, y + h,
                            stroke=MARKER_COLORS.get(marker.kind, "#666666"),
                            width=1.2, opacity=0.9, klass=f"event-{marker.kind}")
    if colorbar:
        bar_x, bar_w = x + w + 10, 10.0
        steps = 24
        for s in range(steps):
            canvas.rect(bar_x, y + h - (s + 1) * h / steps, bar_w, h / steps + 0.5,
                        fill=sequential_color(s / (steps - 1)))
        canvas.rect(bar_x, y, bar_w, h, stroke=AXIS_COLOR, stroke_width=0.8)
        canvas.text(bar_x + bar_w + 3, y + 8, f"{hi:.3g}", size=8, fill=AXIS_COLOR)
        canvas.text(bar_x + bar_w + 3, y + h, f"{lo:.3g}", size=8, fill=AXIS_COLOR)
    return rows * cols


def bar_panel(
    canvas: SvgCanvas,
    x: float,
    y: float,
    w: float,
    h: float,
    groups: Sequence[str],
    series: Sequence[tuple[str, Sequence[float]]],
    *,
    title: str = "",
    y_label: str = "",
) -> None:
    """Grouped vertical bars: one cluster per group, one bar per series."""
    _frame(canvas, x, y, w, h, title)
    values = [
        float(v) for _, vs in series for v in vs if math.isfinite(float(v))
    ]
    hi = max(values) if values else 1.0
    if hi <= 0:
        hi = 1.0
    for tick in nice_ticks(0.0, hi, 4):
        ty = y + h - tick / hi * h
        canvas.line(x, ty, x + w, ty, stroke=GRID_COLOR, width=0.5)
        canvas.text(x - 4, ty + 3, f"{tick:g}", size=8, anchor="end", fill=AXIS_COLOR)
    if y_label:
        canvas.text(x - 34, y + h / 2, y_label, size=9, anchor="middle",
                    fill=AXIS_COLOR, rotate=-90.0)
    n_groups, n_series = max(len(groups), 1), max(len(series), 1)
    slot = w / n_groups
    bar_w = slot * 0.8 / n_series
    for g, group in enumerate(groups):
        for s, (label, vs) in enumerate(series):
            v = float(vs[g]) if g < len(vs) else float("nan")
            if not math.isfinite(v):
                continue
            bar_h = max(0.0, v / hi * h)
            canvas.rect(
                x + g * slot + slot * 0.1 + s * bar_w,
                y + h - bar_h,
                bar_w,
                bar_h,
                fill=SERIES_COLORS[s % len(SERIES_COLORS)],
                klass="bar",
                title=f"{group} / {label}: {v:.4g}",
            )
        canvas.text(x + (g + 0.5) * slot, y + h + 11, str(group), size=7,
                    anchor="middle", fill=AXIS_COLOR,
                    rotate=-30.0 if len(str(group)) > 10 else None)
    for s, (label, _) in enumerate(series):
        lx = x + 8 + s * (w - 16) / max(n_series, 1)
        canvas.rect(lx, y + 6, 8, 8, fill=SERIES_COLORS[s % len(SERIES_COLORS)])
        canvas.text(lx + 11, y + 13, label, size=8, fill="#333333")


def stat_strip(
    canvas: SvgCanvas,
    x: float,
    y: float,
    items: Sequence[tuple[str, object]],
    *,
    klass: str = "stats",
) -> None:
    """One row of ``key: value`` facts (run counters, live_stats, ...)."""
    cursor = x
    canvas.group_open(klass=klass)
    for key, value in items:
        text = f"{key}: {value}"
        canvas.text(cursor, y, text, size=9, fill="#333333", klass="stat")
        cursor += 7 * len(text) + 18
    canvas.group_close()
