"""The skew-field dashboard: one SVG per execution, simulated or live.

Renders straight from a :class:`~repro.analysis.field.SkewField`'s
``n x T`` trajectory matrix — the same batched measurement path every
table uses — so the figures and the numbers can never disagree:

* **max / adjacent skew time series** with CRASH / RECOVER /
  TopologyChange markers projected from the trace and dashed
  topology-segment boundaries from ``Execution.topology_timeline``;
* **per-pair heatmap** — ``|L_i - L_j|`` over time for every pair that
  is adjacent in *some* topology segment; cells where the pair is not
  in force are grayed out (dynamic runs only);
* **pairwise peak heatmap** — ``max_t |L_i - L_j|`` for every ordered
  pair, the matrix the gradient profile folds;
* **empirical gradient profile** ``f(d)`` as a step series;
* a **stat strip** carrying ``source``, ``live_stats`` (frames dropped /
  routed, workers), ``fault_stats`` counters, and rewiring counts.

All rendering is headless string assembly; ``save_svg`` writes to paths
or in-memory buffers.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.field import SkewField
from repro.sim.trace import CRASH, RECOVER, TOPOLOGY
from repro.viz.panels import (
    EventMarker,
    Series,
    heatmap_panel,
    line_panel,
    stat_strip,
)
from repro.viz.svg import SvgCanvas

__all__ = ["skew_dashboard", "trace_markers", "dashboard_field"]

#: Cap on pair-heatmap rows; beyond it the worst rows are kept.
MAX_PAIR_ROWS = 48


def trace_markers(execution) -> list[EventMarker]:
    """CRASH / RECOVER / TopologyChange events as time-axis markers."""
    markers = [
        EventMarker(time=e.real_time, kind=e.kind,
                    label=f"{e.kind}@{e.node}" if e.node >= 0 else e.kind)
        for e in execution.trace.of_kind(CRASH, RECOVER, TOPOLOGY)
    ]
    markers.sort(key=lambda m: m.time)
    return markers


def dashboard_field(execution, *, step: float | None = None) -> SkewField:
    """A dashboard-resolution field: ~256 sample columns regardless of
    duration, so render cost does not scale with run length."""
    if step is None:
        step = max(execution.duration / 256.0, 1e-3)
    return SkewField(execution, step=step)


def _segment_boundaries(execution) -> list[float]:
    timeline = execution.topology_timeline
    if timeline is None or len(timeline) <= 1:
        return []
    return [t for t, _ in timeline[1:]]


def _pair_heatmap_data(field: SkewField):
    """(matrix, mask, labels): per-pair |skew| rows over the sample grid.

    Rows are the union of adjacent pairs over all topology segments;
    the mask grays a row's cells wherever that pair is not adjacent in
    the segment owning the column.
    """
    segments = field.topology_segments()
    union: list[tuple[int, int]] = []
    seen = set()
    for topo, _ in segments:
        for pair in topo.adjacent_pairs():
            if pair not in seen:
                seen.add(pair)
                union.append(pair)
    union.sort()
    matrix = np.empty((len(union), field.n_samples))
    mask = np.ones((len(union), field.n_samples), dtype=bool)
    for row, (i, j) in enumerate(union):
        matrix[row] = np.abs(field.values[i] - field.values[j])
        for topo, cols in segments:
            if (i, j) in set(topo.adjacent_pairs()):
                mask[row, cols] = False
    labels = [f"{i}-{j}" for i, j in union]
    if len(union) > MAX_PAIR_ROWS:
        worst = np.argsort(-matrix.max(axis=1))[:MAX_PAIR_ROWS]
        worst = np.sort(worst)
        matrix, mask = matrix[worst], mask[worst]
        labels = [labels[k] for k in worst]
    return matrix, mask, labels


def _peak_pair_matrix(field: SkewField) -> np.ndarray:
    """``max_t |L_i - L_j|`` for every pair — one row broadcast per node."""
    n = field.n
    peak = np.zeros((n, n))
    for i in range(n):
        peak[i] = np.abs(field.values - field.values[i]).max(axis=1)
    return peak


def _stats_items(execution) -> list[tuple[str, object]]:
    items: list[tuple[str, object]] = [
        ("source", execution.source),
        ("nodes", execution.topology.n),
        ("diameter", f"{execution.topology.diameter:g}"),
        ("duration", f"{execution.duration:g}"),
        ("messages", len(execution.messages)),
    ]
    live = execution.live_stats or {}
    for key in ("frames_dropped", "frames_routed", "events", "workers", "processes"):
        if key in live:
            items.append((key, live[key]))
    if execution.fault_stats:
        fired = {k: v for k, v in execution.fault_stats.items() if v}
        items.append(("faults", fired or "none fired"))
    if execution.is_dynamic:
        items.append(("rewirings", len(execution.topology_timeline) - 1))
    return items


def skew_dashboard(
    execution,
    *,
    field: SkewField | None = None,
    step: float | None = None,
    title: str | None = None,
) -> str:
    """Render one execution's skew field as a self-contained SVG string."""
    field = dashboard_field(execution, step=step) if field is None else field
    markers = trace_markers(execution)
    boundaries = _segment_boundaries(execution)
    times = field.times

    canvas = SvgCanvas(980, 620, background="#fafafa")
    canvas.text(
        16, 24,
        title or f"skew field [{execution.source}]: "
                 f"{execution.topology.name}, n={execution.topology.n}",
        size=14, weight="bold", klass="dashboard-title",
    )
    stat_strip(canvas, 16, 44, _stats_items(execution))

    line_panel(
        canvas, 60, 80, 560, 170,
        [
            Series("max skew", times, field.max_skew_series()),
            Series("max adjacent skew", times, field.max_adjacent_series()),
        ],
        title="global and adjacent skew over time",
        y_label="skew",
        markers=markers,
        boundaries=boundaries,
    )

    pair_matrix, pair_mask, pair_labels = _pair_heatmap_data(field)
    heatmap_panel(
        canvas, 60, 320, 560, 230,
        pair_matrix,
        title=f"adjacent-pair |skew| ({len(pair_labels)} pairs)",
        row_labels=pair_labels,
        x_extent=(float(times[0]), float(times[-1])),
        mask=pair_mask if pair_mask.any() else None,
        markers=markers,
    )

    heatmap_panel(
        canvas, 710, 80, 190, 190,
        _peak_pair_matrix(field),
        title="peak pairwise skew",
        x_extent=None,
        colorbar=True,
    )

    profile = field.gradient_profile()
    distances = sorted(profile)
    line_panel(
        canvas, 710, 320, 190, 170,
        [Series("f(d)", distances, [profile[d] for d in distances],
                color="#8e44ad")],
        title="empirical gradient profile",
        x_label="distance d",
        y_label="max |skew|",
    )
    return canvas.to_string()
