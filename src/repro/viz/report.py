"""Sweep and experiment report artifacts: ``report.svg`` + ``report.json``.

The sweep engine and the experiment CLIs gain a ``--report DIR`` hook
that lands here: :func:`render_report` turns a list of per-job metric
dicts (the ``benign-run`` / ``live-run`` schema) into one figure —
grouped bars of the headline skew metrics per scenario cell, averaged
over seeds, with live-transport counter rows included — and
:func:`report_payload` emits the matching machine-readable summary, so
every figure ships with the numbers it was drawn from.

:func:`experiment_report` renders an
:class:`~repro.experiments.common.ExperimentResult`: experiments may
declare *figure specs* (``result.figures``) naming the table, the x
column, and the y columns to chart; without a spec the renderer
auto-detects numeric columns of each table.  Either way the charts are
drawn from the very tables the experiment prints.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Mapping, Sequence

from repro.sweep.aggregate import CELL_KEYS
from repro.viz.panels import Series, bar_panel, line_panel, stat_strip
from repro.viz.svg import SvgCanvas

__all__ = [
    "render_report",
    "report_payload",
    "write_report",
    "rows_from_artifact",
    "experiment_report",
]

#: Headline metrics charted per cell (means over seeds).
REPORT_METRICS = ("max_skew", "max_adjacent_skew", "final_skew")

#: Live-transport counters folded into the JSON summary when present.
LIVE_COUNTERS = ("frames_dropped", "frames_routed", "events", "workers")


def rows_from_artifact(payload: Mapping) -> list[dict]:
    """Metric rows from a sweep JSON artifact (``to_json_payload`` shape)."""
    jobs = payload.get("jobs")
    if jobs is None:
        raise ValueError("not a sweep artifact: missing 'jobs'")
    return [dict(job["metrics"]) for job in jobs]


def _varying_keys(rows: Sequence[Mapping], exclude: str) -> list[str]:
    keys = []
    for key in CELL_KEYS:
        if key == exclude:
            continue
        values = {str(row.get(key, "-")) for row in rows}
        if len(values) > 1:
            keys.append(key)
    return keys


def _aggregate(rows: Sequence[Mapping], group_key: str):
    """(cell labels, groups, per-metric value grid, per-cell summaries)."""
    label_keys = _varying_keys(rows, group_key) or [
        k for k in CELL_KEYS if k != group_key
    ][:1]
    cells: dict[tuple, dict[str, list[Mapping]]] = {}
    for row in rows:
        cell = tuple(str(row.get(k, "-")) for k in label_keys)
        group = str(row.get(group_key, "-"))
        cells.setdefault(cell, {}).setdefault(group, []).append(row)
    groups = sorted({g for per in cells.values() for g in per})
    labels = ["/".join(cell) for cell in cells]
    summaries = []
    for cell, per_group in cells.items():
        for group in groups:
            bucket = per_group.get(group, [])
            if not bucket:
                continue
            summary = {
                "cell": dict(zip(label_keys, cell)),
                group_key: group,
                "seeds": len(bucket),
            }
            for m in REPORT_METRICS:
                values = [float(r[m]) for r in bucket if m in r]
                summary[f"mean_{m}"] = (
                    statistics.fmean(values) if values else None
                )
            for counter in LIVE_COUNTERS:
                values = [int(r[counter]) for r in bucket if counter in r]
                if values:
                    summary[counter] = sum(values)
            summaries.append(summary)
    # Re-walk into the grid shape bar_panel wants: series = group,
    # one value per cell label.
    series_values: dict[str, dict[str, list[float]]] = {
        m: {g: [] for g in groups} for m in REPORT_METRICS
    }
    for cell, per_group in cells.items():
        for group in groups:
            bucket = per_group.get(group, [])
            for m in REPORT_METRICS:
                values = [float(r[m]) for r in bucket if m in r]
                series_values[m][group].append(
                    statistics.fmean(values) if values else float("nan")
                )
    return labels, groups, series_values, summaries


def render_report(
    rows: Sequence[Mapping],
    *,
    title: str = "sweep report",
    group_key: str = "algorithm",
) -> str:
    """Render per-cell metric bars (one panel per headline metric)."""
    if not rows:
        raise ValueError("render_report needs at least one metric row")
    labels, groups, series_values, _ = _aggregate(rows, group_key)
    panel_h, gap, top = 150, 60, 70
    height = top + len(REPORT_METRICS) * (panel_h + gap) + 20
    canvas = SvgCanvas(880, height, background="#fafafa")
    canvas.text(16, 24, title, size=14, weight="bold", klass="report-title")
    transports = sorted({str(r.get("transport", "sim")) for r in rows})
    dropped = sum(int(r.get("frames_dropped", 0)) for r in rows)
    stat_strip(
        canvas, 16, 44,
        [
            ("jobs", len(rows)),
            ("cells", len(labels)),
            (group_key + "s", len(groups)),
            ("transports", ",".join(transports)),
            ("frames_dropped", dropped),
        ],
    )
    for k, metric in enumerate(REPORT_METRICS):
        bar_panel(
            canvas, 70, top + 20 + k * (panel_h + gap), 740, panel_h,
            labels,
            [(g, series_values[metric][g]) for g in groups],
            title=f"mean {metric} per cell (grouped by {group_key})",
            y_label=metric,
        )
    return canvas.to_string()


def report_payload(
    rows: Sequence[Mapping],
    *,
    title: str = "sweep report",
    group_key: str = "algorithm",
) -> dict:
    """The machine-readable counterpart of :func:`render_report`."""
    _, groups, _, summaries = _aggregate(rows, group_key)
    return {
        "title": title,
        "group_key": group_key,
        "groups": groups,
        "metrics": list(REPORT_METRICS),
        "rows": summaries,
        "n_jobs": len(rows),
    }


def write_report(
    out_dir: str | Path,
    rows: Sequence[Mapping],
    *,
    title: str = "sweep report",
    group_key: str = "algorithm",
) -> tuple[Path, Path]:
    """Write ``report.svg`` + ``report.json`` under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    svg_path = out / "report.svg"
    json_path = out / "report.json"
    svg_path.write_text(
        render_report(rows, title=title, group_key=group_key),
        encoding="utf-8",
    )
    json_path.write_text(
        json.dumps(
            report_payload(rows, title=title, group_key=group_key),
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    return svg_path, json_path


# ----------------------------------------------------------------------
# experiment figures


def _numeric(cell: str) -> float | None:
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def _table_figure(canvas, x, y, w, h, table, spec: Mapping | None) -> bool:
    """Chart one Table per its figure spec (or auto-detected columns)."""
    headers = list(table.headers)
    if spec is not None:
        x_col = spec.get("x", headers[0])
        y_cols = [c for c in spec.get("y", []) if c in headers]
        kind = spec.get("kind", "line")
        title = spec.get("title", table.title)
    else:
        x_col, kind, title = headers[0], "bar", table.title
        y_cols = []
        for col in headers[1:]:
            idx = headers.index(col)
            values = [_numeric(row[idx]) for row in table.rows]
            if values and all(v is not None for v in values):
                y_cols.append(col)
            if len(y_cols) == 3:
                break
    if not y_cols or not table.rows:
        return False
    x_idx = headers.index(x_col) if x_col in headers else 0
    labels = [row[x_idx] for row in table.rows]
    series = []
    for col in y_cols:
        idx = headers.index(col)
        series.append(
            (col, [v if (v := _numeric(row[idx])) is not None else float("nan")
                   for row in table.rows])
        )
    if kind == "line" and all(
        _numeric(label) is not None for label in labels
    ):
        line_panel(
            canvas, x, y, w, h,
            [Series(col, [float(l) for l in labels], values)
             for col, values in series],
            title=title[:80], x_label=x_col, y_label="",
        )
    else:
        bar_panel(canvas, x, y, w, h, labels, series, title=title[:80])
    return True


def experiment_report(result) -> str | None:
    """Render an ExperimentResult's tables as one figure column.

    Uses the experiment's declared ``figures`` specs when present,
    otherwise auto-charts up to three tables with numeric columns.
    Returns ``None`` when nothing in the result is chartable.
    """
    specs = list(getattr(result, "figures", None) or [])
    plans: list[tuple[object, Mapping | None]] = []
    if specs:
        for spec in specs:
            index = int(spec.get("table", 0))
            if 0 <= index < len(result.tables):
                plans.append((result.tables[index], spec))
    else:
        plans = [(table, None) for table in result.tables[:3]]
    if not plans:
        return None
    panel_h, gap, top = 170, 70, 60
    canvas = SvgCanvas(
        880, top + len(plans) * (panel_h + gap) + 20, background="#fafafa"
    )
    canvas.text(16, 24, f"{result.experiment_id}: {result.title}",
                size=14, weight="bold", klass="report-title")
    canvas.text(16, 42, f"paper artifact: {result.paper_artifact}", size=9,
                fill="#555555")
    drew = 0
    for table, spec in plans:
        if _table_figure(
            canvas, 80, top + 20 + drew * (panel_h + gap), 720, panel_h,
            table, spec,
        ):
            drew += 1
    return canvas.to_string() if drew else None
