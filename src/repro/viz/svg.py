"""A dependency-light SVG writer: the drawing substrate of :mod:`repro.viz`.

Everything this package renders — skew dashboards, mobility animations,
sweep reports, streaming-tail frames — is SVG text assembled by a
:class:`SvgCanvas`.  SVG is the right artifact format here: it is plain
UTF-8 (diffable, greppable, versionable next to the tables it
illustrates), renders in any browser, and needs no third-party imaging
stack, so every renderer runs headless in CI and draws into in-memory
buffers in tests.

Escaping contract
-----------------
All user-controlled strings (node labels, topology names, spec strings)
pass through :func:`escape_text` / :func:`escape_attr`, which both
XML-escape *and* strip characters that are invalid in XML 1.0 (control
characters other than tab/newline/CR).  Tests pin this with a hypothesis
property: any label round-trips through ``xml.etree`` parsing.

Colors come from two small interpolated ramps (:func:`sequential_color`,
:func:`diverging_color`) so heatmaps and edge colorings look the same in
every renderer without an external colormap library.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence

__all__ = [
    "SvgCanvas",
    "escape_text",
    "escape_attr",
    "sequential_color",
    "diverging_color",
    "save_svg",
]

#: Characters XML 1.0 forbids outright (control chars except \t \n \r).
_INVALID_XML = {c: None for c in range(0x20) if c not in (0x09, 0x0A, 0x0D)}
_INVALID_XML[0x7F] = None


def _sanitize(value: str) -> str:
    """Drop characters that no XML document may contain."""
    return str(value).translate(_INVALID_XML)


def escape_text(value: str) -> str:
    """Escape a string for use as SVG element text."""
    return (
        _sanitize(value)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def escape_attr(value: str) -> str:
    """Escape a string for use inside a double-quoted SVG attribute."""
    return escape_text(value).replace('"', "&quot;")


def _fmt(number: float) -> str:
    """Compact coordinate formatting (SVG files get large fast)."""
    text = f"{float(number):.2f}".rstrip("0").rstrip(".")
    return text if text else "0"


# ----------------------------------------------------------------------
# color ramps (anchor-interpolated; no external colormap dependency)

#: Viridis-like anchors, dark-to-bright — perceptually ordered, so a
#: heatmap's "hotter" cells read as hotter in grayscale too.
_SEQUENTIAL = (
    (68, 1, 84),
    (65, 68, 135),
    (42, 120, 142),
    (34, 168, 132),
    (122, 209, 81),
    (253, 231, 37),
)

#: Blue - light gray - red, for signed quantities.
_DIVERGING = (
    (59, 76, 192),
    (221, 221, 221),
    (180, 4, 38),
)


def _ramp(anchors: Sequence[tuple[int, int, int]], t: float) -> str:
    if t != t:  # NaN guards: render as mid-gray, never crash a panel
        return "#999999"
    t = min(max(float(t), 0.0), 1.0)
    scaled = t * (len(anchors) - 1)
    k = min(int(scaled), len(anchors) - 2)
    frac = scaled - k
    lo, hi = anchors[k], anchors[k + 1]
    r, g, b = (round(a + (b_ - a) * frac) for a, b_ in zip(lo, hi))
    return f"#{r:02x}{g:02x}{b:02x}"


def sequential_color(t: float) -> str:
    """Map ``t in [0, 1]`` onto the sequential (magnitude) ramp."""
    return _ramp(_SEQUENTIAL, t)


def diverging_color(t: float) -> str:
    """Map ``t in [0, 1]`` onto the diverging (signed) ramp; 0.5 = zero."""
    return _ramp(_DIVERGING, t)


# ----------------------------------------------------------------------
# the canvas


class SvgCanvas:
    """An append-only SVG document builder.

    Primitives append element strings; :meth:`to_string` closes the
    document.  ``klass`` arguments become ``class`` attributes so tests
    (and downstream tooling) can locate marks structurally instead of
    scraping coordinates.
    """

    FONT = "ui-monospace, 'DejaVu Sans Mono', monospace"

    def __init__(self, width: float, height: float, *, background: str = "#ffffff"):
        self.width = float(width)
        self.height = float(height)
        self._parts: list[str] = []
        if background:
            self.rect(0, 0, self.width, self.height, fill=background)

    # -- raw access ----------------------------------------------------

    def add(self, fragment: str) -> None:
        """Append a pre-built SVG fragment (caller escapes its content)."""
        self._parts.append(fragment)

    def _attrs(self, pairs: Iterable[tuple[str, object]]) -> str:
        chunks = []
        for key, value in pairs:
            if value is None:
                continue
            if isinstance(value, float):
                value = _fmt(value)
            chunks.append(f' {key}="{escape_attr(str(value))}"')
        return "".join(chunks)

    # -- primitives ----------------------------------------------------

    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        *,
        fill: str = "none",
        stroke: str | None = None,
        stroke_width: float | None = None,
        opacity: float | None = None,
        klass: str | None = None,
        title: str | None = None,
    ) -> None:
        body = (
            f"<title>{escape_text(title)}</title></rect>" if title else "</rect>"
        )
        self._parts.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" '
            f'height="{_fmt(h)}"'
            + self._attrs(
                [
                    ("fill", fill),
                    ("stroke", stroke),
                    ("stroke-width", stroke_width),
                    ("opacity", opacity),
                    ("class", klass),
                ]
            )
            + (">" + body if title else "/>")
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        stroke: str = "#000000",
        width: float = 1.0,
        dash: str | None = None,
        opacity: float | None = None,
        klass: str | None = None,
    ) -> None:
        self._parts.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}"'
            + self._attrs(
                [
                    ("stroke", stroke),
                    ("stroke-width", width),
                    ("stroke-dasharray", dash),
                    ("opacity", opacity),
                    ("class", klass),
                ]
            )
            + "/>"
        )

    def polyline(
        self,
        points: Sequence[tuple[float, float]],
        *,
        stroke: str = "#000000",
        width: float = 1.5,
        opacity: float | None = None,
        klass: str | None = None,
    ) -> None:
        if not points:
            return
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._parts.append(
            f'<polyline points="{coords}" fill="none"'
            + self._attrs(
                [
                    ("stroke", stroke),
                    ("stroke-width", width),
                    ("opacity", opacity),
                    ("class", klass),
                ]
            )
            + "/>"
        )

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        *,
        fill: str = "#000000",
        stroke: str | None = None,
        stroke_width: float | None = None,
        opacity: float | None = None,
        klass: str | None = None,
        title: str | None = None,
    ) -> None:
        body = (
            f"<title>{escape_text(title)}</title></circle>" if title else None
        )
        self._parts.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}"'
            + self._attrs(
                [
                    ("fill", fill),
                    ("stroke", stroke),
                    ("stroke-width", stroke_width),
                    ("opacity", opacity),
                    ("class", klass),
                ]
            )
            + (">" + body if body else "/>")
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        size: float = 10.0,
        anchor: str = "start",
        fill: str = "#1a1a1a",
        weight: str | None = None,
        rotate: float | None = None,
        klass: str | None = None,
    ) -> None:
        transform = (
            f"rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"
            if rotate is not None
            else None
        )
        self._parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}"'
            + self._attrs(
                [
                    ("font-size", size),
                    ("font-family", self.FONT),
                    ("text-anchor", anchor),
                    ("fill", fill),
                    ("font-weight", weight),
                    ("transform", transform),
                    ("class", klass),
                ]
            )
            + f">{escape_text(content)}</text>"
        )

    def group_open(self, *, klass: str | None = None, opacity: float | None = None) -> None:
        self._parts.append(
            "<g" + self._attrs([("class", klass), ("opacity", opacity)]) + ">"
        )

    def group_close(self) -> None:
        self._parts.append("</g>")

    # -- output --------------------------------------------------------

    def to_string(self) -> str:
        head = (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">'
        )
        return head + "".join(self._parts) + "</svg>"


def save_svg(svg: str, target) -> None:
    """Write an SVG string to a path or any text/binary buffer.

    Accepts a filesystem path (``str`` / ``PathLike``) or a file-like
    object — tests render into :class:`io.StringIO` so the whole
    pipeline runs without touching disk.
    """
    if hasattr(target, "write"):
        if isinstance(target, (io.RawIOBase, io.BufferedIOBase)) or (
            hasattr(target, "mode") and "b" in getattr(target, "mode", "")
        ):
            target.write(svg.encode("utf-8"))
        else:
            target.write(svg)
        return
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(svg)
