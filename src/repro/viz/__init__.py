"""Observability: headless SVG figures for every execution path.

``repro.viz`` renders what the tables summarize — skew-field dashboards
(:mod:`repro.viz.dashboard`), mobility animations
(:mod:`repro.viz.mobility`), live-run streaming tails
(:mod:`repro.viz.tail`), and sweep/experiment report artifacts
(:mod:`repro.viz.report`) — all by pure string assembly over
:class:`~repro.viz.svg.SvgCanvas`.  No third-party imaging or plotting
dependency, no display: every renderer returns an SVG string and writes
to paths or in-memory buffers via :func:`~repro.viz.svg.save_svg`.
"""

from repro.viz.dashboard import dashboard_field, skew_dashboard, trace_markers
from repro.viz.mobility import mobility_animation, mobility_frames
from repro.viz.panels import EventMarker, Series
from repro.viz.report import (
    experiment_report,
    render_report,
    report_payload,
    rows_from_artifact,
    write_report,
)
from repro.viz.svg import SvgCanvas, save_svg
from repro.viz.tail import StreamingTail

__all__ = [
    "skew_dashboard",
    "dashboard_field",
    "trace_markers",
    "mobility_animation",
    "mobility_frames",
    "StreamingTail",
    "render_report",
    "report_payload",
    "rows_from_artifact",
    "write_report",
    "experiment_report",
    "EventMarker",
    "Series",
    "SvgCanvas",
    "save_svg",
]
