"""Paper constants and closed-form helpers (Fan & Lynch, PODC 2004).

These are the exact constants used by the proofs:

* Assumption 1 bounds hardware clock rates to ``[1 - rho, 1 + rho]`` with
  ``0 <= rho < 1``.
* The Add Skew lemma (Lemma 6.1) uses ``tau = 1 / rho`` and
  ``gamma = 1 + rho / (4 + rho)``.
* Requirement 1 (validity) demands logical clock rate at least
  ``VALIDITY_RATE = 1/2``.
* One application of Add Skew gains at least ``(j - i) * ADD_SKEW_GAIN``
  skew (Claim 6.5 uses ``1/12``).
* The Bounded Increase lemma (Lemma 7.1) bounds one real-time unit of
  logical-clock increase by ``BOUNDED_INCREASE_FACTOR * f(1) = 16 f(1)``.
* Theorem 8.1 shrinks the working interval by ``B = 384 tau f(1)`` per
  round and guarantees skew ``k / 24`` after ``k`` rounds.
"""

from __future__ import annotations

import math

import numpy as np

#: Logical clocks must advance at least this fast (Requirement 1).
VALIDITY_RATE = 0.5

#: Skew gained per Add Skew application is at least ``ADD_SKEW_GAIN * (j - i)``.
ADD_SKEW_GAIN = 1.0 / 12.0

#: Claim 6.5: the sped-up window shortens real time by at least
#: ``(j - i) * MIN_WINDOW_SHRINK`` (the paper's ``1/6``).
MIN_WINDOW_SHRINK = 1.0 / 6.0

#: Lemma 7.1: ``L(t + 1) - L(t) <= 16 f(1)``.
BOUNDED_INCREASE_FACTOR = 16.0

#: Theorem 8.1: skew after round ``k`` is at least ``k * ROUND_SKEW_RATE``.
ROUND_SKEW_RATE = 1.0 / 24.0

#: Theorem 8.1's interval shrink factor is ``384 * tau * f(1)``.
SHRINK_NUMERATOR = 384.0

#: Default drift bound used across experiments; chosen <= 1/2 so that the
#: validity requirement holds with margin for hardware-rate logical clocks.
DEFAULT_RHO = 0.5

#: Absolute tolerance for real-time / clock-value comparisons.
TIME_EPS = 1e-9


def window_starts(
    horizon: float, *, window: float, step: float, t_from: float = 0.0
) -> np.ndarray:
    """Start times of every length-``window`` interval on an integer grid.

    Returns ``t_from + k * step`` for every ``k`` with
    ``t_from + k * step + window <= horizon + TIME_EPS`` — the windows a
    Lemma 7.1 / Requirement 1 sweep must visit.  A ``t += step``
    accumulator drifts by roughly ``count * eps * t`` and, at production
    scales (tens of thousands of windows), silently skips the final
    window near ``horizon``; the integer-index grid cannot.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    span = horizon - t_from - window
    if span < -TIME_EPS:
        return np.empty(0)
    count = max(int(math.floor(span / step + TIME_EPS)) + 1, 0)
    # The division above can land one off for near-integer quotients;
    # re-anchor on the defining inequality exactly.
    while t_from + count * step + window <= horizon + TIME_EPS:
        count += 1
    while count > 0 and t_from + (count - 1) * step + window > horizon + TIME_EPS:
        count -= 1
    return t_from + step * np.arange(count)


def tau(rho: float) -> float:
    """The paper's ``tau = 1 / rho`` (Lemma 6.1)."""
    if not 0.0 < rho < 1.0:
        raise ValueError(f"rho must lie in (0, 1), got {rho}")
    return 1.0 / rho


def gamma(rho: float) -> float:
    """The paper's sped-up rate ``gamma = 1 + rho / (4 + rho)`` (Lemma 6.1).

    Always strictly below ``1 + rho/4``, hence well inside both the drift
    bound ``1 + rho`` and the ``1 + rho/2`` band required by Lemma 7.1.
    """
    if not 0.0 < rho < 1.0:
        raise ValueError(f"rho must lie in (0, 1), got {rho}")
    return 1.0 + rho / (4.0 + rho)


def window_shrink(rho: float, span: float) -> float:
    """Real-time shortening ``T - T' = tau (1 - 1/gamma) span`` of Add Skew.

    Equal to ``span / (4 + 2 rho)``; the paper lower-bounds it by
    ``span / 6`` using ``rho < 1``.
    """
    return tau(rho) * (1.0 - 1.0 / gamma(rho)) * span


def lower_bound_curve(diameter: float) -> float:
    """The main theorem's asymptotic envelope ``log D / log log D``.

    Defined for ``D > e`` (below that the expression is not meaningful);
    smaller diameters return 0 so plots/series stay total.
    """
    if diameter <= math.e:
        return 0.0
    return math.log(diameter) / math.log(math.log(diameter))


def shrink_factor(rho: float, f_of_one: float) -> float:
    """Theorem 8.1's per-round interval shrink ``B = 384 tau f(1)``."""
    if f_of_one <= 0:
        raise ValueError("f(1) must be positive")
    return SHRINK_NUMERATOR * tau(rho) * f_of_one


def rounds_for(diameter: int, shrink: float) -> int:
    """Number of Add Skew rounds available: ``floor(log_B (D - 1))``.

    ``shrink`` is the per-round factor ``B``; the construction runs while
    ``n_k = (D - 1) / B^k >= 1``.
    """
    if diameter < 2:
        return 0
    if shrink <= 1.0:
        raise ValueError("shrink factor must exceed 1")
    return int(math.floor(math.log(diameter - 1) / math.log(shrink)))
