"""Sweep jobs: declarative, picklable, hashable units of simulation work.

A :class:`Job` is a *kind* name plus a JSON-able params dict.  Kinds are
registered with :func:`job_kind`; each registration remembers the
defining module so a worker process (even under the ``spawn`` start
method, which inherits nothing) can import that module and find the
function again.  The job's :func:`job_hash` is a SHA-256 over the
canonical JSON of ``(kind, params, CACHE_VERSION)`` — the on-disk cache
key and the source of per-job deterministic seeding.

The built-in ``benign-run`` kind executes one benign scenario — a
(topology, algorithm, rate family, delay policy, seed) cell — and
returns the skew/convergence metrics every comparative table is built
from.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

from repro.analysis.field import SkewField
from repro.errors import SweepError
from repro.sim.simulator import SimConfig, run_simulation
from repro.sweep.families import (
    algorithm_from_spec,
    delay_policy_from_spec,
    fault_plan_from_spec,
    mobility_from_spec,
    rates_from_spec,
    topology_from_spec,
)

__all__ = [
    "CACHE_VERSION",
    "Job",
    "JobOutcome",
    "job_kind",
    "resolve_job_kind",
    "job_hash",
    "execute_job",
]

#: Bump when a job kind's semantics change, to invalidate stale caches.
#: v5: benign-run grows the mobility axis (params + metrics carry
#: ``mobility``; dynamic cells also report ``rewirings``).
#: v6: live-run grows the churn axes (params carry ``faults`` +
#: ``mobility``; metrics add ``frames_dropped``, ``rewirings``, and real
#: ``fault_events``) and the udp/router timebase moved to a ready
#: barrier, which shifts wall-clock jitter enough to invalidate rows.
#: v7: live-run metrics add the transport counters sweep reports chart
#: (``frames_routed``, ``events``, ``workers``); cached v6 rows lack
#: them, so they must be re-run.
CACHE_VERSION = 7

#: kind name -> (callable, defining module name)
_JOB_KINDS: Dict[str, tuple[Callable[[Mapping[str, Any]], dict], str]] = {}


def job_kind(name: str):
    """Decorator: register ``fn(params) -> metrics dict`` as a job kind."""

    def register(fn: Callable[[Mapping[str, Any]], dict]):
        _JOB_KINDS[name] = (fn, fn.__module__)
        return fn

    return register


def resolve_job_kind(name: str, module: str | None = None):
    """Look up a kind, importing its defining module if necessary.

    ``module`` is carried alongside jobs into worker processes so kinds
    registered outside :mod:`repro.sweep` (e.g. by an experiment module)
    resolve even when the worker never imported that module.
    """
    if name not in _JOB_KINDS and module:
        importlib.import_module(module)
    if name not in _JOB_KINDS:
        raise SweepError(f"unknown job kind {name!r}; have {sorted(_JOB_KINDS)}")
    return _JOB_KINDS[name][0]


@dataclass(frozen=True)
class Job:
    """One unit of sweep work: a registered kind plus its parameters."""

    kind: str
    params: Mapping[str, Any]
    module: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.module and self.kind in _JOB_KINDS:
            object.__setattr__(self, "module", _JOB_KINDS[self.kind][1])

    def canonical(self) -> str:
        """Canonical JSON used for hashing and cache keys."""
        return json.dumps(
            {"kind": self.kind, "params": dict(self.params), "v": CACHE_VERSION},
            sort_keys=True,
            separators=(",", ":"),
        )


@dataclass(frozen=True)
class JobOutcome:
    """What running (or recalling) one job produced."""

    job: Job
    metrics: dict
    elapsed: float
    cached: bool = False


def job_hash(job: Job) -> str:
    """Stable content hash of a job — the cache key."""
    return hashlib.sha256(job.canonical().encode()).hexdigest()


def execute_job(job: Job) -> JobOutcome:
    """Run one job in the current process and time it."""
    fn = resolve_job_kind(job.kind, job.module)
    # Wall-clock stopwatch for the `elapsed` metadata field only: it is
    # not a metric, never enters the cache key, and cannot perturb the
    # deterministic (spec, seed) -> metrics contract.
    start = time.perf_counter()  # repro: allow[DET001] elapsed metadata
    metrics = fn(job.params)
    elapsed = time.perf_counter() - start  # repro: allow[DET001] elapsed metadata
    return JobOutcome(job=job, metrics=metrics, elapsed=elapsed)


# ----------------------------------------------------------------------
# the built-in benign scenario kind


@job_kind("benign-run")
def benign_run(params: Mapping[str, Any]) -> dict:
    """One scenario cell -> skew and convergence metrics.

    Params: ``topology``, ``algorithm``, ``rates``, ``delays``,
    ``faults``, ``mobility`` (spec strings; ``faults`` defaults to
    ``"none"`` and ``mobility`` to ``"static"``), ``duration``, ``rho``,
    ``seed``, optional ``step`` (metric sample step),
    ``settle_threshold``, ``trace_digest`` (record the trace and
    include a SHA-256 of it — the determinism-contract probe), and
    ``engine`` (``"scalar"`` default, or ``"batched"`` for the
    vectorized engine — byte-identical results, so the probe digest is
    engine-independent).

    A non-static ``mobility`` family replaces the cell topology with a
    :class:`~repro.topology.dynamic.DynamicTopology` built from it (for
    ``waypoint`` the cell topology donates only its node count); the
    ``"static"`` family passes the plain topology through untouched, so
    static cells keep the byte-identity contract.
    """
    topology = topology_from_spec(params["topology"])
    algorithm = algorithm_from_spec(params["algorithm"])
    duration = float(params["duration"])
    rho = float(params["rho"])
    seed = int(params["seed"])
    step = float(params.get("step", 1.0))
    faults = str(params.get("faults", "none"))
    mobility = str(params.get("mobility", "static"))
    digest = bool(params.get("trace_digest", False))
    # "scalar" or "batched" — byte-identical engines, so absent (the
    # historical cells) and "scalar" mean the same thing and share keys.
    engine = str(params.get("engine", "scalar"))
    dynamic = mobility_from_spec(
        mobility, topology, seed=seed, horizon=duration
    )
    if dynamic is not None:
        # The t = 0 snapshot is the network the processes are built for
        # and the one distance-derived defaults (diameter) come from.
        topology = dynamic.initial
    rates = rates_from_spec(
        params["rates"], topology, rho=rho, seed=seed, horizon=duration
    )
    fault_plan = fault_plan_from_spec(
        faults, topology, seed=seed, horizon=duration
    )
    execution = run_simulation(
        dynamic if dynamic is not None else topology,
        algorithm.processes(topology),
        SimConfig(
            duration=duration,
            rho=rho,
            seed=seed,
            record_trace=digest,
            engine=engine,
        ),
        rate_schedules=rates,
        delay_policy=delay_policy_from_spec(params["delays"]),
        fault_plan=fault_plan,
    )
    # One trajectory matrix answers every metric below — the batched
    # analysis path; no per-(node, time) clock lookups.
    field = SkewField(execution, step=step)
    skew = field.summary()
    threshold = float(
        params.get("settle_threshold", 2.0 * topology.diameter * rho)
    )
    settled = field.settling_time(threshold)
    tail = field.steady_state()
    # Messages that made it onto the wire minus those a crash destroyed
    # at delivery time; link-level losses were never enqueued, so this
    # counts surviving network traffic consistently across fault
    # families (fault-free runs are unaffected: both counters are 0).
    stats = execution.fault_stats or {}
    messages = (
        len(execution.messages)
        - stats.get("lost_receiver_down", 0)
        - stats.get("lost_in_flight", 0)
    )
    metrics = {
        "topology": params["topology"],
        "algorithm": params["algorithm"],
        "rates": params["rates"],
        "delays": params["delays"],
        "faults": faults,
        "mobility": mobility,
        # The simulator backend, so sim rows line up against the live
        # runtime's ``live-run`` rows (repro.rt.jobs) in merged tables.
        "transport": "sim",
        "seed": seed,
        "n_nodes": int(topology.n),
        "diameter": float(topology.diameter),
        "max_skew": float(skew.max_skew),
        "max_adjacent_skew": float(skew.max_adjacent_skew),
        "final_skew": float(skew.final_skew),
        "final_adjacent_skew": float(skew.final_adjacent_skew),
        "mean_abs_skew": float(skew.mean_abs_skew),
        "settling_time": None if settled is None else float(settled),
        "settle_threshold": threshold,
        "steady_mean_max_skew": float(tail.mean_max_skew),
        "steady_worst_adjacent_skew": float(tail.worst_adjacent_skew),
        "messages": messages,
        "fault_events": stats,
        # Change-points the run actually crossed; 0 for static cells.
        "rewirings": (
            0
            if execution.topology_timeline is None
            else len(execution.topology_timeline) - 1
        ),
    }
    if digest:
        # Single-sourced canonical digest (same bytes the old inline
        # repr-join hashed), shared with the engine equivalence harness.
        metrics["trace_sha256"] = execution.trace.digest()
    return metrics
