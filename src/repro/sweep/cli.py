"""The ``sweep`` verb of the experiments CLI.

``python -m repro.experiments sweep --quick --workers 4`` expands a
preset (or user-supplied) grid, fans it across a worker pool, prints the
aggregated tables, and optionally writes a JSON artifact and warms an
on-disk cache.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time

from repro.errors import ReproError, SweepError
from repro.sweep.aggregate import sweep_result, to_json_payload, write_json
from repro.sweep.runner import ResultCache, run_jobs
from repro.sweep.spec import SweepSpec, full_spec, quick_spec

__all__ = ["main", "build_parser", "add_spec_arguments", "resolve_spec"]


def add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """The spec-shaping flags, shared with ``repro-serve submit``.

    Adds the preset group (``--quick``/``--full``/``--spec``) plus every
    axis/scalar override :func:`resolve_spec` understands, so any CLI
    that accepts a grid accepts exactly the same grammar.
    """
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--quick", action="store_true", help="small CI grid (default)")
    scale.add_argument("--full", action="store_true", help="writeup-scale grid")
    scale.add_argument(
        "--spec", metavar="FILE", help="JSON file with SweepSpec fields"
    )
    parser.add_argument(
        "--topologies", help="comma-separated topology specs (override preset)"
    )
    parser.add_argument(
        "--algorithms", help="comma-separated algorithm specs (override preset)"
    )
    parser.add_argument(
        "--rates", help="comma-separated rate families (override preset)"
    )
    parser.add_argument(
        "--delays", help="comma-separated delay policies (override preset)"
    )
    parser.add_argument(
        "--faults",
        help=(
            "comma-separated fault families (override preset), e.g. "
            "'none,loss:0.2,crash-recover:0.25,5' (a comma starts a new "
            "family only before a name, so numeric arguments stay intact)"
        ),
    )
    parser.add_argument(
        "--mobility",
        help=(
            "comma-separated mobility families (override preset), e.g. "
            "'static,waypoint:0.5,blink:0.3,8' (a comma starts a new "
            "family only before a name, so numeric arguments stay "
            "intact); non-static families need --transports sim/router"
        ),
    )
    parser.add_argument(
        "--transports",
        help=(
            "comma-separated execution backends per cell: 'sim' "
            "(simulator) and/or live transports 'virtual', 'asyncio', "
            "'udp', 'router' (override preset; udp/router cells need "
            "--workers 1)"
        ),
    )
    parser.add_argument(
        "--time-scale", type=float,
        help="wall seconds per sim unit for wall-clock live transports",
    )
    parser.add_argument("--seeds", type=int, help="number of seeds per cell")
    parser.add_argument("--duration", type=float, help="run length (real time)")
    parser.add_argument("--rho", type=float, help="drift bound")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description="Run a parallel grid of benign scenarios.",
    )
    add_spec_arguments(parser)
    parser.add_argument(
        "--workers",
        type=int,
        default=max(os.cpu_count() or 1, 1),
        help="worker processes (default: CPU count; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", help="reuse results cached under DIR"
    )
    parser.add_argument(
        "--json-out", metavar="FILE", help="write the full artifact as JSON"
    )
    parser.add_argument(
        "--report", metavar="DIR",
        help="render report.svg + report.json (repro.viz) under DIR",
    )
    parser.add_argument(
        "--per-job", action="store_true", help="also print the per-job grid"
    )
    return parser


def resolve_spec(args: argparse.Namespace) -> SweepSpec:
    """Build the grid from parsed :func:`add_spec_arguments` flags."""
    if args.spec:
        with open(args.spec) as handle:
            spec = SweepSpec.from_dict(json.load(handle))
    elif args.full:
        spec = full_spec()
    else:
        spec = quick_spec()

    overrides: dict = {}
    for flag, axis in (
        ("topologies", "topologies"),
        ("algorithms", "algorithms"),
        ("rates", "rate_families"),
        ("delays", "delay_policies"),
        ("faults", "fault_families"),
        ("mobility", "mobilities"),
        ("transports", "transports"),
    ):
        value = getattr(args, flag)
        if value:
            # Split on commas that start a new family name, so numeric
            # arguments inside a spec ("uniform:0.25,0.75",
            # "crash-recover:0.25,5") survive intact.
            parts = re.split(r",(?=[A-Za-z])", value)
            overrides[axis] = tuple(s.strip() for s in parts if s.strip())
    if args.seeds is not None:
        overrides["seeds"] = tuple(range(args.seeds))
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.rho is not None:
        overrides["rho"] = args.rho
    if args.time_scale is not None:
        overrides["time_scale"] = args.time_scale
    if overrides:
        payload = json.loads(spec.to_json())
        payload.update(overrides)
        spec = SweepSpec.from_dict(payload)
    return spec


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = resolve_spec(args)
        jobs = spec.jobs()
    except (OSError, json.JSONDecodeError, SweepError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    forking = sorted({"udp", "router"} & set(spec.transports))
    if forking and args.workers > 1:
        # Detectable before any work: udp/router cells spawn OS
        # processes, which daemonic pool workers may not do.
        print(
            f"error: {'/'.join(forking)} transport cells need --workers 1 "
            "(node processes cannot be spawned from daemonic pool workers)",
            file=sys.stderr,
        )
        return 2

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    print(
        f"sweep '{spec.name}': {len(jobs)} jobs "
        f"({len(spec.topologies)} topologies x {len(spec.algorithms)} algorithms "
        f"x {len(spec.rate_families)} rate families x "
        f"{len(spec.delay_policies)} delay policies x "
        f"{len(spec.fault_families)} fault families x "
        f"{len(spec.mobilities)} mobility families x "
        f"{len(spec.transports)} transports x {len(spec.seeds)} seeds), "
        f"{args.workers} worker(s)"
    )
    # Wall-clock stopwatch for the progress summary line only — the
    # grid's metrics stay a pure function of (spec, seed).
    start = time.perf_counter()  # repro: allow[DET001] progress display
    try:
        outcomes = run_jobs(jobs, workers=args.workers, cache=cache)
    except ReproError as exc:
        # SweepError from the engine, or an RtError a live-run cell hit.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start  # repro: allow[DET001] progress display

    cache_stats = (
        {"hits": cache.hits, "misses": cache.misses, "dir": str(cache.directory)}
        if cache
        else {}
    )
    notes = [f"{len(outcomes)} jobs in {elapsed:.2f}s at {args.workers} worker(s)"]
    if cache:
        notes.append(
            f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"under {cache.directory}"
        )
    result = sweep_result(
        spec, outcomes, include_seed_rows=args.per_job, notes=notes
    )
    print(result.render())

    if args.json_out:
        payload = to_json_payload(
            spec, outcomes, workers=args.workers, elapsed=elapsed,
            cache_stats=cache_stats,
        )
        path = write_json(args.json_out, payload)
        print(f"wrote {path}")
    if args.report:
        from repro.viz.report import write_report

        svg_path, json_path = write_report(
            args.report,
            [outcome.metrics for outcome in outcomes],
            title=f"sweep '{spec.name}' report",
        )
        print(f"wrote {svg_path}")
        print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
