"""Aggregate sweep outcomes into tables and JSON artifacts.

One ``benign-run`` outcome is a flat metrics dict; a sweep produces
hundreds.  This module folds them into the two shapes downstream
consumers want:

* :func:`summary_table` / :func:`seed_table` — ``Table`` objects grouped
  by scenario cell (topology x algorithm x rates x delays), averaging
  over seeds, in the style of the paper's evaluation tables;
* :func:`sweep_result` — an ``ExperimentResult`` wrapping those tables,
  so sweeps print exactly like experiments E01..E14;
* :func:`to_json_payload` / :func:`write_json` — a machine-readable
  artifact with the spec, every job's metrics, and cache statistics.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.reporting import Table
from repro.sweep.jobs import JobOutcome, job_hash
from repro.sweep.spec import SweepSpec

__all__ = [
    "group_outcomes",
    "summary_table",
    "seed_table",
    "sweep_result",
    "to_json_payload",
    "write_json",
]

#: The axes that define one scenario cell (seeds are averaged within it).
#: ``transport`` separates simulator rows ("sim") from live-runtime rows;
#: ``mobility`` separates static cells from dynamic-topology ones.
CELL_KEYS = (
    "topology",
    "algorithm",
    "rates",
    "delays",
    "faults",
    "mobility",
    "transport",
)

#: Metrics aggregated over seeds in the summary table.
SUMMARY_METRICS = (
    "max_skew",
    "max_adjacent_skew",
    "final_skew",
    "mean_abs_skew",
)


def group_outcomes(
    outcomes: Sequence[JobOutcome],
) -> dict[tuple, list[JobOutcome]]:
    """Group outcomes by scenario cell, preserving first-seen cell order."""
    groups: dict[tuple, list[JobOutcome]] = {}
    for outcome in outcomes:
        key = tuple(outcome.metrics.get(k, "-") for k in CELL_KEYS)
        groups.setdefault(key, []).append(outcome)
    return groups


def summary_table(outcomes: Sequence[JobOutcome], *, title: str) -> Table:
    """Mean-over-seeds metrics per scenario cell."""
    table = Table(
        title=title,
        headers=[
            *CELL_KEYS,
            "seeds",
            *(f"mean {m}" for m in SUMMARY_METRICS),
            "settled",
        ],
        caption=(
            "Each row is one scenario cell averaged over its seeds; "
            "'settled' counts seeds whose max skew stayed under the "
            "settle threshold from some sample time on."
        ),
    )
    for key, group in group_outcomes(outcomes).items():
        means = [
            statistics.fmean(o.metrics[m] for o in group) for m in SUMMARY_METRICS
        ]
        settled = sum(1 for o in group if o.metrics["settling_time"] is not None)
        table.add_row(*key, len(group), *means, f"{settled}/{len(group)}")
    return table


def seed_table(outcomes: Sequence[JobOutcome], *, title: str) -> Table:
    """Per-job metrics, one row per (cell, seed) — the raw sweep grid."""
    table = Table(
        title=title,
        headers=[
            *CELL_KEYS,
            "seed",
            "max_skew",
            "max_adj",
            "final",
            "settling",
            "msgs",
            "cached",
        ],
        caption="One row per job, in grid order.",
    )
    for o in outcomes:
        m = o.metrics
        table.add_row(
            *(m.get(k, "-") for k in CELL_KEYS),
            m["seed"],
            m["max_skew"],
            m["max_adjacent_skew"],
            m["final_skew"],
            "-" if m["settling_time"] is None else m["settling_time"],
            m["messages"],
            "yes" if o.cached else "no",
        )
    return table


def sweep_result(
    spec: SweepSpec,
    outcomes: Sequence[JobOutcome],
    *,
    include_seed_rows: bool = False,
    notes: Sequence[str] = (),
):
    """Wrap a sweep's outcomes as an ``ExperimentResult``.

    Imported lazily to keep :mod:`repro.sweep` free of a module-level
    dependency on :mod:`repro.experiments` (which itself re-exports the
    rate families from this package).
    """
    from repro.experiments.common import ExperimentResult

    tables = [
        summary_table(
            outcomes, title=f"sweep[{spec.name}]: {len(outcomes)} jobs over "
            f"{spec.size}-cell grid"
        )
    ]
    if include_seed_rows:
        tables.append(seed_table(outcomes, title=f"sweep[{spec.name}]: per-job grid"))
    return ExperimentResult(
        experiment_id="SWEEP",
        title=f"scenario sweep '{spec.name}'",
        paper_artifact="batched benign-scenario grid (beyond the paper)",
        tables=tables,
        notes=list(notes),
        data={"spec": json.loads(spec.to_json()),
              "metrics": [o.metrics for o in outcomes]},
    )


def to_json_payload(
    spec: SweepSpec,
    outcomes: Sequence[JobOutcome],
    *,
    workers: int,
    elapsed: Optional[float] = None,
    cache_stats: Optional[dict] = None,
) -> dict:
    """The machine-readable sweep artifact."""
    return {
        "spec": json.loads(spec.to_json()),
        "workers": workers,
        "elapsed": elapsed,
        "cache": cache_stats or {},
        "jobs": [
            {
                "hash": job_hash(o.job),
                "kind": o.job.kind,
                "params": dict(o.job.params),
                "cached": o.cached,
                "metrics": o.metrics,
            }
            for o in outcomes
        ],
    }


def write_json(path: str | Path, payload: dict) -> Path:
    """Write the artifact, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
