"""Named scenario families: compact strings -> simulator ingredients.

A sweep job must be (a) picklable, so it can cross a process boundary,
and (b) canonically hashable, so identical jobs share a cache entry.
Live objects (``Topology``, ``SyncAlgorithm``, delay policies) are
neither, so sweep grids are declared with compact *spec strings* --
``"line:9"``, ``"max-based:0.5"``, ``"uniform:0.25,0.75"`` -- and this
module owns the registries that turn those strings back into objects
inside whichever process runs the job.

The rate-family helpers (:func:`drifted_rates`, :func:`spread_rates`,
:func:`wandering_rates`) live here too; :mod:`repro.experiments.common`
re-exports them so existing experiment code keeps working.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro._constants import DEFAULT_RHO
from repro.algorithms import (
    AveragingAlgorithm,
    BoundedCatchUpAlgorithm,
    ExternalSyncAlgorithm,
    MaxBasedAlgorithm,
    NullAlgorithm,
    SlewingMaxAlgorithm,
    SrikanthTouegAlgorithm,
    SyncAlgorithm,
)
from repro.errors import SweepError
from repro.sim.messages import (
    DelayPolicy,
    FixedFractionDelay,
    HalfDistanceDelay,
    JitterDelay,
    UniformRandomDelay,
)
from repro.sim.rates import PiecewiseConstantRate, random_walk_schedule
from repro.topology import generators
from repro.topology.base import Topology

__all__ = [
    "drifted_rates",
    "spread_rates",
    "wandering_rates",
    "topology_from_spec",
    "algorithm_from_spec",
    "rates_from_spec",
    "delay_policy_from_spec",
    "TOPOLOGY_KINDS",
    "ALGORITHM_KINDS",
    "RATE_FAMILIES",
    "DELAY_POLICIES",
]


# ----------------------------------------------------------------------
# rate families (moved from repro.experiments.common)


def drifted_rates(
    topology: Topology, *, rho: float = DEFAULT_RHO, seed: int = 0
) -> dict[int, PiecewiseConstantRate]:
    """Seeded random constant rates inside the drift band — a benign but
    heterogeneous network (every real deployment looks like this)."""
    rng = random.Random(seed ^ 0xD81F7)
    return {
        node: PiecewiseConstantRate.constant(rng.uniform(1.0 - rho, 1.0 + rho))
        for node in topology.nodes
    }


def wandering_rates(
    topology: Topology,
    *,
    rho: float = DEFAULT_RHO,
    horizon: float,
    interval: float = 5.0,
    seed: int = 0,
) -> dict[int, PiecewiseConstantRate]:
    """Time-varying drift: each node's rate random-walks inside the band.

    The most realistic benign setting — oscillators wander with
    temperature — while staying within Assumption 1.
    """
    return {
        node: random_walk_schedule(
            rho=rho,
            horizon=horizon,
            interval=interval,
            seed=(seed * 7919) ^ node,
        )
        for node in topology.nodes
    }


def spread_rates(
    topology: Topology, *, rho: float = DEFAULT_RHO
) -> dict[int, PiecewiseConstantRate]:
    """Deterministic linear spread of rates across node indices.

    Node 0 runs slowest (``1 - rho``), the last node fastest
    (``1 + rho``) — the worst benign arrangement for a line network.
    """
    n = topology.n
    return {
        node: PiecewiseConstantRate.constant(
            1.0 - rho + 2.0 * rho * (node / max(n - 1, 1))
        )
        for node in topology.nodes
    }


# ----------------------------------------------------------------------
# spec-string parsing


def _split(spec: str) -> tuple[str, list[str]]:
    head, _, tail = spec.partition(":")
    return head.strip(), [p for p in tail.split(",") if p] if tail else []


def _int_args(spec: str, args: list[str], count: int) -> list[int]:
    if len(args) != count:
        raise SweepError(f"{spec!r} needs {count} integer argument(s)")
    try:
        return [int(a) for a in args]
    except ValueError as exc:
        raise SweepError(f"{spec!r}: non-integer argument") from exc


#: kind -> builder(args) for topology spec strings such as ``line:9``,
#: ``grid:3,4``, ``tree:2,3`` (branching, height), ``geometric:16,7``
#: (n, seed).
TOPOLOGY_KINDS: Dict[str, Callable[..., Topology]] = {
    "line": lambda n: generators.line(n),
    "ring": lambda n: generators.ring(n),
    "grid": lambda rows, cols: generators.grid(rows, cols),
    "complete": lambda n: generators.complete(n),
    "star": lambda n_leaves: generators.star(n_leaves),
    "tree": lambda branching, height: generators.balanced_tree(branching, height),
    "geometric": lambda n, seed=0: generators.random_geometric(n, seed=seed),
    "cluster": lambda n: generators.broadcast_cluster(n),
}

_TOPOLOGY_ARITY = {
    "line": (1, 1),
    "ring": (1, 1),
    "grid": (2, 2),
    "complete": (1, 1),
    "star": (1, 1),
    "tree": (2, 2),
    "geometric": (1, 2),
    "cluster": (1, 1),
}


def topology_from_spec(spec: str) -> Topology:
    """Build a topology from a compact spec string, e.g. ``"grid:3,4"``."""
    kind, args = _split(spec)
    if kind not in TOPOLOGY_KINDS:
        raise SweepError(
            f"unknown topology {spec!r}; kinds: {sorted(TOPOLOGY_KINDS)}"
        )
    lo, hi = _TOPOLOGY_ARITY[kind]
    if not lo <= len(args) <= hi:
        raise SweepError(f"{spec!r}: expected {lo}..{hi} arguments")
    values = _int_args(spec, args, len(args)) if args else []
    try:
        return TOPOLOGY_KINDS[kind](*values)
    except TypeError as exc:
        raise SweepError(f"{spec!r}: bad arguments ({exc})") from exc


#: name -> builder(period) for algorithm spec strings.  An optional
#: ``:period`` suffix (hardware-time units) overrides the default 1.0,
#: e.g. ``"max-based:0.5"``; algorithms without a period ignore it.
ALGORITHM_KINDS: Dict[str, Callable[[float], SyncAlgorithm]] = {
    "max-based": lambda period: MaxBasedAlgorithm(period=period),
    "srikanth-toueg": lambda period: SrikanthTouegAlgorithm(),
    "averaging": lambda period: AveragingAlgorithm(period=period),
    "bounded-catch-up": lambda period: BoundedCatchUpAlgorithm(period=period),
    "slewing-max": lambda period: SlewingMaxAlgorithm(period=period),
    "external": lambda period: ExternalSyncAlgorithm(period=period),
    "null": lambda period: NullAlgorithm(),
}


def algorithm_from_spec(spec: str) -> SyncAlgorithm:
    """Build an algorithm from a spec string, e.g. ``"averaging:0.5"``."""
    name, args = _split(spec)
    if name not in ALGORITHM_KINDS:
        raise SweepError(
            f"unknown algorithm {spec!r}; kinds: {sorted(ALGORITHM_KINDS)}"
        )
    if len(args) > 1:
        raise SweepError(f"{spec!r}: at most one period argument")
    try:
        period = float(args[0]) if args else 1.0
    except ValueError as exc:
        raise SweepError(f"{spec!r}: non-numeric period") from exc
    return ALGORITHM_KINDS[name](period)


#: family -> builder(topology, rho, seed, horizon) for per-node rate
#: schedules.  ``constant`` is the quiet baseline; the rest come from the
#: benign-adversary families above.
RATE_FAMILIES: Dict[str, Callable[..., dict[int, PiecewiseConstantRate]]] = {
    "constant": lambda topology, rho, seed, horizon: {
        node: PiecewiseConstantRate.constant(1.0) for node in topology.nodes
    },
    "drifted": lambda topology, rho, seed, horizon: drifted_rates(
        topology, rho=rho, seed=seed
    ),
    "spread": lambda topology, rho, seed, horizon: spread_rates(topology, rho=rho),
    "wandering": lambda topology, rho, seed, horizon: wandering_rates(
        topology, rho=rho, horizon=horizon, seed=seed
    ),
}


def rates_from_spec(
    spec: str, topology: Topology, *, rho: float, seed: int, horizon: float
) -> dict[int, PiecewiseConstantRate]:
    """Instantiate a rate family for one topology, e.g. ``"wandering"``."""
    name, args = _split(spec)
    if name not in RATE_FAMILIES or args:
        raise SweepError(
            f"unknown rate family {spec!r}; families: {sorted(RATE_FAMILIES)}"
        )
    return RATE_FAMILIES[name](topology, rho, seed, horizon)


#: name -> builder(args) for delay-policy spec strings: ``half``,
#: ``uniform`` / ``uniform:0.25,0.75``, ``fraction:0.3``, ``jitter``.
DELAY_POLICIES: Dict[str, Callable[..., DelayPolicy]] = {
    "half": lambda: HalfDistanceDelay(),
    "uniform": lambda lo=0.0, hi=1.0: UniformRandomDelay(lo_frac=lo, hi_frac=hi),
    "fraction": lambda f: FixedFractionDelay(f),
    "jitter": lambda frac=1.0: JitterDelay(jitter_frac=frac),
}


def delay_policy_from_spec(spec: str) -> DelayPolicy:
    """Build a delay policy from a spec string, e.g. ``"uniform:0.25,0.75"``."""
    name, args = _split(spec)
    if name not in DELAY_POLICIES:
        raise SweepError(
            f"unknown delay policy {spec!r}; kinds: {sorted(DELAY_POLICIES)}"
        )
    try:
        values = [float(a) for a in args]
    except ValueError as exc:
        raise SweepError(f"{spec!r}: non-numeric argument") from exc
    try:
        return DELAY_POLICIES[name](*values)
    except TypeError as exc:
        raise SweepError(f"{spec!r}: bad arguments ({exc})") from exc
