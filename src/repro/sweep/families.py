"""Named scenario families: compact strings -> simulator ingredients.

A sweep job must be (a) picklable, so it can cross a process boundary,
and (b) canonically hashable, so identical jobs share a cache entry.
Live objects (``Topology``, ``SyncAlgorithm``, delay policies) are
neither, so sweep grids are declared with compact *spec strings* --
``"line:9"``, ``"max-based:0.5"``, ``"uniform:0.25,0.75"`` -- and this
module owns the registries that turn those strings back into objects
inside whichever process runs the job.

The rate-family helpers (:func:`drifted_rates`, :func:`spread_rates`,
:func:`wandering_rates`) live here too; :mod:`repro.experiments.common`
re-exports them so existing experiment code keeps working.
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, Optional

from repro._constants import DEFAULT_RHO
from repro.algorithms import (
    AveragingAlgorithm,
    BoundedCatchUpAlgorithm,
    ExternalSyncAlgorithm,
    MaxBasedAlgorithm,
    NullAlgorithm,
    SlewingMaxAlgorithm,
    SrikanthTouegAlgorithm,
    SyncAlgorithm,
)
from repro.errors import FaultError, SweepError, TopologyError
from repro.sim.faults import FaultPlan
from repro.sim.messages import (
    DelayPolicy,
    FixedFractionDelay,
    HalfDistanceDelay,
    JitterDelay,
    UniformRandomDelay,
)
from repro.sim.rates import PiecewiseConstantRate, random_walk_schedule
from repro.topology import generators
from repro.topology.base import Topology
from repro.topology.dynamic import DynamicTopology, link_schedule, random_waypoint

__all__ = [
    "drifted_rates",
    "spread_rates",
    "wandering_rates",
    "topology_from_spec",
    "algorithm_from_spec",
    "rates_from_spec",
    "delay_policy_from_spec",
    "fault_plan_from_spec",
    "parse_fault_spec",
    "mobility_from_spec",
    "parse_mobility_spec",
    "TOPOLOGY_KINDS",
    "ALGORITHM_KINDS",
    "RATE_FAMILIES",
    "DELAY_POLICIES",
    "FAULT_FAMILIES",
    "MOBILITY_FAMILIES",
]


# ----------------------------------------------------------------------
# rate families (moved from repro.experiments.common)


def drifted_rates(
    topology: Topology, *, rho: float = DEFAULT_RHO, seed: int = 0
) -> dict[int, PiecewiseConstantRate]:
    """Seeded random constant rates inside the drift band — a benign but
    heterogeneous network (every real deployment looks like this)."""
    rng = random.Random(seed ^ 0xD81F7)
    return {
        node: PiecewiseConstantRate.constant(rng.uniform(1.0 - rho, 1.0 + rho))
        for node in topology.nodes
    }


def wandering_rates(
    topology: Topology,
    *,
    rho: float = DEFAULT_RHO,
    horizon: float,
    interval: float = 5.0,
    seed: int = 0,
) -> dict[int, PiecewiseConstantRate]:
    """Time-varying drift: each node's rate random-walks inside the band.

    The most realistic benign setting — oscillators wander with
    temperature — while staying within Assumption 1.
    """
    return {
        node: random_walk_schedule(
            rho=rho,
            horizon=horizon,
            interval=interval,
            seed=(seed * 7919) ^ node,
        )
        for node in topology.nodes
    }


def spread_rates(
    topology: Topology, *, rho: float = DEFAULT_RHO
) -> dict[int, PiecewiseConstantRate]:
    """Deterministic linear spread of rates across node indices.

    Node 0 runs slowest (``1 - rho``), the last node fastest
    (``1 + rho``) — the worst benign arrangement for a line network.
    """
    n = topology.n
    return {
        node: PiecewiseConstantRate.constant(
            1.0 - rho + 2.0 * rho * (node / max(n - 1, 1))
        )
        for node in topology.nodes
    }


# ----------------------------------------------------------------------
# spec-string parsing


def _split(spec: str) -> tuple[str, list[str]]:
    head, _, tail = spec.partition(":")
    return head.strip(), [p for p in tail.split(",") if p] if tail else []


def _int_args(spec: str, args: list[str], count: int) -> list[int]:
    if len(args) != count:
        raise SweepError(f"{spec!r} needs {count} integer argument(s)")
    try:
        return [int(a) for a in args]
    except ValueError as exc:
        raise SweepError(f"{spec!r}: non-integer argument") from exc


#: kind -> builder(args) for topology spec strings such as ``line:9``,
#: ``grid:3,4``, ``tree:2,3`` (branching, height), ``geometric:16,7``
#: (n, seed).
TOPOLOGY_KINDS: Dict[str, Callable[..., Topology]] = {
    "line": lambda n: generators.line(n),
    "ring": lambda n: generators.ring(n),
    "grid": lambda rows, cols: generators.grid(rows, cols),
    "complete": lambda n: generators.complete(n),
    "star": lambda n_leaves: generators.star(n_leaves),
    "tree": lambda branching, height: generators.balanced_tree(branching, height),
    "geometric": lambda n, seed=0: generators.random_geometric(n, seed=seed),
    "cluster": lambda n: generators.broadcast_cluster(n),
}

_TOPOLOGY_ARITY = {
    "line": (1, 1),
    "ring": (1, 1),
    "grid": (2, 2),
    "complete": (1, 1),
    "star": (1, 1),
    "tree": (2, 2),
    "geometric": (1, 2),
    "cluster": (1, 1),
}


def topology_from_spec(spec: str) -> Topology:
    """Build a topology from a compact spec string, e.g. ``"grid:3,4"``."""
    kind, args = _split(spec)
    if kind not in TOPOLOGY_KINDS:
        raise SweepError(
            f"unknown topology {spec!r}; kinds: {sorted(TOPOLOGY_KINDS)}"
        )
    lo, hi = _TOPOLOGY_ARITY[kind]
    if not lo <= len(args) <= hi:
        raise SweepError(f"{spec!r}: expected {lo}..{hi} arguments")
    values = _int_args(spec, args, len(args)) if args else []
    try:
        return TOPOLOGY_KINDS[kind](*values)
    except TypeError as exc:
        raise SweepError(f"{spec!r}: bad arguments ({exc})") from exc


#: name -> builder(period) for algorithm spec strings.  An optional
#: ``:period`` suffix (hardware-time units) overrides the default 1.0,
#: e.g. ``"max-based:0.5"``; algorithms without a period ignore it.
ALGORITHM_KINDS: Dict[str, Callable[[float], SyncAlgorithm]] = {
    "max-based": lambda period: MaxBasedAlgorithm(period=period),
    "srikanth-toueg": lambda period: SrikanthTouegAlgorithm(),
    "averaging": lambda period: AveragingAlgorithm(period=period),
    "bounded-catch-up": lambda period: BoundedCatchUpAlgorithm(period=period),
    # The Section 9 gradient candidate under the name everyone reaches
    # for first (``repro-live --alg gradient``).
    "gradient": lambda period: BoundedCatchUpAlgorithm(period=period),
    "slewing-max": lambda period: SlewingMaxAlgorithm(period=period),
    "external": lambda period: ExternalSyncAlgorithm(period=period),
    "null": lambda period: NullAlgorithm(),
}


def algorithm_from_spec(spec: str) -> SyncAlgorithm:
    """Build an algorithm from a spec string, e.g. ``"averaging:0.5"``."""
    name, args = _split(spec)
    if name not in ALGORITHM_KINDS:
        raise SweepError(
            f"unknown algorithm {spec!r}; kinds: {sorted(ALGORITHM_KINDS)}"
        )
    if len(args) > 1:
        raise SweepError(f"{spec!r}: at most one period argument")
    try:
        period = float(args[0]) if args else 1.0
    except ValueError as exc:
        raise SweepError(f"{spec!r}: non-numeric period") from exc
    return ALGORITHM_KINDS[name](period)


#: family -> builder(topology, rho, seed, horizon) for per-node rate
#: schedules.  ``constant`` is the quiet baseline; the rest come from the
#: benign-adversary families above.
RATE_FAMILIES: Dict[str, Callable[..., dict[int, PiecewiseConstantRate]]] = {
    "constant": lambda topology, rho, seed, horizon: {
        node: PiecewiseConstantRate.constant(1.0) for node in topology.nodes
    },
    "drifted": lambda topology, rho, seed, horizon: drifted_rates(
        topology, rho=rho, seed=seed
    ),
    "spread": lambda topology, rho, seed, horizon: spread_rates(topology, rho=rho),
    "wandering": lambda topology, rho, seed, horizon: wandering_rates(
        topology, rho=rho, horizon=horizon, seed=seed
    ),
}


def rates_from_spec(
    spec: str, topology: Topology, *, rho: float, seed: int, horizon: float
) -> dict[int, PiecewiseConstantRate]:
    """Instantiate a rate family for one topology, e.g. ``"wandering"``."""
    name, args = _split(spec)
    if name not in RATE_FAMILIES or args:
        raise SweepError(
            f"unknown rate family {spec!r}; families: {sorted(RATE_FAMILIES)}"
        )
    return RATE_FAMILIES[name](topology, rho, seed, horizon)


#: name -> builder(args) for delay-policy spec strings: ``half``,
#: ``uniform`` / ``uniform:0.25,0.75``, ``fraction:0.3``, ``jitter``.
DELAY_POLICIES: Dict[str, Callable[..., DelayPolicy]] = {
    "half": lambda: HalfDistanceDelay(),
    "uniform": lambda lo=0.0, hi=1.0: UniformRandomDelay(lo_frac=lo, hi_frac=hi),
    "fraction": lambda f: FixedFractionDelay(f),
    "jitter": lambda frac=1.0: JitterDelay(jitter_frac=frac),
}


def delay_policy_from_spec(spec: str) -> DelayPolicy:
    """Build a delay policy from a spec string, e.g. ``"uniform:0.25,0.75"``."""
    name, args = _split(spec)
    if name not in DELAY_POLICIES:
        raise SweepError(
            f"unknown delay policy {spec!r}; kinds: {sorted(DELAY_POLICIES)}"
        )
    try:
        values = [float(a) for a in args]
    except ValueError as exc:
        raise SweepError(f"{spec!r}: non-numeric argument") from exc
    try:
        return DELAY_POLICIES[name](*values)
    except TypeError as exc:
        raise SweepError(f"{spec!r}: bad arguments ({exc})") from exc


# ----------------------------------------------------------------------
# fault families (the robustness axis; see repro.sim.faults)


def _crash_plan(
    topology: Topology,
    seed: int,
    horizon: float,
    fraction: float,
    downtime: float | None,
) -> FaultPlan:
    """Crash ``fraction`` of the nodes at staggered times mid-run.

    At least one node crashes, at least one survives.  With ``downtime``
    the crashes are crash-recovery windows; without, crash-stop.
    """
    if not 0.0 < fraction < 1.0:
        raise SweepError(f"crash fraction must be in (0, 1), got {fraction}")
    if downtime is not None and downtime <= 0.0:
        raise SweepError(f"crash downtime must be positive, got {downtime}")
    nodes = sorted(topology.nodes)
    count = min(max(1, round(fraction * len(nodes))), len(nodes) - 1)
    rng = random.Random((seed * 0x9E3779B1) ^ 0xC4A5)
    plan = FaultPlan()
    for node in sorted(rng.sample(nodes, count)):
        at = rng.uniform(0.2 * horizon, 0.6 * horizon)
        recover_at = None if downtime is None else min(at + downtime, horizon)
        plan = plan.with_crash(node, at, recover_at=recover_at)
    return plan


def _churn_plan(
    topology: Topology, seed: int, horizon: float, fraction: float, mean: float
) -> FaultPlan:
    """Random link up/down churn: each undirected link is down for
    windows of mean length ``mean`` covering ~``fraction`` of the run."""
    if not 0.0 < fraction < 1.0:
        raise SweepError(f"churn fraction must be in (0, 1), got {fraction}")
    if mean <= 0.0:
        raise SweepError(f"churn window length must be positive, got {mean}")
    rng = random.Random((seed * 0x9E3779B1) ^ 0xC0AB)
    cycle = mean / fraction
    plan = FaultPlan()
    for a, b in topology.adjacent_pairs():
        windows = []
        t = rng.uniform(0.0, cycle)
        while t < horizon:
            end = min(t + mean, horizon)
            if end > t:
                windows.append((t, end))
            t = end + rng.uniform(0.5, 1.5) * (cycle - mean)
        if windows:
            plan = plan.with_link_down(a, b, *windows)
    return plan


#: family -> builder(topology, seed, horizon, *numeric args) for fault
#: plans: ``none``, ``loss:p``, ``duplicate:p``, ``reorder:p``,
#: ``crash:frac`` (crash-stop), ``crash-recover:frac,downtime``,
#: ``churn:frac,window``.
FAULT_FAMILIES: Dict[str, Callable[..., FaultPlan]] = {
    "none": lambda topology, seed, horizon: FaultPlan(),
    "loss": lambda topology, seed, horizon, p: FaultPlan().with_link(loss=p),
    "duplicate": lambda topology, seed, horizon, p: FaultPlan().with_link(
        duplicate=p
    ),
    "reorder": lambda topology, seed, horizon, p: FaultPlan().with_link(
        reorder=p
    ),
    "crash": lambda topology, seed, horizon, frac: _crash_plan(
        topology, seed, horizon, frac, None
    ),
    "crash-recover": lambda topology, seed, horizon, frac, downtime: _crash_plan(
        topology, seed, horizon, frac, downtime
    ),
    "churn": lambda topology, seed, horizon, frac, mean=5.0: _churn_plan(
        topology, seed, horizon, frac, mean
    ),
}


def parse_fault_spec(spec: str) -> tuple[str, list[float]]:
    """Fail-fast parse of a fault spec string (no topology needed)."""
    name, args = _split(spec)
    if name not in FAULT_FAMILIES:
        raise SweepError(
            f"unknown fault family {spec!r}; families: {sorted(FAULT_FAMILIES)}"
        )
    try:
        return name, [float(a) for a in args]
    except ValueError as exc:
        raise SweepError(f"{spec!r}: non-numeric argument") from exc


# ----------------------------------------------------------------------
# mobility families (the dynamic-topology axis; see repro.topology.dynamic)


def _waypoint_mobility(
    topology: Topology,
    seed: int,
    horizon: float,
    speed: float = 0.5,
    interval: float = 5.0,
) -> DynamicTopology:
    """Random-waypoint mobility over the cell topology's *node count*.

    Mobility generates its own geometry: the cell's topology donates
    only ``n`` (its distances describe a frozen placement, which is
    exactly what this axis replaces).  Area and communication radius
    follow :func:`repro.topology.dynamic.random_waypoint` defaults, so
    density stays comparable across node counts; every snapshot is
    connected (the generator's bridging guarantee).  Argument validation
    is the generator's; :func:`mobility_from_spec` converts its
    :class:`~repro.errors.TopologyError` into a spec-labelled
    :class:`~repro.errors.SweepError`.
    """
    return random_waypoint(
        topology.n,
        speed=speed,
        duration=horizon,
        interval=interval,
        seed=(seed * 0x9E3779B1) ^ 0x30B1,
    )


def _blink_mobility(
    topology: Topology,
    seed: int,
    horizon: float,
    frac: float = 0.3,
    period: float = 8.0,
) -> DynamicTopology:
    """Periodic link blinking on the cell topology itself.

    Every ``period``, a seeded sample of ``frac`` of the comm edges is
    removed from the communication graph for the first half of the
    cycle (distances never change — this is graph rewiring, not message
    loss).  The :func:`link_schedule` window idiom; snapshots may be
    partitioned while edges are down.
    """
    if not 0.0 < frac < 1.0:
        raise SweepError(f"blink fraction must be in (0, 1), got {frac}")
    if period <= 0.0:
        raise SweepError(f"blink period must be positive, got {period}")
    edges = topology.comm_pairs()
    if len(edges) < 2:
        # The clamp below always leaves at least one edge standing;
        # with a single edge that would mean blinking nothing at all.
        raise SweepError(
            f"blink needs a topology with at least 2 comm edges, "
            f"{topology.name!r} has {len(edges)}"
        )
    count = min(max(1, round(frac * len(edges))), len(edges) - 1)
    rng = random.Random((seed * 0x9E3779B1) ^ 0xB11C)
    down: dict[tuple[int, int], list[tuple[float, float]]] = {}
    t = 0.0
    while t < horizon:
        for edge in sorted(rng.sample(edges, count)):
            down.setdefault(edge, []).append((t, min(t + period / 2.0, horizon)))
        t += period
    return link_schedule(topology, down, name=f"{topology.name}+blink")


#: family -> builder(topology, seed, horizon, *numeric args) for dynamic
#: topologies: ``static`` (no mobility — the free, byte-identical path),
#: ``waypoint:speed[,interval]``, ``blink:frac[,period]``.
MOBILITY_FAMILIES: Dict[str, Callable[..., Optional[DynamicTopology]]] = {
    "static": lambda topology, seed, horizon: None,
    "waypoint": _waypoint_mobility,
    "blink": _blink_mobility,
}


def parse_mobility_spec(spec: str) -> tuple[str, list[float]]:
    """Fail-fast parse of a mobility spec string (no topology needed)."""
    name, args = _split(spec)
    if name not in MOBILITY_FAMILIES:
        raise SweepError(
            f"unknown mobility family {spec!r}; families: "
            f"{sorted(MOBILITY_FAMILIES)}"
        )
    try:
        return name, [float(a) for a in args]
    except ValueError as exc:
        raise SweepError(f"{spec!r}: non-numeric argument") from exc


def mobility_from_spec(
    spec: str, topology: Topology, *, seed: int, horizon: float
) -> Optional[DynamicTopology]:
    """Instantiate a mobility family for one run, e.g. ``"waypoint:0.5"``.

    Returns ``None`` for ``"static"`` — the caller passes the plain
    topology through, keeping the fault-free/static fast path (and its
    byte-identity contract) untouched.  Deterministic: the dynamic
    topology is a pure function of ``(spec, topology, seed, horizon)``.
    """
    name, values = parse_mobility_spec(spec)
    try:
        return MOBILITY_FAMILIES[name](topology, seed, horizon, *values)
    except TypeError as exc:
        raise SweepError(f"{spec!r}: bad arguments ({exc})") from exc
    except TopologyError as exc:
        raise SweepError(f"{spec!r}: {exc}") from exc


def fault_plan_from_spec(
    spec: str, topology: Topology, *, seed: int, horizon: float
) -> FaultPlan:
    """Instantiate a fault family for one run, e.g. ``"crash-recover:0.25,5"``.

    The plan is salted with a hash of the spec string so distinct
    families draw distinct fault-RNG streams under the same seed.
    """
    name, values = parse_fault_spec(spec)
    try:
        plan = FAULT_FAMILIES[name](topology, seed, horizon, *values)
        plan.validate(topology)
    except TypeError as exc:
        raise SweepError(f"{spec!r}: bad arguments ({exc})") from exc
    except FaultError as exc:
        raise SweepError(f"{spec!r}: {exc}") from exc
    if plan.is_empty():
        return plan
    return FaultPlan(
        crashes=plan.crashes,
        links=plan.links,
        seed_salt=zlib.crc32(spec.encode()),
    )
