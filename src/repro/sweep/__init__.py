"""repro.sweep — the parallel scenario-sweep engine.

Everything one simulator run can tell you, this package asks at grid
scale: a declarative :class:`SweepSpec` (topologies x algorithms x rate
families x delay policies x fault families x seeds) expands into
independent, picklable
:class:`Job` cells, a :func:`run_jobs` pool fans them across processes
with deterministic per-job seeding (identical metrics at any worker
count), and the aggregate layer folds the metrics back into the same
``Table``/``ExperimentResult`` shapes the E01..E14 experiments print.
Results cache on disk keyed by job content hash, so re-running a grid
costs only the cells that changed.

Layering: ``sweep`` depends on ``sim``/``topology``/``algorithms``/
``analysis`` only; ``repro.experiments`` builds on ``sweep`` (not the
other way around).
"""

from repro.sweep.aggregate import (
    seed_table,
    summary_table,
    sweep_result,
    to_json_payload,
    write_json,
)
from repro.sweep.families import (
    ALGORITHM_KINDS,
    DELAY_POLICIES,
    FAULT_FAMILIES,
    MOBILITY_FAMILIES,
    RATE_FAMILIES,
    TOPOLOGY_KINDS,
    algorithm_from_spec,
    delay_policy_from_spec,
    drifted_rates,
    fault_plan_from_spec,
    mobility_from_spec,
    parse_fault_spec,
    parse_mobility_spec,
    rates_from_spec,
    spread_rates,
    topology_from_spec,
    wandering_rates,
)
from repro.sweep.jobs import (
    CACHE_VERSION,
    Job,
    JobOutcome,
    execute_job,
    job_hash,
    job_kind,
)
from repro.sweep.runner import ResultCache, run_jobs
from repro.sweep.spec import SweepSpec, full_spec, quick_spec

__all__ = [
    # spec
    "SweepSpec",
    "quick_spec",
    "full_spec",
    # jobs
    "Job",
    "JobOutcome",
    "job_kind",
    "job_hash",
    "execute_job",
    "CACHE_VERSION",
    # runner
    "ResultCache",
    "run_jobs",
    # aggregation
    "summary_table",
    "seed_table",
    "sweep_result",
    "to_json_payload",
    "write_json",
    # families
    "TOPOLOGY_KINDS",
    "ALGORITHM_KINDS",
    "RATE_FAMILIES",
    "DELAY_POLICIES",
    "FAULT_FAMILIES",
    "MOBILITY_FAMILIES",
    "topology_from_spec",
    "algorithm_from_spec",
    "rates_from_spec",
    "delay_policy_from_spec",
    "fault_plan_from_spec",
    "parse_fault_spec",
    "mobility_from_spec",
    "parse_mobility_spec",
    "drifted_rates",
    "spread_rates",
    "wandering_rates",
]
