"""Fan sweep jobs across a worker pool, with on-disk result caching.

Determinism contract
--------------------
``run_jobs`` returns outcomes in *job order*, each produced by a job
function whose only randomness comes from the seeds inside its own
params.  Workers share nothing, so the metrics are bit-identical at any
worker count — 1, 2, or 32 — and identical again when recalled from
cache.  Only the ``elapsed``/``cached`` bookkeeping fields may differ
between runs.

Caching
-------
A :class:`ResultCache` directory holds one ``<sha256>.json`` per
completed job, keyed by :func:`repro.sweep.jobs.job_hash` (which folds
in ``CACHE_VERSION``).  Cache probes happen in the parent before the
pool spins up, so a fully warm sweep never forks at all.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import SweepError
from repro.sweep.jobs import Job, JobOutcome, execute_job, job_hash

__all__ = ["ResultCache", "run_jobs"]


class ResultCache:
    """A directory of per-job metric files, keyed by job content hash.

    The hash-keyed half of the API (``path_for`` / ``has_hash`` /
    ``get_hash`` / ``put_hash``) is the content-addressed core that
    :class:`repro.serve.store.ContentStore` generalizes with per-sweep
    manifests; the :class:`Job`-keyed half is the convenience layer
    ``run_jobs`` uses.  Writes are atomic (unique temp file + rename),
    so concurrent writers — pool workers, a serve daemon, a killed run
    restarting — can only ever race to install identical bytes.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def has_hash(self, digest: str) -> bool:
        """Existence probe; never touches the hit/miss counters."""
        return self.path_for(digest).exists()

    def get_hash(self, digest: str) -> Optional[dict]:
        path = self.path_for(digest)
        if not path.exists():
            self.misses += 1
            return None
        try:
            metrics = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            # A torn write from a killed run; treat as a miss and rewrite.
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def put_hash(self, digest: str, metrics: dict) -> None:
        path = self.path_for(digest)
        # Per-process temp name: concurrent writers of the same object
        # (identical content by construction) never clobber mid-rename.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(metrics, sort_keys=True))
        tmp.replace(path)

    def get(self, job: Job) -> Optional[dict]:
        return self.get_hash(job_hash(job))

    def put(self, job: Job, metrics: dict) -> None:
        self.put_hash(job_hash(job), metrics)

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


def _execute_indexed(task: tuple[int, Job]) -> tuple[int, JobOutcome]:
    index, job = task
    return index, execute_job(job)


def run_jobs(
    jobs: Sequence[Job],
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int, JobOutcome], None]] = None,
) -> list[JobOutcome]:
    """Run ``jobs`` and return their outcomes, in job order.

    ``workers=1`` runs serially in-process (the baseline the benchmark
    compares against); ``workers>1`` fans uncached jobs across a
    ``multiprocessing`` pool.  ``progress(done, total, outcome)`` is
    called in the parent as each outcome lands.
    """
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    total = len(jobs)
    outcomes: list[Optional[JobOutcome]] = [None] * total
    pending: list[tuple[int, Job]] = []
    done = 0

    for index, job in enumerate(jobs):
        metrics = cache.get(job) if cache is not None else None
        if metrics is not None:
            outcome = JobOutcome(job=job, metrics=metrics, elapsed=0.0, cached=True)
            outcomes[index] = outcome
            done += 1
            if progress:
                progress(done, total, outcome)
        else:
            pending.append((index, job))

    def land(index: int, outcome: JobOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        if cache is not None:
            cache.put(outcome.job, outcome.metrics)
        done += 1
        if progress:
            progress(done, total, outcome)

    if pending:
        if workers == 1:
            for index, job in pending:
                land(index, execute_job(job))
        else:
            # fork keeps registries populated by already-imported modules
            # (e.g. experiment-defined job kinds) visible in workers; the
            # job's ``module`` field covers spawn-only platforms.
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            ctx = multiprocessing.get_context(method)
            with ctx.Pool(processes=min(workers, len(pending))) as pool:
                for index, outcome in pool.imap_unordered(
                    _execute_indexed, pending, chunksize=1
                ):
                    land(index, outcome)

    missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
    if missing:  # pragma: no cover - every landing path above fills its slot
        raise SweepError(f"jobs {missing} produced no outcome")
    return outcomes  # type: ignore[return-value]
