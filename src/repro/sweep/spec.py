"""Declarative sweep grids.

A :class:`SweepSpec` names *families* of scenarios — topologies,
algorithms, rate schedules, delay policies, fault families, mobility
families, transports, seeds — as compact spec strings (see
:mod:`repro.sweep.families`).  ``spec.jobs()`` expands the cartesian
product into independent jobs in a fixed, deterministic order; the
runner may execute them in any order on any number of workers without
changing a single metric.

Usage::

    >>> spec = SweepSpec(topologies=("line:5", "ring:6"),
    ...                  algorithms=("max-based",),
    ...                  mobilities=("static", "waypoint:0.5"),
    ...                  seeds=(0, 1), duration=10.0)
    >>> spec.size
    8
    >>> jobs = spec.jobs()
    >>> [jobs[0].params[k] for k in ("topology", "mobility", "seed")]
    ['line:5', 'static', 0]
    >>> jobs == spec.jobs()   # deterministic expansion
    True
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass
from typing import Sequence

from repro._constants import DEFAULT_RHO
from repro.errors import SweepError
from repro.sweep.families import (
    algorithm_from_spec,
    delay_policy_from_spec,
    fault_plan_from_spec,
    mobility_from_spec,
    topology_from_spec,
)
from repro.sweep.jobs import Job

__all__ = ["SweepSpec", "quick_spec", "full_spec"]


@dataclass(frozen=True)
class SweepSpec:
    """A grid of benign scenarios: the cartesian product of its axes.

    The ``transports`` axis selects the execution engine per cell:
    ``"sim"`` (the discrete-event simulator, a ``benign-run`` job) or a
    live backend from :data:`repro.rt.transport.TRANSPORT_NAMES`
    (``"virtual"``, ``"asyncio"``, ``"udp"``, ``"router"`` — a
    ``live-run`` job).  Of the live backends only ``"router"``
    implements churn (its central switch applies fault plans and
    rewirings to real frames), so a grid naming non-default faults or
    mobilities may combine them with ``"sim"`` and ``"router"`` cells
    but is rejected if it also names a churnless live backend.

    The ``mobilities`` axis selects the dynamic-topology family per cell
    (:data:`repro.sweep.families.MOBILITY_FAMILIES`): ``"static"`` runs
    the cell topology as-is, ``"waypoint:speed[,interval]"`` replaces it
    with random-waypoint mobility over the same node count, and
    ``"blink:frac[,period]"`` blinks a fraction of its comm edges.
    """

    topologies: Sequence[str] = ("line:9",)
    algorithms: Sequence[str] = ("max-based",)
    rate_families: Sequence[str] = ("drifted",)
    delay_policies: Sequence[str] = ("uniform",)
    fault_families: Sequence[str] = ("none",)
    mobilities: Sequence[str] = ("static",)
    transports: Sequence[str] = ("sim",)
    seeds: Sequence[int] = (0,)
    duration: float = 30.0
    rho: float = DEFAULT_RHO
    step: float = 1.0
    #: Wall seconds per simulation unit for wall-clock live transports.
    time_scale: float = 0.05
    #: Simulation engine for ``"sim"`` cells: ``"scalar"`` or
    #: ``"batched"``.  The engines are byte-identical (the differential
    #: harness in ``tests/test_engine_equivalence.py`` is the contract),
    #: so this is purely a speed knob; ``"scalar"`` cells keep their
    #: historical cache keys (the param is only emitted when non-default).
    engine: str = "scalar"
    name: str = "sweep"

    def __post_init__(self) -> None:
        for axis in ("topologies", "algorithms", "rate_families",
                     "delay_policies", "fault_families", "mobilities",
                     "transports", "seeds"):
            if not getattr(self, axis):
                raise SweepError(f"spec axis {axis!r} must be non-empty")
        if self.duration <= 0:
            raise SweepError(f"duration must be positive, got {self.duration}")
        if self.engine not in ("scalar", "batched"):
            raise SweepError(
                f"engine must be 'scalar' or 'batched', got {self.engine!r}"
            )

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Fail fast on unknown family names, before any forking."""
        for spec in self.topologies:
            topology_from_spec(spec)
        for spec in self.algorithms:
            algorithm_from_spec(spec)
        for spec in self.delay_policies:
            delay_policy_from_spec(spec)
        for spec in self.fault_families:
            # Probe-build against a small topology so arity and value
            # errors fail here, not inside a worker mid-sweep.
            fault_plan_from_spec(
                spec, topology_from_spec("line:3"), seed=0, horizon=1.0
            )
        for spec in self.mobilities:
            mobility_from_spec(
                spec, topology_from_spec("line:3"), seed=0, horizon=1.0
            )
        from repro.sweep.families import RATE_FAMILIES

        for spec in self.rate_families:
            if spec not in RATE_FAMILIES:
                raise SweepError(
                    f"unknown rate family {spec!r}; families: "
                    f"{sorted(RATE_FAMILIES)}"
                )
        from repro.rt.transport import TRANSPORT_NAMES

        live = [t for t in self.transports if t != "sim"]
        for spec in live:
            if spec not in TRANSPORT_NAMES:
                raise SweepError(
                    f"unknown transport {spec!r}; backends: "
                    f"['sim', {', '.join(repr(t) for t in TRANSPORT_NAMES)}]"
                )
        # Of the live backends only the router implements churn; a grid
        # may combine faults/mobility with sim and router cells, but a
        # churnless live backend in the same grid is rejected.
        churnless = [t for t in live if t != "router"]
        if churnless and any(f != "none" for f in self.fault_families):
            raise SweepError(
                f"live transports {churnless} have no fault support; keep "
                "fault_families=('none',) or sweep transport='router'"
            )
        if churnless and any(m != "static" for m in self.mobilities):
            raise SweepError(
                f"live transports {churnless} have no dynamic-topology "
                "support; keep mobilities=('static',) or sweep "
                "transport='router'"
            )

    @property
    def size(self) -> int:
        return (
            len(self.topologies)
            * len(self.algorithms)
            * len(self.rate_families)
            * len(self.delay_policies)
            * len(self.fault_families)
            * len(self.mobilities)
            * len(self.transports)
            * len(self.seeds)
        )

    def jobs(self) -> list[Job]:
        """Expand the grid into jobs, in deterministic order.

        ``"sim"`` cells become ``benign-run`` jobs; the transport axis
        itself never perturbs sim-cell params (only ``mobility`` is
        carried, with ``"static"`` for non-mobile cells), so within one
        ``CACHE_VERSION`` a sim-only grid shares cache entries with any
        spec naming the same cells.  Live transport cells become
        ``live-run`` jobs handled by :mod:`repro.rt.jobs`.
        """
        self.validate()
        jobs = []
        for topology, algorithm, rates, delays, faults, mobility, transport, seed in (
            itertools.product(
                self.topologies,
                self.algorithms,
                self.rate_families,
                self.delay_policies,
                self.fault_families,
                self.mobilities,
                self.transports,
                self.seeds,
            )
        ):
            if transport == "sim":
                params = {
                    "topology": topology,
                    "algorithm": algorithm,
                    "rates": rates,
                    "delays": delays,
                    "faults": faults,
                    "mobility": mobility,
                    "seed": int(seed),
                    "duration": self.duration,
                    "rho": self.rho,
                    "step": self.step,
                }
                if self.engine != "scalar":
                    params["engine"] = self.engine
                jobs.append(Job(kind="benign-run", params=params))
            else:
                jobs.append(
                    Job(
                        kind="live-run",
                        params={
                            "topology": topology,
                            "algorithm": algorithm,
                            "rates": rates,
                            "delays": delays,
                            "faults": faults,
                            "mobility": mobility,
                            "transport": transport,
                            "seed": int(seed),
                            "duration": self.duration,
                            "rho": self.rho,
                            "step": self.step,
                            "time_scale": self.time_scale,
                        },
                        module="repro.rt.jobs",
                    )
                )
        return jobs

    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        extra = set(payload) - known
        if extra:
            raise SweepError(f"unknown SweepSpec fields: {sorted(extra)}")
        coerced = dict(payload)
        for axis in ("topologies", "algorithms", "rate_families",
                     "delay_policies", "fault_families", "mobilities",
                     "transports", "seeds"):
            if axis in coerced:
                coerced[axis] = tuple(coerced[axis])
        return cls(**coerced)


def quick_spec(*, seeds: int = 2) -> SweepSpec:
    """A small multi-axis grid that finishes in seconds — CI material."""
    return SweepSpec(
        name="quick",
        topologies=("line:7", "ring:8", "grid:3,3"),
        algorithms=("max-based", "bounded-catch-up"),
        rate_families=("drifted", "spread"),
        delay_policies=("uniform",),
        seeds=tuple(range(seeds)),
        duration=20.0,
        rho=0.2,
        step=1.0,
    )


def full_spec(*, seeds: int = 5) -> SweepSpec:
    """The writeup-scale grid: every family axis exercised."""
    return SweepSpec(
        name="full",
        topologies=("line:17", "ring:16", "grid:4,4", "tree:2,3", "geometric:16,3"),
        algorithms=(
            "max-based",
            "srikanth-toueg",
            "averaging",
            "bounded-catch-up",
            "slewing-max",
        ),
        rate_families=("constant", "drifted", "spread", "wandering"),
        delay_policies=("half", "uniform"),
        fault_families=("none", "loss:0.15", "crash-recover:0.25,8"),
        mobilities=("static", "waypoint:0.5"),
        seeds=tuple(range(seeds)),
        duration=60.0,
        rho=0.2,
        step=1.0,
    )
