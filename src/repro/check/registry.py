"""Registry-sync rules: literals must match their central registries.

Several contracts in this repo hinge on string literals staying in sync
with a single source of truth:

* trace-event kinds — ``repro.sim.trace`` declares the registry
  (``SEND`` .. ``TOPOLOGY``); a typo'd kind in a filter
  (``of_kind("recieve")``) silently matches nothing and a typo'd kind
  in a producer corrupts every digest-based byte-identity check.
  ``REG001`` flags any kind literal outside the registry.
* ``__all__`` — the explicit public API.  ``REG002`` flags entries that
  name nothing actually defined/imported in the module (an export that
  would crash ``from x import *``); ``REG003`` flags public names a
  package ``__init__`` binds but does not export (an API surface that
  has silently drifted from its declaration).
* sweep cell keys — ``repro.sweep.aggregate.CELL_KEYS`` defines the
  axes of one scenario cell.  Every job kind's metrics dict must carry
  *all* of them, or its rows silently collapse into the wrong cells
  during aggregation.  ``REG004`` checks the literal-keyed ``metrics``
  dicts inside ``@job_kind`` functions against the registry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    terminal_name,
)

__all__ = [
    "AllExportsExistRule",
    "CellKeysCoveredRule",
    "InitExportsDeclaredRule",
    "TraceKindLiteralRule",
]

#: Call/attribute sites whose string arguments are trace-event kinds.
_KIND_CALLS = {"of_kind"}
_KIND_KEYWORD_CALLS = {"TraceEvent", "append_row"}


class TraceKindLiteralRule(Rule):
    code = "REG001"
    name = "trace-kind-registry"
    hint = (
        "use a kind registered in repro.sim.trace (import the constant "
        "instead of retyping the literal)"
    )
    contract = (
        "trace digests, indistinguishability projections and viz markers "
        "all dispatch on the kind string; an unregistered literal is a "
        "silent no-match or a corrupted digest"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        kinds = project.trace_kinds()
        if kinds is None or module.module == "repro.sim.trace":
            return
        for node in ast.walk(module.tree):
            # exec.trace.of_kind("send", "recieve")
            if isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name in _KIND_CALLS:
                    for arg in node.args:
                        if (
                            isinstance(arg, ast.Constant)
                            and isinstance(arg.value, str)
                            and arg.value not in kinds
                        ):
                            yield self.finding(
                                module,
                                arg,
                                f'unregistered trace kind "{arg.value}" '
                                f"in {name}(...)",
                            )
                if name in _KIND_KEYWORD_CALLS:
                    for kw in node.keywords:
                        if (
                            kw.arg == "kind"
                            and isinstance(kw.value, ast.Constant)
                            and isinstance(kw.value.value, str)
                            and kw.value.value not in kinds
                        ):
                            yield self.finding(
                                module,
                                kw.value,
                                f'unregistered trace kind '
                                f'"{kw.value.value}" in {name}(...)',
                            )
            # event.kind == "recieve"  /  event.kind in ("send", ...)
            if isinstance(node, ast.Compare):
                left = node.left
                if (
                    isinstance(left, ast.Attribute)
                    and left.attr == "kind"
                    and len(node.ops) == 1
                ):
                    literals: list[ast.Constant] = []
                    comp = node.comparators[0]
                    if isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                        if isinstance(comp, ast.Constant):
                            literals = [comp]
                    elif isinstance(node.ops[0], (ast.In, ast.NotIn)):
                        if isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
                            literals = [
                                e
                                for e in comp.elts
                                if isinstance(e, ast.Constant)
                            ]
                    for lit in literals:
                        if (
                            isinstance(lit.value, str)
                            and lit.value not in kinds
                        ):
                            yield self.finding(
                                module,
                                lit,
                                f'unregistered trace kind "{lit.value}" '
                                "compared against .kind",
                            )


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module top level (defs, classes, assigns, imports)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional/guarded definitions (TYPE_CHECKING blocks,
            # optional imports) still bind names.
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    names.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add(
                                alias.asname or alias.name.split(".")[0]
                            )
    return names


def _declared_all(tree: ast.Module) -> tuple[list[str], ast.AST] | None:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            entries = [
                e.value
                for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            return entries, node
    return None


class AllExportsExistRule(Rule):
    code = "REG002"
    name = "all-exports-exist"
    hint = "remove the stale entry or define/import the name it promises"
    contract = (
        "__all__ is the declared public API; an entry naming nothing "
        "breaks `from package import *` and lies to readers"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        declared = _declared_all(module.tree)
        if declared is None:
            return
        entries, node = declared
        bound = _top_level_bindings(module.tree)
        for entry in entries:
            if entry not in bound:
                yield self.finding(
                    module,
                    node,
                    f'__all__ exports "{entry}" but the module never '
                    "binds that name",
                )


class InitExportsDeclaredRule(Rule):
    code = "REG003"
    name = "init-exports-declared"
    hint = (
        "add the name to __all__ (it is part of the public surface) or "
        "rename it with a leading underscore"
    )
    contract = (
        "package __init__ files exist to declare the API surface; a "
        "public binding missing from __all__ is silent API drift"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if module.path.name != "__init__.py":
            return
        declared = _declared_all(module.tree)
        if declared is None:
            if module.package:
                yield self.finding(
                    module,
                    module.tree.body[0] if module.tree.body else module.tree,
                    "package __init__ declares no __all__",
                )
            return
        entries, _node = declared
        exported = set(entries)
        for node in module.tree.body:
            if isinstance(node, ast.ImportFrom):
                source = node.module or ""
                # Only repro re-exports constitute API surface; stdlib
                # helper imports (typing etc.) and registration-only
                # imports of the package's own submodules do not.
                if not source.startswith("repro") or source == module.module:
                    continue
                for alias in node.names:
                    name = alias.asname or alias.name
                    if name == "*" or name.startswith("_"):
                        continue
                    if name not in exported:
                        yield self.finding(
                            module,
                            node,
                            f'public import "{name}" is missing from '
                            "__all__",
                        )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not node.name.startswith("_") and node.name not in exported:
                    yield self.finding(
                        module,
                        node,
                        f'public definition "{node.name}" is missing '
                        "from __all__",
                    )


class CellKeysCoveredRule(Rule):
    code = "REG004"
    name = "cell-keys-covered"
    hint = (
        "every @job_kind metrics dict must carry all "
        "repro.sweep.aggregate.CELL_KEYS keys, or its rows aggregate "
        "into the wrong scenario cells"
    )
    contract = (
        "sweep aggregation groups rows by CELL_KEYS; a job kind missing "
        "one key silently merges distinct cells"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        keys = project.cell_keys()
        if keys is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(
                isinstance(dec, ast.Call)
                and terminal_name(dec.func) == "job_kind"
                for dec in node.decorator_list
            ):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Assign):
                    continue
                if not any(
                    isinstance(t, ast.Name) and t.id == "metrics"
                    for t in sub.targets
                ):
                    continue
                if not isinstance(sub.value, ast.Dict):
                    continue
                literal_keys = {
                    k.value
                    for k in sub.value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                }
                # Dicts built with **spreads or computed keys are
                # opaque to a static check; only literal dicts count.
                if len(literal_keys) != len(sub.value.keys):
                    continue
                missing = [k for k in keys if k not in literal_keys]
                if missing:
                    yield self.finding(
                        module,
                        sub,
                        f"@job_kind '{node.name}' metrics dict is missing "
                        f"cell key(s) {', '.join(missing)}",
                    )
