"""Layering rule: the import graph must match the declared layer DAG.

``docs/ARCHITECTURE.md`` describes the subsystem layering; this module
*declares* it as data and ``LAY001`` enforces it per import statement.
The declared DAG (transitively closed by the test suite, pinned by
``tests/test_check.py``) is, bottom to top::

    topology
    sim            -> topology
    algorithms     -> sim, topology
    analysis       -> sim, topology
    gcs            -> sim, topology, algorithms, analysis
    apps           -> sim, topology, algorithms, analysis
    sweep          -> sim, topology, algorithms, analysis
    rt             -> sweep and below
    viz            -> sweep and below (a leaf: nothing imports viz
                      at module top level)
    serve          -> rt, sweep and below (a leaf: nothing imports
                      serve at module top level — the daemon wraps the
                      sweep engine, nothing depends on the daemon)
    experiments    -> everything
    check          -> (nothing: the linter must lint a broken tree)

``_constants`` and ``errors`` sit below the DAG and are importable from
anywhere.  Two escape hatches, both declared here as reviewable data:

* :data:`MODULE_EXEMPT` — whole-module exemptions with reasons
  (``repro.sim.replay`` is the cross-engine verification harness; it
  lives in ``sim`` for cohesion but is layered above ``algorithms`` and
  ``gcs``);
* :data:`LAZY_ALLOWED` — extra edges permitted only for *function-local*
  imports, the sanctioned cycle-breaking idiom (e.g. ``sweep`` reaching
  up to ``rt`` for the live-run job kind at dispatch time).

Anything else — in particular ``sim``/``analysis``/``gcs`` importing
``rt``/``sweep``/``viz`` even lazily — is a layering violation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.core import (
    BASE_PACKAGES,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    enclosing_function,
)

__all__ = ["ALLOWED_IMPORTS", "LAZY_ALLOWED", "MODULE_EXEMPT", "LayeringRule"]

#: package -> repro packages its modules may import at top level.
ALLOWED_IMPORTS: dict[str, frozenset[str]] = {
    "topology": frozenset(),
    "sim": frozenset({"topology"}),
    "algorithms": frozenset({"sim", "topology"}),
    "analysis": frozenset({"sim", "topology"}),
    "gcs": frozenset({"sim", "topology", "algorithms", "analysis"}),
    "apps": frozenset({"sim", "topology", "algorithms", "analysis"}),
    "sweep": frozenset({"sim", "topology", "algorithms", "analysis"}),
    "rt": frozenset(
        {"sim", "topology", "algorithms", "analysis", "sweep"}
    ),
    "viz": frozenset(
        {"sim", "topology", "algorithms", "analysis", "sweep"}
    ),
    "serve": frozenset(
        {"sim", "topology", "algorithms", "analysis", "sweep", "rt"}
    ),
    "experiments": frozenset(
        {
            "sim",
            "topology",
            "algorithms",
            "analysis",
            "gcs",
            "apps",
            "sweep",
            "rt",
            "viz",
        }
    ),
    "check": frozenset(),
    # The top-level facade re-exports the public API.
    "repro": frozenset(
        {"sim", "topology", "algorithms", "analysis", "gcs", "apps"}
    ),
}

#: Extra edges allowed only inside function bodies (lazy imports): the
#: cycle-breaking idiom for optional, higher-layer integrations.
LAZY_ALLOWED: dict[str, frozenset[str]] = {
    "sim": frozenset({"analysis"}),  # Execution's measurement helpers
    "sweep": frozenset({"rt", "viz", "experiments"}),  # live-run job kind,
    # --report rendering, ExperimentResult table shapes
    "rt": frozenset({"viz"}),  # --tail streaming panels
    "viz": frozenset({"experiments"}),  # `viz experiment` re-runs
    "experiments": frozenset({"check", "serve"}),  # `check` / `serve`
    # CLI verb dispatch — the only sanctioned inbound edge to serve
}

#: module -> (extra allowed packages, reason).  Whole-module exemptions.
MODULE_EXEMPT: dict[str, tuple[frozenset[str], str]] = {
    "repro.sim.replay": (
        frozenset({"algorithms", "gcs"}),
        "cross-engine replay verifier: layered above algorithms/gcs, "
        "lives in sim for cohesion with the engines it replays",
    ),
}


def _import_targets(node: ast.stmt) -> list[str]:
    """Top-level repro packages named by one import statement."""
    mods: list[str] = []
    if isinstance(node, ast.Import):
        mods = [alias.name for alias in node.names]
    elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        mods = [node.module]
    targets = []
    for mod in mods:
        parts = mod.split(".")
        if parts[0] != "repro":
            continue
        targets.append(parts[1] if len(parts) > 1 else "repro")
    return targets


class LayeringRule(Rule):
    code = "LAY001"
    name = "layer-dag"
    hint = (
        "respect the declared layer DAG (repro.check.layering."
        "ALLOWED_IMPORTS); move the dependency down a layer, make the "
        "import function-local if LAZY_ALLOWED grants the edge, or add a "
        "documented MODULE_EXEMPT entry"
    )
    contract = (
        "lower layers must stay importable and testable without the "
        "runtimes above them; the DAG is what lets sim/analysis/gcs run "
        "inside sandboxed workers that never load rt/viz"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        package = module.package
        if package not in ALLOWED_IMPORTS:
            return
        allowed = ALLOWED_IMPORTS[package] | BASE_PACKAGES | {package}
        lazy_extra = LAZY_ALLOWED.get(package, frozenset())
        exempt, _reason = MODULE_EXEMPT.get(
            module.module, (frozenset(), "")
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            is_lazy = enclosing_function(node) is not None
            for target in _import_targets(node):
                if target == "repro" and package != "repro":
                    yield self.finding(
                        module,
                        node,
                        "import of the top-level repro facade from inside "
                        "a subpackage (cycles through every layer)",
                    )
                    continue
                if target in allowed or target in exempt:
                    continue
                if is_lazy and target in lazy_extra:
                    continue
                kind = "lazy import" if is_lazy else "import"
                yield self.finding(
                    module,
                    node,
                    f"{kind} of repro.{target} from layer '{package}' "
                    "violates the declared DAG",
                )
