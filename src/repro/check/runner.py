"""The checker runner: walk a tree, run every rule, apply pragmas.

``run_check`` is the programmatic entry point the CLI, the CI gate, and
the self-tests all share.  It parses every ``*.py`` under the given
paths (files or directories), runs each registered rule over each
module, drops findings suppressed by a same-line
``# repro: allow[CODE]`` pragma, reports stale pragma codes, and splits
the remainder against the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.check.baseline import load_baseline, partition
from repro.check.core import Finding, ModuleInfo, Project, Rule, parse_module
from repro.check.determinism import AmbientRandomnessRule, WallClockRule
from repro.check.floats import FloatTimeEqualityRule
from repro.check.layering import LayeringRule
from repro.check.pickles import LambdaIntoJobRule, LocalDefIntoJobRule
from repro.check.pragmas import suppressions, unknown_codes
from repro.check.registry import (
    AllExportsExistRule,
    CellKeysCoveredRule,
    InitExportsDeclaredRule,
    TraceKindLiteralRule,
)

__all__ = ["ALL_RULES", "CheckReport", "default_rules", "run_check"]

#: Every registered rule, in reporting order.  One instance each — the
#: rules are stateless.
ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    AmbientRandomnessRule(),
    FloatTimeEqualityRule(),
    LayeringRule(),
    LambdaIntoJobRule(),
    LocalDefIntoJobRule(),
    TraceKindLiteralRule(),
    AllExportsExistRule(),
    InitExportsDeclaredRule(),
    CellKeysCoveredRule(),
)


def default_rules(only: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """All rules, optionally restricted to the given codes."""
    if only is None:
        return ALL_RULES
    wanted = {code.upper() for code in only}
    unknown = wanted - {rule.code for rule in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return tuple(rule for rule in ALL_RULES if rule.code in wanted)


@dataclass
class CheckReport:
    """Everything one run produced."""

    new: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    stale_pragmas: list[Finding] = field(default_factory=list)
    checked_files: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if (self.new or self.stale_pragmas) else 0

    @property
    def all_current(self) -> list[Finding]:
        """New + grandfathered (what --write-baseline persists)."""
        return self.new + self.grandfathered


def _collect_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return files


def run_check(
    paths: Sequence[Path | str],
    *,
    rules: Sequence[Rule] | None = None,
    baseline: Path | str | None = None,
) -> CheckReport:
    """Run the checker over ``paths`` and return a :class:`CheckReport`."""
    resolved = [Path(p) for p in paths]
    for path in resolved:
        if not path.exists():
            raise FileNotFoundError(f"no such path: {path}")
    active = tuple(rules) if rules is not None else ALL_RULES
    known = frozenset(rule.code for rule in ALL_RULES)
    root = resolved[0] if resolved[0].is_dir() else resolved[0].parent

    project = Project(root=root)
    modules: list[ModuleInfo] = []
    for file in _collect_files(resolved):
        info = parse_module(file, root=root)
        project.add(info)
        modules.append(info)

    report = CheckReport(checked_files=len(modules))
    raw: list[Finding] = []
    for info in modules:
        allow = suppressions(info)
        for rule in active:
            for finding in rule.check(info, project):
                if finding.rule in allow.get(finding.line, frozenset()):
                    report.suppressed += 1
                else:
                    raw.append(finding)
        for lineno, code in unknown_codes(info, known):
            report.stale_pragmas.append(
                Finding(
                    rule="PRAGMA",
                    path=info.rel,
                    line=lineno,
                    col=0,
                    message=f"pragma allows unknown rule code {code}",
                    hint="remove the stale suppression or fix the code",
                    source=info.source_line(lineno),
                )
            )

    pinned = (
        load_baseline(Path(baseline)) if baseline is not None else frozenset()
    )
    report.new, report.grandfathered = partition(raw, pinned)
    report.new.sort(key=lambda f: (f.path, f.line, f.rule))
    report.grandfathered.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
