"""Entry point: ``repro-check`` / ``python -m repro.check``.

Usage::

    repro-check [PATHS...]               # default: src/ (or cwd's repro/)
    repro-check src --format json
    repro-check src --baseline check_baseline.json
    repro-check src --write-baseline check_baseline.json
    repro-check src --rules FLT001,LAY001
    repro-check --list-rules

Exit codes: 0 — clean (no new findings, no stale pragmas); 1 — new
findings; 2 — usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.check.baseline import write_baseline
from repro.check.runner import ALL_RULES, default_rules, run_check

__all__ = ["main"]


def _default_paths() -> list[Path]:
    for candidate in (Path("src"), Path("repro")):
        if candidate.is_dir():
            return [candidate]
    return [Path(".")]


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"    contract: {rule.contract}")
        lines.append(f"    fix: {rule.hint}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Static invariant linter for the gradient-clock-sync repo: "
            "determinism, float discipline, layering, pickle safety, "
            "registry sync.  Suppress one finding with a same-line "
            "'# repro: allow[CODE]' pragma."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to check (default: src/)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline of grandfathered findings (default: "
            "check_baseline.json next to the first path, if present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write all current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = [Path(p) for p in args.paths] or _default_paths()
    baseline = args.baseline
    if baseline is None:
        anchor = paths[0] if paths[0].is_dir() else paths[0].parent
        for candidate in (
            anchor / "check_baseline.json",
            anchor.parent / "check_baseline.json",
        ):
            if candidate.exists():
                baseline = candidate
                break

    try:
        rules = default_rules(
            args.rules.split(",") if args.rules else None
        )
        start = time.perf_counter()
        report = run_check(paths, rules=rules, baseline=baseline)
        elapsed = time.perf_counter() - start
    except (FileNotFoundError, SyntaxError, ValueError) as exc:
        print(f"repro-check: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), report.all_current)
        print(
            f"wrote {len(report.all_current)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0

    if args.format == "json":
        payload = {
            "checked_files": report.checked_files,
            "elapsed_s": round(elapsed, 3),
            "new": [vars(f) for f in report.new],
            "grandfathered": len(report.grandfathered),
            "suppressed": report.suppressed,
            "stale_pragmas": [vars(f) for f in report.stale_pragmas],
            "exit_code": report.exit_code,
        }
        print(json.dumps(payload, indent=2))
        return report.exit_code

    for finding in report.new + report.stale_pragmas:
        print(finding.render())
    summary = (
        f"repro-check: {report.checked_files} file(s), "
        f"{len(report.new)} new finding(s), "
        f"{len(report.grandfathered)} grandfathered, "
        f"{report.suppressed} suppressed, "
        f"{len(report.stale_pragmas)} stale pragma(s) "
        f"[{elapsed:.2f}s]"
    )
    print(summary)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
