"""Determinism rules: no wall clocks, no ambient randomness.

Every byte-identity contract in this repository — scalar-vs-batched
engine equivalence, empty-FaultPlan no-op, sweep cache stability at any
worker count — collapses if a deterministic package reads the wall
clock or draws from process-global RNG state.  These rules make that
ban static:

* ``DET001`` — wall-clock reads (``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``datetime.now``/``utcnow``/``today``) and
  entropy taps (``os.urandom``, ``uuid.uuid1``/``uuid4``) are forbidden
  inside the deterministic packages.  The live runtime (``repro.rt``)
  legitimately runs on wall clocks and is exempt via
  :data:`WALL_CLOCK_EXEMPT`; metadata-only timing sites (e.g. a job's
  ``elapsed`` stopwatch that never enters a cache key) carry an
  explicit ``# repro: allow[DET001]`` pragma.

  ``repro.serve`` sits outside :data:`DETERMINISTIC_PACKAGES` for the
  same reason as ``rt``: a daemon *is* a wall-clock artifact — socket
  timeouts, uptime, throughput, start-up polling.  Its determinism
  obligation is discharged one layer down: the metrics it stores come
  from the same :func:`repro.sweep.jobs.execute_job` the in-process
  runner calls, so a served sweep is bit-identical to ``run_jobs``
  (the differential contract ``tests/test_serve.py`` enforces), while
  the daemon's own clocks only ever feed operational metadata.
* ``DET002`` — ambient randomness: calls through the ``random`` module
  itself (``random.random()``, ``random.shuffle`` — global Mersenne
  state), the legacy ``numpy.random.*`` global functions, an *unseeded*
  ``random.Random()`` or ``numpy.random.default_rng()``.  Seeded
  instances (``random.Random(seed)``, ``default_rng(seed)``) are the
  sanctioned idiom and pass.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.core import Finding, ModuleInfo, Project, Rule, attr_chain

__all__ = [
    "DETERMINISTIC_PACKAGES",
    "WALL_CLOCK_EXEMPT",
    "AmbientRandomnessRule",
    "WallClockRule",
]

#: Packages whose results must be a pure function of (spec, seed).
DETERMINISTIC_PACKAGES = frozenset(
    {"sim", "sweep", "analysis", "gcs", "topology", "algorithms", "apps"}
)

#: Declared allowlist: modules inside the deterministic packages that
#: may read wall clocks anyway.  Deliberately empty today — the live
#: runtime lives in ``repro.rt``, outside the deterministic set — but
#: the mechanism is the sanctioned escape hatch if a wall-clock module
#: ever needs to live inside one (each entry documents why).
WALL_CLOCK_EXEMPT: dict[str, str] = {}

_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}

_DATETIME_NOW = {"now", "utcnow", "today"}

#: ``random``-module functions that mutate/read the global Mersenne
#: Twister.  ``random.Random`` (the class) is excluded: instantiating a
#: *seeded* generator is the sanctioned pattern.
_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "paretovariate",
    "vonmisesvariate",
    "weibullvariate",
    "triangular",
    "getrandbits",
    "randbytes",
    "seed",
}

#: numpy.random constructors that are fine *when given a seed*.
_NP_SEEDED_CTORS = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}


def _applies(module: ModuleInfo) -> bool:
    if module.package not in DETERMINISTIC_PACKAGES:
        return False
    return module.module not in WALL_CLOCK_EXEMPT


class WallClockRule(Rule):
    code = "DET001"
    name = "no-wall-clock"
    hint = (
        "deterministic packages must take time from the simulator/schedule; "
        "move wall-clock code to repro.rt, add the module to "
        "WALL_CLOCK_EXEMPT with a reason, or pragma a metadata-only site"
    )
    contract = (
        "byte-identical engines and worker-count-stable sweep caches require "
        "results to be pure functions of (spec, seed) — never of the host clock"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not _applies(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            pair = tuple(chain[-2:]) if len(chain) >= 2 else None
            if pair in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node, f"wall-clock/entropy call {'.'.join(chain)}()"
                )
            elif (
                len(chain) >= 2
                and chain[-1] in _DATETIME_NOW
                and chain[-2] in {"datetime", "date"}
            ):
                yield self.finding(
                    module, node, f"wall-clock call {'.'.join(chain)}()"
                )


class AmbientRandomnessRule(Rule):
    code = "DET002"
    name = "no-ambient-randomness"
    hint = (
        "draw from a seeded generator (random.Random(seed) / "
        "numpy.random.default_rng(seed)) threaded through the config, "
        "never from module-global RNG state"
    )
    contract = (
        "per-job deterministic seeding (identical metrics at any worker "
        "count) requires every random draw to come from an owned, seeded "
        "generator"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not _applies(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            # random.<global fn>()
            if len(chain) == 2 and chain[0] == "random":
                if chain[1] in _GLOBAL_RANDOM_FNS:
                    yield self.finding(
                        module,
                        node,
                        f"module-global RNG call random.{chain[1]}()",
                    )
                elif chain[1] == "Random" and not (node.args or node.keywords):
                    yield self.finding(
                        module, node, "unseeded random.Random() instance"
                    )
            # numpy.random.* — the legacy global-state API, or an
            # unseeded default_rng().
            elif len(chain) >= 2 and chain[-2] == "random" and chain[0] in {
                "np",
                "numpy",
            }:
                fn = chain[-1]
                if fn in _NP_SEEDED_CTORS:
                    if not (node.args or node.keywords):
                        yield self.finding(
                            module, node, f"unseeded numpy.random.{fn}()"
                        )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"global-state numpy.random.{fn}() "
                        "(legacy RandomState API)",
                    )
