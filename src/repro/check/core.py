"""Core data model of the invariant checker.

The checker is deliberately *static*: it parses source files with the
stdlib :mod:`ast` module and never imports the code under analysis, so
it can run on a broken tree, inside CI sandboxes, and on fixture
snippets that would be unsafe to execute.  Three objects carry all
state:

* :class:`ModuleInfo` — one parsed source file (path, dotted module
  name, package, AST annotated with parent links, raw source lines);
* :class:`Project` — every module of one scan plus lazily-extracted
  central registries (trace-event kinds, sweep cell keys) that the
  registry-sync rules compare literals against;
* :class:`Finding` — one rule violation with a stable fingerprint used
  by the committed baseline.

Rules subclass :class:`Rule` and yield findings from
``check(module, project)``.  Every rule has a short *code* (``DET001``,
``FLT001``, ...) that the ``# repro: allow[CODE]`` pragma references,
and a *hint* telling the author how to fix the finding.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "BASE_PACKAGES",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "attr_chain",
    "enclosing_function",
    "parse_module",
    "terminal_name",
]

#: Packages every layer may import: shared constants and the exception
#: hierarchy sit below the DAG (see :mod:`repro.check.layering`).
BASE_PACKAGES = frozenset({"_constants", "errors"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    source: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline.

        Hashing ``(rule, path, stripped source line)`` keeps
        grandfathered findings pinned across unrelated edits that only
        shift line numbers; editing the offending line itself makes the
        finding "new" again, which is exactly when it should resurface.
        """
        blob = f"{self.rule}|{self.path}|{self.source.strip()}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    rel: str
    module: str
    package: str
    tree: ast.Module
    lines: list[str]

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _annotate_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def enclosing_function(node: ast.AST) -> ast.AST | None:
    """The innermost ``def``/``async def`` containing ``node``, if any."""
    parent = getattr(node, "_repro_parent", None)
    while parent is not None:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent
        parent = getattr(parent, "_repro_parent", None)
    return None


def module_name_for(path: Path) -> tuple[str, str]:
    """``(dotted module, package)`` for a source file path.

    The dotted name is anchored at the nearest ancestor directory named
    ``repro`` (so ``src/repro/sim/trace.py`` -> ``repro.sim.trace``);
    files outside any ``repro`` tree fall back to their stem, with an
    empty package, and only package-agnostic rules apply to them.
    """
    parts = list(path.parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[anchor:])
    else:
        dotted = [parts[-1]]
    if dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][:-3]
    if dotted[-1] == "__init__":
        dotted.pop()
    module = ".".join(dotted) or path.stem
    if len(dotted) >= 2 and dotted[0] == "repro":
        package = dotted[1]
    elif dotted == ["repro"]:
        package = "repro"
    else:
        package = ""
    return module, package


def parse_module(path: Path, root: Path | None = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (parent links included)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    _annotate_parents(tree)
    module, package = module_name_for(path)
    try:
        rel = str(path.relative_to(root)) if root is not None else str(path)
    except ValueError:
        rel = str(path)
    return ModuleInfo(
        path=path,
        rel=rel,
        module=module,
        package=package,
        tree=tree,
        lines=text.splitlines(),
    )


def _installed_source(module: str) -> Path | None:
    """The source file of an importable module, without executing it."""
    import importlib.util

    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, ValueError):
        return None
    if spec is None or spec.origin is None:
        return None
    origin = Path(spec.origin)
    return origin if origin.suffix == ".py" and origin.exists() else None


@dataclass
class Project:
    """All modules of one scan plus the central registries rules sync to."""

    root: Path
    modules: list[ModuleInfo] = field(default_factory=list)
    _by_name: dict[str, ModuleInfo] = field(default_factory=dict)
    _registry_cache: dict[str, object] = field(default_factory=dict)

    def add(self, info: ModuleInfo) -> None:
        self.modules.append(info)
        self._by_name[info.module] = info

    def get(self, module: str) -> ModuleInfo | None:
        return self._by_name.get(module)

    def _registry_tree(self, module: str) -> ast.Module | None:
        """The AST of a registry module: scanned copy first, else the
        installed source (still parsed statically, never imported)."""
        info = self.get(module)
        if info is not None:
            return info.tree
        origin = _installed_source(module)
        if origin is None:
            return None
        return ast.parse(origin.read_text(encoding="utf-8"))

    def trace_kinds(self) -> frozenset[str] | None:
        """Trace-event kinds declared by ``repro.sim.trace``.

        Extracted statically: every module-level ``NAME = "literal"``
        with an uppercase name is a registered kind.  Returns ``None``
        when the registry module cannot be located (rules then skip).
        """
        if "trace_kinds" not in self._registry_cache:
            kinds: set[str] = set()
            tree = self._registry_tree("repro.sim.trace")
            if tree is None:
                self._registry_cache["trace_kinds"] = None
                return None
            for node in tree.body:
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id.isupper()
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    kinds.add(node.value.value)
            self._registry_cache["trace_kinds"] = frozenset(kinds) or None
        return self._registry_cache["trace_kinds"]  # type: ignore[return-value]

    def cell_keys(self) -> tuple[str, ...] | None:
        """``CELL_KEYS`` declared by ``repro.sweep.aggregate``."""
        if "cell_keys" not in self._registry_cache:
            keys: tuple[str, ...] | None = None
            tree = self._registry_tree("repro.sweep.aggregate")
            if tree is not None:
                for node in tree.body:
                    if (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and node.targets[0].id == "CELL_KEYS"
                        and isinstance(node.value, (ast.Tuple, ast.List))
                    ):
                        elts = node.value.elts
                        if all(
                            isinstance(e, ast.Constant) and isinstance(e.value, str)
                            for e in elts
                        ):
                            keys = tuple(e.value for e in elts)  # type: ignore[misc]
            self._registry_cache["cell_keys"] = keys
        return self._registry_cache["cell_keys"]  # type: ignore[return-value]


class Rule:
    """Base class: one invariant, one code, one fix hint."""

    code: str = ""
    name: str = ""
    hint: str = ""
    #: One sentence tying the rule to the contract it protects
    #: (rendered by ``repro-check --list-rules`` and the docs).
    contract: str = ""

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.code,
            path=module.rel,
            line=line,
            col=col,
            message=message,
            hint=self.hint if hint is None else hint,
            source=module.source_line(line),
        )


def attr_chain(node: ast.AST) -> list[str] | None:
    """``["np", "random", "rand"]`` for ``np.random.rand``; None if not
    a pure Name/Attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a Name/Attribute/Subscript/Call expr."""
    if isinstance(node, ast.Call):
        node = node.func
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def iter_findings(
    rules: Iterable[Rule], module: ModuleInfo, project: Project
) -> Iterator[Finding]:
    for rule in rules:
        yield from rule.check(module, project)
