"""The committed findings baseline.

A baseline lets the checker gate *new* findings while grandfathered
ones are burned down: each entry pins one finding by its
line-number-independent fingerprint (rule + path + offending source
line).  The repo's policy is an **empty** baseline — every rule is
clean at head — but the mechanism is what makes adopting a new rule
tractable: write the rule, ``--write-baseline`` the existing findings,
land both, then shrink the file to zero in follow-ups.

Format (JSON, diff-reviewable)::

    {
      "version": 1,
      "findings": [
        {"fingerprint": "...", "rule": "FLT001",
         "path": "repro/sim/x.py", "source": "if t == end:"},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.check.core import Finding

__all__ = ["load_baseline", "partition", "write_baseline"]

_VERSION = 1


def load_baseline(path: Path) -> frozenset[str]:
    """Fingerprints pinned by the baseline file (empty if absent)."""
    if not path.exists():
        return frozenset()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path}"
        )
    return frozenset(
        entry["fingerprint"] for entry in payload.get("findings", [])
    )


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Persist every current finding as grandfathered."""
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": f.path,
            "source": f.source.strip(),
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    payload = {"version": _VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: Iterable[Finding], pinned: frozenset[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, grandfathered) against the baseline."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.fingerprint in pinned else new).append(finding)
    return new, old
