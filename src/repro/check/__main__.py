"""``python -m repro.check`` — same entry point as ``repro-check``."""

import sys

from repro.check.cli import main

if __name__ == "__main__":
    sys.exit(main())
