"""repro.check — the static invariant linter.

Every guarantee this repository sells — byte-identical engines, cache
stability at any worker count, simulator-equivalent live runs — rests
on invariants that the differential test suites enforce only *after* a
scenario runs.  This package enforces the syntactically-recognizable
part of those contracts *before* anything runs, with a stdlib-``ast``
walk over ``src/``:

=========  =========================================================
``DET001`` no wall clocks / entropy in the deterministic packages
``DET002`` no ambient (module-global or unseeded) randomness
``FLT001`` no bare float ``==``/``!=`` between time expressions
``LAY001`` the import graph must match the declared layer DAG
``PKL001`` no lambdas flowing into pickle-boundary payloads
``PKL002`` no locally-defined functions/classes into those payloads
``REG001`` trace-kind literals must exist in ``repro.sim.trace``
``REG002`` ``__all__`` entries must name real bindings
``REG003`` package ``__init__`` public names must be in ``__all__``
``REG004`` ``@job_kind`` metrics dicts must carry every CELL_KEY
=========  =========================================================

Run it with ``repro-check``, ``python -m repro.check``, or the
``check`` verb on ``python -m repro.experiments``.  A finding is
suppressed — one rule, one line — with ``# repro: allow[CODE]``.
Layering note: ``check`` sits outside the layer DAG and imports no
other repro package (it must be able to lint a broken tree).
"""

from repro.check.baseline import load_baseline, partition, write_baseline
from repro.check.core import Finding, ModuleInfo, Project, Rule, parse_module
from repro.check.pragmas import PRAGMA_RE, suppressions, unknown_codes
from repro.check.runner import ALL_RULES, CheckReport, default_rules, run_check

__all__ = [
    "ALL_RULES",
    "CheckReport",
    "Finding",
    "ModuleInfo",
    "PRAGMA_RE",
    "Project",
    "Rule",
    "default_rules",
    "load_baseline",
    "parse_module",
    "partition",
    "run_check",
    "suppressions",
    "unknown_codes",
    "write_baseline",
]
