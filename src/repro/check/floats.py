"""Float-discipline rule: no bare ``==``/``!=`` between time values.

The repo's own history motivates this rule twice: the PR 4 window-grid
drift (a ``t += step`` accumulator silently skipping the last Lemma 7.1
window at scale) and the PR 8 ``HostClock.set_rate`` TIME_EPS
regression.  Real-time instants, clock readings, and durations are
floats accumulated through arithmetic — comparing them with bare
``==``/``!=`` encodes an assumption of exactness the arithmetic does
not provide.  The sanctioned idioms are the ``repro._constants``
helpers: ``abs(a - b) <= TIME_EPS`` for coincidence,
``a > b + TIME_EPS`` for strict order, and ``window_starts`` for
integer-index window grids.

``FLT001`` flags a comparison when a *time-like* expression (an
identifier such as ``t``, ``start``, ``duration``, ``real_time``, a
``*_time``/``time_*`` name, or a clock-evaluation call like
``value_at``/``time_at``) is compared for equality against another
time-like expression or a float literal.  Comparisons against integer
literals, strings, ``None`` and booleans pass (they are sentinels, not
measurements), as does the ``x != x`` NaN probe.  Sites where exact
equality *is* the contract — e.g. validating that a schedule anchors at
literal ``0.0`` — carry a ``# repro: allow[FLT001]`` pragma stating so.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.check.core import Finding, ModuleInfo, Project, Rule, terminal_name

__all__ = ["FLOAT_CHECKED_PACKAGES", "TIME_NAME_RE", "FloatTimeEqualityRule"]

#: Packages whose float comparisons are measurement-path code.  ``viz``
#: and ``experiments`` render/report rather than measure, and ``check``
#: is the linter itself.
FLOAT_CHECKED_PACKAGES = frozenset(
    {"sim", "sweep", "analysis", "gcs", "topology", "algorithms", "apps", "rt"}
)

#: Identifiers that denote instants, readings, or durations.
TIME_NAME_RE = re.compile(
    r"""^(
        t|t0|t1|t2|dt|now|when|instant|epoch|deadline|horizon|
        time|times|real_time|sim_time|hardware|logical|
        start|starts|end|ends|stop|
        duration|elapsed|settling_time|arrival|
        .*_time|time_.*|.*_at|.*_instant|.*_deadline|.*_epoch
    )$""",
    re.VERBOSE,
)

#: Clock-evaluation calls whose results are time values.
_TIME_CALLS = {"value_at", "values_at", "time_at", "read", "settling_time"}


def _is_time_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = terminal_name(node)
        return name in _TIME_CALLS
    if isinstance(node, ast.UnaryOp):
        return _is_time_like(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_time_like(node.left) or _is_time_like(node.right)
    name = terminal_name(node)
    if name is None:
        return False
    return bool(TIME_NAME_RE.match(name))


def _is_exempt_operand(node: ast.AST) -> bool:
    """Sentinel operands that make an equality test legitimate."""
    if isinstance(node, ast.Constant):
        value = node.value
        # int/None/str/bool sentinels are fine; float literals are not.
        return not isinstance(value, float) or isinstance(value, bool)
    return False


def _comparable(node: ast.AST) -> bool:
    """Operand shapes the rule considers: time-like, float literal, or
    another numeric expression (not an obvious sentinel)."""
    return not _is_exempt_operand(node)


class FloatTimeEqualityRule(Rule):
    code = "FLT001"
    name = "no-bare-float-time-equality"
    hint = (
        "compare times through repro._constants: abs(a - b) <= TIME_EPS "
        "for coincidence, a > b + TIME_EPS for order, window_starts for "
        "grids; pragma sites where exactness is the contract"
    )
    contract = (
        "measurement paths tolerate accumulated float error up to TIME_EPS; "
        "bare equality between time values is how the window-grid and "
        "HostClock regressions slipped in"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if module.package not in FLOAT_CHECKED_PACKAGES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if ast.dump(left) == ast.dump(right):
                    continue  # the x != x NaN probe
                left_time = _is_time_like(left)
                right_time = _is_time_like(right)
                if not (left_time or right_time):
                    continue
                if not (_comparable(left) and _comparable(right)):
                    continue
                # Both sides must be plausibly float-valued: a time-like
                # side plus either another time-like side or a float
                # literal.  Anything else (e.g. `kind == other`) would
                # need type inference we deliberately do not attempt.
                other = right if left_time else left
                other_is_float_literal = isinstance(
                    other, ast.Constant
                ) and isinstance(other.value, float)
                if not (
                    (left_time and right_time) or other_is_float_literal
                ):
                    continue
                sym = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    module,
                    node,
                    f"bare float {sym} between time expressions "
                    f"({ast.unparse(left)} {sym} {ast.unparse(right)})",
                )
