"""The ``# repro: allow[RULE]`` suppression pragma.

A finding is suppressed when the physical line it is reported on
carries a pragma naming its rule code::

    t_end = horizon  # set up
    if t == t_end:  # repro: allow[FLT001] boundary sentinel, exact by design
        ...

Several codes may share one pragma (``allow[FLT001,DET001]``).  The
pragma silences *exactly* the listed rules on *exactly* that line —
never a whole file, never a different rule — so every suppression is a
visible, reviewable decision (a hypothesis property in the test suite
pins this exactness).  Unknown codes in a pragma are themselves
reported by the runner as ``PRAGMA`` notes so stale suppressions cannot
linger silently.

Pragmas are recognized only in real ``#`` comments (found via
:mod:`tokenize`), never in string literals or docstrings — documentation
that *mentions* the pragma syntax does not suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.check.core import ModuleInfo

__all__ = ["PRAGMA_RE", "suppressions", "unknown_codes"]

PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


def _comment_tokens(module: ModuleInfo) -> list[tuple[int, str]]:
    source = "\n".join(module.lines) + "\n"
    comments: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except tokenize.TokenizeError:  # pragma: no cover - parse already passed
        pass
    return comments


def suppressions(module: ModuleInfo) -> dict[int, frozenset[str]]:
    """Map line number -> rule codes suppressed on that line."""
    table: dict[int, frozenset[str]] = {}
    for lineno, comment in _comment_tokens(module):
        match = PRAGMA_RE.search(comment)
        if match:
            codes = frozenset(
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            )
            if codes:
                table[lineno] = codes
    return table


def unknown_codes(
    module: ModuleInfo, known: frozenset[str]
) -> list[tuple[int, str]]:
    """``(line, code)`` pairs for pragma codes no registered rule owns."""
    stale = []
    for lineno, codes in suppressions(module).items():
        for code in sorted(codes - known):
            stale.append((lineno, code))
    return stale
