"""Pickle-safety rules: nothing unpicklable flows into a job payload.

The sweep engine fans jobs across a multiprocessing pool, so every
value reaching a :class:`~repro.sweep.jobs.Job`, a
:class:`~repro.sweep.spec.SweepSpec` field, a
:class:`~repro.sim.faults.FaultPlan` (and its windows), or a
:class:`~repro.rt.run.LiveRunConfig` must survive ``pickle``.  Lambdas,
closures, and locally-defined classes do not — and the failure surfaces
far from the definition site, inside a worker, as an opaque
``PicklingError``.  These rules move the error to the definition site:

* ``PKL001`` — a ``lambda`` appears (anywhere, including inside a
  list/tuple/dict literal) in the arguments of a pickle-boundary
  constructor call;
* ``PKL002`` — a name bound to a function or class *defined inside an
  enclosing function body* is passed to a pickle boundary.  Such
  objects pickle by qualified name, which a worker process cannot
  resolve.

Module-level functions and classes pass: they are importable by name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    terminal_name,
)

__all__ = ["PICKLE_BOUNDARIES", "LambdaIntoJobRule", "LocalDefIntoJobRule"]

#: Callables whose arguments cross a process boundary.
PICKLE_BOUNDARIES = frozenset(
    {
        "SweepSpec",
        "Job",
        "FaultPlan",
        "CrashWindow",
        "LinkFault",
        "LiveRunConfig",
        "run_jobs",
        "execute_job",
        "job_hash",
    }
)


def _boundary_call(node: ast.Call) -> str | None:
    name = terminal_name(node.func)
    return name if name in PICKLE_BOUNDARIES else None


def _iter_argument_exprs(node: ast.Call):
    for arg in node.args:
        yield arg
    for kw in node.keywords:
        yield kw.value


def _walk_payload(expr: ast.AST):
    """Walk an argument expression, but do not descend into nested
    calls' own argument lists (those are that call's responsibility)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Call):
            continue
        stack.extend(ast.iter_child_nodes(node))


class LambdaIntoJobRule(Rule):
    code = "PKL001"
    name = "no-lambda-into-job"
    hint = (
        "replace the lambda with a module-level function (picklable by "
        "qualified name) or a spec string resolved via repro.sweep.families"
    )
    contract = (
        "job payloads cross the multiprocessing boundary; a lambda fails "
        "to pickle deep inside a worker instead of at the definition site"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            boundary = _boundary_call(node)
            if boundary is None:
                continue
            for arg in _iter_argument_exprs(node):
                for sub in _walk_payload(arg):
                    if isinstance(sub, ast.Lambda):
                        yield self.finding(
                            module,
                            sub,
                            f"lambda passed into pickle boundary "
                            f"{boundary}(...)",
                        )


class LocalDefIntoJobRule(Rule):
    code = "PKL002"
    name = "no-local-def-into-job"
    hint = (
        "hoist the function/class to module level so workers can import "
        "it by qualified name"
    )
    contract = (
        "closures and local classes pickle by qualified name, which a "
        "worker process cannot resolve; only module-level definitions "
        "survive the pool"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        # Collect names defined inside function bodies, per enclosing
        # function node, so a reference can be traced to a local def.
        local_defs: dict[ast.AST, set[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names = {
                    child.name
                    for child in ast.walk(node)
                    if isinstance(
                        child,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    )
                    and child is not node
                }
                local_defs[node] = names

        def _locally_defined(call: ast.Call, name: str) -> bool:
            parent = getattr(call, "_repro_parent", None)
            while parent is not None:
                if parent in local_defs and name in local_defs[parent]:
                    return True
                parent = getattr(parent, "_repro_parent", None)
            return False

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            boundary = _boundary_call(node)
            if boundary is None:
                continue
            for arg in _iter_argument_exprs(node):
                for sub in _walk_payload(arg):
                    if isinstance(sub, ast.Name) and _locally_defined(
                        node, sub.id
                    ):
                        yield self.finding(
                            module,
                            sub,
                            f"locally-defined '{sub.id}' passed into "
                            f"pickle boundary {boundary}(...)",
                        )
