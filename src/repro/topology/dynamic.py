"""Dynamic topologies: time-indexed networks for mobility scenarios.

The paper bounds skew between two nodes as a function of their *current*
distance — a claim with real content only when distances change over
time.  A :class:`DynamicTopology` is the executable form of a changing
network: a time-indexed sequence of :class:`~repro.topology.base.Topology`
snapshots with explicit change-points.  The
:class:`~repro.sim.simulator.Simulator` accepts one anywhere a static
topology goes and atomically swaps its distance/adjacency tables at each
change-point (a ``TopologyChange`` event); messages already on the wire
keep travelling under the delay they were assigned at send time.

Three generators cover the scenario axis:

* :func:`random_waypoint` — the classic mobility model (nodes drift
  through a square area toward successive random waypoints, links form
  within a communication radius), sampled into snapshots;
* :func:`link_schedule` — declarative per-edge up/down windows over a
  fixed node placement, the :class:`~repro.sim.faults.LinkFault` window
  idiom lifted from message loss to actual graph rewiring;
* :func:`snapshot_sequence` — hand-authored phase changes.

Determinism contract
--------------------
Generators are pure functions of their arguments (all randomness from
the ``seed``), snapshots are delivered in strictly increasing time
order, and a single-snapshot :class:`DynamicTopology` is **free**: the
simulator schedules no change events at all, so the run stays
byte-identical to the same run on the plain static topology (a
regression + hypothesis test enforce this, mirroring the empty
``FaultPlan`` contract).

Usage::

    >>> from repro.topology import line
    >>> from repro.topology.dynamic import snapshot_sequence
    >>> dyn = snapshot_sequence((0.0, line(4)), (10.0, line(4, comm_radius=2.0)))
    >>> dyn.at(3.0) is dyn.initial
    True
    >>> dyn.at(10.0) is dyn.final
    True
    >>> dyn.change_times
    (10.0,)
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.topology.base import Topology

__all__ = [
    "DynamicTopology",
    "components",
    "random_waypoint",
    "link_schedule",
    "snapshot_sequence",
]


def _components_of(
    n: int, edges: Iterable[tuple[int, int]]
) -> tuple[tuple[int, ...], ...]:
    """Connected components of an undirected edge set over ``range(n)``."""
    adjacency: dict[int, set[int]] = {node: set() for node in range(n)}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    seen: set[int] = set()
    out: list[tuple[int, ...]] = []
    for start in range(n):
        if start in seen:
            continue
        stack, group = [start], {start}
        while stack:
            for peer in adjacency[stack.pop()]:
                if peer not in group:
                    group.add(peer)
                    stack.append(peer)
        seen |= group
        out.append(tuple(sorted(group)))
    return tuple(sorted(out))


def components(topology: Topology) -> tuple[tuple[int, ...], ...]:
    """Connected components of the *communication* graph, deterministic.

    Components are sorted internally and by their smallest member, so
    two topologies with the same comm graph report identical component
    structure.  A connected network reports exactly one component.

    >>> from repro.topology import line
    >>> components(line(3))
    ((0, 1, 2),)
    """
    return _components_of(topology.n, topology.comm_edges)


class DynamicTopology:
    """A time-indexed sequence of topology snapshots with change-points.

    Parameters
    ----------
    snapshots:
        ``(time, topology)`` pairs.  The first must be at time ``0.0``
        (an execution always starts on a defined network), times must be
        strictly increasing, and every snapshot must cover the same node
        set (nodes may move and links may rewire; nodes never appear or
        disappear — churn is :mod:`repro.sim.faults`' job).
    name:
        Label used in experiment tables.

    The snapshot active at real time ``t`` is the last one at or before
    ``t`` (:meth:`at`).  A single-snapshot instance behaves exactly like
    its static topology everywhere (see the module docstring's
    determinism contract).
    """

    def __init__(
        self,
        snapshots: Iterable[tuple[float, Topology]],
        *,
        name: str = "dynamic",
    ):
        snaps = [(float(t), topo) for t, topo in snapshots]
        if not snaps:
            raise TopologyError("a dynamic topology needs at least one snapshot")
        if abs(snaps[0][0]) > 1e-12:
            raise TopologyError(
                f"the first snapshot must be at time 0.0, got {snaps[0][0]}"
            )
        snaps[0] = (0.0, snaps[0][1])
        for (t0, _), (t1, _) in zip(snaps, snaps[1:]):
            if t1 <= t0:
                raise TopologyError(
                    f"snapshot times must be strictly increasing, got "
                    f"{t0} then {t1}"
                )
        n = snaps[0][1].n
        for t, topo in snaps:
            if topo.n != n:
                raise TopologyError(
                    f"snapshot at t={t} has {topo.n} nodes, expected {n} "
                    "(the node set is fixed; use fault plans for churn)"
                )
        self.snapshots: tuple[tuple[float, Topology], ...] = tuple(snaps)
        self.name = name
        self._times = [t for t, _ in self.snapshots]

    # ------------------------------------------------------------------
    # queries

    @property
    def n(self) -> int:
        """Node count (identical across snapshots)."""
        return self.snapshots[0][1].n

    @property
    def initial(self) -> Topology:
        """The ``t = 0`` network."""
        return self.snapshots[0][1]

    @property
    def final(self) -> Topology:
        """The network after the last change-point."""
        return self.snapshots[-1][1]

    @property
    def change_times(self) -> tuple[float, ...]:
        """The change-points (snapshot times after 0), strictly increasing."""
        return tuple(self._times[1:])

    def is_static(self) -> bool:
        """True iff there are no change-points (the free, byte-identical case)."""
        return len(self.snapshots) == 1

    def at(self, t: float) -> Topology:
        """The snapshot active at real time ``t`` (last change at or before)."""
        index = bisect.bisect_right(self._times, t) - 1
        return self.snapshots[max(index, 0)][1]

    def segments(self, duration: float) -> list[tuple[float, float, Topology]]:
        """``(t0, t1, topology)`` intervals covering ``[0, duration]``.

        Change-points beyond ``duration`` are dropped; the final segment
        closes at ``duration``.
        """
        if duration <= 0:
            raise TopologyError(f"duration must be positive, got {duration}")
        out = []
        for k, (t0, topo) in enumerate(self.snapshots):
            if t0 > duration:
                break
            t1 = min(
                self._times[k + 1] if k + 1 < len(self._times) else duration,
                duration,
            )
            out.append((t0, t1, topo))
        return out

    def __len__(self) -> int:
        return len(self.snapshots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DynamicTopology {self.name!r} n={self.n} "
            f"snapshots={len(self.snapshots)}>"
        )

    @classmethod
    def static(cls, topology: Topology) -> "DynamicTopology":
        """Wrap a static topology (no change-points; free by contract)."""
        return cls(((0.0, topology),), name=topology.name)


def snapshot_sequence(
    *snapshots: tuple[float, Topology], name: str = "phases"
) -> DynamicTopology:
    """Hand-authored phase changes: ``(time, topology)`` pairs in order.

    The thinnest generator — exists so experiments can write
    ``snapshot_sequence((0.0, before), (50.0, after))`` for controlled
    re-convergence studies.  Validation (time 0 start, strictly
    increasing times, fixed node set) is :class:`DynamicTopology`'s.
    Deterministic trivially: no randomness at all.
    """
    return DynamicTopology(snapshots, name=name)


# ----------------------------------------------------------------------
# random-waypoint mobility


def _euclidean_snapshot(
    points: Sequence[tuple[float, float]],
    comm_radius: float,
    *,
    connect: bool,
    name: str,
) -> Topology:
    """One geometric snapshot: clamped-Euclidean distances + radius links.

    Distance is ``max(1, Euclidean separation)`` — the clamp keeps the
    paper's ``min d_ij >= 1`` normalization without rescaling the unit
    per snapshot (rescaling would silently change what "distance 1"
    means over time).  Links connect pairs within ``comm_radius``; with
    ``connect=True`` isolated components are bridged through their
    closest cross pair, so the comm graph is always connected.
    """
    n = len(points)
    xy = np.asarray(points, dtype=float)
    sep = np.hypot(
        xy[:, 0][:, None] - xy[:, 0][None, :],
        xy[:, 1][:, None] - xy[:, 1][None, :],
    )
    d = np.maximum(sep, 1.0)
    np.fill_diagonal(d, 0.0)
    rows, cols = np.nonzero(np.triu(sep <= comm_radius + 1e-9, 1))
    edges = {(int(i), int(j)) for i, j in zip(rows, cols)}
    if connect:
        groups = [set(g) for g in _components_of(n, edges)]
        # Bridge each remaining component into the one holding node 0,
        # closest cross pair first (deterministic tie-break on the node
        # pair itself); components are merged incrementally, no rebuild.
        anchor = groups[0]
        others = groups[1:]
        while others:
            best: tuple[float, int, int] | None = None
            for i in sorted(anchor):
                for group in others:
                    for j in group:
                        cand = (float(d[i, j]), i, j)
                        if best is None or cand < best:
                            best = cand
            assert best is not None
            edges.add((min(best[1], best[2]), max(best[1], best[2])))
            merged = next(g for g in others if best[2] in g)
            others.remove(merged)
            anchor |= merged
    topo = Topology(d, frozenset(edges), name=name, require_unit_min=True)
    topo.positions = {i: (points[i][0], points[i][1]) for i in range(n)}
    return topo


def random_waypoint(
    n: int,
    *,
    area: float | None = None,
    speed: float = 0.5,
    comm_radius: float = 2.5,
    duration: float,
    interval: float = 5.0,
    seed: int = 0,
    connect: bool = True,
) -> DynamicTopology:
    """Random-waypoint mobility sampled into topology snapshots.

    Each node starts at a uniform point in an ``area x area`` square and
    repeatedly picks a uniform waypoint, travelling toward it at
    ``speed`` distance units per real-time unit.  The motion is sampled
    every ``interval`` time units from ``0`` up to (excluding)
    ``duration``; each sample becomes one snapshot with clamped-Euclidean
    distances ``d_ij = max(1, |p_i - p_j|)`` and communication links
    between pairs within ``comm_radius``.

    Connectivity guarantee: with ``connect=True`` (default) every
    snapshot's comm graph is connected — isolated components are bridged
    through their closest cross pair.  With ``connect=False`` the radius
    graph is kept as-is and snapshots may be partitioned; callers read
    the declared partition structure back with :func:`components`.

    Determinism contract: a pure function of its arguments — all
    randomness comes from ``seed``, snapshot times are exactly
    ``0, interval, 2*interval, ...`` (strictly increasing), and repeated
    calls return identical placements, distances, and edge sets.

    >>> dyn = random_waypoint(5, speed=1.0, duration=10.0, interval=4.0, seed=1)
    >>> [t for t, _ in dyn.snapshots]
    [0.0, 4.0, 8.0]
    >>> dyn.n
    5
    """
    if n < 2:
        raise TopologyError("random_waypoint needs at least 2 nodes")
    if duration <= 0:
        raise TopologyError(f"duration must be positive, got {duration}")
    if interval <= 0:
        raise TopologyError(f"interval must be positive, got {interval}")
    if speed < 0:
        raise TopologyError(f"speed must be nonnegative, got {speed}")
    if comm_radius <= 0:
        raise TopologyError(f"comm_radius must be positive, got {comm_radius}")
    side = float(area) if area is not None else max(2.0, math.sqrt(3.0 * n))
    if side <= 0:
        raise TopologyError(f"area must be positive, got {side}")

    rng = random.Random(seed ^ 0x3AB11E)
    positions = [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]
    targets = [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]

    times = []
    t = 0.0
    k = 0
    while t < duration - 1e-12:
        times.append(t)
        k += 1
        t = k * interval

    snapshots: list[tuple[float, Topology]] = []
    previous = 0.0
    for t in times:
        budget = (t - previous) * speed
        for node in range(n):
            remaining = budget
            px, py = positions[node]
            tx, ty = targets[node]
            while remaining > 1e-12:
                leg = math.hypot(tx - px, ty - py)
                if leg <= remaining:
                    # Arrive and pick the next waypoint.
                    px, py = tx, ty
                    remaining -= leg
                    tx, ty = rng.uniform(0, side), rng.uniform(0, side)
                else:
                    frac = remaining / leg
                    px += (tx - px) * frac
                    py += (ty - py) * frac
                    remaining = 0.0
            positions[node] = (px, py)
            targets[node] = (tx, ty)
        snapshots.append(
            (
                t,
                _euclidean_snapshot(
                    list(positions),
                    comm_radius,
                    connect=connect,
                    name=f"waypoint({n},seed={seed})@t{t:g}",
                ),
            )
        )
        previous = t
    return DynamicTopology(
        snapshots, name=f"waypoint({n},v={speed:g},seed={seed})"
    )


# ----------------------------------------------------------------------
# declarative link up/down windows


def link_schedule(
    base: Topology,
    down: Mapping[tuple[int, int], Iterable[tuple[float, float]]],
    *,
    name: str | None = None,
) -> DynamicTopology:
    """Declarative per-edge up/down windows over a fixed placement.

    ``down`` maps undirected comm edges of ``base`` to windows
    ``(t0, t1)`` during which the edge is *removed from the
    communication graph* (``0 <= t0 < t1``, the
    :class:`~repro.sim.faults.LinkFault` windowing idiom).  Unlike a
    fault-plan down window — which loses messages on an intact graph —
    this rewires the graph itself: ``NodeAPI.neighbors`` stops listing
    the peer, so algorithms do not even try to talk across a down edge.
    Distances are physical and never change.

    Snapshots are emitted only at instants where the edge set actually
    changes (overlapping windows are unioned), in strictly increasing
    time order.  Deterministic trivially: no randomness at all.
    Connectivity is whatever the windows leave standing — snapshots may
    be partitioned; inspect them with :func:`components`.

    >>> from repro.topology import line
    >>> dyn = link_schedule(line(3), {(0, 1): [(2.0, 4.0)]})
    >>> dyn.change_times
    (2.0, 4.0)
    >>> sorted(dyn.at(3.0).comm_edges)
    [(1, 2)]
    >>> sorted(dyn.at(5.0).comm_edges) == sorted(dyn.initial.comm_edges)
    True
    """
    base_edges = set(base.comm_edges)
    windows: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for edge, spans in down.items():
        a, b = edge
        key = (min(a, b), max(a, b))
        if key not in base_edges:
            raise TopologyError(
                f"link_schedule names edge {edge} absent from {base.name!r}"
            )
        for t0, t1 in spans:
            if not 0.0 <= t0 < t1:
                raise TopologyError(f"down window ({t0}, {t1}) is not ordered")
            windows.setdefault(key, []).append((float(t0), float(t1)))

    boundaries = {0.0}
    for spans in windows.values():
        for t0, t1 in spans:
            boundaries.add(t0)
            boundaries.add(t1)

    def edges_at(t: float) -> frozenset[tuple[int, int]]:
        removed = {
            edge
            for edge, spans in windows.items()
            if any(t0 <= t < t1 for t0, t1 in spans)
        }
        return frozenset(base_edges - removed)

    snapshots: list[tuple[float, Topology]] = []
    last_edges: frozenset[tuple[int, int]] | None = None
    for t in sorted(boundaries):
        edges = edges_at(t)
        if edges == last_edges:
            continue
        snapshots.append(
            (
                t,
                Topology(
                    base.distances,
                    edges,
                    name=f"{base.name}@t{t:g}",
                    require_unit_min=base.require_unit_min,
                    positions=base.positions,
                ),
            )
        )
        last_edges = edges
    return DynamicTopology(
        snapshots, name=name if name is not None else f"{base.name}+links"
    )
