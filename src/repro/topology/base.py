"""Network topologies for the paper's distance model.

The *distance* ``d_ij`` between two nodes is the uncertainty in their
message delay (Section 3), with the normalization ``min_ij d_ij = 1`` and
diameter ``D = max_ij d_ij``.  A :class:`Topology` packages the distance
matrix with a *communication graph*: the model lets every pair exchange
messages, but realistic algorithms gossip only with nearby nodes, so each
topology also designates which pairs the algorithms actually use.

Determinism contract: a ``Topology`` is a pure value — every query
(:meth:`Topology.neighbors`, :meth:`Topology.adjacent_pairs`,
:meth:`Topology.comm_pairs`) returns sorted, repeatable results, so two
simulations over equal topologies observe identical neighbor orders.

Usage::

    >>> import numpy as np
    >>> topo = Topology.fully_connected(
    ...     np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]]),
    ...     name="demo")
    >>> topo.diameter, topo.min_distance
    (2.0, 1.0)
    >>> topo.neighbors(0)
    [1, 2]
    >>> topo.adjacent_pairs()
    [(0, 1), (1, 2)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import TopologyError

__all__ = ["Topology"]


@dataclass
class Topology:
    """A set of nodes with pairwise delay-uncertainty distances.

    Parameters
    ----------
    distances:
        Symmetric ``n x n`` matrix of delay uncertainties; diagonal zero.
    comm_edges:
        The pairs that exchange messages (undirected).  Defaults to all
        pairs at distance ``<= comm_radius`` when built via
        :meth:`with_radius`, or all pairs for :meth:`fully_connected`.
    name:
        Human-readable label used in experiment tables.
    require_unit_min:
        Enforce the paper's ``min d_ij = 1`` normalization.  RBS broadcast
        clusters deliberately relax it (their point is uncertainty << 1)
        and pass ``False``.
    """

    distances: np.ndarray
    comm_edges: frozenset[tuple[int, int]]
    name: str = "topology"
    require_unit_min: bool = True
    positions: dict[int, tuple[float, float]] | None = None

    def __post_init__(self) -> None:
        d = np.asarray(self.distances, dtype=float)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise TopologyError(f"distance matrix must be square, got {d.shape}")
        if d.shape[0] < 2:
            raise TopologyError("a network needs at least two nodes")
        if not np.allclose(d, d.T):
            raise TopologyError("distances must be symmetric")
        if not np.allclose(np.diag(d), 0.0):
            raise TopologyError("self-distance must be zero")
        off = d[~np.eye(d.shape[0], dtype=bool)]
        if np.any(off <= 0):
            raise TopologyError("distinct nodes must have positive distance")
        if self.require_unit_min and off.min() < 1.0 - 1e-9:
            # The paper sets the unit by "min d_ij = 1"; we read it as a
            # floor so sub-networks (e.g. two nodes at distance d > 1)
            # remain expressible in the same unit.
            raise TopologyError(
                f"paper normalization requires d_ij >= 1, got {off.min()}"
            )
        self.distances = d
        for i, j in self.comm_edges:
            if i == j or not (0 <= i < d.shape[0]) or not (0 <= j < d.shape[0]):
                raise TopologyError(f"bad communication edge ({i}, {j})")

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def fully_connected(
        cls, distances: np.ndarray, *, name: str = "topology", **kwargs
    ) -> "Topology":
        """All pairs communicate (the model's default power)."""
        n = np.asarray(distances).shape[0]
        edges = frozenset(
            (i, j) for i in range(n) for j in range(i + 1, n)
        )
        return cls(np.asarray(distances, dtype=float), edges, name=name, **kwargs)

    @classmethod
    def with_radius(
        cls,
        distances: np.ndarray,
        radius: float,
        *,
        name: str = "topology",
        **kwargs,
    ) -> "Topology":
        """Communication restricted to pairs at distance ``<= radius``."""
        d = np.asarray(distances, dtype=float)
        n = d.shape[0]
        edges = frozenset(
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if d[i, j] <= radius + 1e-9
        )
        topo = cls(d, edges, name=name, **kwargs)
        if any(not topo.neighbors(i) for i in range(n)):
            raise TopologyError(f"radius {radius} leaves a node isolated")
        return topo

    # ------------------------------------------------------------------
    # queries

    @property
    def n(self) -> int:
        return int(self.distances.shape[0])

    @property
    def nodes(self) -> range:
        return range(self.n)

    def distance(self, i: int, j: int) -> float:
        """The delay uncertainty ``d_ij``."""
        return float(self.distances[i, j])

    @property
    def diameter(self) -> float:
        """``D = max_ij d_ij`` (the paper's diameter)."""
        return float(self.distances.max())

    @property
    def min_distance(self) -> float:
        off = self.distances[~np.eye(self.n, dtype=bool)]
        return float(off.min())

    def neighbors(self, i: int) -> list[int]:
        """Communication partners of ``i``, sorted for determinism.

        Cached: the adjacency is scanned once, not on every broadcast
        (this sits on the simulator's hot path).
        """
        cache = self.__dict__.get("_neighbor_cache")
        if cache is None:
            cache = {n: set() for n in self.nodes}
            for a, b in self.comm_edges:
                cache[a].add(b)
                cache[b].add(a)
            cache = {n: sorted(s) for n, s in cache.items()}
            self.__dict__["_neighbor_cache"] = cache
        return list(cache[i])

    def degree(self, i: int) -> int:
        return len(self.neighbors(i))

    @property
    def max_degree(self) -> int:
        return max(self.degree(i) for i in self.nodes)

    def pairs(self) -> Iterable[tuple[int, int]]:
        """All unordered node pairs."""
        for i in range(self.n):
            for j in range(i + 1, self.n):
                yield i, j

    def pairs_at_distance(self, d: float, *, tol: float = 1e-9) -> list[tuple[int, int]]:
        return [(i, j) for i, j in self.pairs() if abs(self.distance(i, j) - d) <= tol]

    def adjacent_pairs(self) -> list[tuple[int, int]]:
        """Pairs at the minimum distance — the pairs Theorem 8.1 is about.

        Cached: skew measurements evaluate this on every sample time.
        """
        cached = self.__dict__.get("_adjacent_cache")
        if cached is None:
            cached = self.pairs_at_distance(self.min_distance)
            self.__dict__["_adjacent_cache"] = cached
        return list(cached)

    def comm_pairs(self) -> list[tuple[int, int]]:
        """The communication edges, sorted for determinism."""
        return sorted(self.comm_edges)
