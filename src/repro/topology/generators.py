"""Topology generators.

``line`` is the Theorem 8.1 network (``d_ij = |i - j|``); the rest cover
the paper's motivating settings: sensor grids, fusion trees, RBS broadcast
clusters, and random geometric sensor fields.  Time-varying networks live
in :mod:`repro.topology.dynamic`.

Every generator documents two things:

* its **connectivity guarantee** — whether (and how) the communication
  graph is kept connected;
* its **determinism contract** — all are pure functions of their
  arguments; the only randomness is :func:`random_geometric`'s, drawn
  entirely from its ``seed``.

Usage::

    >>> line(5).diameter
    4.0
    >>> grid(2, 3).n
    6
    >>> ring(6).degree(0)
    2
    >>> random_geometric(8, seed=1).n == random_geometric(8, seed=1).n
    True
"""

from __future__ import annotations

import math
import random

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.topology.base import Topology

__all__ = [
    "line",
    "ring",
    "grid",
    "complete",
    "star",
    "balanced_tree",
    "random_geometric",
    "broadcast_cluster",
    "two_nodes",
]


def line(n: int, *, comm_radius: float = 1.0) -> Topology:
    """Nodes ``0..n-1`` on a line with ``d_ij = |i - j|`` (Section 8's network).

    Diameter is ``n - 1``.  Communication defaults to adjacent nodes only;
    the model still lets the adversary pick any delay in ``[0, |i - j|]``
    for any pair that chooses to talk.

    Connectivity: connected for every ``comm_radius >= 1`` (the chain of
    unit edges); smaller radii are rejected.  Determinism: pure function
    of ``(n, comm_radius)``.
    """
    if n < 2:
        raise TopologyError("line needs at least 2 nodes")
    idx = np.arange(n)
    d = np.abs(idx[:, None] - idx[None, :]).astype(float)
    return Topology.with_radius(d, comm_radius, name=f"line({n})")


def ring(n: int, *, comm_radius: float = 1.0) -> Topology:
    """Nodes on a cycle; ``d_ij`` is hop distance around the ring.

    Connectivity: connected for every ``comm_radius >= 1`` (the cycle
    itself).  Determinism: pure function of ``(n, comm_radius)``.
    """
    if n < 3:
        raise TopologyError("ring needs at least 3 nodes")
    idx = np.arange(n)
    diff = np.abs(idx[:, None] - idx[None, :])
    d = np.minimum(diff, n - diff).astype(float)
    return Topology.with_radius(d, comm_radius, name=f"ring({n})")


def grid(rows: int, cols: int, *, comm_radius: float = 1.0) -> Topology:
    """A ``rows x cols`` grid with Manhattan hop distances.

    Connectivity: connected for every ``comm_radius >= 1`` (the lattice
    edges).  Determinism: pure function of ``(rows, cols, comm_radius)``.
    """
    if rows * cols < 2:
        raise TopologyError("grid needs at least 2 nodes")
    coords = [(r, c) for r in range(rows) for c in range(cols)]
    n = len(coords)
    d = np.zeros((n, n))
    for a, (ra, ca) in enumerate(coords):
        for b, (rb, cb) in enumerate(coords):
            d[a, b] = abs(ra - rb) + abs(ca - cb)
    topo = Topology.with_radius(d, comm_radius, name=f"grid({rows}x{cols})")
    topo.positions = {i: (float(c), float(r)) for i, (r, c) in enumerate(coords)}
    return topo


def complete(n: int, *, distance: float = 1.0) -> Topology:
    """All pairs at the same distance (Lundelius-Welch & Lynch's setting).

    Connectivity: complete, trivially.  Determinism: pure function of
    ``(n, distance)``.
    """
    if n < 2:
        raise TopologyError("complete graph needs at least 2 nodes")
    d = np.full((n, n), float(distance))
    np.fill_diagonal(d, 0.0)
    return Topology.fully_connected(d, name=f"complete({n})")


def star(n_leaves: int, *, arm: float = 1.0) -> Topology:
    """A hub (node 0) with ``n_leaves`` leaves at distance ``arm``.

    Connectivity: connected through the hub (communication radius equals
    the arm, so leaves talk only to the hub).  Determinism: pure
    function of ``(n_leaves, arm)``.
    """
    if n_leaves < 1:
        raise TopologyError("star needs at least one leaf")
    n = n_leaves + 1
    d = np.full((n, n), 2.0 * arm)
    d[0, :] = arm
    d[:, 0] = arm
    np.fill_diagonal(d, 0.0)
    return Topology.with_radius(d, arm, name=f"star({n_leaves})")


def balanced_tree(branching: int, height: int) -> Topology:
    """A balanced tree with unit edges; distances are tree-path lengths.

    The data-fusion communication tree of the introduction: leaves send to
    parents, parents fuse and forward.

    Connectivity: connected (the tree edges).  Determinism: pure
    function of ``(branching, height)``.
    """
    if branching < 2 or height < 1:
        raise TopologyError("tree needs branching >= 2 and height >= 1")
    g = nx.balanced_tree(branching, height)
    n = g.number_of_nodes()
    lengths = dict(nx.all_pairs_shortest_path_length(g))
    d = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            d[i, j] = float(lengths[i][j])
    return Topology.with_radius(d, 1.0, name=f"tree(b={branching},h={height})")


def random_geometric(
    n: int,
    *,
    comm_radius_factor: float = 2.0,
    seed: int = 0,
    side: float | None = None,
) -> Topology:
    """A random sensor field: uniform points, distance = scaled Euclidean.

    Euclidean separation is scaled so the closest pair sits at distance 1
    (the paper's normalization); communication links pairs within
    ``comm_radius_factor`` of the minimum.  The introduction's footnote 2
    motivates exactly this correspondence between Euclidean distance and
    delay uncertainty.

    Connectivity: the radius is widened to every node's nearest neighbor
    so no node is isolated; the graph as a whole may still split into
    several components for sparse fields (use
    :func:`repro.topology.dynamic.components` to inspect).
    Determinism: all randomness comes from ``seed``; identical arguments
    give identical fields.
    """
    if n < 2:
        raise TopologyError("need at least 2 nodes")
    rng = random.Random(seed)
    side = side if side is not None else math.sqrt(n)
    pts = [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]
    d = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            dist = math.hypot(pts[i][0] - pts[j][0], pts[i][1] - pts[j][1])
            d[i, j] = d[j, i] = dist
    off = d[~np.eye(n, dtype=bool)]
    scale = off.min()
    if scale <= 0:
        raise TopologyError("duplicate points; use another seed")
    d /= scale
    # Radius must at least reach every node's nearest neighbor, or the
    # communication graph would leave isolated nodes.
    nearest = np.where(np.eye(n, dtype=bool), np.inf, d).min(axis=1)
    radius = max(comm_radius_factor, float(nearest.max()))
    topo = Topology.with_radius(
        d, radius, name=f"geometric({n},seed={seed})"
    )
    topo.positions = {
        i: (pts[i][0] / scale, pts[i][1] / scale) for i in range(n)
    }
    return topo


def broadcast_cluster(n: int, *, uncertainty: float = 0.01) -> Topology:
    """An RBS-style radio cluster: every pair at tiny delay uncertainty.

    Deliberately breaks the ``min d_ij = 1`` normalization — the whole
    point of RBS (Elson et al.) is uncertainty close to zero.  The paper's
    bound still applies but is small because the diameter is small.

    Connectivity: complete, trivially.  Determinism: pure function of
    ``(n, uncertainty)``.
    """
    if n < 2:
        raise TopologyError("cluster needs at least 2 nodes")
    d = np.full((n, n), float(uncertainty))
    np.fill_diagonal(d, 0.0)
    edges = frozenset((i, j) for i in range(n) for j in range(i + 1, n))
    return Topology(
        d, edges, name=f"rbs-cluster({n})", require_unit_min=False
    )


def two_nodes(distance: float) -> Topology:
    """The folklore lower bound's network: two nodes at distance ``d >= 1``.

    Connectivity: the single pair communicates.  Determinism: pure
    function of ``distance``.
    """
    if distance < 1.0:
        raise TopologyError("paper normalization requires d >= 1")
    d = np.array([[0.0, distance], [distance, 0.0]])
    return Topology.fully_connected(d, name=f"pair(d={distance})")
