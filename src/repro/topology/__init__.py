"""Topologies: distance matrices (delay uncertainty) + communication graphs.

Static networks are :class:`~repro.topology.base.Topology` values built
by the generators in :mod:`repro.topology.generators`; time-varying
networks are :class:`~repro.topology.dynamic.DynamicTopology` sequences
of snapshots built by the mobility models in
:mod:`repro.topology.dynamic`.  The simulator accepts either.
"""

from repro.topology.base import Topology
from repro.topology.dynamic import (
    DynamicTopology,
    components,
    link_schedule,
    random_waypoint,
    snapshot_sequence,
)
from repro.topology.generators import (
    balanced_tree,
    broadcast_cluster,
    complete,
    grid,
    line,
    random_geometric,
    ring,
    star,
    two_nodes,
)

__all__ = [
    "Topology",
    "DynamicTopology",
    "components",
    "link_schedule",
    "random_waypoint",
    "snapshot_sequence",
    "line",
    "ring",
    "grid",
    "complete",
    "star",
    "balanced_tree",
    "random_geometric",
    "broadcast_cluster",
    "two_nodes",
]
