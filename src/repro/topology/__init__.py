"""Topologies: distance matrices (delay uncertainty) + communication graphs."""

from repro.topology.base import Topology
from repro.topology.generators import (
    balanced_tree,
    broadcast_cluster,
    complete,
    grid,
    line,
    random_geometric,
    ring,
    star,
    two_nodes,
)

__all__ = [
    "Topology",
    "line",
    "ring",
    "grid",
    "complete",
    "star",
    "balanced_tree",
    "random_geometric",
    "broadcast_cluster",
    "two_nodes",
]
