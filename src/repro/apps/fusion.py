"""Data fusion over a sensor tree (the introduction's first motivation).

    "When fusing data, the children of a parent node must synchronize
     their clocks, so that the times of their readings are consistent
     and a fused reading will make sense."

A physical event happens at one wall-clock instant; every sensor that
observes it stamps it with its *logical* clock.  A parent fusing its
children's reports accepts them as one event only if the timestamps
agree within a tolerance window.  Clock skew between siblings therefore
turns one event into several phantom events (or merges distinct ones).

This module overlays that pipeline on a finished execution over a tree
topology: it generates events, collects sibling timestamp spreads, and
reports the mis-fusion rate at a given tolerance.  The gradient insight
is visible directly: sibling leaves are *nearby* nodes, so an f-GCS
algorithm with small ``f`` at small distances fuses correctly even when
far-apart subtrees disagree wildly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.errors import ExperimentError
from repro.sim.execution import Execution
from repro.topology.base import Topology

__all__ = ["FusionGroup", "FusionReport", "fusion_groups", "evaluate_fusion"]


@dataclass(frozen=True)
class FusionGroup:
    """A parent and the children whose readings it fuses."""

    parent: int
    children: tuple[int, ...]


def fusion_groups(topology: Topology, root: int = 0) -> list[FusionGroup]:
    """The fusion tree: BFS from ``root`` over the communication graph.

    Each internal node fuses its direct children — the paper's
    "children of the same parent" locality structure.
    """
    graph = nx.Graph(topology.comm_pairs())
    graph.add_nodes_from(topology.nodes)
    if root not in graph:
        raise ExperimentError(f"root {root} not in topology")
    children: dict[int, list[int]] = {n: [] for n in topology.nodes}
    for child, parent in nx.bfs_predecessors(graph, root):
        children[parent].append(child)
    return [
        FusionGroup(parent=p, children=tuple(sorted(cs)))
        for p, cs in sorted(children.items())
        if len(cs) >= 2
    ]


@dataclass(frozen=True)
class FusionReport:
    """Mis-fusion accounting over a batch of events."""

    events: int
    groups: int
    fused_correctly: int
    worst_spread: float
    mean_spread: float
    tolerance: float

    @property
    def misfusion_rate(self) -> float:
        total = self.events * self.groups
        return 1.0 - self.fused_correctly / total if total else 0.0


def evaluate_fusion(
    execution: Execution,
    *,
    tolerance: float,
    n_events: int = 50,
    root: int = 0,
    warmup: float = 0.0,
    seed: int = 0,
    event_times: Sequence[float] | None = None,
) -> FusionReport:
    """Stamp ``n_events`` simultaneous observations; check sibling spreads.

    For each event at wall time ``t`` and each fusion group, the spread
    is ``max - min`` of the children's logical timestamps ``L_child(t)``;
    the group fuses correctly iff spread <= tolerance.
    """
    if tolerance <= 0:
        raise ExperimentError("tolerance must be positive")
    groups = fusion_groups(execution.topology, root=root)
    if not groups:
        raise ExperimentError("topology has no fusion groups (need fan-out >= 2)")
    if event_times is None:
        rng = random.Random(seed)
        lo = warmup
        hi = execution.duration
        event_times = sorted(rng.uniform(lo, hi) for _ in range(n_events))
    ok = 0
    worst = 0.0
    total_spread = 0.0
    samples = 0
    for t in event_times:
        snapshot = execution.logical_snapshot(t)
        for group in groups:
            stamps = [snapshot[c] for c in group.children]
            spread = max(stamps) - min(stamps)
            worst = max(worst, spread)
            total_spread += spread
            samples += 1
            if spread <= tolerance:
                ok += 1
    return FusionReport(
        events=len(event_times),
        groups=len(groups),
        fused_correctly=ok,
        worst_spread=worst,
        mean_spread=total_spread / max(samples, 1),
        tolerance=tolerance,
    )
