"""TDMA slotting on top of synchronized logical clocks.

The paper's headline implication:

    "the TDMA protocol with a fixed slot granularity will fail as the
     network grows, even if the maximum degree of each node stays
     constant."

TDMA divides logical time into frames of ``n_slots`` slots of fixed
width; each node transmits only during its slot, with slots assigned by
graph coloring so that interfering nodes never share one.  Correctness
rests entirely on neighbors reading compatible clocks: with adjacent
skew beyond the guard margin, two nodes can sit in *different* slots of
their own frames at the same wall-clock instant and collide.

This module overlays a TDMA schedule on a finished execution: it
computes every node's real-time transmission intervals by inverting its
logical clock, then intersects intervals of interfering pairs.  Because
the lower bound forces adjacent skew that grows with the diameter
(Theorem 8.1), collision-freedom with fixed slot width is impossible in
large networks — experiment E07 measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
import networkx as nx

from repro.errors import ExperimentError
from repro.sim.execution import Execution
from repro.topology.base import Topology

__all__ = ["TDMASchedule", "TDMAReport", "assign_slots", "evaluate_tdma"]


@dataclass(frozen=True)
class TDMASchedule:
    """Slot assignment + timing parameters.

    ``slots[node]`` is the node's slot index within the frame;
    ``n_slots`` the frame length in slots; ``slot_width`` the slot
    length in *logical* time; ``guard`` the silent margin kept at both
    ends of the slot (transmission occupies
    ``[slot*w + guard, (slot+1)*w - guard]``).
    """

    slots: dict[int, int]
    n_slots: int
    slot_width: float
    guard: float = 0.0

    def __post_init__(self) -> None:
        if self.n_slots < 1 or self.slot_width <= 0:
            raise ExperimentError("need n_slots >= 1 and slot_width > 0")
        if not 0 <= self.guard < self.slot_width / 2:
            raise ExperimentError("guard must be < slot_width / 2")

    @property
    def frame(self) -> float:
        return self.n_slots * self.slot_width


def assign_slots(
    topology: Topology, *, slot_width: float, guard: float = 0.0
) -> TDMASchedule:
    """Color the interference graph greedily; one slot per color.

    Interference = communication adjacency (nodes that can hear each
    other).  Greedy coloring uses at most ``max_degree + 1`` colors, so
    with constant degree the frame length stays constant as the network
    grows — the precondition of the paper's TDMA claim.
    """
    graph = nx.Graph(topology.comm_pairs())
    graph.add_nodes_from(topology.nodes)
    coloring = nx.greedy_color(graph, strategy="largest_first")
    n_slots = max(coloring.values()) + 1
    return TDMASchedule(
        slots=dict(coloring), n_slots=n_slots, slot_width=slot_width, guard=guard
    )


@dataclass(frozen=True)
class TDMAReport:
    """Collision accounting for one execution under one schedule."""

    transmissions: int
    collisions: int
    colliding_pairs: list[tuple[int, int]]
    n_slots: int
    slot_width: float

    @property
    def collision_rate(self) -> float:
        return self.collisions / self.transmissions if self.transmissions else 0.0

    @property
    def collided(self) -> bool:
        return self.collisions > 0


def _transmission_intervals(
    execution: Execution,
    node: int,
    schedule: TDMASchedule,
    *,
    horizon: float,
) -> list[tuple[float, float]]:
    """Real-time intervals during which ``node`` transmits."""
    clock = execution.logical[node]
    slot = schedule.slots[node]
    frame = schedule.frame
    intervals = []
    end_value = clock.value_at(horizon)
    m = 0
    while True:
        lo_value = m * frame + slot * schedule.slot_width + schedule.guard
        hi_value = m * frame + (slot + 1) * schedule.slot_width - schedule.guard
        if lo_value > end_value:
            break
        t_lo = clock.time_at(lo_value)
        t_hi = clock.time_at(min(hi_value, end_value))
        if t_hi > t_lo:
            intervals.append((min(t_lo, horizon), min(t_hi, horizon)))
        m += 1
    return intervals


def _overlap(a: tuple[float, float], b: tuple[float, float]) -> bool:
    return min(a[1], b[1]) - max(a[0], b[0]) > 1e-9


def evaluate_tdma(
    execution: Execution,
    schedule: TDMASchedule,
    *,
    horizon: float | None = None,
) -> TDMAReport:
    """Count real-time collisions between interfering nodes.

    A collision is any wall-clock overlap between transmission intervals
    of two nodes that share a communication edge.  (Perfectly
    synchronized clocks give zero by construction of the coloring.)
    """
    horizon = horizon if horizon is not None else execution.duration
    intervals = {
        node: _transmission_intervals(execution, node, schedule, horizon=horizon)
        for node in execution.topology.nodes
    }
    transmissions = sum(len(v) for v in intervals.values())
    collisions = 0
    colliding_pairs: set[tuple[int, int]] = set()
    for i, j in execution.topology.comm_pairs():
        for a in intervals[i]:
            for b in intervals[j]:
                if _overlap(a, b):
                    collisions += 1
                    colliding_pairs.add((i, j))
    return TDMAReport(
        transmissions=transmissions,
        collisions=collisions,
        colliding_pairs=sorted(colliding_pairs),
        n_slots=schedule.n_slots,
        slot_width=schedule.slot_width,
    )
