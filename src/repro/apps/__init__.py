"""Applications from the paper's motivation: TDMA, data fusion, tracking."""

from repro.apps.fusion import (
    FusionGroup,
    FusionReport,
    evaluate_fusion,
    fusion_groups,
)
from repro.apps.tdma import TDMAReport, TDMASchedule, assign_slots, evaluate_tdma
from repro.apps.tracking import (
    CrossingEstimate,
    required_skew_for_accuracy,
    track_velocity,
)

__all__ = [
    "FusionGroup",
    "FusionReport",
    "evaluate_fusion",
    "fusion_groups",
    "TDMAReport",
    "TDMASchedule",
    "assign_slots",
    "evaluate_tdma",
    "CrossingEstimate",
    "required_skew_for_accuracy",
    "track_velocity",
]
