"""Target tracking (the introduction's second motivation).

    "The object's velocity is computed as v = d / t ... the larger the
     Euclidean distance is between the nodes, the more error is
     acceptable in t, while still computing v to 1% accuracy.  Thus,
     the acceptable clock skew of the nodes forms a gradient."

An object moves along the line at true velocity ``v``; node ``a`` logs
its logical clock when the object passes, node ``b`` likewise; the pair
estimates ``v_hat = gap / (L_b(t_b) - L_a(t_a))`` where ``gap`` is their
known separation.  The timestamp difference absorbs the pair's clock
skew, so the relative velocity error is ``~ skew / (gap / v)`` — skew
divided by the true traversal time.  For a fixed skew budget the error
*shrinks* with distance; equivalently, hitting a target accuracy demands
skew proportional to distance.  That is the gradient requirement,
measured by experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.sim.execution import Execution

__all__ = ["CrossingEstimate", "track_velocity", "required_skew_for_accuracy"]


@dataclass(frozen=True)
class CrossingEstimate:
    """One pair's velocity estimate for one object pass."""

    node_a: int
    node_b: int
    separation: float
    true_velocity: float
    estimated_velocity: float
    pair_skew: float

    @property
    def relative_error(self) -> float:
        return abs(self.estimated_velocity - self.true_velocity) / self.true_velocity

    @property
    def meets(self) -> bool:
        """Whether the paper's 1% accuracy target is met."""
        return self.relative_error <= 0.01


def track_velocity(
    execution: Execution,
    node_a: int,
    node_b: int,
    *,
    velocity: float,
    start_time: float,
    positions: dict[int, float] | None = None,
) -> CrossingEstimate:
    """Simulate one object pass and the pair's velocity estimate.

    The object passes ``node_a`` at ``start_time`` and ``node_b`` after
    traveling their separation at ``velocity``.  Positions default to
    the line embedding (node index = coordinate); pass ``positions`` for
    other topologies.
    """
    if velocity <= 0:
        raise ExperimentError("velocity must be positive")
    pos_a = positions[node_a] if positions else float(node_a)
    pos_b = positions[node_b] if positions else float(node_b)
    separation = abs(pos_b - pos_a)
    if separation <= 0:
        raise ExperimentError("nodes must be at distinct positions")
    t_a = start_time
    t_b = start_time + separation / velocity
    if t_b > execution.duration:
        raise ExperimentError(
            f"crossing ends at {t_b}, execution lasts {execution.duration}"
        )
    stamp_a = execution.logical_value(node_a, t_a)
    stamp_b = execution.logical_value(node_b, t_b)
    delta = stamp_b - stamp_a
    if delta <= 0:
        estimated = float("inf")
    else:
        estimated = separation / delta
    # The skew contribution: difference between logical and true elapsed.
    pair_skew = delta - (t_b - t_a)
    return CrossingEstimate(
        node_a=node_a,
        node_b=node_b,
        separation=separation,
        true_velocity=velocity,
        estimated_velocity=estimated,
        pair_skew=pair_skew,
    )


def required_skew_for_accuracy(
    separation: float, velocity: float, accuracy: float = 0.01
) -> float:
    """Max skew keeping the velocity estimate within ``accuracy``.

    ``v_hat = s / (s/v + skew)``; solving ``|v_hat - v| / v <= accuracy``
    for the worst sign gives ``skew <= accuracy / (1 - accuracy) * s / v``
    — linear in separation: the acceptable skew *is* a gradient.
    """
    if not 0 < accuracy < 1:
        raise ExperimentError("accuracy must be in (0, 1)")
    return accuracy / (1.0 - accuracy) * separation / velocity
