"""The ``repro-serve`` command line: daemon lifecycle + client verbs.

``start`` runs the daemon in the foreground (backgrounding is the
caller's job — ``&`` in a shell, a supervisor, or the CI smoke script).
``submit`` accepts exactly the grid grammar of ``repro-experiments
sweep`` (the flags are shared via
:func:`repro.sweep.cli.add_spec_arguments`), so any sweep that runs
in-process can be pointed at a daemon unchanged.  ``status`` / ``fetch``
/ ``stop`` are thin :class:`~repro.serve.client.ServeClient` wrappers;
``fetch`` renders the same aggregated tables the sweep verb prints.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.errors import ServeError, SweepError
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.sweep.aggregate import sweep_result, write_json
from repro.sweep.cli import add_spec_arguments, resolve_spec
from repro.sweep.jobs import JobOutcome
from repro.sweep.spec import SweepSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Sweep-as-a-service: daemon, submissions, results.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser("start", help="run the daemon (foreground)")
    start.add_argument("--store", required=True, metavar="DIR",
                       help="content store root (objects + manifests)")
    start.add_argument("--workers", type=int, default=2,
                       help="worker processes (default: 2)")
    start.add_argument("--host", default="127.0.0.1")
    start.add_argument("--port", type=int, default=0,
                       help="listen port (default: ephemeral)")

    submit = sub.add_parser(
        "submit", help="submit a grid (same flags as the sweep verb)"
    )
    submit.add_argument("--store", required=True, metavar="DIR")
    add_spec_arguments(submit)
    submit.add_argument("--name", help="override the sweep's name")
    submit.add_argument("--wait", action="store_true",
                        help="block until the sweep settles")
    submit.add_argument("--wait-timeout", type=float, default=600.0,
                        help="--wait budget in seconds (default: 600)")

    status = sub.add_parser("status", help="one sweep, or all of them")
    status.add_argument("--store", required=True, metavar="DIR")
    status.add_argument("sweep", nargs="?", help="sweep id (default: list)")

    fetch = sub.add_parser("fetch", help="render a completed sweep's tables")
    fetch.add_argument("--store", required=True, metavar="DIR")
    fetch.add_argument("sweep", help="sweep id")
    fetch.add_argument("--per-job", action="store_true",
                       help="also print the per-job grid")
    fetch.add_argument("--json-out", metavar="FILE",
                       help="write the raw metrics list as JSON")

    stop = sub.add_parser("stop", help="ask the daemon to shut down")
    stop.add_argument("--store", required=True, metavar="DIR")
    return parser


def _counts_line(sweep: str, name: str, counts: dict) -> str:
    line = (
        f"sweep {sweep} '{name}': {counts['done']}/{counts['total']} done, "
        f"{counts['running']} running, {counts['queued']} queued, "
        f"{counts['failed']} failed"
    )
    return line


def _cmd_start(args: argparse.Namespace) -> int:
    daemon = ServeDaemon(
        args.store, workers=args.workers, host=args.host, port=args.port
    )
    daemon.start()

    def request_stop(signum, frame):  # pragma: no cover - signal path
        daemon.stop()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    print(
        f"repro-serve listening on {daemon.host}:{daemon.port} "
        f"(store {daemon.store.root}, {daemon.n_workers} workers, "
        f"{daemon.resumed} cells resumed)",
        flush=True,
    )
    daemon.run()
    print("repro-serve stopped", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = resolve_spec(args)
    if args.name:
        payload = json.loads(spec.to_json())
        payload["name"] = args.name
        spec = SweepSpec.from_dict(payload)
    with ServeClient(store=args.store) as client:
        receipt = client.submit(spec)
        print(
            f"sweep {receipt['sweep']}: {receipt['total']} jobs "
            f"({receipt['hits']} hit(s), {receipt['deduped']} deduped, "
            f"{receipt['queued']} queued)"
        )
        if args.wait:
            final = client.wait(
                receipt["sweep"], timeout=args.wait_timeout
            )
            counts = final["counts"]
            print(_counts_line(final["sweep"], final["name"], counts))
            if counts["failed"]:
                return 2
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    with ServeClient(store=args.store) as client:
        if args.sweep:
            reply = client.status(args.sweep)
            print(_counts_line(reply["sweep"], reply["name"], reply["counts"]))
        else:
            reply = client.status()
            if not reply["sweeps"]:
                print("no sweeps submitted")
            for entry in reply["sweeps"]:
                print(
                    _counts_line(entry["sweep"], entry["name"], entry["counts"])
                )
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    with ServeClient(store=args.store) as client:
        reply = client.fetch_reply(args.sweep)
    spec = SweepSpec.from_dict(reply["spec"])
    # The daemon returns metrics in job order, so re-expanding the spec
    # lines outcomes up one-to-one for the standard tables.
    outcomes = [
        JobOutcome(job=job, metrics=metrics, elapsed=0.0, cached=True)
        for job, metrics in zip(spec.jobs(), reply["results"])
    ]
    result = sweep_result(
        spec,
        outcomes,
        include_seed_rows=args.per_job,
        notes=[f"served sweep {reply['sweep']} ({len(outcomes)} jobs)"],
    )
    print(result.render())
    if args.json_out:
        path = write_json(args.json_out, {
            "sweep": reply["sweep"],
            "spec": reply["spec"],
            "results": reply["results"],
        })
        print(f"wrote {path}")
    return 0


def _cmd_stop(args: argparse.Namespace) -> int:
    with ServeClient(store=args.store) as client:
        client.shutdown()
    print("shutdown requested")
    return 0


_COMMANDS = {
    "start": _cmd_start,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
    "stop": _cmd_stop,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ServeError, SweepError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
