"""repro.serve — sweep-as-a-service: a daemon, a store, a client.

Everything else in :mod:`repro.sweep` is one-shot: expand a grid, fan
it over a pool, print tables, exit.  This package keeps the pool warm.
A :class:`ServeDaemon` listens on a localhost socket (the same
length-prefixed JSON frames as :mod:`repro.rt.udp` — see
:mod:`repro.serve.protocol`), accepts :class:`~repro.sweep.spec.SweepSpec`
submissions from many concurrent clients, and drains them through a
deduplicating :class:`~repro.serve.jobqueue.JobQueue` onto forked
workers.  Results land in a :class:`ContentStore` — a content-addressed
generalization of :class:`~repro.sweep.runner.ResultCache` with a
manifest per sweep — so overlapping submissions execute each distinct
cell once, and a killed daemon restarted against the same store resumes
partial sweeps re-executing only the missing cells.

The metrics themselves come from the same
:func:`~repro.sweep.jobs.execute_job` the in-process runner calls, so a
served sweep is bit-identical to ``run_jobs`` — the differential
contract ``tests/test_serve.py`` enforces with concurrent clients and a
mid-sweep SIGKILL.

Entry points: ``repro-serve`` (console script, :mod:`repro.serve.cli`),
the ``serve`` verb of ``python -m repro.experiments``, and
:class:`ServeClient` in code.
"""

from repro.serve.client import ServeClient, endpoint_from_store
from repro.serve.daemon import ServeDaemon
from repro.serve.jobqueue import JobQueue, SweepBook
from repro.serve.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    FrameBuffer,
    recv_frame,
    send_frame,
)
from repro.serve.store import ContentStore, sweep_id_for

__all__ = [
    "ContentStore",
    "FrameBuffer",
    "JobQueue",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeDaemon",
    "SweepBook",
    "endpoint_from_store",
    "recv_frame",
    "send_frame",
    "sweep_id_for",
]
