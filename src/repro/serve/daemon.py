"""The ``repro-serve`` daemon: a long-running sweep service.

One process owns a localhost TCP listener, a pool of forked worker
processes, and a :class:`~repro.serve.store.ContentStore`.  Clients
speak the length-prefixed JSON frames of :mod:`repro.serve.protocol`;
each request is one frame carrying an ``op`` and each reply one frame
carrying ``ok`` — ``submit``, ``status``, ``wait``, ``fetch``,
``stats``, ``ping``, ``shutdown``.

Crash-safety choreography
-------------------------
* Workers are forked *before* the listener binds, so they never inherit
  the listening socket: when the daemon is SIGKILLed the port closes
  immediately and a client mid-request gets a prompt EOF (surfaced as a
  named :class:`~repro.errors.ServeError` by the client) instead of a
  hang.
* Workers only compute; the parent alone writes to the store.  Orphaned
  workers after a parent SIGKILL exit on their next pipe operation
  (EOFError / BrokenPipeError) without touching disk.
* Manifests are written before the first cell of a sweep runs, and each
  finished cell's object is written before it is marked done.  A
  restarted daemon therefore re-derives exactly the missing cells from
  (manifest, objects) and re-executes only those — the resume contract
  ``tests/test_serve.py`` kills a live daemon to verify.

Like the live runtime (:mod:`repro.rt`), this package is outside the
deterministic core: it reads wall clocks for uptime/throughput and
socket timeouts.  Determinism is preserved where it matters — the
*metrics* are produced by the same :func:`~repro.sweep.jobs.execute_job`
the in-process runner uses, so a served sweep is bit-identical to
``run_jobs``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import selectors
import socket
import time
import traceback
from typing import Optional

from repro.errors import ServeError, SweepError
from repro.serve.jobqueue import JobQueue, SweepBook
from repro.serve.protocol import PROTOCOL_VERSION, FrameBuffer, send_frame
from repro.serve.store import ContentStore, hashes_for
from repro.sweep.jobs import Job, execute_job
from repro.sweep.spec import SweepSpec

__all__ = ["ServeDaemon"]

#: Transports whose cells fork OS processes per node — impossible under
#: daemonic pool workers, so the daemon rejects them at submit time.
_FORKING_TRANSPORTS = frozenset({"udp", "router"})

#: Total worker respawns tolerated before the daemon stops replacing
#: crashed workers (a crash-looping job kind should fail its cells, not
#: spin the machine).
_RESPAWN_BUDGET = 8


def _worker_main(worker: int, conn) -> None:
    """One pool worker: recv task, execute, send result, repeat.

    A task is ``{"hash", "kind", "params", "module"}``; the result
    echoes the hash with either ``metrics`` or a formatted ``error``.
    ``None`` (or a closed pipe — the parent died) ends the loop; the
    worker never opens the store.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        try:
            outcome = execute_job(
                Job(kind=task["kind"], params=task["params"],
                    module=task["module"])
            )
            reply = {
                "hash": task["hash"],
                "metrics": outcome.metrics,
                "elapsed": outcome.elapsed,
            }
        except Exception:
            reply = {"hash": task["hash"], "error": traceback.format_exc()}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class ServeDaemon:
    """The daemon: listener + worker pool + store, in one event loop."""

    def __init__(
        self,
        store_dir: str | os.PathLike,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ServeError(
                "repro-serve needs the 'fork' start method (worker pipes "
                "and the populated job-kind registry are inherited)"
            )
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.store = ContentStore(store_dir)
        self.queue = JobQueue(self.store)
        self.book = SweepBook()
        self.n_workers = workers
        self.host = host
        self.port = port
        self.resumed = 0
        self.clients_served = 0
        self.protocol_errors = 0
        self._ctx = multiprocessing.get_context("fork")
        self._children: dict[int, multiprocessing.Process] = {}
        self._conns: dict[int, object] = {}
        self._busy: dict[int, Optional[str]] = {}
        self._respawns = 0
        self._listener: Optional[socket.socket] = None
        self._selector = selectors.DefaultSelector()
        self._clients: dict[socket.socket, FrameBuffer] = {}
        self._waiters: list[tuple[socket.socket, str]] = []
        self._started_at = 0.0
        self._stop = False

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Resume from the store, fork workers, bind, advertise."""
        self._resume()
        for worker in range(self.n_workers):
            self._spawn_worker(worker)
        # Bind only after forking: workers must not inherit the
        # listening socket, or a SIGKILLed daemon would leave the port
        # open and clients hanging instead of seeing a prompt EOF.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.setblocking(False)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._selector.register(listener, selectors.EVENT_READ, "listener")
        self.store.write_endpoint(self.host, self.port, workers=self.n_workers)
        self._started_at = time.monotonic()
        self._pump()

    def _resume(self) -> None:
        """Re-enqueue the missing cells of every manifested sweep."""
        for manifest in self.store.manifests():
            try:
                spec = SweepSpec.from_dict(manifest["spec"])
                jobs = spec.jobs()
            except SweepError:
                continue
            hashes = hashes_for(jobs)
            self.book.register(
                manifest["sweep"], spec.name, hashes, manifest["spec"]
            )
            for digest, job in zip(hashes, jobs):
                self.queue.offer(digest, job)
        # Cells found already on disk during the scan are the resumed
        # ones; later submissions' hits are ordinary cache hits.
        self.resumed = self.queue.hits

    def _spawn_worker(self, worker: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        child = self._ctx.Process(
            target=_worker_main, args=(worker, child_conn), daemon=True
        )
        child.start()
        child_conn.close()
        self._children[worker] = child
        self._conns[worker] = parent_conn
        self._busy[worker] = None
        self._selector.register(
            parent_conn, selectors.EVENT_READ, ("worker", worker)
        )

    def close(self) -> None:
        """Orderly teardown: advert gone first, then sockets, then pool."""
        self.store.clear_endpoint()
        for sock in list(self._clients):
            self._drop_client(sock)
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)
            except KeyError:
                pass
            self._listener.close()
            self._listener = None
        for worker, conn in list(self._conns.items()):
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for child in self._children.values():
            child.join(timeout=5.0)
            if child.is_alive():  # pragma: no cover - wedged worker
                child.terminate()
        for conn in self._conns.values():
            try:
                self._selector.unregister(conn)
            except KeyError:
                pass
            conn.close()
        self._children.clear()
        self._conns.clear()
        self._busy.clear()
        self._selector.close()

    # ------------------------------------------------------------------
    # the event loop

    def run(self) -> None:
        """Serve until :meth:`stop` (or a ``shutdown`` request)."""
        try:
            while not self._stop:
                for key, _ in self._selector.select(timeout=0.2):
                    if key.data == "listener":
                        self._accept()
                    elif isinstance(key.data, tuple):
                        self._on_worker_readable(key.data[1])
                    else:
                        self._on_client_readable(key.fileobj)
        finally:
            self.close()

    def stop(self) -> None:
        self._stop = True

    # ------------------------------------------------------------------
    # worker pool plumbing

    def _pump(self) -> None:
        """Hand ready jobs to idle workers."""
        for worker, digest in self._busy.items():
            if digest is not None:
                continue
            item = self.queue.next_ready()
            if item is None:
                return
            digest, job = item
            self._busy[worker] = digest
            try:
                self._conns[worker].send(
                    {
                        "hash": digest,
                        "kind": job.kind,
                        "params": dict(job.params),
                        "module": job.module,
                    }
                )
            except (BrokenPipeError, OSError):
                # Death noticed at dispatch time; the readable-EOF path
                # will requeue and respawn.
                self.queue.requeue(digest, reason="worker pipe closed")
                self._busy[worker] = None

    def _on_worker_readable(self, worker: int) -> None:
        conn = self._conns[worker]
        try:
            result = conn.recv()
        except (EOFError, OSError):
            self._on_worker_death(worker)
            return
        digest = result["hash"]
        if "error" in result:
            self.queue.mark_failed(digest, result["error"])
        else:
            self.queue.mark_done(digest, result["metrics"])
        self._busy[worker] = None
        self._pump()
        self._flush_waiters()

    def _on_worker_death(self, worker: int) -> None:
        """A worker died mid-job: requeue its cell, respawn the slot."""
        digest = self._busy.get(worker)
        exitcode = self._children[worker].exitcode
        try:
            self._selector.unregister(self._conns[worker])
        except KeyError:
            pass
        self._conns[worker].close()
        self._children[worker].join(timeout=1.0)
        del self._children[worker], self._conns[worker], self._busy[worker]
        if digest is not None:
            self.queue.requeue(
                digest, reason=f"worker died (exit code {exitcode})"
            )
        if self._respawns < _RESPAWN_BUDGET:
            self._respawns += 1
            self._spawn_worker(worker)
            self._pump()
        elif not self._children:
            # Pool exhausted: fail everything still queued, promptly.
            while True:
                item = self.queue.next_ready()
                if item is None:
                    break
                self.queue.mark_failed(
                    item[0], "no workers left (respawn budget exhausted)"
                )
        self._flush_waiters()

    # ------------------------------------------------------------------
    # client plumbing

    def _accept(self) -> None:
        try:
            sock, _ = self._listener.accept()
        except OSError:  # pragma: no cover - accept race
            return
        sock.setblocking(False)
        self._clients[sock] = FrameBuffer()
        self._selector.register(sock, selectors.EVENT_READ, "client")
        self.clients_served += 1

    def _drop_client(self, sock: socket.socket) -> None:
        try:
            self._selector.unregister(sock)
        except KeyError:
            pass
        self._clients.pop(sock, None)
        self._waiters = [(s, sid) for s, sid in self._waiters if s is not sock]
        sock.close()

    def _on_client_readable(self, sock: socket.socket) -> None:
        try:
            chunk = sock.recv(65536)
        except OSError:
            self._drop_client(sock)
            return
        if not chunk:
            self._drop_client(sock)
            return
        buffer = self._clients[sock]
        buffer.feed(chunk)
        while True:
            try:
                request = buffer.pop()
            except ServeError as exc:
                # Poisoned stream: name the problem, drop the client.
                self.protocol_errors += 1
                self._reply(sock, {"ok": False, "error": str(exc)})
                self._drop_client(sock)
                return
            if request is None:
                return
            reply = self._handle(sock, request)
            if reply is not None:
                if not self._reply(sock, reply):
                    return

    def _reply(self, sock: socket.socket, reply: dict) -> bool:
        try:
            sock.setblocking(True)
            send_frame(sock, reply)
            sock.setblocking(False)
            return True
        except OSError:
            self._drop_client(sock)
            return False

    # ------------------------------------------------------------------
    # request handling

    def _handle(self, sock: socket.socket, request: dict) -> Optional[dict]:
        op = request.get("op")
        if op == "ping":
            return {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "workers": len(self._children),
            }
        if op == "submit":
            return self._handle_submit(request)
        if op == "status":
            return self._handle_status(request)
        if op == "wait":
            return self._handle_wait(sock, request)
        if op == "fetch":
            return self._handle_fetch(request)
        if op == "stats":
            return self._handle_stats()
        if op == "shutdown":
            self._stop = True
            return {"ok": True, "stopping": True}
        self.protocol_errors += 1
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_submit(self, request: dict) -> dict:
        payload = request.get("spec")
        if not isinstance(payload, dict):
            return {"ok": False, "error": "submit needs a 'spec' object"}
        try:
            spec = SweepSpec.from_dict(payload)
            jobs = spec.jobs()
        except SweepError as exc:
            return {"ok": False, "error": str(exc)}
        forking = sorted(_FORKING_TRANSPORTS & set(spec.transports))
        if forking:
            return {
                "ok": False,
                "error": (
                    f"{'/'.join(forking)} transport cells spawn node "
                    "processes, which the daemon's pool workers may not "
                    "do; run them via 'repro-experiments sweep "
                    "--workers 1' instead"
                ),
            }
        hashes = hashes_for(jobs)
        # Manifest before any cell runs: from this instant a kill at any
        # point leaves a resumable sweep on disk.
        sweep_id = self.store.write_manifest(spec, hashes)
        self.book.register(
            sweep_id, spec.name, hashes, json.loads(spec.to_json())
        )
        tally = {"hit": 0, "dedup": 0, "queued": 0, "done": 0, "failed": 0}
        for digest, job in zip(hashes, jobs):
            tally[self.queue.offer(digest, job)] += 1
        self._pump()
        return {
            "ok": True,
            "sweep": sweep_id,
            "name": spec.name,
            "total": len(hashes),
            "hits": tally["hit"] + tally["done"],
            "deduped": tally["dedup"],
            "queued": tally["queued"],
            "counts": self.book.counts(sweep_id, self.queue),
        }

    def _handle_status(self, request: dict) -> dict:
        sweep_id = request.get("sweep")
        if sweep_id is None:
            listing = [
                {
                    "sweep": sid,
                    "name": self.book.name_of(sid),
                    "counts": self.book.counts(sid, self.queue),
                }
                for sid in self.book.ids()
            ]
            return {"ok": True, "sweeps": listing}
        if not self.book.known(sweep_id):
            return {"ok": False, "error": f"unknown sweep {sweep_id!r}"}
        return self._status_reply(sweep_id)

    def _status_reply(self, sweep_id: str) -> dict:
        return {
            "ok": True,
            "sweep": sweep_id,
            "name": self.book.name_of(sweep_id),
            "counts": self.book.counts(sweep_id, self.queue),
            "spec": self.book.spec_payload_of(sweep_id),
        }

    def _handle_wait(self, sock: socket.socket, request: dict) -> Optional[dict]:
        sweep_id = request.get("sweep")
        if not self.book.known(sweep_id):
            return {"ok": False, "error": f"unknown sweep {sweep_id!r}"}
        if self.book.settled(sweep_id, self.queue):
            return self._status_reply(sweep_id)
        self._waiters.append((sock, sweep_id))
        return None  # deferred: _flush_waiters replies at settle time

    def _flush_waiters(self) -> None:
        still = []
        for sock, sweep_id in self._waiters:
            if self.book.settled(sweep_id, self.queue):
                self._reply(sock, self._status_reply(sweep_id))
            else:
                still.append((sock, sweep_id))
        self._waiters = still

    def _handle_fetch(self, request: dict) -> dict:
        sweep_id = request.get("sweep")
        if not self.book.known(sweep_id):
            return {"ok": False, "error": f"unknown sweep {sweep_id!r}"}
        counts = self.book.counts(sweep_id, self.queue)
        if counts["failed"]:
            errors = counts.get("errors", [])
            summary = errors[0].strip().splitlines()[-1] if errors else "?"
            return {
                "ok": False,
                "error": (
                    f"sweep {sweep_id} has {counts['failed']} failed "
                    f"cell(s); first error: {summary}"
                ),
            }
        if counts["done"] != counts["total"]:
            return {
                "ok": False,
                "error": (
                    f"sweep {sweep_id} is incomplete "
                    f"({counts['done']}/{counts['total']} done); "
                    "wait on it before fetching"
                ),
            }
        results = self.store.results(self.book.hashes_of(sweep_id))
        if results is None:  # pragma: no cover - objects deleted under us
            return {
                "ok": False,
                "error": f"sweep {sweep_id}: store objects missing",
            }
        return {
            "ok": True,
            "sweep": sweep_id,
            "name": self.book.name_of(sweep_id),
            "spec": self.book.spec_payload_of(sweep_id),
            "results": results,
        }

    def _handle_stats(self) -> dict:
        uptime = time.monotonic() - self._started_at
        executed = self.queue.executed
        return {
            "ok": True,
            "executed": executed,
            "failed": self.queue.failed,
            "resumed": self.resumed,
            "hits": self.queue.hits,
            "deduped": self.queue.deduped,
            "sweeps": len(self.book.ids()),
            "queue_depth": self.queue.depth,
            "workers": len(self._children),
            "uptime_s": uptime,
            "jobs_per_sec": executed / uptime if uptime > 0 else 0.0,
            "clients_served": self.clients_served,
            "protocol_errors": self.protocol_errors,
        }
