"""Client side of the sweep service: one socket, serial request/reply.

:class:`ServeClient` is what the ``repro-serve`` CLI subcommands and the
test battery use.  It is deliberately dumb: one blocking TCP connection,
one outstanding request at a time, every failure surfaced as a named
:class:`~repro.errors.ServeError` — a daemon that dies mid-reply shows
up within the socket timeout as an error naming the endpoint, never as
a hang (the promptness contract ``tests/test_serve.py`` puts a <3s
bound on, mirroring ``tests/test_rt_router.py``).
"""

from __future__ import annotations

import json
import socket
import time
from typing import Optional

from repro.errors import ServeError
from repro.serve.protocol import FrameBuffer, recv_frame, send_frame
from repro.serve.store import ContentStore
from repro.sweep.spec import SweepSpec

__all__ = ["ServeClient", "endpoint_from_store"]


def endpoint_from_store(
    store: ContentStore | str, *, retry_for: float = 0.0
) -> dict:
    """Read the daemon's ``serve.json`` advert, optionally waiting.

    ``retry_for`` seconds of polling covers the start-up race (a client
    launched side by side with ``repro-serve start``); 0 means one shot.
    """
    if not isinstance(store, ContentStore):
        store = ContentStore(store)
    deadline = time.monotonic() + retry_for
    while True:
        endpoint = store.read_endpoint()
        if endpoint is not None:
            return endpoint
        if time.monotonic() >= deadline:
            raise ServeError(
                f"no repro-serve daemon advertised under {store.root} "
                f"(no readable {store.endpoint_path.name}); is one running?"
            )
        time.sleep(0.05)


class ServeClient:
    """Blocking request/reply client for one serve daemon."""

    def __init__(
        self,
        *,
        store: ContentStore | str | None = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 30.0,
        retry_for: float = 5.0,
    ):
        self.timeout = timeout
        self._buffer = FrameBuffer()
        if port is not None:
            self.host, self.port = host, port
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
            except OSError as exc:
                raise ServeError(
                    f"cannot reach repro-serve daemon at {host}:{port}: {exc}"
                ) from None
            return
        if store is None:
            raise ServeError(
                "ServeClient needs either a store (to read the daemon's "
                "advert) or an explicit port"
            )
        if not isinstance(store, ContentStore):
            store = ContentStore(store)
        # The advert may be stale — a SIGKILLed daemon cannot remove its
        # serve.json — so connecting is the only real liveness probe.
        # Re-read the advert between attempts: a restarted daemon writes
        # a fresh one as soon as it binds.
        deadline = time.monotonic() + retry_for
        while True:
            endpoint = store.read_endpoint()
            if endpoint is not None:
                self.host, self.port = endpoint["host"], endpoint["port"]
                try:
                    self._sock = socket.create_connection(
                        (self.host, self.port), timeout=timeout
                    )
                    return
                except OSError as exc:
                    reason = (
                        f"advertised endpoint {self.host}:{self.port} "
                        f"refused the connection ({exc})"
                    )
            else:
                reason = f"no readable {store.endpoint_path.name}"
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"no live repro-serve daemon under {store.root}: "
                    f"{reason}; is one running?"
                )
            time.sleep(0.05)

    # ------------------------------------------------------------------

    def _request(
        self, record: dict, *, timeout: Optional[float] = None
    ) -> dict:
        peer = f"repro-serve daemon at {self.host}:{self.port}"
        self._sock.settimeout(self.timeout if timeout is None else timeout)
        try:
            send_frame(self._sock, record)
        except OSError as exc:
            raise ServeError(f"send to {peer} failed: {exc}") from None
        reply = recv_frame(
            self._sock, self._buffer, peer=peer,
            what=f"{record.get('op', 'request')} reply",
        )
        if not reply.get("ok"):
            raise ServeError(reply.get("error", f"{peer}: request refused"))
        return reply

    # ------------------------------------------------------------------
    # operations

    def ping(self) -> dict:
        return self._request({"op": "ping"})

    def submit(self, spec: SweepSpec) -> dict:
        """Submit a sweep; returns the receipt (``sweep`` id, counts)."""
        return self._request(
            {"op": "submit", "spec": json.loads(spec.to_json())}
        )

    def status(self, sweep: Optional[str] = None) -> dict:
        record = {"op": "status"}
        if sweep is not None:
            record["sweep"] = sweep
        return self._request(record)

    def wait(self, sweep: str, *, timeout: float = 600.0) -> dict:
        """Block until the sweep settles; returns its final status.

        The daemon defers the reply until no cell is queued or running,
        so this needs no polling — but it still fails promptly if the
        daemon dies while we wait (EOF on the socket).
        """
        return self._request({"op": "wait", "sweep": sweep}, timeout=timeout)

    def fetch(self, sweep: str) -> list[dict]:
        """All metrics of a completed sweep, in job order."""
        return self._request({"op": "fetch", "sweep": sweep})["results"]

    def fetch_reply(self, sweep: str) -> dict:
        """Like :meth:`fetch` but the whole reply (spec + results)."""
        return self._request({"op": "fetch", "sweep": sweep})

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def shutdown(self) -> dict:
        return self._request({"op": "shutdown"})

    # ------------------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
