"""Wire protocol of the sweep service: length-prefixed JSON frames.

The serve daemon speaks the exact frame format the live runtime already
puts on the wire — a 4-byte big-endian length prefix followed by that
many bytes of UTF-8 JSON — by importing :func:`encode_frame` /
:func:`decode_frame` from :mod:`repro.rt.udp` rather than redefining
them.  One format, two transports: datagrams between live nodes, and
request/reply streams between serve clients and the daemon.  The
hypothesis properties in ``tests/test_serve_protocol.py`` and
``tests/test_rt_router.py`` cover the shared helpers from both
consumers.

Streams add one wrinkle datagrams do not have: a TCP read may return
half a frame, or two and a half.  :class:`FrameBuffer` is the
incremental parser both sides use — feed it whatever ``recv`` returned,
pop complete records as they materialize.  Its error contract mirrors
``decode_frame``'s: a body that is not valid UTF-8 JSON, a frame whose
top-level value is not an object, or a length prefix past
:data:`MAX_FRAME` raises :class:`~repro.errors.ServeError` (on a
stream there is no resynchronizing after garbage — the connection is
poisoned and must be dropped), while an incomplete tail simply waits
for more bytes.
"""

from __future__ import annotations

import socket
import struct
from typing import Iterator, Optional

from repro.errors import ServeError
from repro.rt.udp import decode_frame, encode_frame

__all__ = [
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "FrameBuffer",
    "decode_frame",
    "encode_frame",
    "recv_frame",
    "send_frame",
]

#: Bump on incompatible request/reply shape changes; ``ping`` echoes it.
PROTOCOL_VERSION = 1

#: Upper bound a length prefix may claim, so a corrupt or hostile
#: prefix cannot make the daemon allocate gigabytes.  Far above any real
#: reply: a full-spec sweep's fetch payload is a few megabytes.
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameBuffer:
    """Incremental frame parser for one stream connection."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        self._buf += data

    def frames(self) -> Iterator[dict]:
        """Pop every complete record currently buffered, in order."""
        while True:
            record = self.pop()
            if record is None:
                return
            yield record

    def pop(self) -> Optional[dict]:
        """One complete record, or ``None`` while the tail is partial."""
        if len(self._buf) < _LEN.size:
            return None
        (length,) = _LEN.unpack_from(self._buf)
        if length > MAX_FRAME:
            raise ServeError(
                f"frame length prefix claims {length} bytes "
                f"(cap {MAX_FRAME}); corrupt stream"
            )
        end = _LEN.size + length
        if len(self._buf) < end:
            return None
        # Reassemble the datagram shape so decode_frame — the validation
        # path the live runtime uses — is the single decoder.
        datagram = bytes(self._buf[:end])
        del self._buf[:end]
        record = decode_frame(datagram)
        if record is None:
            raise ServeError(
                "malformed frame body (not UTF-8 JSON); corrupt stream"
            )
        if not isinstance(record, dict):
            raise ServeError(
                f"frame body must be a JSON object, got {type(record).__name__}"
            )
        return record


def send_frame(sock: socket.socket, record: dict) -> None:
    """Write one record to a connected stream socket."""
    sock.sendall(encode_frame(record))


def recv_frame(
    sock: socket.socket,
    buffer: FrameBuffer,
    *,
    peer: str = "peer",
    what: str = "frame",
) -> dict:
    """Block until one complete record arrives on ``sock``.

    Raises :class:`ServeError` naming ``peer`` on EOF (the other side
    died or was killed — the prompt-failure contract) and on a receive
    timeout, never a bare ``EOFError`` or a hang.
    """
    while True:
        record = buffer.pop()
        if record is not None:
            return record
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            raise ServeError(
                f"timed out waiting for a {what} from {peer}"
            ) from None
        except OSError as exc:
            raise ServeError(f"connection to {peer} failed: {exc}") from None
        if not chunk:
            raise ServeError(
                f"{peer} closed the connection before sending a complete "
                f"{what} — it likely died or was killed"
            )
        buffer.feed(chunk)
