"""Content-addressed result store with per-sweep manifests.

:class:`ContentStore` generalizes :class:`repro.sweep.runner.ResultCache`
— the same ``<sha256>.json`` object files under ``objects/``, the same
atomic writes — and adds a ``sweeps/`` directory of manifests.  A
manifest records the spec a client submitted plus the full ordered list
of its job hashes, so the store alone answers "which cells of this
sweep exist yet?"  That is the whole resume story: a restarted daemon
scans the manifests, re-expands each spec, and re-enqueues exactly the
hashes with no object file.  Because objects are keyed by content hash,
overlapping sweeps from different clients dedup at the cell level for
free — the second submission of a cell finds the object (or the queued
job) already there.

Layout under the store root::

    objects/<job_hash>.json   one metrics dict per completed job
    sweeps/<sweep_id>.json    manifest: spec + ordered job hashes
    serve.json                daemon endpoint advert (while one runs)
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator, Optional

from repro.sweep.jobs import CACHE_VERSION, job_hash
from repro.sweep.runner import ResultCache
from repro.sweep.spec import SweepSpec

__all__ = ["ContentStore", "hashes_for", "sweep_id_for"]

ENDPOINT_FILE = "serve.json"


def sweep_id_for(spec: SweepSpec) -> str:
    """Stable id of a sweep: content hash of its spec.

    Folds in ``CACHE_VERSION`` the same way :func:`job_hash` does, so a
    version bump retires manifests together with the objects they index.
    Two clients submitting equal specs get the same id — and therefore
    the same manifest, status, and results.
    """
    canonical = json.dumps(
        {"spec": json.loads(spec.to_json()), "v": CACHE_VERSION},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class ContentStore(ResultCache):
    """A :class:`ResultCache` of job objects plus sweep manifests."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        super().__init__(self.root / "objects")
        self.sweep_dir = self.root / "sweeps"
        self.sweep_dir.mkdir(parents=True, exist_ok=True)

    # -- manifests ------------------------------------------------------

    def manifest_path(self, sweep_id: str) -> Path:
        return self.sweep_dir / f"{sweep_id}.json"

    def write_manifest(self, spec: SweepSpec, hashes: list[str]) -> str:
        """Persist the sweep's identity *before* any cell runs.

        Written atomically, like objects, so a daemon killed mid-write
        leaves either a complete manifest or a ``.tmp`` orphan —
        never a torn file that a resume scan would trust.
        """
        sweep_id = sweep_id_for(spec)
        manifest = {
            "sweep": sweep_id,
            "name": spec.name,
            "cache_version": CACHE_VERSION,
            "spec": json.loads(spec.to_json()),
            "jobs": list(hashes),
        }
        path = self.manifest_path(sweep_id)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(manifest, sort_keys=True, indent=2))
        tmp.replace(path)
        return sweep_id

    def read_manifest(self, sweep_id: str) -> Optional[dict]:
        path = self.manifest_path(sweep_id)
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if manifest.get("cache_version") != CACHE_VERSION:
            # Stale-version manifest: its objects are unreachable under
            # the current hash scheme, so resuming it would re-run
            # everything under ids that no longer match; skip it.
            return None
        return manifest

    def manifests(self) -> Iterator[dict]:
        """Every readable current-version manifest, in sweep-id order."""
        for path in sorted(self.sweep_dir.glob("*.json")):
            manifest = self.read_manifest(path.stem)
            if manifest is not None:
                yield manifest

    # -- sweep-level queries --------------------------------------------

    def missing(self, hashes: list[str]) -> list[str]:
        """The subset of ``hashes`` with no object yet, order kept."""
        return [h for h in hashes if not self.has_hash(h)]

    def results(self, hashes: list[str]) -> Optional[list[dict]]:
        """All metrics for ``hashes`` in order, or ``None`` if any miss."""
        out = []
        for digest in hashes:
            metrics = self.get_hash(digest)
            if metrics is None:
                return None
            out.append(metrics)
        return out

    # -- daemon endpoint advert -----------------------------------------

    @property
    def endpoint_path(self) -> Path:
        return self.root / ENDPOINT_FILE

    def write_endpoint(self, host: str, port: int, *, workers: int) -> None:
        payload = {"host": host, "port": port, "pid": os.getpid(),
                   "workers": workers}
        tmp = self.endpoint_path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(self.endpoint_path)

    def read_endpoint(self) -> Optional[dict]:
        try:
            return json.loads(self.endpoint_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def clear_endpoint(self) -> None:
        try:
            self.endpoint_path.unlink()
        except OSError:
            pass


def hashes_for(jobs) -> list[str]:
    """Job hashes in job order — the manifest's ``jobs`` field."""
    return [job_hash(job) for job in jobs]
