"""The daemon's in-memory job queue, deduped against the content store.

One :class:`JobQueue` tracks every distinct job hash the daemon has
seen this lifetime; one :class:`SweepBook` maps sweep ids to the hash
lists their manifests pin.  The split mirrors the store's layout
(objects vs. manifests): cells are shared, sweeps are views over them.

Dedup happens at :meth:`JobQueue.offer` time, in three tiers —

1. the store already holds the object (a cache *hit*: a prior sweep,
   a prior daemon lifetime, or a warm ``run_jobs`` cache dir),
2. the hash is already tracked in-memory (*dedup*: another sweep this
   lifetime queued it, or it is running right now),
3. otherwise it is new and joins the ready deque.

So N clients submitting overlapping grids execute each overlapping
cell exactly once — the differential tests in ``tests/test_serve.py``
count ``executed`` against the number of *distinct* cells to prove it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.serve.store import ContentStore
from repro.sweep.jobs import Job

__all__ = ["JobQueue", "SweepBook"]

#: A job whose worker died gets requeued this many times total before
#: the queue marks it failed instead of crash-looping the pool.
MAX_ATTEMPTS = 2


@dataclass
class _Tracked:
    job: Job
    state: str = "queued"  # queued | running | done | failed
    error: Optional[str] = None
    attempts: int = 0


class JobQueue:
    """Hash-keyed dedup queue feeding the daemon's worker pool."""

    def __init__(self, store: ContentStore):
        self.store = store
        self._tracked: Dict[str, _Tracked] = {}
        self._ready: deque[str] = deque()
        self.executed = 0
        self.failed = 0
        self.hits = 0
        self.deduped = 0

    # -- intake ---------------------------------------------------------

    def offer(self, digest: str, job: Job) -> str:
        """Admit one cell; returns its disposition.

        ``"hit"`` — object already in the store, nothing to do.
        ``"dedup"`` — hash already queued/running for another sweep.
        ``"done"`` / ``"failed"`` — already settled this lifetime.
        ``"queued"`` — new work, appended to the ready deque.
        """
        tracked = self._tracked.get(digest)
        if tracked is not None:
            if tracked.state in ("done", "failed"):
                return tracked.state
            self.deduped += 1
            return "dedup"
        if self.store.has_hash(digest):
            self.hits += 1
            self._tracked[digest] = _Tracked(job=job, state="done")
            return "hit"
        self._tracked[digest] = _Tracked(job=job)
        self._ready.append(digest)
        return "queued"

    # -- dispatch -------------------------------------------------------

    def next_ready(self) -> Optional[tuple[str, Job]]:
        if not self._ready:
            return None
        digest = self._ready.popleft()
        tracked = self._tracked[digest]
        tracked.state = "running"
        tracked.attempts += 1
        return digest, tracked.job

    def mark_done(self, digest: str, metrics: dict) -> None:
        """Persist the object, then flip the state — store first, so a
        kill between the two can only lose bookkeeping, never results."""
        self.store.put_hash(digest, metrics)
        self._tracked[digest].state = "done"
        self.executed += 1

    def mark_failed(self, digest: str, error: str) -> None:
        tracked = self._tracked[digest]
        tracked.state = "failed"
        tracked.error = error
        self.failed += 1

    def requeue(self, digest: str, *, reason: str) -> None:
        """A worker died holding this job; retry or give up."""
        tracked = self._tracked[digest]
        if tracked.attempts >= MAX_ATTEMPTS:
            self.mark_failed(digest, f"{reason} ({tracked.attempts} attempts)")
            return
        tracked.state = "queued"
        self._ready.appendleft(digest)

    # -- queries --------------------------------------------------------

    def state_of(self, digest: str) -> Optional[str]:
        tracked = self._tracked.get(digest)
        return None if tracked is None else tracked.state

    def error_of(self, digest: str) -> Optional[str]:
        tracked = self._tracked.get(digest)
        return None if tracked is None else tracked.error

    @property
    def depth(self) -> int:
        return len(self._ready)


@dataclass
class _SweepEntry:
    name: str
    hashes: tuple[str, ...]
    spec_payload: dict = field(default_factory=dict)


class SweepBook:
    """Sweep-id -> ordered job hashes; per-sweep progress roll-ups."""

    def __init__(self) -> None:
        self._sweeps: Dict[str, _SweepEntry] = {}

    def register(
        self, sweep_id: str, name: str, hashes: list[str], spec_payload: dict
    ) -> None:
        self._sweeps[sweep_id] = _SweepEntry(
            name=name, hashes=tuple(hashes), spec_payload=dict(spec_payload)
        )

    def known(self, sweep_id: str) -> bool:
        return sweep_id in self._sweeps

    def ids(self) -> list[str]:
        return sorted(self._sweeps)

    def name_of(self, sweep_id: str) -> str:
        return self._sweeps[sweep_id].name

    def hashes_of(self, sweep_id: str) -> list[str]:
        return list(self._sweeps[sweep_id].hashes)

    def spec_payload_of(self, sweep_id: str) -> dict:
        return dict(self._sweeps[sweep_id].spec_payload)

    def counts(self, sweep_id: str, queue: JobQueue) -> dict:
        """Queued/running/done/failed tally over the sweep's cells.

        Cells the queue never tracked (possible only for a sweep read
        from a manifest whose objects already all exist) count by their
        store presence.
        """
        entry = self._sweeps[sweep_id]
        tally = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        errors = []
        for digest in entry.hashes:
            state = queue.state_of(digest)
            if state is None:
                state = "done" if queue.store.has_hash(digest) else "queued"
            tally[state] += 1
            if state == "failed":
                error = queue.error_of(digest)
                if error and error not in errors:
                    errors.append(error)
        tally["total"] = len(entry.hashes)
        if errors:
            tally["errors"] = errors
        return tally

    def settled(self, sweep_id: str, queue: JobQueue) -> bool:
        """No cell still queued or running (done or failed throughout)."""
        counts = self.counts(sweep_id, queue)
        return counts["queued"] == 0 and counts["running"] == 0

    def complete(self, sweep_id: str, queue: JobQueue) -> bool:
        counts = self.counts(sweep_id, queue)
        return counts["done"] == counts["total"]
