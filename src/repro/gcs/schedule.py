"""Adversary schedules: executions as the adversary specifies them.

The lower-bound proofs construct executions by dictating (a) every node's
hardware clock rate as a function of real time and (b) every message's
delay.  An :class:`AdversarySchedule` is that specification.  *Running*
a schedule means handing it to the deterministic simulator together with
an algorithm; because nodes see only hardware readings and messages, the
schedule fully determines the execution — which is how the paper's
"there exists an execution such that ..." statements become runnable
artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.algorithms.base import SyncAlgorithm
from repro.errors import ScheduleError
from repro.sim.execution import Execution
from repro.sim.messages import DelayPolicy, HalfDistanceDelay
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.base import Topology

__all__ = ["AdversarySchedule"]


@dataclass(frozen=True)
class AdversarySchedule:
    """Per-node rate schedules + a delay oracle + a duration.

    Immutable; the construction lemmas produce edited copies.  The delay
    oracle must be deterministic for the indistinguishability machinery
    to work (random policies are fine for benign experiments, but the
    lower-bound constructions never use them).
    """

    rates: Mapping[int, PiecewiseConstantRate]
    delay_oracle: DelayPolicy
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ScheduleError(f"duration must be positive, got {self.duration}")

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def quiet(cls, nodes, duration: float) -> "AdversarySchedule":
        """The paper's baseline: all rates 1, all delays ``d/2``.

        ``alpha_0`` of Theorem 8.1 is exactly ``quiet(nodes, tau*(D-1))``.
        """
        rate = PiecewiseConstantRate.constant(1.0)
        return cls(
            rates={node: rate for node in nodes},
            delay_oracle=HalfDistanceDelay(),
            duration=duration,
        )

    # ------------------------------------------------------------------
    # editing

    def extended(self, extra: float) -> "AdversarySchedule":
        """Lengthen the execution by ``extra`` of quiet running.

        Rate schedules already continue (their last segment extends to
        infinity and the constructions always end on rate 1); the warped
        delay oracles return ``d/2`` outside their windows, so the
        extension is automatically the quiet region the next round's
        preconditions need.
        """
        if extra <= 0:
            raise ScheduleError(f"extension must be positive, got {extra}")
        return replace(self, duration=self.duration + extra)

    def with_rates(
        self, rates: Mapping[int, PiecewiseConstantRate]
    ) -> "AdversarySchedule":
        return replace(self, rates=dict(rates))

    def with_oracle(self, oracle: DelayPolicy) -> "AdversarySchedule":
        return replace(self, delay_oracle=oracle)

    # ------------------------------------------------------------------
    # execution

    def run(
        self,
        topology: Topology,
        algorithm: SyncAlgorithm,
        *,
        rho: float,
        seed: int = 0,
        record_trace: bool = True,
    ) -> Execution:
        """Run ``algorithm`` under this schedule and return the execution.

        A fresh set of processes is instantiated every run (process
        objects hold state), so re-running a schedule is always
        reproducible.
        """
        config = SimConfig(
            duration=self.duration, rho=rho, seed=seed, record_trace=record_trace
        )
        return run_simulation(
            topology,
            algorithm.processes(topology),
            config,
            rate_schedules=self.rates,
            delay_policy=self.delay_oracle,
        )

    # ------------------------------------------------------------------
    # checks used by lemma preconditions

    def rates_constant_one(self, a: float, b: float) -> bool:
        """Whether every node runs at rate exactly 1 throughout ``[a, b]``."""
        for schedule in self.rates.values():
            if schedule.min_rate(a, b) != 1.0 or schedule.max_rate(a, b) != 1.0:
                return False
        return True
