"""Executable indistinguishability (Section 3's proof principle).

    "if for every action pi we have H_alpha(T_alpha(pi)) =
     H_beta(T_beta(pi)), node i behaves the same in alpha and beta."

Nodes observe only (kind, hardware reading, content) of their actions,
so two executions are indistinguishable to a node exactly when those
projections match.  This module compares projections between a base
execution and a retimed re-run, which turns every "indistinguishable to
all nodes" step of the paper into an assertion our tests run.

Floating point: warped re-runs reproduce hardware readings up to float
error, and events that are exactly simultaneous may be processed in
either order, so the comparison (a) matches readings within a tolerance
and (b) is insensitive to permutations among same-instant events (which
cannot influence a deterministic automaton's state at the next distinct
instant for the order-independent algorithms shipped here).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import IndistinguishabilityError
from repro.sim.execution import Execution
from repro.sim.trace import START

__all__ = [
    "local_view",
    "assert_same_local_view",
    "assert_indistinguishable_prefix",
]


def _canonical_detail(detail: Any, digits: int) -> Any:
    """Round all floats inside a detail payload for robust comparison."""
    if isinstance(detail, float):
        return round(detail, digits)
    if isinstance(detail, (list, tuple)):
        return tuple(_canonical_detail(x, digits) for x in detail)
    if isinstance(detail, dict):
        return tuple(
            sorted((k, _canonical_detail(v, digits)) for k, v in detail.items())
        )
    return detail


def local_view(
    execution: Execution,
    node: int,
    *,
    hardware_horizon: float | None = None,
    digits: int = 6,
) -> list[tuple]:
    """The node's canonical observation sequence up to a hardware horizon.

    Entries are ``(hardware, kind, detail)`` with floats rounded to
    ``digits``; sorted by (hardware, kind, detail) so that same-instant
    permutations compare equal.  ``start`` events are dropped (they are
    identical by construction).
    """
    out = []
    for kind, hardware, detail in execution.trace.local_observations(node):
        if kind == START:
            continue
        if hardware_horizon is not None and hardware > hardware_horizon:
            continue
        out.append(
            (round(hardware, digits), kind, _canonical_detail(detail, digits))
        )
    out.sort(key=repr)
    return out


def assert_same_local_view(
    alpha: Execution,
    beta: Execution,
    node: int,
    *,
    hardware_horizon: float,
    digits: int = 6,
) -> None:
    """Assert one node cannot tell ``alpha`` from ``beta`` up to a horizon."""
    va = local_view(alpha, node, hardware_horizon=hardware_horizon, digits=digits)
    vb = local_view(beta, node, hardware_horizon=hardware_horizon, digits=digits)
    if va != vb:
        diff = _first_difference(va, vb)
        raise IndistinguishabilityError(
            f"node {node} distinguishes the executions at {diff}"
        )


def _first_difference(va: list, vb: list) -> str:
    for k, (a, b) in enumerate(zip(va, vb)):
        if a != b:
            return f"index {k}: alpha saw {a}, beta saw {b}"
    return (
        f"lengths differ: alpha {len(va)} vs beta {len(vb)}; "
        f"first extra: "
        f"{va[len(vb)] if len(va) > len(vb) else vb[len(va)]}"
    )


def assert_indistinguishable_prefix(
    alpha: Execution,
    beta: Execution,
    *,
    margin: float = 1e-4,
    digits: int = 6,
    nodes: Iterable[int] | None = None,
) -> None:
    """Assert ``beta`` is indistinguishable from ``alpha`` (Claim 6.2 shape).

    For every node, compare the observation sequences up to the node's
    hardware horizon in the *shorter* execution (minus a float-safety
    ``margin``).  For an Add Skew re-run: beta runs until ``T'`` where
    node ``k`` reads ``H_k^beta(T')``; alpha must have shown node ``k``
    exactly the same observations up to that reading.
    """
    for node in nodes if nodes is not None else alpha.topology.nodes:
        horizon = min(
            alpha.hardware_value(node, alpha.duration),
            beta.hardware_value(node, beta.duration),
        ) - margin
        assert_same_local_view(
            alpha, beta, node, hardware_horizon=horizon, digits=digits
        )
