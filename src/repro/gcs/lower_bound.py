"""Theorem 8.1's iterated construction, executable.

The theorem drives *any* clock synchronization algorithm into
``Omega(log D / log log D)`` skew between two nodes at distance 1, on
the line network ``d_ij = |i - j|``:

1. ``alpha_0``: quiet execution (rates 1, delays ``d/2``) of duration
   ``tau * (D - 1)``;
2. round ``k``: the current pair ``(i_k, j_k)`` at distance ``n_k`` gets
   Add Skew applied to the final quiet window — skew grows by
   ``n_k / 12``;
3. extend quietly for ``~ n_{k+1} * tau``; the Bounded Increase lemma
   caps how much of the new skew the algorithm can burn off;
4. pigeonhole (Claim 8.5): some sub-pair ``(i_{k+1}, j_{k+1})`` at
   distance ``n_{k+1} = n_k / B`` retains proportional skew; recurse.

After ``k = Theta(log D / log log D)`` rounds, an *adjacent* pair holds
``k / 24`` skew.

This driver performs the construction against a concrete algorithm by
re-running the deterministic simulator from time 0 each round under the
edited schedule — the executable counterpart of "indistinguishable
execution exists".  Differences from the proof text, all documented in
DESIGN.md:

* the proof's shrink factor ``B = 384 tau f(1)`` uses the unknown
  gradient bound ``f(1)``; the driver takes ``B`` as a parameter
  (asymptotics are ``B``-insensitive);
* each extension is padded past the straggler horizon (see
  :mod:`repro.gcs.oracle`) so the next round's window is exactly quiet;
* the orientation WLOG ("renumber the nodes") is realized by letting
  each round's plan lead from whichever side currently leads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._constants import tau as tau_of
from repro.algorithms.base import SyncAlgorithm
from repro.errors import ConstructionError
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew, verify_add_skew_claims
from repro.gcs.indistinguishability import assert_indistinguishable_prefix
from repro.gcs.schedule import AdversarySchedule
from repro.sim.execution import Execution
from repro.topology.base import Topology
from repro.topology.generators import line

__all__ = ["RoundRecord", "LowerBoundResult", "LowerBoundAdversary"]


@dataclass(frozen=True)
class RoundRecord:
    """What one Add Skew round did."""

    round_index: int
    i: int
    j: int
    span: int
    lead: str
    skew_before: float
    skew_after_round: float
    duration_after: float
    next_i: int
    next_j: int
    next_span: int
    next_pair_skew: float

    @property
    def gain(self) -> float:
        return self.skew_after_round - self.skew_before


@dataclass
class LowerBoundResult:
    """The full construction transcript against one algorithm."""

    algorithm: str
    diameter: int
    rho: float
    shrink: int
    rounds: list[RoundRecord]
    final_execution: Execution
    final_pair: tuple[int, int]

    @property
    def final_adjacent_skew(self) -> float:
        """|skew| of the final distance-1 pair at the end — the theorem's
        witnessed quantity."""
        i, j = self.final_pair
        return abs(
            self.final_execution.skew(i, j, self.final_execution.duration)
        )

    @property
    def peak_adjacent_skew(self) -> float:
        """Largest distance-1 skew at the final instant, network-wide."""
        return self.final_execution.max_adjacent_skew(
            self.final_execution.duration
        )

    @property
    def rounds_applied(self) -> int:
        return len(self.rounds)


class LowerBoundAdversary:
    """Runs the Theorem 8.1 construction against an algorithm.

    Parameters
    ----------
    diameter:
        ``D``: the line has nodes ``0 .. D`` (``D + 1`` nodes, diameter
        ``D``), so ``n_0 = D`` and round ``k`` works at span
        ``n_k = max(1, n_{k-1} // shrink)``.
    rho:
        Drift bound; ``tau = 1/rho``.  Must satisfy
        ``tau >= comm_radius`` so no message can cross an extension's
        padding (the oracle-stacking soundness condition).
    shrink:
        The per-round span divisor ``B`` (the proof's ``384 tau f(1)``).
    comm_radius:
        Gossip radius of the algorithm under attack (1 = adjacent only).
    """

    def __init__(
        self,
        diameter: int,
        *,
        rho: float = 0.5,
        shrink: int = 4,
        comm_radius: float = 1.0,
        seed: int = 0,
    ):
        if diameter < 2:
            raise ConstructionError("need diameter >= 2")
        if shrink < 2:
            raise ConstructionError("shrink factor must be >= 2")
        if tau_of(rho) < comm_radius:
            raise ConstructionError(
                f"need tau = {tau_of(rho)} >= comm_radius = {comm_radius} "
                "for sound oracle stacking (see gcs.oracle)"
            )
        self.diameter = diameter
        self.rho = rho
        self.shrink = shrink
        self.comm_radius = comm_radius
        self.seed = seed
        self.topology: Topology = line(diameter + 1, comm_radius=comm_radius)

    # ------------------------------------------------------------------

    def _pick_window(
        self, execution: Execution, lo: int, hi: int, width: int
    ) -> tuple[int, int, float]:
        """Claim 8.5's pigeonhole: the width-``width`` sub-pair of
        ``[lo, hi]`` with the largest end-time skew (signed magnitude)."""
        t = execution.duration
        values = {
            k: execution.logical_value(k, t) for k in range(lo, hi + 1)
        }
        best_a, best_skew = lo, 0.0
        for a in range(lo, hi - width + 1):
            skew = values[a] - values[a + width]
            if abs(skew) > abs(best_skew):
                best_a, best_skew = a, skew
        return best_a, best_a + width, best_skew

    def run(
        self, algorithm: SyncAlgorithm, *, verify: bool = False
    ) -> LowerBoundResult:
        """Execute the full construction; returns the transcript.

        With ``verify=True`` every round additionally runs the bare
        ``beta`` schedule (duration ``T'``) and asserts Lemma 6.1's
        claims against the previous round's execution — Claim 6.2
        (indistinguishability), 6.3/6.4 (rate and delay bands), 6.5
        (skew gain) — roughly doubling the construction's cost.  The
        test suite exercises it; experiments run unverified.
        """
        tau = tau_of(self.rho)
        n0 = self.diameter
        schedule = AdversarySchedule.quiet(self.topology.nodes, tau * n0)
        execution = schedule.run(
            self.topology, algorithm, rho=self.rho, seed=self.seed
        )

        lo, hi, span = 0, n0, n0
        rounds: list[RoundRecord] = []
        k = 0
        while span >= 1:
            skew_before = execution.skew(lo, hi, execution.duration)
            lead = "lo" if skew_before >= 0 else "hi"
            plan = AddSkewPlan(
                i=lo,
                j=hi,
                n=self.topology.n,
                alpha_duration=schedule.duration,
                rho=self.rho,
                lead=lead,
            )
            beta_schedule = apply_add_skew(schedule, plan)
            if verify:
                beta_execution = beta_schedule.run(
                    self.topology, algorithm, rho=self.rho, seed=self.seed
                )
                assert_indistinguishable_prefix(execution, beta_execution)
                verify_add_skew_claims(execution, beta_execution, plan)

            next_span = max(1, span // self.shrink)
            pad = plan.straggler_horizon - plan.beta_end
            extension = next_span * tau + pad + 1e-6
            schedule = beta_schedule.extended(extension)
            execution = schedule.run(
                self.topology, algorithm, rho=self.rho, seed=self.seed
            )

            end = execution.duration
            skew_after = execution.skew(lo, hi, end)
            next_lo, next_hi, next_skew = self._pick_window(
                execution, lo, hi, next_span
            )
            rounds.append(
                RoundRecord(
                    round_index=k,
                    i=lo,
                    j=hi,
                    span=span,
                    lead=lead,
                    skew_before=skew_before,
                    skew_after_round=skew_after,
                    duration_after=end,
                    next_i=next_lo,
                    next_j=next_hi,
                    next_span=next_span,
                    next_pair_skew=next_skew,
                )
            )
            if span == 1:
                # The pair is already adjacent: the construction is done.
                break
            lo, hi, span = next_lo, next_hi, next_span
            k += 1

        return LowerBoundResult(
            algorithm=algorithm.name,
            diameter=self.diameter,
            rho=self.rho,
            shrink=self.shrink,
            rounds=rounds,
            final_execution=execution,
            final_pair=(lo, hi) if span == 1 else (lo, lo + 1),
        )
