"""The warped delay oracle (Claim 6.4, executable).

When the Add Skew construction retimes an execution ``alpha`` into
``beta``, every message ``alpha`` received inside or after the warped
window must arrive at its *retimed* instant in the re-run, or the
executions would be distinguishable.  The oracle computes those retimed
delays on the fly:

given a send at (new-coordinate) time ``s_beta`` from ``k1`` to ``k2``:

1. pull the send back to alpha coordinates: ``s_alpha = psi_k1^{-1}(s_beta)``;
2. alpha's delay for receives past the window start was exactly ``d/2``
   (the lemma's precondition), so the alpha receive is
   ``t_alpha = s_alpha + d/2``;
3. if the receive lands before the window start ``S``, nothing was
   retimed — delegate to the base oracle (the frozen prefix);
4. if it lands inside alpha's window ``(S, T]``, the beta delay is
   ``psi_k2(t_alpha) - s_beta``; Claim 6.4 proves this lies in
   ``[d/4, 3d/4]``.  When ``psi_k2(t_alpha) > T'`` the message is simply
   still in flight when ``beta`` ends and arrives early in the extension
   — still at its retimed instant, never before ``T'``;
5. if alpha never received it (``t_alpha > T``), it gets the quiet
   delay ``d/2`` (arrival is provably after ``T'``).

Note on step 5 vs. the paper: Theorem 8.1 says in-flight messages get
delay ``|i - j| / 2``.  Applied to *every* in-flight message that
assignment can deliver before ``T'`` (fast sender, slow receiver),
contradicting indistinguishability; retimed delivery (step 4) is the
consistent reading, keeps every delay inside Claim 6.4's
``[d/4, 3d/4]`` band, and preserves the theorem's arithmetic.  The
lower-bound driver pads each round's extension so these stragglers land
before the next round's quiet window begins (see
:mod:`repro.gcs.lower_bound`).

Oracles *stack*: each Add Skew round wraps the previous round's oracle,
whose own window lies entirely before this round's ``S`` — so the frozen
prefix of every re-run reproduces all earlier rounds' delays exactly.
The step-2 assumption (delay was ``d/2``) is sound as long as no message
sent under an *earlier* round's warped window can still be in flight at
this round's window start; the driver guarantees that by keeping the
extension padding above the maximum communication distance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro._constants import TIME_EPS
from repro.errors import ScheduleError
from repro.gcs.warps import TimeWarp
from repro.sim.messages import DelayPolicy

__all__ = ["WarpedDelayOracle"]


@dataclass(frozen=True)
class WarpedDelayOracle:
    """Delay policy reproducing one Add Skew retiming on top of ``base``.

    Parameters
    ----------
    base:
        The delay policy of the pre-existing (alpha) schedule; consulted
        for messages received before the window.
    warps:
        Per-node retiming maps ``psi_k`` (alpha time -> beta time).
    window_start / window_end:
        The lemma's ``S`` and ``T`` in alpha coordinates.
    beta_end:
        The lemma's ``T'``: beta's duration, in beta coordinates.  Sends
        after it belong to the quiet extension.
    """

    base: DelayPolicy
    warps: Mapping[int, TimeWarp]
    window_start: float
    window_end: float
    beta_end: float

    def __post_init__(self) -> None:
        if not self.window_start < self.window_end:
            raise ScheduleError("window must have positive length")
        if not self.window_start < self.beta_end <= self.window_end + TIME_EPS:
            raise ScheduleError(
                f"beta end {self.beta_end} must lie in "
                f"({self.window_start}, {self.window_end}]"
            )

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        half = distance / 2.0
        if send_time > self.beta_end + TIME_EPS:
            # Sent during the quiet extension.
            return half

        psi_s = self.warps[sender]
        psi_r = self.warps[receiver]
        s_alpha = psi_s.inverse(send_time)
        t_alpha = s_alpha + half
        if t_alpha <= self.window_start + TIME_EPS:
            # Received in the frozen prefix where alpha time == beta time;
            # earlier rounds' oracle decides (it may itself be warped).
            return self.base.delay(sender, receiver, send_time, distance, seq, rng)
        if t_alpha <= self.window_end + TIME_EPS:
            # Received inside alpha's window: deliver at the retimed
            # instant (possibly shortly after beta_end — see module doc).
            return psi_r(t_alpha) - send_time
        # alpha itself never received it (sent within d/2 of the end);
        # quiet delay, provably arriving after beta_end.
        return half
