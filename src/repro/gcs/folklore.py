"""The folklore ``f(d) = Omega(d)`` lower bound (Section 5, item 1).

    "for every real number d >= 1, there exists a network containing two
     nodes at distance d from each other, such that the two nodes have
     Omega(d) clock skew in some execution" — the paper only sketches
     this via the shifting argument of Lundelius-Welch & Lynch.

We realize it with the machinery we already trust: on the line
``0 .. d`` (so the endpoints sit at distance ``d``), run the quiet
execution and apply **one** Add Skew round to the endpoint pair.  The
two executions are indistinguishable to every node, yet the endpoint
skew grows by at least ``d / 12`` — a concrete ``Omega(d)`` with
constant ``1/12``.  Repeating the round (quiet extension, re-apply)
stacks further gains while the algorithm burns skew off no faster than
Bounded Increase allows, so the sweep in experiment E01 shows forced
skew growing linearly in ``d``.

The drift-free *shift* version of the folklore argument (delays swapped
between two executions, one node's timeline translated) needs clocks
with nonzero initial offsets, which the paper's model (all clocks start
at 0, Section 3) does not provide; the drift-based Add Skew route is the
model-faithful equivalent.  DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._constants import tau as tau_of
from repro.algorithms.base import SyncAlgorithm
from repro.errors import ConstructionError
from repro.gcs.add_skew import AddSkewPlan, apply_add_skew
from repro.gcs.schedule import AdversarySchedule
from repro.sim.execution import Execution
from repro.topology.generators import line

__all__ = ["FolkloreResult", "force_distance_skew"]


@dataclass(frozen=True)
class FolkloreResult:
    """Outcome of the Omega(d) construction at one distance."""

    distance: int
    rounds: int
    forced_skew: float
    guaranteed: float
    execution: Execution

    @property
    def skew_per_distance(self) -> float:
        return self.forced_skew / self.distance


def force_distance_skew(
    algorithm: SyncAlgorithm,
    distance: int,
    *,
    rho: float = 0.5,
    rounds: int = 1,
    comm_radius: float = 1.0,
    seed: int = 0,
) -> FolkloreResult:
    """Force ``Omega(distance)`` skew between two nodes at ``distance``.

    Builds the line ``0 .. distance``, runs the quiet ``alpha_0``, then
    applies ``rounds`` Add Skew rounds to the endpoint pair, each
    followed by a quiet extension long enough to restore the next
    round's preconditions.  Returns the measured endpoint skew; the
    single-round guarantee is ``distance / 12`` *per round* minus
    whatever the algorithm manages to burn off during extensions.
    """
    if distance < 1:
        raise ConstructionError("the paper's normalization needs d >= 1")
    if rounds < 1:
        raise ConstructionError("need at least one round")
    tau = tau_of(rho)
    topology = line(distance + 1, comm_radius=comm_radius)
    schedule = AdversarySchedule.quiet(topology.nodes, tau * distance)
    execution = schedule.run(topology, algorithm, rho=rho, seed=seed)

    lo, hi = 0, distance
    for _ in range(rounds):
        skew_now = execution.skew(lo, hi, execution.duration)
        plan = AddSkewPlan(
            i=lo,
            j=hi,
            n=topology.n,
            alpha_duration=schedule.duration,
            rho=rho,
            lead="lo" if skew_now >= 0 else "hi",
        )
        beta_schedule = apply_add_skew(schedule, plan)
        # Quiet extension: restores the window preconditions for the next
        # round (and gives the algorithm its chance to fight back).
        pad = plan.straggler_horizon - plan.beta_end
        schedule = beta_schedule.extended(tau * distance + pad + 1e-6)
        execution = schedule.run(topology, algorithm, rho=rho, seed=seed)

    forced = abs(execution.skew(lo, hi, execution.duration))
    return FolkloreResult(
        distance=distance,
        rounds=rounds,
        forced_skew=forced,
        guaranteed=distance / 12.0,
        execution=execution,
    )
