"""The paper's contribution: gradient clock synchronization, executable.

Definitions (properties), the Add Skew and Bounded Increase lemmas, the
Theorem 8.1 adversary, the folklore Omega(d) bound, and the
indistinguishability machinery they all stand on.
"""

from repro.gcs.add_skew import AddSkewPlan, apply_add_skew, verify_add_skew_claims
from repro.gcs.bounded_increase import (
    BoundedIncreaseReport,
    check_preconditions,
    measure_bounded_increase,
)
from repro.gcs.folklore import FolkloreResult, force_distance_skew
from repro.gcs.indistinguishability import (
    assert_indistinguishable_prefix,
    assert_same_local_view,
    local_view,
)
from repro.gcs.lower_bound import (
    LowerBoundAdversary,
    LowerBoundResult,
    RoundRecord,
)
from repro.gcs.oracle import WarpedDelayOracle
from repro.gcs.properties import (
    GradientBound,
    GradientViolation,
    check_gradient,
    check_validity,
    empirical_f,
)
from repro.gcs.schedule import AdversarySchedule
from repro.gcs.warps import TimeWarp

__all__ = [
    "AddSkewPlan",
    "apply_add_skew",
    "verify_add_skew_claims",
    "BoundedIncreaseReport",
    "check_preconditions",
    "measure_bounded_increase",
    "FolkloreResult",
    "force_distance_skew",
    "assert_indistinguishable_prefix",
    "assert_same_local_view",
    "local_view",
    "LowerBoundAdversary",
    "LowerBoundResult",
    "RoundRecord",
    "WarpedDelayOracle",
    "GradientBound",
    "GradientViolation",
    "check_gradient",
    "check_validity",
    "empirical_f",
    "AdversarySchedule",
    "TimeWarp",
]
