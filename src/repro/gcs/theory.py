"""Closed-form quantities from the paper, in one importable place.

Everything here is arithmetic — no simulation — so experiments can print
"paper says / we measured" columns from a single source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._constants import (
    ADD_SKEW_GAIN,
    BOUNDED_INCREASE_FACTOR,
    ROUND_SKEW_RATE,
    SHRINK_NUMERATOR,
    gamma,
    lower_bound_curve,
    rounds_for,
    shrink_factor,
    tau,
    window_shrink,
)

__all__ = [
    "tau",
    "gamma",
    "window_shrink",
    "lower_bound_curve",
    "shrink_factor",
    "rounds_for",
    "add_skew_gain",
    "bounded_increase_bound",
    "theorem_skew_after_rounds",
    "conjectured_upper_bound",
    "ThreeNodeScenario",
    "ADD_SKEW_GAIN",
    "BOUNDED_INCREASE_FACTOR",
    "ROUND_SKEW_RATE",
    "SHRINK_NUMERATOR",
]


def add_skew_gain(span: float) -> float:
    """Lemma 6.1's guaranteed skew gain for a pair at distance ``span``."""
    return ADD_SKEW_GAIN * span


def bounded_increase_bound(f_of_one: float) -> float:
    """Lemma 7.1's cap on one-unit logical gain: ``16 f(1)``."""
    return BOUNDED_INCREASE_FACTOR * f_of_one


def theorem_skew_after_rounds(k: int) -> float:
    """Theorem 8.1's guaranteed adjacent skew after ``k`` rounds: ``k/24``."""
    return ROUND_SKEW_RATE * k


def conjectured_upper_bound(d: float, diameter: float, slope: float = 1.0) -> float:
    """Section 9's conjecture: some algorithm achieves ``O(d + log D)``."""
    return slope * (d + math.log(max(diameter, 1.0)))


@dataclass(frozen=True)
class ThreeNodeScenario:
    """Section 2's worked example showing max-style sync is not a gradient.

    Three nodes on a line: ``x`` and ``y`` at distance ``big_d``, ``y``
    and ``z`` at distance 1 (``x`` and ``z`` at ``big_d + 1``).  Drive
    ``x``'s clock ``big_d`` ahead of ``y`` (and a bit more ahead of
    ``z``) while the adversary delays ``x``'s broadcasts by the full
    uncertainty; then drop the ``x -> y`` delay to 0.  ``y`` jumps
    ``~big_d`` forward the moment it hears ``x``; ``z`` — one unit of
    delay away — has not, so for a full unit of real time the
    distance-1 pair ``(y, z)`` carries ``~big_d`` of skew.

    The expected peak distance-1 skew is ``big_d + 1`` in the paper's
    idealized account; drift details in a concrete run put it near
    ``big_d``, growing linearly in ``big_d`` — which is the point:
    unbounded skew at distance 1 as the diameter grows.
    """

    big_d: float

    #: Node indices in the 3-node topology.
    x: int = 0
    y: int = 1
    z: int = 2

    @property
    def expected_peak_skew(self) -> float:
        """The paper's headline figure for the (y, z) pair."""
        return self.big_d + 1.0

    @property
    def distances(self) -> dict[tuple[int, int], float]:
        return {
            (self.x, self.y): self.big_d,
            (self.y, self.z): 1.0,
            (self.x, self.z): self.big_d + 1.0,
        }
