"""The Bounded Increase lemma (Lemma 7.1), executable.

    In any execution whose hardware rates stay within ``[1, 1 + rho/2]``
    and whose message delays stay within ``[d/4, 3d/4]``, no node's
    logical clock gains more than ``16 f(1)`` over one real-time unit
    (after the warm-up ``tau``), for any algorithm satisfying f-GCS.

The lemma is what lets Theorem 8.1 bound how quickly an algorithm can
*burn off* the skew that Add Skew injected: over an extension of length
``E`` the laggard closes at most ``16 f(1) E``.

This module measures the quantity on executions and checks the bound
for a claimed ``f(1)``; the experiment E06 sweeps algorithms and shows
the measured increase indeed sits below ``16 * f_hat(1)`` for the
empirical ``f_hat``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._constants import BOUNDED_INCREASE_FACTOR, tau as tau_of
from repro.errors import ConstructionError
from repro.sim.execution import Execution

__all__ = ["BoundedIncreaseReport", "check_preconditions", "measure_bounded_increase"]


@dataclass(frozen=True)
class BoundedIncreaseReport:
    """Measured fastest one-unit logical gain vs. the lemma's bound."""

    max_increase: float
    bound: float
    f_of_one: float
    window: float

    @property
    def satisfied(self) -> bool:
        return self.max_increase <= self.bound + 1e-6

    @property
    def ratio(self) -> float:
        """``measured / bound`` — how much slack the lemma leaves."""
        return self.max_increase / self.bound if self.bound > 0 else float("inf")


def check_preconditions(execution: Execution, *, rho: float) -> None:
    """Raise unless the execution satisfies the lemma's preconditions.

    1. hardware rates within ``[1, 1 + rho/2]`` at all times;
    2. delays within ``[d/4, 3d/4]`` at all times.
    """
    if not execution.rates_within(1.0, 1.0 + rho / 2.0):
        raise ConstructionError(
            "Bounded Increase precondition: rates must lie in [1, 1 + rho/2]"
        )
    if not execution.delays_within(0.25, 0.75):
        raise ConstructionError(
            "Bounded Increase precondition: delays must lie in [d/4, 3d/4]"
        )


def measure_bounded_increase(
    execution: Execution,
    f_of_one: float,
    *,
    rho: float,
    window: float = 1.0,
    step: float = 0.25,
    enforce_preconditions: bool = True,
) -> BoundedIncreaseReport:
    """Measure ``max_i max_t L_i(t + 1) - L_i(t)`` against ``16 f(1)``.

    ``f_of_one`` is the gradient bound at distance 1 claimed for (or
    measured from) the algorithm; the lemma's bound is ``16 f(1)``.
    Measurement starts at ``t = tau`` as in the lemma.
    """
    if enforce_preconditions:
        check_preconditions(execution, rho=rho)
    start = min(tau_of(rho), max(execution.duration - window, 0.0))
    measured = execution.max_logical_increase(
        window=window, step=step, t_from=start
    )
    return BoundedIncreaseReport(
        max_increase=measured,
        bound=BOUNDED_INCREASE_FACTOR * f_of_one,
        f_of_one=f_of_one,
        window=window,
    )
